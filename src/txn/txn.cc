#include "txn/txn.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace navpath {

// ---------------------------------------------------------------------------
// Snapshot

Snapshot::Snapshot(TxnManager* mgr,
                   std::shared_ptr<const DocumentVersion> version)
    : mgr_(mgr), version_(std::move(version)) {}

Snapshot::~Snapshot() { mgr_->ReleaseSnapshot(version_->seq); }

PageId Snapshot::ToPhysical(PageId logical) const {
  const auto it = version_->to_physical.find(logical);
  return it == version_->to_physical.end() ? logical : it->second;
}

PageId Snapshot::ToLogical(PageId physical) const {
  const auto it = version_->to_logical.find(physical);
  return it == version_->to_logical.end() ? physical : it->second;
}

bool Snapshot::IsShadow(PageId page) const {
  return mgr_->IsShadowPage(page);
}

Result<PageGuard> Snapshot::FixMutable(PageId id) {
  (void)id;
  return Status::InvalidArgument(
      "snapshot is read-only; begin a writer transaction to mutate");
}

Result<PageId> Snapshot::AppendLogicalPage() {
  return Status::InvalidArgument(
      "snapshot is read-only; begin a writer transaction to mutate");
}

// ---------------------------------------------------------------------------
// WriterTxn

WriterTxn::WriterTxn(TxnManager* mgr, Database* db,
                     std::shared_ptr<const DocumentVersion> base)
    : mgr_(mgr),
      db_(db),
      base_(std::move(base)),
      doc_(base_->doc),
      updater_(db, &doc_, this) {}

WriterTxn::~WriterTxn() {
  if (open_) {
    RollBack();
    ++mgr_->aborts_;
  }
}

PageId WriterTxn::ToPhysical(PageId logical) const {
  const auto it = write_set_.find(logical);
  if (it != write_set_.end()) return it->second;
  const auto base = base_->to_physical.find(logical);
  return base == base_->to_physical.end() ? logical : base->second;
}

PageId WriterTxn::ToLogical(PageId physical) const {
  const auto it = write_set_reverse_.find(physical);
  if (it != write_set_reverse_.end()) return it->second;
  const auto base = base_->to_logical.find(physical);
  return base == base_->to_logical.end() ? physical : base->second;
}

bool WriterTxn::IsShadow(PageId page) const {
  return mgr_->IsShadowPage(page);
}

Result<PageGuard> WriterTxn::FixMutable(PageId logical) {
  if (!open_) {
    return Status::InvalidArgument("writer transaction is finished");
  }
  const auto hit = write_set_.find(logical);
  if (hit != write_set_.end()) {
    return db_->buffer()->Fix(hit->second);
  }
  if (mgr_->IsShadowPage(logical)) {
    return Status::InvalidArgument("page is a shadow, not a logical page");
  }
  // Copy-on-write: fix the base image, copy it into a fresh shadow page,
  // and redirect this transaction's view of `logical` to the shadow. The
  // base guard stays pinned across AdoptPage so eviction cannot race the
  // copy.
  const auto base = base_->to_physical.find(logical);
  const PageId base_physical =
      base == base_->to_physical.end() ? logical : base->second;
  NAVPATH_ASSIGN_OR_RETURN(PageGuard base_guard,
                           db_->buffer()->Fix(base_physical));
  NAVPATH_ASSIGN_OR_RETURN(const PageId shadow, mgr_->AllocateShadowPage());
  Result<PageGuard> adopted =
      db_->buffer()->AdoptPage(shadow, base_guard.data());
  if (!adopted.ok()) {
    mgr_->free_pages_.push_back(shadow);
    return adopted.status();
  }
  write_set_[logical] = shadow;
  write_set_reverse_[shadow] = logical;
  shadow_pages_.push_back(shadow);
  return adopted;
}

void WriterTxn::NoteReadDependency(PageId id) {
  if (!open_) return;
  // Pages this transaction wrote are validated as part of the write set.
  if (write_set_.count(id) > 0) return;
  dependency_pages_.insert(id);
}

Result<PageId> WriterTxn::AppendLogicalPage() {
  if (!open_) {
    return Status::InvalidArgument("writer transaction is finished");
  }
  // A page appended by this transaction is invisible to every existing
  // snapshot (their catalogs end before it), so it needs no shadow: the
  // identity write-set entry marks it as privately writable.
  const PageId id = db_->disk()->AllocatePage();
  std::vector<std::byte> zeros(db_->options().page_size);
  NAVPATH_ASSIGN_OR_RETURN(PageGuard guard,
                           db_->buffer()->AdoptPage(id, zeros.data()));
  write_set_[id] = id;
  write_set_reverse_[id] = id;
  new_logical_pages_.push_back(id);
  return id;
}

void WriterTxn::RollBack() {
  // Shadow copies are private, so dropping their frames loses nothing; a
  // frame that is somehow still pinned is left to age out of the buffer
  // (Discard refuses it) but its id is still recycled — AdoptPage
  // overwrites a resident frame in place on reuse.
  for (const PageId p : shadow_pages_) {
    (void)db_->buffer()->Discard(p);
    mgr_->free_pages_.push_back(p);
  }
  // Appended pages were provisionally logical; once the transaction dies
  // they must never be interpreted as clusters, so they join the shadow
  // set and become reusable shadow storage.
  for (const PageId p : new_logical_pages_) {
    (void)db_->buffer()->Discard(p);
    mgr_->shadow_pages_.insert(p);
    mgr_->free_pages_.push_back(p);
  }
  open_ = false;
}

Status WriterTxn::Abort() {
  if (!open_) {
    return Status::InvalidArgument("writer transaction is finished");
  }
  RollBack();
  ++mgr_->aborts_;
  return Status::OK();
}

Status WriterTxn::Commit() {
  if (!open_) {
    return Status::InvalidArgument("writer transaction is finished");
  }
  if (write_set_.empty() && !updater_.structural_change()) {
    // Nothing touched: committing publishes nothing and conflicts with
    // nobody.
    open_ = false;
    commit_seq_ = base_->seq;
    ++mgr_->commits_;
    return Status::OK();
  }
  const std::shared_ptr<const DocumentVersion> head = mgr_->current_;
  if (head->seq != base_->seq) {
    // Commits landed since BeginWrite. Page-granular first-committer-wins:
    // this transaction survives iff none of them wrote a page it wrote or
    // read. A base older than the bounded commit log cannot be validated
    // and aborts conservatively.
    bool conflict = !mgr_->CommitLogCoversSince(base_->seq);
    for (auto it = mgr_->commit_log_.rbegin();
         !conflict && it != mgr_->commit_log_.rend() && it->seq > base_->seq;
         ++it) {
      for (const PageId p : it->pages) {
        if (write_set_.count(p) > 0 || dependency_pages_.count(p) > 0) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) {
      RollBack();
      ++mgr_->aborts_;
      return Status::Aborted(
          "conflicting commit published since this transaction began");
    }
  }

  // Rebase onto the head version: the write sets are disjoint (validated
  // above), so overlaying this transaction's page map, catalog deltas and
  // summary deltas onto the head's commutes with the interleaved commits.
  auto version = std::make_shared<DocumentVersion>();
  version->seq = head->seq + 1;
  version->to_physical = head->to_physical;
  version->to_logical = head->to_logical;
  std::vector<TxnManager::RetiredVersion> newly_retired;
  std::vector<PageId> committed_pages;
  committed_pages.reserve(write_set_.size());
  for (const auto& [logical, shadow] : write_set_) {
    committed_pages.push_back(logical);
    if (logical == shadow) continue;  // appended page: already in place
    const auto old = version->to_physical.find(logical);
    if (old != version->to_physical.end()) {
      // The logical page had been shadowed before; that older shadow now
      // serves only snapshots with seq < version->seq and is retired.
      newly_retired.push_back(
          TxnManager::RetiredVersion{old->second, version->seq});
      version->to_logical.erase(old->second);
    }
    // First shadowing keeps the base image reachable forever (identity
    // fallback for versions that predate it); base pages are never retired.
    version->to_physical[logical] = shadow;
    version->to_logical[shadow] = logical;
  }

  // Catalog counters: apply this transaction's deltas (relative to its
  // base) on top of the head catalog. Root identity never changes (the
  // root is neither deletable nor evacuable).
  version->doc = head->doc;
  auto rebase = [](std::uint64_t head_v, std::uint64_t mine,
                   std::uint64_t base_v) {
    return head_v + mine - base_v;  // wraps transiently, never net-negative
  };
  const ImportedDocument& based = base_->doc;
  version->doc.core_records =
      rebase(head->doc.core_records, doc_.core_records, based.core_records);
  version->doc.attribute_records = rebase(
      head->doc.attribute_records, doc_.attribute_records,
      based.attribute_records);
  version->doc.border_pairs =
      rebase(head->doc.border_pairs, doc_.border_pairs, based.border_pairs);
  version->doc.pages = rebase(head->doc.pages, doc_.pages, based.pages);
  version->doc.last_page = std::max(head->doc.last_page, doc_.last_page);

  const bool deltas_clean = !updater_.structural_change();
  const auto& inserts = updater_.summary_inserts();
  const auto& deletes = updater_.summary_deletes();
  const auto& remaps = updater_.summary_remaps();
  if (!deltas_clean || head->summary == nullptr) {
    version->summary = nullptr;  // degrade: queries fall back to navigation
    if (head->summary != nullptr) ++mgr_->summary_degrades_;
  } else if (inserts.empty() && deletes.empty() && remaps.empty()) {
    version->summary = head->summary;
  } else {
    auto cloned = head->summary->CloneWithDeltas(inserts, deletes, remaps);
    if (cloned == nullptr) {
      version->summary = nullptr;
      ++mgr_->summary_degrades_;
    } else {
      version->summary = std::shared_ptr<const PathSummary>(std::move(cloned));
    }
  }

  commit_seq_ = version->seq;
  open_ = false;
  ++mgr_->commits_;
  updater_.ClearSummaryDelta();
  mgr_->commit_log_.push_back(
      TxnManager::CommitRecord{version->seq, std::move(committed_pages)});
  if (mgr_->commit_log_.size() > TxnManager::kCommitLogLimit) {
    mgr_->commit_log_.pop_front();
  }
  mgr_->Publish(std::move(version), std::move(newly_retired));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TxnManager

TxnManager::TxnManager(Database* db, ImportedDocument* canonical_doc)
    : db_(db), canonical_doc_(canonical_doc) {
  NAVPATH_CHECK(db != nullptr);
  auto genesis = std::make_shared<DocumentVersion>();
  genesis->seq = 0;
  if (canonical_doc_ != nullptr) genesis->doc = *canonical_doc_;
  genesis->summary = db_->shared_summary();
  current_ = std::move(genesis);
  // Retired-but-pinned page versions are skipped by TryReclaim; without
  // this hook they would wait for the *next* commit or snapshot release,
  // which may never come (the reclamation-stall bug). Draining on the
  // unpin that made them eligible closes the leak. No-op while nothing is
  // retired, so zero-writer runs are untouched.
  db_->buffer()->SetUnpinListener([this](PageId) {
    if (!retired_.empty()) TryReclaim();
  });
}

TxnManager::~TxnManager() { db_->buffer()->SetUnpinListener({}); }

std::shared_ptr<Snapshot> TxnManager::OpenSnapshot() {
  ++active_[current_->seq];
  return std::shared_ptr<Snapshot>(new Snapshot(this, current_));
}

std::unique_ptr<WriterTxn> TxnManager::BeginWrite() {
  return std::unique_ptr<WriterTxn>(new WriterTxn(this, db_, current_));
}

std::size_t TxnManager::active_snapshots() const {
  std::size_t n = 0;
  for (const auto& [seq, count] : active_) n += count;
  return n;
}

Result<PageId> TxnManager::AllocateShadowPage() {
  PageId id;
  if (!free_pages_.empty()) {
    id = free_pages_.back();
    free_pages_.pop_back();
  } else {
    id = db_->disk()->AllocatePage();
  }
  shadow_pages_.insert(id);
  return id;
}

void TxnManager::ReleaseSnapshot(std::uint64_t seq) {
  const auto it = active_.find(seq);
  NAVPATH_CHECK(it != active_.end() && it->second > 0);
  if (--it->second == 0) active_.erase(it);
  TryReclaim();
}

void TxnManager::Publish(std::shared_ptr<const DocumentVersion> version,
                         std::vector<RetiredVersion> newly_retired) {
  current_ = std::move(version);
  db_->SetSummary(current_->summary);
  if (canonical_doc_ != nullptr) *canonical_doc_ = current_->doc;
  versions_retired_ += newly_retired.size();
  for (RetiredVersion& r : newly_retired) retired_.push_back(r);
  TryReclaim();
}

void TxnManager::TryReclaim() {
  const std::uint64_t min_active =
      active_.empty() ? std::numeric_limits<std::uint64_t>::max()
                      : active_.begin()->first;
  auto it = retired_.begin();
  while (it != retired_.end()) {
    // A retired shadow is reachable only from snapshots older than the
    // commit that replaced it; once every such snapshot drained it can go.
    if (min_active >= it->retired_at) {
      const Status dropped = db_->buffer()->Discard(it->physical);
      if (!dropped.ok()) {
        // Pinned frame (a query is mid-access): never free a pinned
        // version — leave it retired and retry on the next drain.
        ++it;
        continue;
      }
      free_pages_.push_back(it->physical);
      ++versions_reclaimed_;
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

VersionedRootState TxnManager::ExportState() const {
  VersionedRootState state;
  state.seq = current_->seq;
  state.mappings.assign(current_->to_physical.begin(),
                        current_->to_physical.end());
  std::sort(state.mappings.begin(), state.mappings.end());
  state.shadow_pages.assign(shadow_pages_.begin(), shadow_pages_.end());
  std::sort(state.shadow_pages.begin(), state.shadow_pages.end());
  state.free_pages = free_pages_;
  std::sort(state.free_pages.begin(), state.free_pages.end());
  return state;
}

Status TxnManager::RestoreState(const VersionedRootState& state) {
  if (!active_.empty() || !retired_.empty() || commits_ != 0 ||
      current_->seq != 0) {
    return Status::InvalidArgument(
        "RestoreState requires a freshly constructed TxnManager");
  }
  const PageId page_count = db_->disk()->num_pages();
  for (const auto& [logical, physical] : state.mappings) {
    if (logical >= page_count || physical >= page_count) {
      return Status::InvalidArgument("versioned root references "
                                     "pages beyond the disk segment");
    }
  }
  auto version = std::make_shared<DocumentVersion>();
  version->seq = state.seq;
  for (const auto& [logical, physical] : state.mappings) {
    version->to_physical[logical] = physical;
    version->to_logical[physical] = logical;
  }
  if (canonical_doc_ != nullptr) version->doc = *canonical_doc_;
  version->summary = db_->shared_summary();
  current_ = std::move(version);
  shadow_pages_.clear();
  shadow_pages_.insert(state.shadow_pages.begin(), state.shadow_pages.end());
  free_pages_ = state.free_pages;
  return Status::OK();
}

}  // namespace navpath
