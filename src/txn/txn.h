// MVCC transaction subsystem: page-versioned copy-on-write snapshots of
// the cluster tree (the LMDB-style design ROADMAP calls the single
// biggest unlock for real traffic).
//
// Identity model. The page ids stored inside page bytes (border partner
// pointers), in NodeIDs, in plan contexts and in summary extents are
// *logical*. A published version carries a logical->physical map; the
// identity map is implicit for every unmapped page. Translation to a
// physical page happens exactly once per access, at buffer Fix/Prefetch
// time, through the PageTranslator a Snapshot or WriterTxn implements.
// Shadow (physical-only) pages are never reused as logical pages, so a
// range sweep can skip them by set membership (PageTranslator::IsShadow).
//
// Concurrency model (in simulated time; the process is single-threaded):
//   * Readers open a Snapshot: a pin on the published version (root
//     catalog + page map + synopsis). Everything a reader fixes through
//     the snapshot is the version's immutable image, no matter how many
//     commits land while the query runs.
//   * A writer copies each logical page to a fresh shadow page on first
//     touch (copy-on-write), builds privately, and publishes a new
//     version atomically at Commit. Conflict rule: first committer wins
//     at page granularity — a Commit whose base version is no longer
//     current validates its write set *and* the pages its decisions read
//     (order-key neighbors, ancestor chains) against the pages written by
//     every commit that landed in between; on overlap it returns
//     Status::Aborted, otherwise it rebases onto the head version (page
//     maps are disjoint, catalog counters and summary deltas commute).
//     The validation history is a bounded commit log; a writer whose base
//     predates the log tail aborts conservatively.
//   * Reclamation: a commit that remaps logical page L from shadow P_old
//     to P_new retires P_old at the new sequence number. P_old is freed
//     (buffer frame dropped, id recycled into the shadow free list) once
//     no live snapshot's sequence precedes the retiring commit — the
//     epoch/refcount drain in simulated time. A still-pinned frame is
//     never freed; it is retried on the next drain.
//
// Base pages (the import-time images) are never retired: a logical page's
// original physical slot keeps serving every snapshot that predates its
// first shadowing, and stays the fallback identity mapping afterwards.
#ifndef NAVPATH_TXN_TXN_H_
#define NAVPATH_TXN_TXN_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"
#include "store/path_summary.h"
#include "store/persistence.h"
#include "store/update.h"

namespace navpath {

class TxnManager;

/// One published, immutable version of the document.
struct DocumentVersion {
  std::uint64_t seq = 0;
  /// Pages shadowed at least once; absent pages map to themselves.
  std::unordered_map<PageId, PageId> to_physical;
  std::unordered_map<PageId, PageId> to_logical;
  ImportedDocument doc;
  /// Synopsis exact for this version (nullptr after a structural change).
  std::shared_ptr<const PathSummary> summary;
};

/// A reader's pin on one published version. Implements PageTranslator for
/// the algebra/navigation layers and (read-only) WritePageIO so that a
/// mistaken write through a snapshot fails with InvalidArgument instead
/// of corrupting shared state. Destroying the snapshot releases the pin
/// and may trigger reclamation of drained versions.
class Snapshot final : public PageTranslator, public WritePageIO {
 public:
  ~Snapshot() override;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  std::uint64_t seq() const { return version_->seq; }
  const ImportedDocument& doc() const { return version_->doc; }
  const PathSummary* summary() const { return version_->summary.get(); }
  std::shared_ptr<const PathSummary> shared_summary() const {
    return version_->summary;
  }

  // PageTranslator.
  PageId ToPhysical(PageId logical) const override;
  PageId ToLogical(PageId physical) const override;
  bool IsShadow(PageId page) const override;

  // WritePageIO — read-only: every mutation attempt is rejected.
  Result<PageGuard> FixMutable(PageId id) override;
  Result<PageId> AppendLogicalPage() override;
  const PageTranslator* translator() const override { return this; }

 private:
  friend class TxnManager;
  Snapshot(TxnManager* mgr, std::shared_ptr<const DocumentVersion> version);

  TxnManager* mgr_;
  std::shared_ptr<const DocumentVersion> version_;
};

/// A writer transaction: copy-on-write page fixes over a base version,
/// publishing atomically at Commit. Create via TxnManager::BeginWrite;
/// mutate through updater() (or any DocumentUpdater constructed with this
/// as its WritePageIO). Destruction aborts an unfinished transaction.
class WriterTxn final : public PageTranslator, public WritePageIO {
 public:
  ~WriterTxn() override;
  WriterTxn(const WriterTxn&) = delete;
  WriterTxn& operator=(const WriterTxn&) = delete;

  bool open() const { return open_; }
  std::uint64_t base_seq() const { return base_->seq; }
  /// Sequence published by Commit (0 while open or after abort).
  std::uint64_t commit_seq() const { return commit_seq_; }

  /// The transaction's private document catalog (bookkeeping the updater
  /// maintains); becomes the published catalog at Commit.
  ImportedDocument* doc() { return &doc_; }
  /// An updater pre-wired to this transaction's COW page I/O.
  DocumentUpdater* updater() { return &updater_; }

  /// Publishes the write set as the next version. Returns Aborted (and
  /// rolls the transaction back) when a commit that landed since
  /// BeginWrite wrote a page this transaction wrote or depended on;
  /// otherwise disjoint concurrent commits rebase and both succeed.
  /// InvalidArgument when already finished.
  Status Commit();
  /// Discards the write set; shadow pages return to the free list.
  Status Abort();

  // WritePageIO.
  Result<PageGuard> FixMutable(PageId logical) override;
  Result<PageId> AppendLogicalPage() override;
  const PageTranslator* translator() const override { return this; }
  void NoteReadDependency(PageId id) override;

  // PageTranslator: the write set shadows the base version, so the
  // writer's own navigation sees its uncommitted changes.
  PageId ToPhysical(PageId logical) const override;
  PageId ToLogical(PageId physical) const override;
  bool IsShadow(PageId page) const override;

 private:
  friend class TxnManager;
  WriterTxn(TxnManager* mgr, Database* db,
            std::shared_ptr<const DocumentVersion> base);

  void RollBack();

  TxnManager* mgr_;
  Database* db_;
  std::shared_ptr<const DocumentVersion> base_;
  std::unordered_map<PageId, PageId> write_set_;  // logical -> private page
  std::unordered_map<PageId, PageId> write_set_reverse_;
  /// Logical pages read (not written) while deciding this transaction's
  /// mutations; validated against concurrent commits' write sets.
  std::unordered_set<PageId> dependency_pages_;
  std::vector<PageId> shadow_pages_;       // allocated for COW this txn
  std::vector<PageId> new_logical_pages_;  // appended this txn
  bool open_ = true;
  std::uint64_t commit_seq_ = 0;
  ImportedDocument doc_;
  DocumentUpdater updater_;
};

/// Owns the published version chain head, the shadow-page bookkeeping and
/// reclamation. One manager per (database, document).
class TxnManager {
 public:
  /// `db` must outlive the manager. `canonical_doc` (optional) is the
  /// caller's document catalog, kept in sync with the latest commit so
  /// non-snapshot consumers observe the current version.
  ///
  /// The manager registers itself as the buffer's unpin listener so
  /// retired-but-pinned page versions are reclaimed as soon as their last
  /// pin drops (not merely on the next commit or snapshot release); the
  /// registration is released on destruction.
  TxnManager(Database* db, ImportedDocument* canonical_doc);
  ~TxnManager();

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Pins the current version for reading. Never blocks, never fails.
  std::shared_ptr<Snapshot> OpenSnapshot();

  /// Starts a writer over the current version. Multiple writers may be
  /// open simultaneously (optimistic; first commit wins).
  std::unique_ptr<WriterTxn> BeginWrite();

  std::uint64_t current_seq() const { return current_->seq; }
  const ImportedDocument& current_doc() const { return current_->doc; }
  std::shared_ptr<const DocumentVersion> current_version() const {
    return current_;
  }

  bool IsShadowPage(PageId page) const {
    return shadow_pages_.count(page) > 0;
  }

  std::size_t active_snapshots() const;
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t versions_retired() const { return versions_retired_; }
  std::uint64_t versions_reclaimed() const { return versions_reclaimed_; }
  /// Retired page versions still waiting for their last reader to drain.
  std::size_t retired_pending() const { return retired_.size(); }
  /// Commits that published a summary-free version although their base
  /// (head) version still had an exact synopsis — i.e. delta maintenance
  /// failed. Insert/delete-only workloads must keep this at zero.
  std::uint64_t summary_degrades() const { return summary_degrades_; }

  /// Durable form of the published root for SaveDatabase (deterministic:
  /// all lists sorted).
  VersionedRootState ExportState() const;
  /// Re-installs a saved root. Only valid on a freshly constructed
  /// manager (no snapshots, writers or retired versions yet); the
  /// canonical document and summary are taken from the database/loader.
  Status RestoreState(const VersionedRootState& state);

 private:
  friend class Snapshot;
  friend class WriterTxn;

  struct RetiredVersion {
    PageId physical = kInvalidPageId;
    std::uint64_t retired_at = 0;  // seq of the commit that replaced it
  };

  /// One published commit, for page-granular backward validation. The log
  /// is bounded (kCommitLogLimit); writers whose base predates the tail
  /// abort conservatively. Not persisted: a restored root has no open
  /// writers to validate against.
  struct CommitRecord {
    std::uint64_t seq = 0;
    std::vector<PageId> pages;  // logical pages the commit wrote
  };
  static constexpr std::size_t kCommitLogLimit = 256;

  /// True when every published commit with seq > `base_seq` is still in
  /// the log (published seqs are contiguous).
  bool CommitLogCoversSince(std::uint64_t base_seq) const {
    return !commit_log_.empty() && commit_log_.front().seq <= base_seq + 1;
  }

  Result<PageId> AllocateShadowPage();
  void ReleaseSnapshot(std::uint64_t seq);
  void Publish(std::shared_ptr<const DocumentVersion> version,
               std::vector<RetiredVersion> newly_retired);
  /// Frees retired versions no live snapshot can still reach. Pinned
  /// frames are skipped and retried on the next drain.
  void TryReclaim();

  Database* db_;
  ImportedDocument* canonical_doc_;
  std::shared_ptr<const DocumentVersion> current_;
  /// Every page ever used as a shadow (monotone; ids never return to
  /// logical use, so sweep-skip stays valid for all snapshots).
  std::unordered_set<PageId> shadow_pages_;
  std::vector<PageId> free_pages_;  // reclaimed shadow ids, reusable
  std::map<std::uint64_t, std::size_t> active_;  // snapshot seq -> count
  std::vector<RetiredVersion> retired_;
  std::deque<CommitRecord> commit_log_;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::uint64_t versions_retired_ = 0;
  std::uint64_t versions_reclaimed_ = 0;
  std::uint64_t summary_degrades_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_TXN_TXN_H_
