#include "xpath/parser.h"

#include <cctype>

namespace navpath {

std::string Predicate::ToString() const {
  std::string out = "[" + path->ToString();
  if (has_value) out += "=\"" + value + "\"";
  return out + "]";
}

std::string LocationStep::ToString() const {
  std::string out = std::string(AxisName(axis)) + "::" + test.ToString();
  for (const Predicate& pred : predicates) out += pred.ToString();
  return out;
}

std::string LocationPath::ToString() const {
  std::string out = absolute ? "/" : "";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += "/";
    out += steps[i].ToString();
  }
  return out;
}

std::string PathQuery::ToString() const {
  if (mode == Mode::kNodes) return paths.front().ToString();
  const char* fn = mode == Mode::kExists ? "exists" : "count";
  std::string out;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) out += "+";
    out += std::string(fn) + "(" + paths[i].ToString() + ")";
  }
  return out;
}

namespace {

class PathParser {
 public:
  PathParser(std::string_view text, TagRegistry* tags)
      : text_(text), tags_(tags) {}

  Result<LocationPath> ParsePathOnly() {
    NAVPATH_ASSIGN_OR_RETURN(LocationPath path, ParsePathExpr());
    SkipSpace();
    if (!AtEnd()) return Error("trailing characters after path");
    return path;
  }

  Result<PathQuery> ParseQueryExpr() {
    SkipSpace();
    PathQuery query;
    if (PeekWord("count")) {
      query.mode = PathQuery::Mode::kCount;
      for (;;) {
        SkipSpace();
        if (!MatchWord("count")) return Error("expected 'count'");
        SkipSpace();
        if (!Match('(')) return Error("expected '(' after count");
        NAVPATH_ASSIGN_OR_RETURN(LocationPath path, ParsePathExpr());
        SkipSpace();
        if (!Match(')')) return Error("expected ')' after count path");
        query.paths.push_back(std::move(path));
        SkipSpace();
        if (!Match('+')) break;
      }
    } else if (PeekWord("exists")) {
      // exists(path): true iff the path selects at least one node. An
      // existence query over several paths (exists(a)+exists(b)) is the
      // logical OR, mirroring count()'s additive form.
      query.mode = PathQuery::Mode::kExists;
      for (;;) {
        SkipSpace();
        if (!MatchWord("exists")) return Error("expected 'exists'");
        SkipSpace();
        if (!Match('(')) return Error("expected '(' after exists");
        NAVPATH_ASSIGN_OR_RETURN(LocationPath path, ParsePathExpr());
        SkipSpace();
        if (!Match(')')) return Error("expected ')' after exists path");
        query.paths.push_back(std::move(path));
        SkipSpace();
        if (!Match('+')) break;
      }
    } else {
      query.mode = PathQuery::Mode::kNodes;
      NAVPATH_ASSIGN_OR_RETURN(LocationPath path, ParsePathExpr());
      query.paths.push_back(std::move(path));
    }
    SkipSpace();
    if (!AtEnd()) return Error("trailing characters after query");
    return query;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Match(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Match2(char a, char b) {
    if (pos_ + 1 < text_.size() && text_[pos_] == a && text_[pos_ + 1] == b) {
      pos_ += 2;
      return true;
    }
    return false;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool PeekWord(std::string_view w) const {
    return text_.substr(pos_, w.size()) == w;
  }
  bool MatchWord(std::string_view w) {
    if (PeekWord(w)) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_) +
                              " in '" + std::string(text_) + "'");
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  Result<std::string_view> ParseName() {
    SkipSpace();
    const std::size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) {
      return Result<std::string_view>(Error("expected name"));
    }
    return text_.substr(start, pos_ - start);
  }

  /// Parses one step; `after_slash_slash` requests '//'-normalization.
  Status ParseStep(bool after_slash_slash, LocationPath* path) {
    SkipSpace();
    if (Match2('.', '.')) {
      if (after_slash_slash) {
        path->steps.push_back(
            LocationStep{Axis::kDescendantOrSelf, NodeTest::AnyNode(), {}});
      }
      path->steps.push_back(
          LocationStep{Axis::kParent, NodeTest::AnyNode(), {}});
      return Status::OK();
    }
    if (!AtEnd() && Peek() == '.' &&
        (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '.')) {
      ++pos_;
      if (after_slash_slash) {
        path->steps.push_back(
            LocationStep{Axis::kDescendantOrSelf, NodeTest::AnyNode(), {}});
      }
      path->steps.push_back(
          LocationStep{Axis::kSelf, NodeTest::AnyNode(), {}});
      return Status::OK();
    }

    Axis axis = Axis::kChild;
    bool explicit_axis = false;
    // following:: and preceding:: are rewritten into the standard XPath
    // identity  ancestor-or-self::node()/xxx-sibling::node()/
    // descendant-or-self::<test>  so the physical algebra needs no new
    // primitives.
    bool rewrite_sibling_closure = false;
    Axis sibling_axis = Axis::kFollowingSibling;
    if (Match('@')) {
      axis = Axis::kAttribute;
      explicit_axis = true;
    }
    // Look ahead for 'axisname::' (unless '@' already fixed the axis).
    const std::size_t save = pos_;
    if (!explicit_axis && !AtEnd() &&
        std::isalpha(static_cast<unsigned char>(Peek()))) {
      const auto name_result = ParseName();
      if (name_result.ok() && Match2(':', ':')) {
        if (*name_result == "following" || *name_result == "preceding") {
          rewrite_sibling_closure = true;
          sibling_axis = *name_result == "following"
                             ? Axis::kFollowingSibling
                             : Axis::kPrecedingSibling;
          axis = Axis::kDescendantOrSelf;
          explicit_axis = true;
        } else {
          const auto parsed = AxisFromName(*name_result);
          if (!parsed.has_value()) {
            return Error("unsupported axis '" + std::string(*name_result) +
                         "'");
          }
          axis = *parsed;
          explicit_axis = true;
        }
      } else {
        pos_ = save;
      }
    }

    NodeTest test;
    SkipSpace();
    if (Match('*')) {
      test = NodeTest::Wildcard();
    } else {
      NAVPATH_ASSIGN_OR_RETURN(const std::string_view name, ParseName());
      if (name == "node" && Match2('(', ')')) {
        test = NodeTest::AnyNode();
      } else {
        test = NodeTest::Name(std::string(name), tags_->Intern(name));
      }
    }

    if (after_slash_slash) {
      if (!explicit_axis) {
        // '//' + child step  ==  one descendant step.
        axis = Axis::kDescendant;
      } else {
        path->steps.push_back(
            LocationStep{Axis::kDescendantOrSelf, NodeTest::AnyNode(), {}});
      }
    }
    if (rewrite_sibling_closure) {
      path->steps.push_back(
          LocationStep{Axis::kAncestorOrSelf, NodeTest::AnyNode(), {}});
      path->steps.push_back(
          LocationStep{sibling_axis, NodeTest::AnyNode(), {}});
    }
    LocationStep step{axis, std::move(test), {}};
    SkipSpace();
    while (Match('[')) {
      NAVPATH_RETURN_NOT_OK(ParsePredicate(&step));
      SkipSpace();
    }
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  Status ParsePredicate(LocationStep* step) {
    Predicate pred;
    NAVPATH_ASSIGN_OR_RETURN(LocationPath inner, ParsePathExpr());
    if (inner.absolute) {
      return Error("predicates must contain relative paths");
    }
    pred.path = std::make_shared<LocationPath>(std::move(inner));
    SkipSpace();
    if (Match('=')) {
      SkipSpace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected string literal after '=' in predicate");
      }
      const char quote = Peek();
      ++pos_;
      const std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated string literal");
      }
      pred.has_value = true;
      pred.value = std::string(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
      SkipSpace();
    }
    if (!Match(']')) return Error("expected ']' after predicate");
    step->predicates.push_back(std::move(pred));
    return Status::OK();
  }

  Result<LocationPath> ParsePathExpr() {
    SkipSpace();
    LocationPath path;
    bool pending_slash_slash = false;
    if (Match2('/', '/')) {
      path.absolute = true;
      pending_slash_slash = true;
    } else if (Match('/')) {
      path.absolute = true;
      SkipSpace();
      if (AtEnd() || Peek() == ')' || Peek() == '+') {
        return path;  // "/" selects just the root context
      }
    } else {
      path.absolute = false;
    }
    for (;;) {
      NAVPATH_RETURN_NOT_OK(ParseStep(pending_slash_slash, &path));
      SkipSpace();
      if (Match2('/', '/')) {
        pending_slash_slash = true;
      } else if (Match('/')) {
        pending_slash_slash = false;
      } else {
        break;
      }
    }
    if (path.absolute && !path.steps.empty()) {
      // Absolute paths start at XPath's implicit document node, one level
      // above the root element. Our evaluation context is the root
      // element itself, so the first step is projected accordingly:
      // child::X from the document node selects the root element iff it
      // is an X (self::X), and descendant::X includes the root element
      // (descendant-or-self::X). Other first-step axes are degenerate at
      // the document node and keep their root-element meaning.
      LocationStep& first = path.steps.front();
      if (first.axis == Axis::kChild) {
        first.axis = Axis::kSelf;
      } else if (first.axis == Axis::kDescendant) {
        first.axis = Axis::kDescendantOrSelf;
      }
    }
    return path;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  TagRegistry* tags_;
};

}  // namespace

Result<LocationPath> ParsePath(std::string_view text, TagRegistry* tags) {
  NAVPATH_CHECK(tags != nullptr);
  PathParser parser(text, tags);
  return parser.ParsePathOnly();
}

Result<PathQuery> ParseQuery(std::string_view text, TagRegistry* tags) {
  NAVPATH_CHECK(tags != nullptr);
  PathParser parser(text, tags);
  return parser.ParseQueryExpr();
}

}  // namespace navpath
