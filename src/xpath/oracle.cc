#include "xpath/oracle.h"

#include <algorithm>
#include <vector>
#include <unordered_set>

namespace navpath {
namespace {

void CollectDescendants(const DomTree& tree, DomNodeId root, bool with_self,
                        const NodeTest& test, std::vector<DomNodeId>* out) {
  std::vector<DomNodeId> stack;
  if (with_self) {
    stack.push_back(root);
  } else {
    // Push children last-to-first so the first child is popped first.
    for (DomNodeId c = tree.node(root).last_child; c != kNilDomNode;
         c = tree.node(c).prev_sibling) {
      stack.push_back(c);
    }
  }
  while (!stack.empty()) {
    const DomNodeId n = stack.back();
    stack.pop_back();
    if (test.Matches(tree.node(n).tag)) out->push_back(n);
    for (DomNodeId c = tree.node(n).last_child; c != kNilDomNode;
         c = tree.node(c).prev_sibling) {
      stack.push_back(c);
    }
  }
}

}  // namespace

namespace {

bool PredicateHolds(const DomTree& tree, DomNodeId node,
                    const Predicate& pred) {
  const std::vector<DomNodeId> results =
      OracleEvaluate(tree, *pred.path, node);
  if (!pred.has_value) return !results.empty();
  for (const DomNodeId r : results) {
    if (tree.node(r).text == pred.value) return true;
  }
  return false;
}

}  // namespace

std::vector<DomNodeId> OracleStep(const DomTree& tree, DomNodeId context,
                                  const LocationStep& step) {
  std::vector<DomNodeId> out;
  const DomNode& ctx = tree.node(context);
  const NodeTest& test = step.test;
  if (ctx.kind == DomNodeKind::kAttribute) {
    // Attributes have no children, descendants, siblings or attributes;
    // only self, parent and ancestor axes yield nodes.
    switch (step.axis) {
      case Axis::kSelf:
      case Axis::kDescendantOrSelf:
        if (test.Matches(ctx.tag)) out.push_back(context);
        break;
      case Axis::kParent:
        if (test.Matches(tree.node(ctx.parent).tag)) {
          out.push_back(ctx.parent);
        }
        break;
      case Axis::kAncestor:
        for (DomNodeId a = ctx.parent; a != kNilDomNode;
             a = tree.node(a).parent) {
          if (test.Matches(tree.node(a).tag)) out.push_back(a);
        }
        break;
      case Axis::kAncestorOrSelf:
        if (test.Matches(ctx.tag)) out.push_back(context);
        for (DomNodeId a = ctx.parent; a != kNilDomNode;
             a = tree.node(a).parent) {
          if (test.Matches(tree.node(a).tag)) out.push_back(a);
        }
        break;
      default:
        break;
    }
    for (const Predicate& pred : step.predicates) {
      std::erase_if(out, [&](DomNodeId n) {
        return !PredicateHolds(tree, n, pred);
      });
    }
    return out;
  }
  switch (step.axis) {
    case Axis::kAttribute:
      for (DomNodeId a = ctx.first_attr; a != kNilDomNode;
           a = tree.node(a).next_sibling) {
        if (test.Matches(tree.node(a).tag)) out.push_back(a);
      }
      break;
    case Axis::kSelf:
      if (test.Matches(ctx.tag)) out.push_back(context);
      break;
    case Axis::kChild:
      for (DomNodeId c = ctx.first_child; c != kNilDomNode;
           c = tree.node(c).next_sibling) {
        if (test.Matches(tree.node(c).tag)) out.push_back(c);
      }
      break;
    case Axis::kParent:
      if (ctx.parent != kNilDomNode &&
          test.Matches(tree.node(ctx.parent).tag)) {
        out.push_back(ctx.parent);
      }
      break;
    case Axis::kDescendant:
      CollectDescendants(tree, context, /*with_self=*/false, test, &out);
      break;
    case Axis::kDescendantOrSelf:
      CollectDescendants(tree, context, /*with_self=*/true, test, &out);
      break;
    case Axis::kAncestor:
      for (DomNodeId a = ctx.parent; a != kNilDomNode;
           a = tree.node(a).parent) {
        if (test.Matches(tree.node(a).tag)) out.push_back(a);
      }
      break;
    case Axis::kAncestorOrSelf:
      for (DomNodeId a = context; a != kNilDomNode;
           a = tree.node(a).parent) {
        if (test.Matches(tree.node(a).tag)) out.push_back(a);
      }
      break;
    case Axis::kFollowingSibling:
      for (DomNodeId s = ctx.next_sibling; s != kNilDomNode;
           s = tree.node(s).next_sibling) {
        if (test.Matches(tree.node(s).tag)) out.push_back(s);
      }
      break;
    case Axis::kPrecedingSibling:
      for (DomNodeId s = ctx.prev_sibling; s != kNilDomNode;
           s = tree.node(s).prev_sibling) {
        if (test.Matches(tree.node(s).tag)) out.push_back(s);
      }
      break;
  }
  for (const Predicate& pred : step.predicates) {
    std::erase_if(out, [&](DomNodeId n) {
      return !PredicateHolds(tree, n, pred);
    });
  }
  return out;
}

std::vector<DomNodeId> OracleEvaluate(const DomTree& tree,
                                      const LocationPath& path,
                                      DomNodeId context) {
  std::vector<DomNodeId> current;
  current.push_back(path.absolute ? tree.root() : context);
  for (const LocationStep& step : path.steps) {
    std::vector<DomNodeId> next;
    std::unordered_set<DomNodeId> seen;
    for (const DomNodeId ctx : current) {
      for (const DomNodeId n : OracleStep(tree, ctx, step)) {
        if (seen.insert(n).second) next.push_back(n);
      }
    }
    current = std::move(next);
  }
  std::sort(current.begin(), current.end(),
            [&](DomNodeId a, DomNodeId b) {
              return tree.node(a).order < tree.node(b).order;
            });
  return current;
}

std::uint64_t OracleCount(const DomTree& tree, const PathQuery& query,
                          DomNodeId context) {
  std::uint64_t total = 0;
  for (const LocationPath& path : query.paths) {
    const std::size_t matched = OracleEvaluate(tree, path, context).size();
    // exists(a)+exists(b) is a logical OR: 1 iff any operand is non-empty.
    if (query.mode == PathQuery::Mode::kExists) {
      if (matched > 0) return 1;
    } else {
      total += matched;
    }
  }
  return total;
}

}  // namespace navpath
