// Parser for the supported XPath fragment.
//
// Grammar (whitespace insignificant):
//   query    := count ('+' count)*            -- count mode
//             | path                          -- node mode
//   count    := 'count' '(' path ')'
//   path     := '/' relative? | '//' relative | relative
//   relative := step (('/' | '//') step)*
//   step     := (axisname '::')? nodetest | '..' | '.'
//   nodetest := NAME | '*' | 'node()'
//
// '//' is normalized: '//' before a child-axis name test becomes a single
// descendant step (XPath-equivalent and one step shorter); otherwise it
// expands to descendant-or-self::node().
#ifndef NAVPATH_XPATH_PARSER_H_
#define NAVPATH_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/location_path.h"

namespace navpath {

/// Parses a single location path. Names are interned in `tags`.
Result<LocationPath> ParsePath(std::string_view text, TagRegistry* tags);

/// Parses a full query (path or sum of counts).
Result<PathQuery> ParseQuery(std::string_view text, TagRegistry* tags);

}  // namespace navpath

#endif  // NAVPATH_XPATH_PARSER_H_
