// Reference evaluator over the in-memory DOM.
//
// Implements XPath node-set semantics (deduplicated, document order)
// directly on the DomTree. It performs no I/O and no clustering: it is the
// ground truth the paged operators are tested against, never part of a
// measured plan.
#ifndef NAVPATH_XPATH_ORACLE_H_
#define NAVPATH_XPATH_ORACLE_H_

#include <vector>

#include "common/status.h"
#include "xml/dom.h"
#include "xpath/location_path.h"

namespace navpath {

/// Nodes reachable from `context` via `step`, in document order, deduped.
std::vector<DomNodeId> OracleStep(const DomTree& tree, DomNodeId context,
                                  const LocationStep& step);

/// Result node set of `path` from `context` (ignored for absolute paths,
/// which start at the root), in document order.
std::vector<DomNodeId> OracleEvaluate(const DomTree& tree,
                                      const LocationPath& path,
                                      DomNodeId context);

/// count()/exists()-mode evaluation of a query (exists: 1 iff any
/// operand path selects a node).
std::uint64_t OracleCount(const DomTree& tree, const PathQuery& query,
                          DomNodeId context);

}  // namespace navpath

#endif  // NAVPATH_XPATH_ORACLE_H_
