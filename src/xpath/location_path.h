// Location-path AST (Sec. 4.1).
//
// A location path is a sequence of steps (axis + node test). Node tests
// are tag subsets: a name test, the wildcard `*`, or `node()`. This is the
// XPath fragment the paper's physical algebra covers; the evaluation
// queries (Tab. 2) additionally use count(...) aggregation, modeled by
// PathQuery.
#ifndef NAVPATH_XPATH_LOCATION_PATH_H_
#define NAVPATH_XPATH_LOCATION_PATH_H_

#include <memory>
#include <string>
#include <vector>

#include "store/axis.h"
#include "xml/tag_registry.h"

namespace navpath {

struct NodeTest {
  enum class Kind { kName, kWildcard, kAnyNode };

  Kind kind = Kind::kAnyNode;
  std::string name;  // kName only
  TagId tag = 0;     // resolved id for kName

  static NodeTest Name(std::string n, TagId tag) {
    return NodeTest{Kind::kName, std::move(n), tag};
  }
  static NodeTest Wildcard() { return NodeTest{Kind::kWildcard, "*", 0}; }
  static NodeTest AnyNode() { return NodeTest{Kind::kAnyNode, "node()", 0}; }

  bool Matches(TagId t) const {
    return kind != Kind::kName || tag == t;
  }

  std::string ToString() const { return name; }
};

struct LocationPath;

/// A step qualifier `[rel-path]` or `[rel-path = "literal"]`: keeps a
/// candidate node iff the relative path yields any node (whose string
/// value equals the literal, when one is given). Nested predicates are
/// allowed. Predicates are evaluated by the executor *around* the paper's
/// physical algebra (Sec. 5: the path operators "are part of a more
/// expressive algebra"); the paper's own measurements exclude them.
struct Predicate {
  std::shared_ptr<LocationPath> path;  // relative
  bool has_value = false;
  std::string value;

  std::string ToString() const;
};

struct LocationStep {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<Predicate> predicates;

  std::string ToString() const;
};

struct LocationPath {
  /// Absolute paths start at the document root; relative paths start at
  /// the caller-supplied context node.
  bool absolute = true;
  std::vector<LocationStep> steps;

  std::size_t length() const { return steps.size(); }
  bool HasPredicates() const {
    for (const LocationStep& step : steps) {
      if (!step.predicates.empty()) return true;
    }
    return false;
  }
  std::string ToString() const;
};

/// A benchmark-style query: the node set of one path, the sum of count()
/// over several paths (XMark Q7 adds three counts), or an existence test
/// exists(path) returning 1/0 (answerable from the path summary without
/// touching a cluster when the path is predicate-free).
struct PathQuery {
  enum class Mode { kNodes, kCount, kExists };

  Mode mode = Mode::kNodes;
  std::vector<LocationPath> paths;

  std::string ToString() const;
};

}  // namespace navpath

#endif  // NAVPATH_XPATH_LOCATION_PATH_H_
