// Named metrics: counters, gauges, and HDR-style histograms.
//
// Generalizes the fixed-field common/metrics struct: components register
// metrics by name at runtime, benchmarks snapshot a registry per sweep
// point, and histograms answer quantile queries (p50/p95/p99 of simulated
// latencies) with bounded memory. Everything here is measurement-side
// only — recording never touches the simulated clock, so instrumented and
// uninstrumented runs have identical simulated costs.
#ifndef NAVPATH_OBSERVE_METRICS_REGISTRY_H_
#define NAVPATH_OBSERVE_METRICS_REGISTRY_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace navpath {

/// Log-linear histogram in the spirit of HdrHistogram: exact buckets for
/// values < 64, then 32 sub-buckets per power of two (relative error
/// ≤ 3.2%). Handles the full uint64 range; quantiles report the upper
/// bound of the containing bucket, so they are deterministic and never
/// underestimate.
class Histogram {
 public:
  void Record(std::uint64_t value);
  void RecordN(std::uint64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  /// Value at quantile q in [0, 1] (q=0.5 is the median). Returns the
  /// upper bound of the bucket containing the q-th recorded value.
  std::uint64_t ValueAtQuantile(double q) const;

  void Reset();
  void Merge(const Histogram& other);

 private:
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;  // 32
  static constexpr std::uint64_t kLinearLimit = 2 * kSubCount;  // 64

  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(std::size_t index);

  std::vector<std::uint64_t> buckets_;  // grown lazily
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// Point-in-time summary of one histogram (what benches serialize).
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
};

/// Snapshot of a whole registry, detached from the live metrics.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSummary> histograms;

  /// Value of counter `name`, or `fallback` when it was never recorded
  /// (lets benches/tests read snapshots without caring which policies
  /// touched which counters).
  std::uint64_t CounterOr(const std::string& name,
                          std::uint64_t fallback = 0) const;
  /// Summary of histogram `name`, or nullptr when never recorded.
  const HistogramSummary* FindHistogram(const std::string& name) const;

  std::string ToString() const;
};

/// Name-addressed metric store. Lookup creates on first use; iteration
/// order is the lexicographic name order, so snapshots are deterministic.
class MetricsRegistry {
 public:
  std::uint64_t& Counter(const std::string& name) { return counters_[name]; }
  double& Gauge(const std::string& name) { return gauges_[name]; }
  Histogram& GetHistogram(const std::string& name) {
    return histograms_[name];
  }

  /// Summarizes every metric (histograms as p50/p95/p99 summaries).
  RegistrySnapshot Snapshot() const;

  /// Zeroes all counters/gauges and empties all histograms (the names
  /// stay registered).
  void Reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

HistogramSummary Summarize(const std::string& name, const Histogram& h);

}  // namespace navpath

#endif  // NAVPATH_OBSERVE_METRICS_REGISTRY_H_
