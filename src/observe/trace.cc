#include "observe/trace.h"

#include <cinttypes>
#include <cstdio>

namespace navpath {

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kOperator:
      return "operator";
    case TraceCategory::kScheduler:
      return "scheduler";
    case TraceCategory::kBuffer:
      return "buffer";
    case TraceCategory::kDisk:
      return "disk";
    case TraceCategory::kQuery:
      return "query";
  }
  return "?";
}

Tracer::Tracer(const SimClock* clock, const TracerOptions& options)
    : clock_(clock), options_(options) {
  NAVPATH_CHECK(clock != nullptr);
  track_names_[kTrackDisk] = "disk";
  track_names_[kTrackElevator] = "elevator queue";
  track_names_[kTrackBuffer] = "buffer";
  track_names_[kTrackScheduler] = "scheduler";
  track_names_[kTrackQueryBase] = "operators";
}

bool Tracer::Admit(TraceCategory category) {
  if (!enabled(category)) return false;
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return false;
  }
  return true;
}

std::uint32_t Tracer::Intern(std::string_view name) {
  const auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), idx);
  return idx;
}

void Tracer::Record(TraceCategory category, char phase, std::uint32_t track,
                    std::string_view name, SimTime ts, SimTime dur,
                    std::initializer_list<TraceArg> args) {
  Event event;
  event.name = Intern(name);
  event.track = track;
  event.ts = ts;
  event.dur = dur;
  event.category = static_cast<std::uint8_t>(category);
  event.phase = phase;
  event.argc = 0;
  for (const TraceArg& arg : args) {
    if (event.argc >= event.args.size()) break;
    event.args[event.argc++] = arg;
  }
  events_.push_back(event);
}

void Tracer::Span(TraceCategory category, std::uint32_t track,
                  std::string_view name, SimTime begin, SimTime end,
                  std::initializer_list<TraceArg> args) {
  if (!Admit(category)) return;
  NAVPATH_DCHECK(end >= begin);
  Record(category, 'X', track, name, begin, end - begin, args);
}

void Tracer::Instant(TraceCategory category, std::uint32_t track,
                     std::string_view name, SimTime at,
                     std::initializer_list<TraceArg> args) {
  if (!Admit(category)) return;
  Record(category, 'i', track, name, at, 0, args);
}

void Tracer::SetTrackName(std::uint32_t track, std::string name) {
  track_names_[track] = std::move(name);
}

void Tracer::Clear() {
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  char buf[160];
  bool first = true;
  auto separate = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& [track, name] : track_names_) {
    separate();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%" PRIu32 ",\"args\":{\"name\":\"",
                  track);
    out += buf;
    for (const char c : name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"}}";
  }
  for (const Event& event : events_) {
    separate();
    // Timestamps are microseconds in the trace_event format; three decimal
    // places preserve the simulator's nanosecond resolution exactly.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%" PRIu64 ".%03u",
                  names_[event.name].c_str(),
                  TraceCategoryName(static_cast<TraceCategory>(event.category)),
                  event.phase, event.ts / 1000,
                  static_cast<unsigned>(event.ts % 1000));
    out += buf;
    if (event.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%" PRIu64 ".%03u",
                    event.dur / 1000, static_cast<unsigned>(event.dur % 1000));
      out += buf;
    }
    if (event.phase == 'i') out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%" PRIu32,
                  event.track);
    out += buf;
    if (event.argc > 0) {
      out += ",\"args\":{";
      for (std::uint8_t i = 0; i < event.argc; ++i) {
        if (i > 0) out += ',';
        std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                      event.args[i].key, event.args[i].value);
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace navpath
