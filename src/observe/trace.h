// Span tracer over the simulated clock (the observability subsystem's
// event backbone).
//
// Every span and instant is stamped with *simulated* time read from the
// SimClock, never charged to it: enabling tracing changes what a run
// reports, not what it costs. Because the simulation is deterministic, the
// trace of a run is deterministic too — identical seeds produce
// byte-identical trace JSON, so traces can be diffed like any other
// benchmark artifact.
//
// Output is Chrome trace_event JSON ("X" complete events and "i" instants
// with microsecond timestamps), directly loadable in Perfetto or
// chrome://tracing. Tracks (tid) separate the disk, the elevator queue,
// the buffer manager, and one operator lane per query.
//
// Compile-time elision: configuring with -DNAVPATH_OBSERVE=OFF defines
// NAVPATH_OBSERVE_DISABLED, the NAVPATH_TRACE macro expands to nothing,
// and no hot-path object references any symbol of this library.
#ifndef NAVPATH_OBSERVE_TRACE_H_
#define NAVPATH_OBSERVE_TRACE_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/sim_clock.h"

namespace navpath {

/// Event categories, maskable so heavy producers (per-pull operator spans)
/// can be disabled independently of the cheap ones.
enum class TraceCategory : unsigned {
  kOperator = 1u << 0,   // one span per instrumented operator pull
  kScheduler = 1u << 1,  // XSchedule cluster entries, yields, blocks
  kBuffer = 1u << 2,     // fix misses, evictions, prefetch waits
  kDisk = 1u << 3,       // seek/transfer spans, submissions, queue
  kQuery = 1u << 4,      // per-query lifecycle marks
};

inline constexpr unsigned kAllTraceCategories = 0x1f;

const char* TraceCategoryName(TraceCategory category);

// Well-known tracks (Chrome trace "tid"s). Operator spans of query with
// owner id `o` land on kTrackQueryBase + o (owner 0 = standalone).
inline constexpr std::uint32_t kTrackDisk = 1;
inline constexpr std::uint32_t kTrackElevator = 2;
inline constexpr std::uint32_t kTrackBuffer = 3;
inline constexpr std::uint32_t kTrackScheduler = 4;
inline constexpr std::uint32_t kTrackQueryBase = 10;

struct TracerOptions {
  /// Bitmask of TraceCategory values to record.
  unsigned categories = kAllTraceCategories;
  /// Hard cap on recorded events; once reached, further events are counted
  /// in dropped_events() but not stored (bounded memory on huge runs).
  std::size_t max_events = 4u * 1024 * 1024;
};

/// A numeric event argument ({"page": 42} in the JSON output).
struct TraceArg {
  const char* key;
  std::uint64_t value;
};

class Tracer {
 public:
  explicit Tracer(const SimClock* clock, const TracerOptions& options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled(TraceCategory category) const {
    return (options_.categories & static_cast<unsigned>(category)) != 0;
  }

  /// Records a complete span [begin, end] (simulated nanoseconds). Spans
  /// may be recorded out of timestamp order; viewers sort by ts.
  void Span(TraceCategory category, std::uint32_t track,
            std::string_view name, SimTime begin, SimTime end,
            std::initializer_list<TraceArg> args = {});

  /// Records an instant event at `at`.
  void Instant(TraceCategory category, std::uint32_t track,
               std::string_view name, SimTime at,
               std::initializer_list<TraceArg> args = {});

  /// Names a track in the viewer (thread_name metadata). The well-known
  /// tracks above are pre-named; use this for query lanes.
  void SetTrackName(std::uint32_t track, std::string name);

  std::size_t event_count() const { return events_.size(); }
  std::uint64_t dropped_events() const { return dropped_; }

  /// Drops all recorded events (track names are kept). Called when a
  /// measurement window resets so trace timestamps match the fresh clock.
  void Clear();

  /// Serializes everything recorded so far as a Chrome trace_event JSON
  /// document ({"traceEvents": [...]}). Deterministic: depends only on the
  /// recorded events, which depend only on the simulated run.
  std::string ToJson() const;

 private:
  struct Event {
    std::uint32_t name;  // index into names_
    std::uint32_t track;
    SimTime ts;
    SimTime dur;  // spans only
    std::uint8_t category;
    char phase;  // 'X' span, 'i' instant
    std::uint8_t argc;
    std::array<TraceArg, 2> args;
  };

  bool Admit(TraceCategory category);
  std::uint32_t Intern(std::string_view name);
  void Record(TraceCategory category, char phase, std::uint32_t track,
              std::string_view name, SimTime ts, SimTime dur,
              std::initializer_list<TraceArg> args);

  const SimClock* clock_;
  TracerOptions options_;
  std::vector<Event> events_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_index_;
  std::map<std::uint32_t, std::string> track_names_;
  std::uint64_t dropped_ = 0;
};

}  // namespace navpath

// Hot-path hook: expands to a guarded call on an enabled build and to
// nothing when observability is compiled out, so instrumented call sites
// stay free of observe symbols under -DNAVPATH_OBSERVE=OFF.
//
//   NAVPATH_TRACE(tracer_, Span(TraceCategory::kDisk, kTrackDisk, "seek",
//                               t0, t1, {{"page", id}}));
#if NAVPATH_OBSERVE_ENABLED
#define NAVPATH_TRACE(tracer, ...)                            \
  do {                                                        \
    ::navpath::Tracer* navpath_trace_tracer = (tracer);       \
    if (navpath_trace_tracer != nullptr) {                    \
      navpath_trace_tracer->__VA_ARGS__;                      \
    }                                                         \
  } while (false)
#else
#define NAVPATH_TRACE(tracer, ...) \
  do {                             \
  } while (false)
#endif

#endif  // NAVPATH_OBSERVE_TRACE_H_
