// EXPLAIN ANALYZE: estimated-vs-actual report for one executed query.
//
// The estimate side comes from the cost model (per-step cardinalities,
// clusters touched, total cost); the actual side comes from the
// PlanProfiler (per-step rows, per-operator pulls/self/total simulated
// time, I/O waits) and the run's metrics window. The report makes the
// paper's Sec. 5/6 claims inspectable per query: where the reordering
// saved time, and whether the selectivity estimates that drove it held.
#ifndef NAVPATH_OBSERVE_EXPLAIN_H_
#define NAVPATH_OBSERVE_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "observe/profile.h"

namespace navpath {

/// One location-path step: estimate vs. measurement.
struct ExplainStep {
  std::string description;          // "child::b", "descendant-or-self::*"
  double estimated_rows = 0;        // cost model cardinality after this step
  std::uint64_t actual_rows = 0;    // rows observed crossing this step
  /// Where the estimate came from: "summary-exact" (path-summary synopsis,
  /// the estimate is an exact count) or "stats-estimate" (DocumentStats
  /// independence-assumption model). Empty when no estimate was computed.
  std::string estimate_source;
};

/// One physical operator in the executed plan.
struct ExplainOperator {
  std::string name;
  int step = -1;
  std::uint64_t pulls = 0;
  std::uint64_t rows = 0;
  SimTime total_time = 0;
  SimTime self_time = 0;
  SimTime total_io_wait = 0;
  SimTime self_io_wait = 0;
};

/// Full report for one path query execution.
struct PathExplain {
  std::string query;                // normalized path text
  std::string plan_kind;            // "simple", "xschedule", "xscan"

  std::vector<ExplainStep> steps;
  std::vector<ExplainOperator> operators;

  double estimated_cost = 0;            // cost-model units
  double estimated_clusters_touched = 0;
  std::uint64_t actual_clusters_entered = 0;

  std::uint64_t result_count = 0;
  SimTime total_time = 0;               // run-window simulated time
  SimTime io_wait_time = 0;             // run-window I/O wait
  std::uint64_t disk_reads = 0;
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;
  bool fallback_activated = false;
  /// The path summary proved this path empty; the plan collapsed to an
  /// empty scan and never touched a cluster.
  bool summary_pruned = false;

  /// Human-readable report, one line per step and per operator.
  std::string ToString() const;
};

/// Per-query aggregation across a workload run.
struct QueryExplain {
  std::vector<PathExplain> paths;  // one per path in the query (usually 1)

  // Set when the serving layer re-planned this query to a cheaper tier
  // (overload degradation) before it ran; the per-path plan_kind then
  // reports the degraded plan, not the one the client asked for.
  bool degraded = false;

  std::string ToString() const;
};

/// Formats simulated nanoseconds as a human-readable duration ("1.234 ms").
std::string FormatSimTime(SimTime t);

}  // namespace navpath

#endif  // NAVPATH_OBSERVE_EXPLAIN_H_
