#include "observe/explain.h"

#include <cinttypes>
#include <cstdio>

namespace navpath {

std::string FormatSimTime(SimTime t) {
  char buf[64];
  if (t >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f s",
                  static_cast<double>(t) / 1e9);
  } else if (t >= 1'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f ms",
                  static_cast<double>(t) / 1e6);
  } else if (t >= 1'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f us",
                  static_cast<double>(t) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " ns", t);
  }
  return buf;
}

std::string PathExplain::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "EXPLAIN ANALYZE %s [plan=%s]\n",
                query.c_str(), plan_kind.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  results=%" PRIu64 "  time=%s  io_wait=%s (%.1f%%)\n",
                result_count, FormatSimTime(total_time).c_str(),
                FormatSimTime(io_wait_time).c_str(),
                total_time == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(io_wait_time) /
                          static_cast<double>(total_time));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  cost est=%.1f  clusters est=%.1f actual=%" PRIu64
                "  reads=%" PRIu64 "  buffer hit/miss=%" PRIu64 "/%" PRIu64
                "%s\n",
                estimated_cost, estimated_clusters_touched,
                actual_clusters_entered, disk_reads, buffer_hits,
                buffer_misses, fallback_activated ? "  [FALLBACK]" : "");
  out += buf;
  if (summary_pruned) out += "  [SUMMARY-PRUNED: provably empty]\n";
  out += "  steps (est rows -> actual rows):\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ExplainStep& s = steps[i];
    std::snprintf(buf, sizeof(buf),
                  "    #%zu %-28s est=%-10.1f actual=%" PRIu64 "%s%s\n",
                  i, s.description.c_str(), s.estimated_rows, s.actual_rows,
                  s.estimate_source.empty() ? "" : "  src=",
                  s.estimate_source.c_str());
    out += buf;
  }
  out += "  operators (self/total simulated time):\n";
  for (const ExplainOperator& op : operators) {
    std::snprintf(buf, sizeof(buf),
                  "    %-28s pulls=%-8" PRIu64 " rows=%-8" PRIu64
                  " self=%-12s total=%-12s io=%s\n",
                  op.name.c_str(), op.pulls, op.rows,
                  FormatSimTime(op.self_time).c_str(),
                  FormatSimTime(op.total_time).c_str(),
                  FormatSimTime(op.total_io_wait).c_str());
    out += buf;
  }
  return out;
}

std::string QueryExplain::ToString() const {
  std::string out;
  if (degraded) out += "DEGRADED: served at reduced fidelity tier\n";
  for (const PathExplain& path : paths) out += path.ToString();
  return out;
}

}  // namespace navpath
