// Per-operator execution profile backing EXPLAIN ANALYZE.
//
// A PlanProfiler is owned by a PathPlan (when PlanOptions.profile is set)
// and fed by the non-virtual PathOperator::Pull() wrapper: Enter/Exit
// bracket each pull with simulated-clock readings, and a call stack
// attributes elapsed time to self vs. total per operator — exactly the
// self/total split of a sampling profiler, but exact, because the clock
// is the simulation itself. I/O wait is attributed the same way from the
// clock's io_wait_time() component, so a plan interleaved by the workload
// executor still measures only the waits occurring inside its own pulls.
//
// Header-only and observe-layer: everything here reads the clock, nothing
// charges it.
#ifndef NAVPATH_OBSERVE_PROFILE_H_
#define NAVPATH_OBSERVE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/sim_clock.h"

namespace navpath {

/// Accumulated measurements for one operator slot in a plan.
struct OperatorProfile {
  std::string name;       // e.g. "XStep_2(child::b)"
  int step = -1;          // location-path step this operator evaluates, or -1
  std::uint64_t pulls = 0;
  std::uint64_t rows = 0;          // pulls that produced a tuple
  SimTime total_time = 0;          // simulated time inside this subtree
  SimTime self_time = 0;           // total minus time inside child pulls
  SimTime total_io_wait = 0;       // io-wait component of total_time
  SimTime self_io_wait = 0;        // io-wait component of self_time
};

class PlanProfiler {
 public:
  /// Registers one operator (bottom-up, during BuildPlan) and returns its
  /// slot index for Enter/Exit.
  std::size_t Register(std::string name, int step) {
    operators_.push_back(OperatorProfile{std::move(name), step});
    return operators_.size() - 1;
  }

  void Enter(std::size_t slot, SimTime now, SimTime io_now) {
    Flush(now, io_now);
    stack_.push_back(slot);
    ++operators_[slot].pulls;
  }

  void Exit(std::size_t slot, SimTime now, SimTime io_now, bool produced) {
    Flush(now, io_now);
    NAVPATH_DCHECK(!stack_.empty() && stack_.back() == slot);
    stack_.pop_back();
    OperatorProfile& op = operators_[slot];
    if (produced) ++op.rows;
  }

  /// Records one result row landing on location-path step `step` (actual
  /// per-step cardinality, the counterpart of the cost model's estimate).
  void CountStepRow(std::size_t step) {
    if (step < step_rows.size()) ++step_rows[step];
  }

  const std::vector<OperatorProfile>& operators() const { return operators_; }

  /// Actual rows per location-path step; sized by BuildPlan to the path
  /// length + 1 (slot 0 is the context step).
  std::vector<std::uint64_t> step_rows;

  /// Distinct cluster switches performed while this plan executed; wired
  /// into ClusterContext by BuildPlan.
  std::uint64_t clusters_entered = 0;

 private:
  // Charges the clock delta since the previous Enter/Exit to the current
  // stack: self time to the top, total time to every frame.
  void Flush(SimTime now, SimTime io_now) {
    const SimTime dt = now - last_now_;
    const SimTime dio = io_now - last_io_;
    last_now_ = now;
    last_io_ = io_now;
    if (stack_.empty() || (dt == 0 && dio == 0)) return;
    OperatorProfile& top = operators_[stack_.back()];
    top.self_time += dt;
    top.self_io_wait += dio;
    for (const std::size_t slot : stack_) {
      operators_[slot].total_time += dt;
      operators_[slot].total_io_wait += dio;
    }
  }

  std::vector<OperatorProfile> operators_;
  std::vector<std::size_t> stack_;
  SimTime last_now_ = 0;
  SimTime last_io_ = 0;
};

}  // namespace navpath

// Counts an actual row for location-path step `step_expr` on the profiler
// reachable through `shared_expr` (a PlanSharedState*), but only when
// `inst_expr` (a PathInstance) is anchored at the path start: speculative
// seeds are left-incomplete, so their extensions are hypotheses, not rows —
// XAssembly counts those if and when its closure validates them. Compiles
// to nothing when observability is disabled.
#if NAVPATH_OBSERVE_ENABLED
#define NAVPATH_PROFILE_STEP_ROW(shared_expr, step_expr, inst_expr)   \
  do {                                                                \
    ::navpath::PlanProfiler* navpath_profiler = (shared_expr)->profiler; \
    if (navpath_profiler != nullptr && (inst_expr).left_complete() && \
        (inst_expr).left.step == 0) {                                 \
      navpath_profiler->CountStepRow(                                 \
          static_cast<std::size_t>(step_expr));                       \
    }                                                                 \
  } while (false)
#else
#define NAVPATH_PROFILE_STEP_ROW(shared_expr, step_expr, inst_expr) \
  do {                                                              \
  } while (false)
#endif

#endif  // NAVPATH_OBSERVE_PROFILE_H_
