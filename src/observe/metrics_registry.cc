#include "observe/metrics_registry.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace navpath {

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value < kLinearLimit) return static_cast<std::size_t>(value);
  // For value >= 64: octave = index of the highest set bit; within the
  // octave, the top kSubBits bits below the leading bit select one of the
  // 32 sub-buckets.
  const int high = 63 - std::countl_zero(value);
  const std::uint64_t sub = (value >> (high - kSubBits)) - kSubCount;
  return static_cast<std::size_t>(
      kLinearLimit + (high - (kSubBits + 1)) * kSubCount + sub);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index < kLinearLimit) return static_cast<std::uint64_t>(index);
  const std::size_t rel = index - kLinearLimit;
  const int high = static_cast<int>(rel / kSubCount) + kSubBits + 1;
  const std::uint64_t sub = rel % kSubCount + kSubCount;
  // Upper bound: last value whose top bits match this sub-bucket.
  const int shift = high - kSubBits;
  return (sub << shift) + ((1ull << shift) - 1);
}

void Histogram::Record(std::uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::size_t index = BucketIndex(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[index] += count;
  count_ += count;
  sum_ += value * count;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

double Histogram::Mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target value, 1-based; q=0 still needs the first value.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t bound = BucketUpperBound(i);
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::uint64_t>::max();
  max_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

HistogramSummary Summarize(const std::string& name, const Histogram& h) {
  HistogramSummary s;
  s.name = name;
  s.count = h.count();
  s.min = h.min();
  s.max = h.max();
  s.mean = h.Mean();
  s.p50 = h.ValueAtQuantile(0.50);
  s.p95 = h.ValueAtQuantile(0.95);
  s.p99 = h.ValueAtQuantile(0.99);
  return s;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    snap.counters.emplace_back(name, value);
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    snap.gauges.emplace_back(name, value);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(Summarize(name, h));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : gauges_) value = 0;
  for (auto& [name, h] : histograms_) h.Reset();
}

std::uint64_t RegistrySnapshot::CounterOr(const std::string& name,
                                          std::uint64_t fallback) const {
  for (const auto& [counter, value] : counters) {
    if (counter == name) return value;
  }
  return fallback;
}

const HistogramSummary* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSummary& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string RegistrySnapshot::ToString() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%s: %" PRIu64 "\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s: %.3f\n", name.c_str(), value);
    out += buf;
  }
  for (const HistogramSummary& h : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s: count=%" PRIu64 " min=%" PRIu64 " mean=%.1f p50=%" PRIu64
                  " p95=%" PRIu64 " p99=%" PRIu64 " max=%" PRIu64 "\n",
                  h.name.c_str(), h.count, h.min, h.mean, h.p50, h.p95, h.p99,
                  h.max);
    out += buf;
  }
  return out;
}

}  // namespace navpath
