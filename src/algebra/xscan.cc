#include "algebra/xscan.h"

#include <algorithm>

namespace navpath {

Status XScan::Open() {
  NAVPATH_RETURN_NOT_OK(producer_->Open());
  contexts_.clear();
  ctx_pos_ = 0;
  page_open_ = false;
  next_page_ = options_.first_page;
  fallback_started_ = false;
  fallback_pos_ = 0;
  clusters_scanned_ = 0;

  // The specification requires the context input sorted by cluster id;
  // materialize and sort it here.
  PathInstance inst;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const bool have, producer_->Pull(&inst));
    if (!have) break;
    contexts_.push_back(inst);
  }
  std::sort(contexts_.begin(), contexts_.end(),
            [](const PathInstance& a, const PathInstance& b) {
              return a.right.node < b.right.node;
            });
  db_->clock()->ChargeCpu(contexts_.size() * db_->costs().sort_op);

  // A restricted sweep must still visit every context's page: contexts
  // are delivered while their cluster is open. The planner's touched set
  // covers them for absolute paths; merge them in regardless so a
  // mismatched restriction degrades to extra pages, not lost results.
  restrict_idx_ = 0;
  if (!options_.restrict_to.empty()) {
    std::vector<PageId> pages;
    for (const PathInstance& ctx : contexts_) {
      pages.push_back(ctx.right.node.page);
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    std::vector<SummaryExtent> merged;
    std::size_t pi = 0;
    for (const SummaryExtent& e : options_.restrict_to) {
      while (pi < pages.size() && pages[pi] < e.first) {
        merged.push_back(SummaryExtent{pages[pi], pages[pi]});
        ++pi;
      }
      while (pi < pages.size() && pages[pi] <= e.last) ++pi;
      merged.push_back(e);
    }
    while (pi < pages.size()) {
      merged.push_back(SummaryExtent{pages[pi], pages[pi]});
      ++pi;
    }
    options_.restrict_to = std::move(merged);
  }
  return Status::OK();
}

Status XScan::Close() {
  shared_->cluster.Clear();
  return producer_->Close();
}

PageId XScan::NextAllowedPage(PageId page) {
  const std::vector<SummaryExtent>& ext = options_.restrict_to;
  if (ext.empty()) return page;
  while (restrict_idx_ < ext.size() && ext[restrict_idx_].last < page) {
    ++restrict_idx_;
  }
  if (restrict_idx_ >= ext.size()) return kInvalidPageId;
  return std::max(page, ext[restrict_idx_].first);
}

bool XScan::EmitSeed(PathInstance* out) {
  const ClusterView& view = shared_->cluster.view();
  while (seed_slot_ < view.slot_count()) {
    if (view.IsLive(seed_slot_) && view.IsBorder(seed_slot_) &&
        seed_step_ < options_.path_length) {
      *out = PathInstance::Seed(view.IdOf(seed_slot_), seed_step_);
      ++seed_step_;
      db_->clock()->ChargeCpu(db_->costs().instance_op);
      ++db_->metrics()->speculative_instances;
      ++db_->metrics()->instances_created;
      return true;
    }
    view.ChargeHop();
    seed_step_ = 0;
    ++seed_slot_;
  }
  return false;
}

Result<bool> XScan::Next(PathInstance* out) {
  for (;;) {
    if (shared_->fallback) {
      // Restart-as-identity: re-deliver every context; the XStep chain
      // (now in Unnest-Map mode) re-evaluates the whole path.
      if (!fallback_started_) {
        fallback_started_ = true;
        fallback_pos_ = 0;
        page_open_ = false;
        shared_->cluster.Clear();
      }
      if (fallback_pos_ < contexts_.size()) {
        *out = contexts_[fallback_pos_++];
        return true;
      }
      return false;
    }

    if (page_open_) {
      const PageId current = shared_->cluster.page();
      if (ctx_pos_ < contexts_.size() &&
          contexts_[ctx_pos_].right.node.page == current) {
        *out = contexts_[ctx_pos_++];
        db_->clock()->ChargeCpu(db_->costs().instance_op);
        return true;
      }
      if (EmitSeed(out)) return true;
      page_open_ = false;
    }

    for (;;) {
      if (next_page_ != kInvalidPageId) {
        next_page_ = NextAllowedPage(next_page_);
      }
      if (next_page_ == kInvalidPageId || next_page_ > options_.last_page) {
        shared_->cluster.Clear();
        return false;
      }
      // Under MVCC, shadow copies live in the same id space as appended
      // logical pages, so the sweep range can straddle them. They are
      // never part of any version's logical document — skip.
      const PageTranslator* translator = shared_->cluster.translator();
      if (translator != nullptr && translator->IsShadow(next_page_)) {
        ++next_page_;
        continue;
      }
      break;
    }
    // Sequential access: the previous page of the scan is the disk head's
    // position, so this fix costs transfer time only.
    NAVPATH_RETURN_NOT_OK(shared_->cluster.Switch(next_page_));
    NAVPATH_TRACE(db_->tracer(),
                  Instant(TraceCategory::kScheduler, kTrackScheduler,
                          "scan_cluster", db_->clock()->now(),
                          {{"page", next_page_},
                           {"owner", shared_->owner_id}}));
    shared_->visited_clusters.insert(next_page_);
    ++next_page_;
    ++clusters_scanned_;
    page_open_ = true;
    seed_slot_ = 0;
    seed_step_ = 0;
  }
}

}  // namespace navpath
