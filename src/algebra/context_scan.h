// Leaf operator producing the context nodes of a location path as
// non-full, complete path instances with S_L = S_R = 0 (Sec. 5.1/5.3.4).
#ifndef NAVPATH_ALGEBRA_CONTEXT_SCAN_H_
#define NAVPATH_ALGEBRA_CONTEXT_SCAN_H_

#include <vector>

#include "algebra/operator.h"
#include "store/cross_cursor.h"

namespace navpath {

class ContextScan : public PathOperator {
 public:
  explicit ContextScan(std::vector<LogicalNode> contexts)
      : contexts_(std::move(contexts)) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(PathInstance* out) override {
    if (pos_ >= contexts_.size()) return false;
    const LogicalNode& n = contexts_[pos_++];
    *out = PathInstance::Context(n.id, n.order);
    return true;
  }

  Status Close() override { return Status::OK(); }

 private:
  std::vector<LogicalNode> contexts_;
  std::size_t pos_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_CONTEXT_SCAN_H_
