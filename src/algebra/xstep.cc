#include "algebra/xstep.h"

namespace navpath {

Status XStep::Open() {
  active_ = false;
  fallback_active_ = false;
  return producer_->Open();
}

Status XStep::Close() { return producer_->Close(); }

Result<bool> XStep::Next(PathInstance* out) {
  for (;;) {
    if (active_) {
      NAVPATH_ASSIGN_OR_RETURN(const bool produced, NextIntra(out));
      if (produced) return true;
      active_ = false;
    }
    if (fallback_active_) {
      NAVPATH_ASSIGN_OR_RETURN(const bool produced, NextFallback(out));
      if (produced) return true;
      fallback_active_ = false;
    }
    NAVPATH_ASSIGN_OR_RETURN(const bool have, producer_->Pull(&current_));
    if (!have) return false;
    if (current_.right.step != step_number_ - 1) {
      *out = current_;  // not applicable: forward unchanged
      return true;
    }
    if (shared_->fallback) {
      // Unnest-Map behaviour: evaluate the step fully, crossing borders.
      NAVPATH_RETURN_NOT_OK(
          fallback_cursor_.Start(step_.axis, current_.right.node));
      fallback_active_ = true;
      continue;
    }
    // The right end must live in the plan's current cluster.
    NAVPATH_DCHECK(shared_->cluster.valid());
    NAVPATH_DCHECK(current_.right.node.page == shared_->cluster.page());
    cursor_ = AxisCursor(shared_->cluster.view(), step_.axis,
                         current_.right.node.slot);
    active_ = true;
  }
}

Result<bool> XStep::NextIntra(PathInstance* out) {
  const ClusterView& view = shared_->cluster.view();
  NavEntry entry;
  while (cursor_.Next(&entry)) {
    if (entry.crossing) {
      // Inter-cluster edge: do not traverse; emit a right-incomplete
      // instance (S_R stays i-1) and keep enumerating locally.
      db_->clock()->ChargeCpu(db_->costs().instance_op);
      ++db_->metrics()->instances_created;
      *out = current_;
      out->right =
          PathEnd{step_number_ - 1, view.IdOf(entry.slot), 0, true};
      return true;
    }
    if (step_.test.kind == NodeTest::Kind::kName) {
      if (!view.TagEquals(entry.slot, step_.test.tag)) continue;
    } else {
      view.ChargeTest();  // wildcard / node() match every element
    }
    db_->clock()->ChargeCpu(db_->costs().instance_op);
    ++db_->metrics()->instances_created;
    *out = current_;
    out->right = PathEnd{step_number_, view.IdOf(entry.slot),
                         view.OrderOf(entry.slot), false};
    NAVPATH_PROFILE_STEP_ROW(shared_, step_number_, *out);
    return true;
  }
  return false;
}

Result<bool> XStep::NextFallback(PathInstance* out) {
  LogicalNode node;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const bool found, fallback_cursor_.Next(&node));
    if (!found) return false;
    db_->clock()->ChargeCpu(db_->costs().node_test);
    ++db_->metrics()->node_tests;
    if (!step_.test.Matches(node.tag)) continue;
    db_->clock()->ChargeCpu(db_->costs().instance_op);
    ++db_->metrics()->instances_created;
    *out = current_;
    out->right = PathEnd{step_number_, node.id, node.order, false};
    NAVPATH_PROFILE_STEP_ROW(shared_, step_number_, *out);
    return true;
  }
}

}  // namespace navpath
