// Cross-query fan-out of one producer's partial-instance stream.
//
// The paper's Sec. 7 outlook ("multiple location paths with a single
// I/O-performing operator") extends across queries: when concurrent
// workload queries share a path prefix, ONE producer plan evaluates the
// prefix and every query consumes the resulting partial path instances
// from a bounded stream buffer, then extends them with its own residual
// steps. FanOut is the coordinator that owns the buffer and drives the
// producer; FanOutReader is the per-consumer PathOperator endpoint that
// plans are built on.
//
// Buffering is ref-counted by consumer cursors: the buffer holds only the
// window between the slowest and fastest live consumer, trimmed as the
// laggard catches up. When the window would exceed the instance budget,
// the most-lagging consumer is detached (spill-to-recompute): it stops
// receiving shared instances and its query re-plans privately, relying on
// result-level duplicate elimination for exactly-once semantics. Detaching
// the laggard instead of stalling the producer keeps the fast consumers
// streaming and bounds memory strictly.
//
// The producer participates in cooperative scheduling through the pulling
// consumer: the consumer's yield_on_block grant is forwarded to the
// producer plan for the duration of the pull, and a producer yield (or
// block) is accounted back onto the consumer's shared state, so the
// workload scheduler classifies and reschedules consumers exactly like
// private plans.
#ifndef NAVPATH_ALGEBRA_FANOUT_H_
#define NAVPATH_ALGEBRA_FANOUT_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "algebra/operator.h"

namespace navpath {

struct FanOutOptions {
  /// Stream-buffer budget in instances (>= 1). Exceeding it detaches the
  /// most-lagging live consumer rather than growing the buffer.
  std::size_t max_buffered = 4096;
};

class FanOut {
 public:
  /// `producer_root` / `producer_shared` belong to the producer plan
  /// (owned by the caller, outliving the FanOut). The producer must
  /// deliver prefix instances with complete right ends.
  FanOut(Database* db, PathOperator* producer_root,
         PlanSharedState* producer_shared, const FanOutOptions& options);

  FanOut(const FanOut&) = delete;
  FanOut& operator=(const FanOut&) = delete;

  /// Registers a consumer before execution starts; returns its slot.
  std::size_t AddConsumer();

  /// Opens the producer on the first consumer open (idempotent per slot).
  Status OpenFor(std::size_t slot);

  /// Serves the next instance for `slot`: buffered instances first, then
  /// by advancing the producer. Returns false when the slot is detached,
  /// the producer is exhausted, or the producer yielded (then
  /// `consumer_shared->yielded` is set and the stream is NOT exhausted).
  Result<bool> PullFor(std::size_t slot, PathInstance* out,
                       PlanSharedState* consumer_shared);

  /// Releases `slot`; the last release closes the producer. Also used by
  /// the workload executor to abandon slots that detached before their
  /// query ever started.
  Status CloseFor(std::size_t slot);

  bool detached(std::size_t slot) const { return consumers_[slot].detached; }
  bool producer_done() const { return producer_done_; }
  std::size_t consumers() const { return consumers_.size(); }
  std::size_t buffered() const { return buffer_.size(); }

  // Measurement-side stream statistics (transferred into the workload's
  // share.* registry by the executor).
  std::uint64_t producer_pulls() const { return producer_pulls_; }
  std::uint64_t consumer_pulls() const { return consumer_pulls_; }
  std::uint64_t instances_streamed() const { return next_index_; }
  std::uint64_t dedup_hits() const { return dedup_hits_; }
  std::uint64_t spills() const { return spills_; }
  std::uint64_t max_buffered_seen() const { return max_buffered_seen_; }

 private:
  struct Consumer {
    std::uint64_t cursor = 0;  // absolute index of the next instance
    bool open = false;
    bool closed = false;
    bool detached = false;
  };

  /// Drops buffered instances every live consumer has already consumed.
  void Trim();
  /// Detaches the most-lagging live consumer (smallest cursor, ties to
  /// the smallest slot) to honor the buffer budget.
  void DetachLaggard();

  Database* db_;
  PathOperator* producer_root_;
  PlanSharedState* producer_shared_;
  FanOutOptions options_;

  std::deque<PathInstance> buffer_;
  std::uint64_t base_ = 0;        // absolute index of buffer_.front()
  std::uint64_t next_index_ = 0;  // absolute index of the next append
  /// Right-end keys already streamed: the producer may derive the same
  /// prefix instance along several navigations; consumers must see each
  /// distinct right end once.
  std::unordered_set<std::uint64_t> emitted_;

  std::vector<Consumer> consumers_;
  bool producer_open_ = false;
  bool producer_done_ = false;
  bool producer_closed_ = false;

  std::uint64_t producer_pulls_ = 0;
  std::uint64_t consumer_pulls_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t spills_ = 0;
  std::uint64_t max_buffered_seen_ = 0;
};

/// The per-consumer endpoint: a PathOperator over the shared stream,
/// placed where a private plan would have its I/O operator. Residual
/// UnnestMap steps stack on top of it.
class FanOutReader : public PathOperator {
 public:
  FanOutReader(FanOut* fanout, std::size_t slot,
               PlanSharedState* consumer_shared)
      : fanout_(fanout), slot_(slot), shared_(consumer_shared) {}

  Status Open() override { return fanout_->OpenFor(slot_); }
  Result<bool> Next(PathInstance* out) override {
    return fanout_->PullFor(slot_, out, shared_);
  }
  Status Close() override { return fanout_->CloseFor(slot_); }

 private:
  FanOut* fanout_;
  std::size_t slot_;
  PlanSharedState* shared_;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_FANOUT_H_
