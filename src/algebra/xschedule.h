// XSchedule / XSchedule^R: the asynchronous-I/O-performing operator
// (Sec. 5.3.4, 5.4.4).
//
// All physical accesses of a path plan are pooled here. The operator keeps
// a queue Q of unprocessed partial path instances grouped by the cluster
// of their right end, submits asynchronous reads for every queued cluster,
// and serves instances cluster-by-cluster in whatever order the I/O
// subsystem completes them (the disk picks shortest-seek-first among
// pending requests). The producer supplies context nodes; XAssembly feeds
// back right-incomplete instances whose target clusters must be visited.
//
// With `speculative` set, entering a cluster additionally emits the same
// left-incomplete seed instances XScan produces, so that no cluster needs
// to be visited twice (Sec. 5.4.4).
//
// Under cooperative multi-query execution the operator accounts for how
// each pull ended on the plan's shared state (PlanSharedState::io_yields /
// io_blocks): a pull that polled and found nothing due yields, a pull that
// had to wait on the drive blocks. The workload scheduler reads these over
// a recent-pull window to classify the query as I/O- or CPU-bound.
#ifndef NAVPATH_ALGEBRA_XSCHEDULE_H_
#define NAVPATH_ALGEBRA_XSCHEDULE_H_

#include <deque>
#include <map>
#include <unordered_set>

#include "algebra/operator.h"

namespace navpath {

struct XScheduleOptions {
  /// Desired minimum number of queued right ends (paper default: 100).
  std::size_t k = 100;
  /// Generate speculative seeds on every cluster visit.
  bool speculative = false;
  /// |pi|, needed to generate seeds for each step.
  int path_length = 0;
  /// Bound on this operator's outstanding asynchronous reads; 0 means
  /// unbounded (every queued cluster is submitted immediately, the solo
  /// behavior). The workload executor sets it so that N concurrent
  /// queries' aggregate install-ahead fits the buffer pool — otherwise
  /// prefetched clusters are evicted before their owner consumes them.
  std::size_t max_inflight = 0;
};

class XSchedule : public PathOperator {
 public:
  XSchedule(Database* db, PlanSharedState* shared, PathOperator* producer,
            const XScheduleOptions& options)
      : db_(db), shared_(shared), producer_(producer), options_(options) {}

  Status Open() override;
  Result<bool> Next(PathInstance* out) override;
  Status Close() override;

  /// Called by XAssembly: queue `inst` (right end = the border record in
  /// the cluster that must be visited) and schedule the cluster's I/O.
  Status AddWork(const PathInstance& inst);

  std::uint64_t clusters_entered() const { return clusters_entered_; }

 private:
  Status Enqueue(const PathInstance& inst);
  void MarkReady(PageId page);
  /// Submits the prefetch for `page`, or defers it when the in-flight
  /// bound is reached (no-op without a bound, where Enqueue submits
  /// directly).
  Status SchedulePrefetch(PageId page);
  /// Re-submits deferred prefetches up to the in-flight bound.
  Status TopUpPrefetches();
  Status Replenish();
  /// Picks and pins the next cluster; false when no work remains.
  Result<bool> SwitchToNextCluster();
  bool EmitSeed(PathInstance* out);

  Database* db_;
  PlanSharedState* shared_;
  PathOperator* producer_;
  XScheduleOptions options_;

  std::map<PageId, std::deque<PathInstance>> q_;
  std::size_t q_size_ = 0;
  bool producer_done_ = false;

  std::deque<PageId> ready_;
  std::unordered_set<PageId> ready_set_;

  // Prefetches held back by options_.max_inflight, in submission order.
  std::deque<PageId> deferred_;
  std::unordered_set<PageId> deferred_set_;

  // Speculative seed enumeration state for the current cluster.
  bool seeding_ = false;
  SlotId seed_slot_ = 0;
  int seed_step_ = 0;

  std::uint64_t clusters_entered_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_XSCHEDULE_H_
