#include "algebra/xassembly.h"

#include "algebra/xschedule.h"

namespace navpath {

Status XAssembly::Open() {
  r_.clear();
  s_.clear();
  s_size_ = 0;
  pending_.clear();
  return producer_->Open();
}

Status XAssembly::Close() { return producer_->Close(); }

PathEnd XAssembly::TargetOf(const PathEnd& right) const {
  NAVPATH_DCHECK(right.border);
  NAVPATH_DCHECK(shared_->cluster.valid());
  NAVPATH_DCHECK(right.node.page == shared_->cluster.page());
  const NodeID partner = shared_->cluster.view().PartnerOf(right.node.slot);
  // Storing a node reference outside the pinned cluster unswizzles it.
  db_->clock()->ChargeCpu(db_->costs().unswizzle);
  ++db_->metrics()->unswizzle_ops;
  return PathEnd{right.step, partner, 0, true};
}

void XAssembly::TriggerFallback() {
  shared_->fallback = true;
  s_.clear();
  s_size_ = 0;
  ++db_->metrics()->fallback_activations;
  NAVPATH_TRACE(db_->tracer(),
                Instant(TraceCategory::kScheduler, kTrackScheduler,
                        "fallback", db_->clock()->now(),
                        {{"owner", shared_->owner_id}}));
}

Status XAssembly::Reach(const PathInstance& inst) {
  // Iterative closure; each work item carries the provenance left end.
  std::vector<PathInstance> worklist;
  worklist.push_back(inst);
  while (!worklist.empty()) {
    const PathInstance item = worklist.back();
    worklist.pop_back();
    const PathEnd& e = item.right;

    if (options_.first_step_reaches_all && e.step == 0 && e.border) {
      // Implicitly reachable; nothing is ever stored under step-0 ends.
      continue;
    }
    db_->clock()->ChargeCpu(db_->costs().set_op);
    ++db_->metrics()->r_set_probes;
    if (!r_.insert(e.Key()).second) continue;  // already known

    if (!e.border) {
#if NAVPATH_OBSERVE_ENABLED
      // Speculatively assembled rows went uncounted at their XStep
      // emission (the left end was an unvalidated border); count them at
      // the step where the closure proved them reachable.
      if (shared_->profiler != nullptr &&
          !(item.left_complete() && item.left.step == 0)) {
        shared_->profiler->CountStepRow(static_cast<std::size_t>(e.step));
      }
#endif
      if (e.step == static_cast<std::int32_t>(options_.path_length)) {
        ++db_->metrics()->instances_full;
        pending_.push_back(item);
      }
      // Core ends below full length never carry closure info: XStep
      // chains extend them inline, so nothing is stored under them.
      continue;
    }

    // A border end became reachable: consult speculative knowledge...
    auto it = s_.find(e.Key());
    if (it != s_.end()) {
      db_->clock()->ChargeCpu(db_->costs().set_op);
      ++db_->metrics()->s_set_probes;
      for (const PathInstance& x : it->second) {
        // x: "if e is reachable, x.right is reachable".
        worklist.push_back(x);
      }
      s_size_ -= it->second.size();
      s_.erase(it);
    }
    // ...and/or schedule a visit of the target cluster.
    if (schedule_ != nullptr) {
      const bool covered_by_seeds =
          options_.speculative && !shared_->fallback &&
          shared_->visited_clusters.count(e.node.page) > 0;
      if (!covered_by_seeds) {
        NAVPATH_RETURN_NOT_OK(schedule_->AddWork(PathInstance{item.left, e}));
      }
    }
  }
  return Status::OK();
}

Status XAssembly::HandleArrival(const PathInstance& y) {
  if (y.left_complete()) {
    if (y.right_complete()) {
      // The XStep chain only releases left-complete instances when they
      // are full or stuck at a border.
      NAVPATH_DCHECK(y.right.step ==
                     static_cast<std::int32_t>(options_.path_length));
      return Reach(y);
    }
    // Right-incomplete: resolve target() and register/schedule.
    return Reach(PathInstance{y.left, TargetOf(y.right)});
  }

  // Left-incomplete (speculative) instance.
  PathInstance x = y;
  if (!x.right_complete()) {
    x.right = TargetOf(x.right);  // resolve now, while the cluster is pinned
  }
  const std::uint64_t key = x.left.Key();
  const bool left_known =
      (options_.first_step_reaches_all && x.left.step == 0) ||
      r_.count(key) > 0;
  db_->clock()->ChargeCpu(db_->costs().set_op);
  ++db_->metrics()->r_set_probes;
  if (left_known) {
    // The hypothesis already holds — this includes results of scheduled
    // work items whose left end is a previously reached border, which
    // must be delivered even in fallback mode.
    return Reach(x);
  }
  if (shared_->fallback) {
    // Unreached speculation is redundant in fallback mode: future
    // crossings are always scheduled and evaluated in full.
    return Status::OK();
  }
  db_->clock()->ChargeCpu(db_->costs().set_op);
  ++db_->metrics()->s_set_probes;
  s_[key].push_back(x);
  ++s_size_;
  if (options_.s_budget > 0 && s_size_ > options_.s_budget) {
    TriggerFallback();
  }
  return Status::OK();
}

Result<bool> XAssembly::Next(PathInstance* out) {
  for (;;) {
    if (!pending_.empty()) {
      *out = pending_.front();
      pending_.pop_front();
      return true;
    }
    PathInstance y;
    NAVPATH_ASSIGN_OR_RETURN(const bool have, producer_->Pull(&y));
    if (!have) return false;
    NAVPATH_RETURN_NOT_OK(HandleArrival(y));
  }
}

}  // namespace navpath
