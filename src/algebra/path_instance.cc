#include "algebra/path_instance.h"

namespace navpath {

std::string PathEnd::ToString() const {
  return "[" + std::to_string(step) + (border ? "@B" : "@C") +
         node.ToString() + "]";
}

std::string PathInstance::ToString() const {
  return left.ToString() + ".." + right.ToString();
}

}  // namespace navpath
