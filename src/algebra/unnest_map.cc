#include "algebra/unnest_map.h"

namespace navpath {

Status UnnestMap::Open() {
  active_ = false;
  return producer_->Open();
}

Status UnnestMap::Close() { return producer_->Close(); }

Result<bool> UnnestMap::Next(PathInstance* out) {
  for (;;) {
    if (active_) {
      LogicalNode node;
      NAVPATH_ASSIGN_OR_RETURN(const bool found, cursor_.Next(&node));
      if (found) {
        db_->clock()->ChargeCpu(db_->costs().node_test);
        ++db_->metrics()->node_tests;
        if (!step_.test.Matches(node.tag)) continue;
        db_->clock()->ChargeCpu(db_->costs().instance_op);
        ++db_->metrics()->instances_created;
        *out = current_;
        out->right = PathEnd{step_number_, node.id, node.order, false};
        NAVPATH_PROFILE_STEP_ROW(shared_, step_number_, *out);
        return true;
      }
      active_ = false;
    }
    NAVPATH_ASSIGN_OR_RETURN(const bool have, producer_->Pull(&current_));
    if (!have) return false;
    if (current_.right.step != step_number_ - 1) {
      *out = current_;  // not applicable: forward
      return true;
    }
    NAVPATH_DCHECK(current_.right_complete());
    NAVPATH_RETURN_NOT_OK(cursor_.Start(step_.axis, current_.right.node));
    active_ = true;
  }
}

}  // namespace navpath
