// XStep: cheap intra-cluster navigation (Sec. 5.3.2).
//
// XStep_i extends instances with S_R == i-1 by step i using intra-cluster
// navigation only. Core results extend the instance (S_R := i); border
// records encountered mid-enumeration are emitted as right-incomplete
// instances (S_R stays i-1) and the local enumeration continues behind
// them. Instances XStep_i is not applicable to pass through unchanged.
//
// The origin of an enumeration may itself be a border record: that is the
// resumption of a step whose evaluation crossed into the current cluster
// (delivered by XSchedule after I/O, or hypothesized by a speculative
// seed). AxisCursor encapsulates the per-axis resume semantics.
//
// In fallback mode (Sec. 5.4.6) XStep behaves as a plain Unnest-Map,
// navigating across cluster borders immediately.
#ifndef NAVPATH_ALGEBRA_XSTEP_H_
#define NAVPATH_ALGEBRA_XSTEP_H_

#include "algebra/operator.h"
#include "store/cross_cursor.h"
#include "xpath/location_path.h"

namespace navpath {

class XStep : public PathOperator {
 public:
  XStep(Database* db, PlanSharedState* shared, PathOperator* producer,
        int step_number, LocationStep step)
      : db_(db),
        shared_(shared),
        producer_(producer),
        step_number_(step_number),
        step_(std::move(step)),
        fallback_cursor_(db) {}

  Status Open() override;
  Result<bool> Next(PathInstance* out) override;
  Status Close() override;

 private:
  Result<bool> NextIntra(PathInstance* out);
  Result<bool> NextFallback(PathInstance* out);

  Database* db_;
  PlanSharedState* shared_;
  PathOperator* producer_;
  int step_number_;
  LocationStep step_;

  bool active_ = false;
  PathInstance current_;
  AxisCursor cursor_;                  // intra-cluster enumeration
  CrossClusterCursor fallback_cursor_; // full navigation in fallback mode
  bool fallback_active_ = false;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_XSTEP_H_
