// XAssembly / XAssembly^R: top of a path plan (Sec. 5.3.3, 5.4.5).
//
// Consumes the XStep chain's output and
//   * returns full path instances (deduplicated on the final result node
//     through R),
//   * forwards right-incomplete instances to the XSchedule operator as
//     clusters to visit (applying target() to the border end),
//   * stores left-incomplete (speculative) instances in S and runs the
//     reachability closure "if end_L(x) is reachable, end_R(x) is
//     reachable" whenever new ends enter R.
//
// Without left-incomplete input (non-speculative XSchedule plans) this is
// exactly XAssembly^R. When S outgrows its memory budget the plan reverts
// to fallback mode (Sec. 5.4.6): S is discarded, XStep operators navigate
// across borders themselves, and R keeps already-returned results from
// being produced again.
#ifndef NAVPATH_ALGEBRA_XASSEMBLY_H_
#define NAVPATH_ALGEBRA_XASSEMBLY_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algebra/operator.h"

namespace navpath {

class XSchedule;  // work acceptor; may be null for XScan plans

struct XAssemblyOptions {
  /// |pi|: the number of steps of the location path.
  int path_length = 0;
  /// Maximum number of instances held in S before fallback (0: unlimited).
  std::size_t s_budget = 0;
  /// The I/O operator generates speculative seeds, so visited clusters
  /// need not be revisited for crossings already answered by S.
  bool speculative = false;
  /// Sec. 5.4.5.4: the path starts with a step that reaches every node
  /// from the root (e.g. a leading descendant step of an absolute path)
  /// *and* the plan is guaranteed to visit all clusters (XScan): ends at
  /// step 0 are implicitly reachable and need not be stored.
  bool first_step_reaches_all = false;
};

class XAssembly : public PathOperator {
 public:
  XAssembly(Database* db, PlanSharedState* shared, PathOperator* producer,
            XSchedule* schedule, const XAssemblyOptions& options)
      : db_(db),
        shared_(shared),
        producer_(producer),
        schedule_(schedule),
        options_(options) {}

  Status Open() override;
  Result<bool> Next(PathInstance* out) override;
  Status Close() override;

  std::size_t s_size() const { return s_size_; }
  std::size_t r_size() const { return r_.size(); }

 private:
  /// Registers `inst.right` (already target()-resolved for borders) as
  /// reachable and cascades through S. `inst.left` rides along so that
  /// scheduled work items keep their provenance.
  Status Reach(const PathInstance& inst);

  Status HandleArrival(const PathInstance& y);
  void TriggerFallback();

  /// Applies target() to a right-incomplete end using the current cluster.
  PathEnd TargetOf(const PathEnd& right) const;

  Database* db_;
  PlanSharedState* shared_;
  PathOperator* producer_;
  XSchedule* schedule_;
  XAssemblyOptions options_;

  std::unordered_set<std::uint64_t> r_;
  std::unordered_map<std::uint64_t, std::vector<PathInstance>> s_;
  std::size_t s_size_ = 0;
  std::deque<PathInstance> pending_;  // full instances awaiting emission
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_XASSEMBLY_H_
