// Unnest-Map: the Simple method's step operator (Sec. 5.1).
//
// For every input instance with S_R == i-1 it enumerates all nodes
// reachable via step i over the *logical* tree, traversing inter-cluster
// edges immediately (synchronous random I/O on buffer misses). Instances
// it is not applicable to are forwarded unchanged.
#ifndef NAVPATH_ALGEBRA_UNNEST_MAP_H_
#define NAVPATH_ALGEBRA_UNNEST_MAP_H_

#include <memory>

#include "algebra/operator.h"
#include "store/cross_cursor.h"
#include "xpath/location_path.h"

namespace navpath {

class UnnestMap : public PathOperator {
 public:
  /// `step_number` is i (1-based); consumes instances with S_R == i-1.
  UnnestMap(Database* db, PlanSharedState* shared, PathOperator* producer,
            int step_number, LocationStep step)
      : db_(db),
        shared_(shared),
        producer_(producer),
        step_number_(step_number),
        step_(std::move(step)),
        cursor_(db) {}

  Status Open() override;
  Result<bool> Next(PathInstance* out) override;
  Status Close() override;

 private:
  Database* db_;
  PlanSharedState* shared_;
  PathOperator* producer_;
  int step_number_;
  LocationStep step_;

  bool active_ = false;       // cursor_ is enumerating current_
  PathInstance current_;
  CrossClusterCursor cursor_;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_UNNEST_MAP_H_
