#include "algebra/fanout.h"

#include <algorithm>

namespace navpath {

FanOut::FanOut(Database* db, PathOperator* producer_root,
               PlanSharedState* producer_shared,
               const FanOutOptions& options)
    : db_(db),
      producer_root_(producer_root),
      producer_shared_(producer_shared),
      options_(options) {
  NAVPATH_CHECK(db != nullptr);
  NAVPATH_CHECK(producer_root != nullptr);
  NAVPATH_CHECK(producer_shared != nullptr);
  NAVPATH_CHECK(options_.max_buffered >= 1);
}

std::size_t FanOut::AddConsumer() {
  consumers_.push_back(Consumer{});
  return consumers_.size() - 1;
}

Status FanOut::OpenFor(std::size_t slot) {
  NAVPATH_CHECK(slot < consumers_.size());
  Consumer& consumer = consumers_[slot];
  NAVPATH_CHECK(!consumer.open && !consumer.closed);
  consumer.open = true;
  if (!producer_open_) {
    producer_open_ = true;
    return producer_root_->Open();
  }
  return Status::OK();
}

Status FanOut::CloseFor(std::size_t slot) {
  NAVPATH_CHECK(slot < consumers_.size());
  Consumer& consumer = consumers_[slot];
  if (consumer.closed) return Status::OK();
  consumer.closed = true;
  consumer.open = false;
  Trim();
  for (const Consumer& c : consumers_) {
    if (!c.closed) return Status::OK();
  }
  if (producer_open_ && !producer_closed_) {
    producer_closed_ = true;
    return producer_root_->Close();
  }
  return Status::OK();
}

void FanOut::Trim() {
  // The buffer keeps only the window between the slowest live consumer
  // and the stream head. Closed and detached consumers hold nothing.
  std::uint64_t min_cursor = next_index_;
  bool any_live = false;
  for (const Consumer& c : consumers_) {
    if (c.closed || c.detached) continue;
    any_live = true;
    min_cursor = std::min(min_cursor, c.cursor);
  }
  if (!any_live) {
    buffer_.clear();
    base_ = next_index_;
    return;
  }
  while (base_ < min_cursor && !buffer_.empty()) {
    buffer_.pop_front();
    ++base_;
  }
}

void FanOut::DetachLaggard() {
  std::size_t victim = consumers_.size();
  for (std::size_t i = 0; i < consumers_.size(); ++i) {
    const Consumer& c = consumers_[i];
    if (c.closed || c.detached) continue;
    if (victim == consumers_.size() ||
        c.cursor < consumers_[victim].cursor) {
      victim = i;
    }
  }
  NAVPATH_CHECK(victim < consumers_.size());
  consumers_[victim].detached = true;
  ++spills_;
  NAVPATH_TRACE(db_->tracer(),
                Instant(TraceCategory::kScheduler, kTrackScheduler,
                        "share_detach", db_->clock()->now(),
                        {{"slot", victim}}));
  Trim();
}

Result<bool> FanOut::PullFor(std::size_t slot, PathInstance* out,
                             PlanSharedState* consumer_shared) {
  NAVPATH_CHECK(slot < consumers_.size());
  ++consumer_pulls_;
  for (;;) {
    Consumer& consumer = consumers_[slot];
    if (consumer.detached) return false;
    if (consumer.cursor < next_index_) {
      NAVPATH_DCHECK(consumer.cursor >= base_);
      *out = buffer_[consumer.cursor - base_];
      ++consumer.cursor;
      db_->clock()->ChargeCpu(db_->costs().instance_op);
      Trim();
      return true;
    }
    if (producer_done_) return false;

    // Advance the producer on behalf of this consumer: forward the
    // scheduler's yield grant, and account the producer's waits onto the
    // consumer so the workload classifies it like a private plan.
    producer_shared_->yield_on_block = consumer_shared->yield_on_block;
    producer_shared_->io_priority = consumer_shared->io_priority;
    const std::uint64_t blocks_before = producer_shared_->io_blocks;
    ++producer_pulls_;
    PathInstance inst;
    [[maybe_unused]] const SimTime pull_begin = db_->clock()->now();
    NAVPATH_ASSIGN_OR_RETURN(const bool have, producer_root_->Pull(&inst));
    NAVPATH_TRACE(db_->tracer(),
                  Span(TraceCategory::kScheduler, kTrackScheduler,
                       "share_producer_pull", pull_begin, db_->clock()->now(),
                       {{"owner", producer_shared_->owner_id},
                        {"produced", have ? 1u : 0u}}));
    consumer_shared->io_blocks += producer_shared_->io_blocks - blocks_before;
    if (!have) {
      if (producer_shared_->yielded) {
        producer_shared_->yielded = false;
        consumer_shared->yielded = true;
        ++consumer_shared->io_yields;
        return false;
      }
      producer_done_ = true;
      // Nothing buffered beyond every cursor; drop the window.
      Trim();
      return false;
    }
    // The producer may derive the same prefix node along several
    // navigations; each distinct right end is streamed exactly once.
    db_->clock()->ChargeCpu(db_->costs().set_op);
    if (!emitted_.insert(inst.right.Key()).second) {
      ++dedup_hits_;
      continue;
    }
    if (buffer_.size() >= options_.max_buffered) DetachLaggard();
    buffer_.push_back(inst);
    ++next_index_;
    max_buffered_seen_ =
        std::max(max_buffered_seen_,
                 static_cast<std::uint64_t>(buffer_.size()));
  }
}

}  // namespace navpath
