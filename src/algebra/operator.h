// Physical operator interface (iterators, [Graefe 93]) and the shared
// execution state of one path plan.
#ifndef NAVPATH_ALGEBRA_OPERATOR_H_
#define NAVPATH_ALGEBRA_OPERATOR_H_

#include <optional>
#include <unordered_set>

#include "algebra/path_instance.h"
#include "common/status.h"
#include "observe/profile.h"
#include "observe/trace.h"
#include "store/cluster_view.h"
#include "store/database.h"

namespace navpath {

/// Open/Next/Close iterator over partial path instances.
///
/// Consumers call the non-virtual Pull() instead of Next() directly: with
/// profiling enabled on the owning plan, Pull brackets the virtual call
/// with simulated-clock readings (feeding the PlanProfiler's self/total
/// attribution) and emits one operator span per pull; otherwise it is a
/// plain tail call into Next().
class PathOperator {
 public:
  virtual ~PathOperator() = default;

  virtual Status Open() = 0;
  /// Produces the next instance; ok(false) signals exhaustion.
  virtual Result<bool> Next(PathInstance* out) = 0;
  virtual Status Close() = 0;

  /// Instrumented entry point — what producers and plan roots call.
  Result<bool> Pull(PathInstance* out) {
#if NAVPATH_OBSERVE_ENABLED
    if (profiler_ != nullptr) return ProfiledNext(out);
#endif
    return Next(out);
  }

#if NAVPATH_OBSERVE_ENABLED
  /// Wired by BuildPlan when PlanOptions.profile is set. `owner` points at
  /// the plan's owner_id so workload queries land on their own trace track;
  /// the tracer is read from `db` per pull, so tracing can be enabled
  /// after the plan is built.
  void EnableProfiling(PlanProfiler* profiler, Database* db,
                       const std::uint32_t* owner, std::size_t slot) {
    profiler_ = profiler;
    profile_db_ = db;
    owner_ = owner;
    slot_ = slot;
  }
#endif

 private:
#if NAVPATH_OBSERVE_ENABLED
  Result<bool> ProfiledNext(PathInstance* out) {
    const SimClock* clock = profile_db_->clock();
    const SimTime begin = clock->now();
    profiler_->Enter(slot_, begin, clock->io_wait_time());
    Result<bool> result = Next(out);
    const SimTime end = clock->now();
    const bool produced = result.ok() && *result;
    profiler_->Exit(slot_, end, clock->io_wait_time(), produced);
    NAVPATH_TRACE(
        profile_db_->tracer(),
        Span(TraceCategory::kOperator, kTrackQueryBase + *owner_,
             profiler_->operators()[slot_].name, begin, end,
             {{"produced", produced ? 1u : 0u}}));
    return result;
  }

  PlanProfiler* profiler_ = nullptr;
  Database* profile_db_ = nullptr;
  const std::uint32_t* owner_ = nullptr;
  std::size_t slot_ = 0;
#endif
};

/// The cluster currently pinned by the plan's I/O-performing operator.
/// XStep operators navigate it; XAssembly resolves border partners through
/// it. Exactly one cluster is current at any time in XSchedule/XScan plans
/// (the core idea of the paper: all right ends in flight live there).
class ClusterContext {
 public:
  explicit ClusterContext(Database* db) : db_(db) {}

  bool valid() const { return view_.has_value(); }
  PageId page() const { return valid() ? logical_page_ : kInvalidPageId; }
  const ClusterView& view() const {
    NAVPATH_DCHECK(valid());
    return *view_;
  }

  /// Snapshot/transaction page translation (MVCC). All operator-level page
  /// ids stay logical; only the buffer fix below maps to the physical
  /// (possibly shadow-copied) page. nullptr = identity = current version.
  void SetTranslator(const PageTranslator* translator) {
    translator_ = translator;
  }
  const PageTranslator* translator() const { return translator_; }

  /// Pins `page` (a logical id) as the current cluster (entering a
  /// cluster swizzles).
  Status Switch(PageId page) {
    NAVPATH_ASSIGN_OR_RETURN(
        PageGuard guard,
        db_->buffer()->FixSwizzle(TranslateToPhysical(translator_, page)));
    guard_ = std::move(guard);
    logical_page_ = page;
    view_.emplace(db_->MakeView(guard_, page));
    ++db_->metrics()->clusters_visited;
#if NAVPATH_OBSERVE_ENABLED
    if (visit_counter_ != nullptr) ++*visit_counter_;
#endif
    return Status::OK();
  }

  void Clear() {
    view_.reset();
    guard_.Release();
    logical_page_ = kInvalidPageId;
  }

#if NAVPATH_OBSERVE_ENABLED
  /// Profiling hook: also count switches into `counter` (the profiler's
  /// clusters_entered), attributing visits to this plan alone.
  void set_visit_counter(std::uint64_t* counter) { visit_counter_ = counter; }
#endif

 private:
  Database* db_;
  const PageTranslator* translator_ = nullptr;
  PageGuard guard_;
  PageId logical_page_ = kInvalidPageId;
  std::optional<ClusterView> view_;
#if NAVPATH_OBSERVE_ENABLED
  std::uint64_t* visit_counter_ = nullptr;
#endif
};

/// State shared across the operators of one plan.
struct PlanSharedState {
  explicit PlanSharedState(Database* db) : cluster(db) {}

  ClusterContext cluster;

  /// Fallback mode (Sec. 5.4.6): set by XAssembly when the speculative
  /// structure S exceeds its memory budget; XStep then navigates across
  /// cluster borders like a plain Unnest-Map and the I/O operators stop
  /// producing seeds.
  bool fallback = false;

  /// Clusters already visited by the I/O operator (used by speculative
  /// XSchedule to avoid scheduling visits whose answers are already in S).
  std::unordered_set<PageId> visited_clusters;

  /// Identity of the query this plan belongs to within a multi-query
  /// workload (0 = standalone execution). The buffer manager attributes
  /// prefetch interest to it, so duplicate reads issued by *different*
  /// queries are detected and merged.
  std::uint32_t owner_id = 0;

  /// Set by the WorkloadExecutor: sibling queries share the buffer and
  /// disk, so a wait by one query can install a cluster another query
  /// asked for. Cooperative plans check for such already-resident queued
  /// clusters before blocking on their own prefetches.
  bool cooperative = false;

  /// Set by the WorkloadExecutor when this plan's query sits in the
  /// cheapest-remaining-cost quartile of the active set: its prefetches
  /// are submitted at high drive priority, so its few pages jump the
  /// elevator sweep instead of queueing behind long queries' scans.
  bool io_priority = false;

  /// Granted by the WorkloadExecutor per pull: instead of blocking on its
  /// own prefetches, the I/O operator polls for due completions and, if
  /// none arrived yet, reports exhaustion with `yielded` set. The
  /// scheduler then runs a sibling query, letting submissions pool at the
  /// disk instead of being drained one-by-one by blocking waits.
  bool yield_on_block = false;
  /// Out-parameter of a yielding Next(): the stream is NOT exhausted, the
  /// plan merely refused to block. The scheduler clears it and retries
  /// the query later.
  bool yielded = false;

  /// Cooperative-scheduling accounting, written by the I/O-performing
  /// operator: pulls that ended in a yield (polled, nothing due) and
  /// pulls that blocked on the drive. The workload scheduler windows
  /// these per job — a query whose recent pulls mostly waited on I/O is
  /// I/O-bound and belongs in the pool-keeping rotation, not the
  /// shortest-job-first queue. Reset with the plan (fresh per path).
  std::uint64_t io_yields = 0;
  std::uint64_t io_blocks = 0;

#if NAVPATH_OBSERVE_ENABLED
  /// Non-null when the plan was built with PlanOptions.profile; operators
  /// report actual per-step cardinalities through it (EXPLAIN ANALYZE).
  PlanProfiler* profiler = nullptr;
#endif
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_OPERATOR_H_
