// Physical operator interface (iterators, [Graefe 93]) and the shared
// execution state of one path plan.
#ifndef NAVPATH_ALGEBRA_OPERATOR_H_
#define NAVPATH_ALGEBRA_OPERATOR_H_

#include <optional>
#include <unordered_set>

#include "algebra/path_instance.h"
#include "common/status.h"
#include "store/cluster_view.h"
#include "store/database.h"

namespace navpath {

/// Open/Next/Close iterator over partial path instances.
class PathOperator {
 public:
  virtual ~PathOperator() = default;

  virtual Status Open() = 0;
  /// Produces the next instance; ok(false) signals exhaustion.
  virtual Result<bool> Next(PathInstance* out) = 0;
  virtual Status Close() = 0;
};

/// The cluster currently pinned by the plan's I/O-performing operator.
/// XStep operators navigate it; XAssembly resolves border partners through
/// it. Exactly one cluster is current at any time in XSchedule/XScan plans
/// (the core idea of the paper: all right ends in flight live there).
class ClusterContext {
 public:
  explicit ClusterContext(Database* db) : db_(db) {}

  bool valid() const { return view_.has_value(); }
  PageId page() const { return valid() ? guard_.page_id() : kInvalidPageId; }
  const ClusterView& view() const {
    NAVPATH_DCHECK(valid());
    return *view_;
  }

  /// Pins `page` as the current cluster (entering a cluster swizzles).
  Status Switch(PageId page) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard,
                             db_->buffer()->FixSwizzle(page));
    guard_ = std::move(guard);
    view_.emplace(db_->MakeView(guard_));
    ++db_->metrics()->clusters_visited;
    return Status::OK();
  }

  void Clear() {
    view_.reset();
    guard_.Release();
  }

 private:
  Database* db_;
  PageGuard guard_;
  std::optional<ClusterView> view_;
};

/// State shared across the operators of one plan.
struct PlanSharedState {
  explicit PlanSharedState(Database* db) : cluster(db) {}

  ClusterContext cluster;

  /// Fallback mode (Sec. 5.4.6): set by XAssembly when the speculative
  /// structure S exceeds its memory budget; XStep then navigates across
  /// cluster borders like a plain Unnest-Map and the I/O operators stop
  /// producing seeds.
  bool fallback = false;

  /// Clusters already visited by the I/O operator (used by speculative
  /// XSchedule to avoid scheduling visits whose answers are already in S).
  std::unordered_set<PageId> visited_clusters;

  /// Identity of the query this plan belongs to within a multi-query
  /// workload (0 = standalone execution). The buffer manager attributes
  /// prefetch interest to it, so duplicate reads issued by *different*
  /// queries are detected and merged.
  std::uint32_t owner_id = 0;

  /// Set by the WorkloadExecutor: sibling queries share the buffer and
  /// disk, so a wait by one query can install a cluster another query
  /// asked for. Cooperative plans check for such already-resident queued
  /// clusters before blocking on their own prefetches.
  bool cooperative = false;

  /// Granted by the WorkloadExecutor per pull: instead of blocking on its
  /// own prefetches, the I/O operator polls for due completions and, if
  /// none arrived yet, reports exhaustion with `yielded` set. The
  /// scheduler then runs a sibling query, letting submissions pool at the
  /// disk instead of being drained one-by-one by blocking waits.
  bool yield_on_block = false;
  /// Out-parameter of a yielding Next(): the stream is NOT exhausted, the
  /// plan merely refused to block. The scheduler clears it and retries
  /// the query later.
  bool yielded = false;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_OPERATOR_H_
