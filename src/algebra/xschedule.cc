#include "algebra/xschedule.h"

namespace navpath {

Status XSchedule::Open() {
  q_.clear();
  q_size_ = 0;
  producer_done_ = false;
  ready_.clear();
  ready_set_.clear();
  deferred_.clear();
  deferred_set_.clear();
  seeding_ = false;
  clusters_entered_ = 0;
  NAVPATH_CHECK(options_.k >= 1);
  return producer_->Open();
}

Status XSchedule::Close() {
  shared_->cluster.Clear();
  return producer_->Close();
}

void XSchedule::MarkReady(PageId page) {
  if (ready_set_.insert(page).second) ready_.push_back(page);
}

Status XSchedule::Enqueue(const PathInstance& inst) {
  const PageId cluster = inst.right.node.page;
  db_->clock()->ChargeCpu(db_->costs().set_op);
  q_[cluster].push_back(inst);
  ++q_size_;
  return SchedulePrefetch(cluster);
}

Status XSchedule::SchedulePrefetch(PageId page) {
  // The queue and ready/deferred sets stay in logical page ids; only the
  // buffer/drive interactions below use the snapshot's physical mapping.
  const PageTranslator* translator = shared_->cluster.translator();
  const PageId physical = TranslateToPhysical(translator, page);
  if (options_.max_inflight > 0 && deferred_set_.count(page) == 0 &&
      db_->buffer()->PendingFor(shared_->owner_id) >=
          options_.max_inflight &&
      !db_->buffer()->IsResident(physical)) {
    deferred_.push_back(page);
    deferred_set_.insert(page);
    return Status::OK();
  }
  NAVPATH_ASSIGN_OR_RETURN(
      const BufferManager::PrefetchOutcome outcome,
      db_->buffer()->Prefetch(physical, shared_->owner_id,
                              shared_->io_priority ? ReadPriority::kHigh
                                                   : ReadPriority::kNormal));
  if (outcome == BufferManager::PrefetchOutcome::kResident) {
    MarkReady(page);
  }
  return Status::OK();
}

Status XSchedule::TopUpPrefetches() {
  while (!deferred_.empty() &&
         db_->buffer()->PendingFor(shared_->owner_id) <
             options_.max_inflight) {
    const PageId page = deferred_.front();
    deferred_.pop_front();
    deferred_set_.erase(page);
    NAVPATH_ASSIGN_OR_RETURN(
        const BufferManager::PrefetchOutcome outcome,
        db_->buffer()->Prefetch(
            TranslateToPhysical(shared_->cluster.translator(), page),
            shared_->owner_id,
                                shared_->io_priority
                                    ? ReadPriority::kHigh
                                    : ReadPriority::kNormal));
    if (outcome == BufferManager::PrefetchOutcome::kResident) {
      MarkReady(page);
    }
  }
  return Status::OK();
}

Status XSchedule::AddWork(const PathInstance& inst) {
  // Unswizzled NodeIDs enter the queue; the cluster is re-entered later.
  return Enqueue(inst);
}

Status XSchedule::Replenish() {
  while (!producer_done_ && q_size_ < options_.k) {
    PathInstance inst;
    NAVPATH_ASSIGN_OR_RETURN(const bool have, producer_->Pull(&inst));
    if (!have) {
      producer_done_ = true;
      break;
    }
    NAVPATH_RETURN_NOT_OK(Enqueue(inst));
  }
  return Status::OK();
}

Result<bool> XSchedule::SwitchToNextCluster() {
  for (;;) {
    // Keep the submission pipeline full: completions since the last
    // switch freed in-flight slots for deferred clusters.
    NAVPATH_RETURN_NOT_OK(TopUpPrefetches());
    if (shared_->cooperative) {
      // A sibling query's wait may already have installed clusters we
      // queued (completions are delivered to whichever query blocks
      // first); pick those up instead of blocking on our own prefetches.
      for (const auto& [page, entries] : q_) {
        if (!entries.empty() && ready_set_.count(page) == 0 &&
            db_->buffer()->IsResident(TranslateToPhysical(
                shared_->cluster.translator(), page))) {
          MarkReady(page);
        }
      }
    }
    // Prefer clusters whose I/O already completed (or that are resident).
    while (!ready_.empty()) {
      const PageId page = ready_.front();
      ready_.pop_front();
      ready_set_.erase(page);
      auto it = q_.find(page);
      if (it == q_.end() || it->second.empty()) continue;  // stale marker
      NAVPATH_RETURN_NOT_OK(shared_->cluster.Switch(page));
      NAVPATH_TRACE(db_->tracer(),
                    Instant(TraceCategory::kScheduler, kTrackScheduler,
                            "enter_cluster", db_->clock()->now(),
                            {{"page", page}, {"owner", shared_->owner_id}}));
      shared_->visited_clusters.insert(page);
      ++clusters_entered_;
      seeding_ = options_.speculative && !shared_->fallback;
      seed_slot_ = 0;
      seed_step_ = 0;
      return true;
    }
    if (db_->buffer()->HasPrefetchInFlight()) {
      if (shared_->cooperative && shared_->yield_on_block) {
        // Collect whatever the drive finished by now without forcing it
        // to serve; if nothing is due, hand control back to the workload
        // scheduler instead of draining the pending pool with a blocking
        // wait. The pool keeps deepening while sibling queries run.
        Result<PageId> polled = db_->buffer()->PollAnyPrefetch();
        if (polled.ok()) {
          if (*polled != kInvalidPageId) {
            // Completions report the physical page; map back before
            // matching against the logical ready set.
            MarkReady(TranslateToLogical(shared_->cluster.translator(),
                                         *polled));
            continue;
          }
          shared_->yielded = true;
          ++shared_->io_yields;
          NAVPATH_TRACE(db_->tracer(),
                        Instant(TraceCategory::kScheduler, kTrackScheduler,
                                "yield", db_->clock()->now(),
                                {{"owner", shared_->owner_id}}));
          return false;
        }
        if (!polled.status().IsIOError()) return polled.status();
        ++db_->metrics()->fault_fallbacks;
        continue;
      }
      // Block until the I/O subsystem completes *some* request; the disk
      // chooses which (shortest seek first).
      ++shared_->io_blocks;
      [[maybe_unused]] const SimTime block_begin = db_->clock()->now();
      Result<PageId> waited = db_->buffer()->WaitAnyPrefetch();
      NAVPATH_TRACE(db_->tracer(),
                    Span(TraceCategory::kScheduler, kTrackScheduler,
                         "io_block", block_begin, db_->clock()->now(),
                         {{"owner", shared_->owner_id}}));
      if (waited.ok()) {
        MarkReady(TranslateToLogical(shared_->cluster.translator(),
                                     *waited));
        continue;
      }
      // Corruption (and anything else unrecoverable) fails the plan with a
      // real Status; a transient I/O failure that outlasted the buffer's
      // retry budget degrades to the synchronous entry path below instead
      // of killing the query.
      if (!waited.status().IsIOError()) return waited.status();
      ++db_->metrics()->fault_fallbacks;
    }
    // Safety net: queued clusters whose ready marker was consumed early
    // (e.g. after eviction). Serve the first one synchronously.
    for (auto& [page, entries] : q_) {
      if (entries.empty()) continue;
      NAVPATH_RETURN_NOT_OK(shared_->cluster.Switch(page));
      NAVPATH_TRACE(db_->tracer(),
                    Instant(TraceCategory::kScheduler, kTrackScheduler,
                            "enter_cluster_sync", db_->clock()->now(),
                            {{"page", page}, {"owner", shared_->owner_id}}));
      shared_->visited_clusters.insert(page);
      ++clusters_entered_;
      seeding_ = options_.speculative && !shared_->fallback;
      seed_slot_ = 0;
      seed_step_ = 0;
      return true;
    }
    return false;
  }
}

bool XSchedule::EmitSeed(PathInstance* out) {
  if (!seeding_ || shared_->fallback) return false;
  const ClusterView& view = shared_->cluster.view();
  while (seed_slot_ < view.slot_count()) {
    if (view.IsLive(seed_slot_) && view.IsBorder(seed_slot_) &&
        seed_step_ < options_.path_length) {
      *out = PathInstance::Seed(view.IdOf(seed_slot_), seed_step_);
      ++seed_step_;
      db_->clock()->ChargeCpu(db_->costs().instance_op);
      ++db_->metrics()->speculative_instances;
      ++db_->metrics()->instances_created;
      return true;
    }
    view.ChargeHop();
    seed_step_ = 0;
    ++seed_slot_;
  }
  seeding_ = false;
  return false;
}

Result<bool> XSchedule::Next(PathInstance* out) {
  for (;;) {
    NAVPATH_RETURN_NOT_OK(Replenish());
    if (shared_->cluster.valid()) {
      auto it = q_.find(shared_->cluster.page());
      if (it != q_.end()) {
        if (!it->second.empty()) {
          *out = it->second.front();
          it->second.pop_front();
          --q_size_;
          db_->clock()->ChargeCpu(db_->costs().instance_op);
          return true;
        }
        q_.erase(it);
      }
      if (EmitSeed(out)) return true;
    }
    if (q_size_ == 0) {
      // Replenish drained the producer, Q is empty, seeds are done.
      shared_->cluster.Clear();
      return false;
    }
    NAVPATH_ASSIGN_OR_RETURN(const bool switched, SwitchToNextCluster());
    if (!switched) {
      shared_->cluster.Clear();
      return false;
    }
  }
}

}  // namespace navpath
