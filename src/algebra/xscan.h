// XScan: sequential-scan I/O operator (Sec. 5.4.3).
//
// Visits every cluster of the document exactly once, in physical order,
// at sequential-transfer cost. For each cluster it first returns the
// producer's context instances located there (the context input is sorted
// by cluster), then speculatively produces one left-incomplete seed
// instance per (border record, step) so the cluster never needs to be
// visited again.
//
// Fallback (Sec. 5.4.6): the scan restarts its producer and acts as the
// identity afterwards — the whole path is re-evaluated by the (now
// Unnest-Map-like) XStep chain, with XAssembly's R preventing duplicate
// results.
#ifndef NAVPATH_ALGEBRA_XSCAN_H_
#define NAVPATH_ALGEBRA_XSCAN_H_

#include <vector>

#include "algebra/operator.h"
#include "store/import.h"
#include "store/path_summary.h"

namespace navpath {

struct XScanOptions {
  PageId first_page = kInvalidPageId;
  PageId last_page = kInvalidPageId;
  int path_length = 0;
  /// Pages the sweep may restrict itself to (sorted, merged page ranges
  /// from the path summary's touched-extent union; empty = sweep the
  /// whole [first_page, last_page] range). Pages outside the union hold
  /// no candidate node of any step, so skipping them cannot change the
  /// result. Context pages are re-added defensively at Open().
  std::vector<SummaryExtent> restrict_to;
};

class XScan : public PathOperator {
 public:
  XScan(Database* db, PlanSharedState* shared, PathOperator* producer,
        const XScanOptions& options)
      : db_(db), shared_(shared), producer_(producer), options_(options) {}

  Status Open() override;
  Result<bool> Next(PathInstance* out) override;
  Status Close() override;

  std::uint64_t clusters_scanned() const { return clusters_scanned_; }

 private:
  bool EmitSeed(PathInstance* out);

  /// Smallest page >= `page` the restricted sweep may visit (== `page`
  /// when no restriction is set). Monotone calls; advances restrict_idx_.
  PageId NextAllowedPage(PageId page);

  Database* db_;
  PlanSharedState* shared_;
  PathOperator* producer_;
  XScanOptions options_;

  std::vector<PathInstance> contexts_;  // sorted by cluster of N_R
  std::size_t ctx_pos_ = 0;

  bool page_open_ = false;
  PageId next_page_ = kInvalidPageId;

  SlotId seed_slot_ = 0;
  int seed_step_ = 0;

  bool fallback_started_ = false;
  std::size_t fallback_pos_ = 0;

  std::size_t restrict_idx_ = 0;

  std::uint64_t clusters_scanned_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_XSCAN_H_
