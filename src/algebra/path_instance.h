// Partial path instances (Sec. 4).
//
// A partial path instance represents an incomplete computation about a
// location path: a consecutive run of steps mapped to document nodes,
// whose two ends may be unfinished navigations stuck at border nodes. Per
// Sec. 4.4 only the two ends are materialized: the 4-attribute tuple
// (S_L, N_L, S_R, N_R), here augmented with order keys so that document
// order can be re-established without extra I/O (Sec. 5.5).
//
// Conventions (paper's, Sec. 4.4):
//  * right.step == S_R is r-1 when the right end is a border node: the
//    final step has not been fully evaluated yet, so XStep_{S_R + 1}
//    resumes it.
//  * An instance is left-complete iff its left end is a core node;
//    left-incomplete instances arise from speculative evaluation
//    (XScan / speculative XSchedule seeds, Sec. 5.4).
#ifndef NAVPATH_ALGEBRA_PATH_INSTANCE_H_
#define NAVPATH_ALGEBRA_PATH_INSTANCE_H_

#include <cstdint>
#include <string>

#include "store/node_id.h"

namespace navpath {

/// One end of a partial path instance.
struct PathEnd {
  std::int32_t step = 0;
  NodeID node;
  /// Document-order key; meaningful for core ends only.
  std::uint64_t order = 0;
  /// True when `node` names a border record (unfinished navigation).
  bool border = false;

  /// Key identifying this end in the R/S structures: (step, node).
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(step))
            << 48) ^
           node.Pack();
  }

  std::string ToString() const;
};

struct PathInstance {
  PathEnd left;
  PathEnd right;

  bool left_complete() const { return !left.border; }
  bool right_complete() const { return !right.border; }
  bool complete() const { return left_complete() && right_complete(); }
  /// Full for a path of `length` steps (Sec. 4.2).
  bool full(std::size_t length) const {
    return complete() && left.step == 0 &&
           right.step == static_cast<std::int32_t>(length);
  }

  /// A fresh context instance: both ends at step 0 on the context node.
  static PathInstance Context(NodeID node, std::uint64_t order) {
    PathEnd end{0, node, order, false};
    return PathInstance{end, end};
  }

  /// A speculative seed l_{b,i} (Sec. 5.4.3): both ends at border b with
  /// step i; XStep_{i+1} tries to extend it.
  static PathInstance Seed(NodeID border, std::int32_t step) {
    PathEnd end{step, border, 0, true};
    return PathInstance{end, end};
  }

  std::string ToString() const;
};

}  // namespace navpath

#endif  // NAVPATH_ALGEBRA_PATH_INSTANCE_H_
