#include "store/update.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "store/cross_cursor.h"
#include "store/tree_page.h"
#include "xml/dom.h"  // kOrderKeyGap

namespace navpath {
namespace {

/// Collects `root` and all records of its subtree that live in the same
/// page (down-borders are leaves), in depth-first order.
std::vector<SlotId> CollectLocalSubtree(const TreePage& page, SlotId root) {
  std::vector<SlotId> out;
  std::vector<SlotId> stack{root};
  while (!stack.empty()) {
    const SlotId s = stack.back();
    stack.pop_back();
    out.push_back(s);
    // A local subtree can never exceed the page's record count; more
    // means a corrupted (cyclic) chain.
    NAVPATH_CHECK_MSG(out.size() <= page.slot_count(),
                      "cyclic sibling chain detected");
    const RecordKind kind = page.KindOf(s);
    if (kind == RecordKind::kBorderDown || kind == RecordKind::kAttribute) {
      continue;
    }
    if (kind == RecordKind::kCore) {
      for (SlotId a = page.FirstAttrOf(s); a != kInvalidSlot;
           a = page.NextSiblingOf(a)) {
        out.push_back(a);
      }
    }
    // Children chains below interior cores terminate with kInvalidSlot;
    // a fragment root's (up-border's) chain loops back to the root itself.
    std::vector<SlotId> children;
    for (SlotId c = page.FirstChildOf(s); c != kInvalidSlot && c != s;
         c = page.NextSiblingOf(c)) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

}  // namespace

Result<PageId> DocumentUpdater::AppendPage() {
  NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, db_->buffer()->NewPage());
  TreePage::Initialize(guard.data(), db_->options().page_size);
  guard.MarkDirty();
  const PageId id = guard.page_id();
  doc_->last_page = std::max(doc_->last_page, id);
  ++doc_->pages;
  return id;
}

Result<NodeID> DocumentUpdater::UnlinkChainElement(PageGuard* guard,
                                                   SlotId slot) {
  TreePage page(guard->data(), db_->options().page_size);
  const SlotId ps = page.ParentOf(slot);
  NAVPATH_CHECK(ps != kInvalidSlot);
  const bool up = page.KindOf(ps) == RecordKind::kBorderUp;
  const SlotId prev = page.PrevSiblingOf(slot);
  const SlotId next = page.NextSiblingOf(slot);
  const bool prev_is_sibling =
      prev != kInvalidSlot && !(up && prev == ps);
  const bool next_is_sibling =
      next != kInvalidSlot && !(up && next == ps);

  if (prev_is_sibling) {
    page.SetNextSibling(prev, next);
  } else {
    page.SetFirstChild(ps, next_is_sibling ? next : kInvalidSlot);
  }
  if (next_is_sibling) {
    page.SetPrevSibling(next, prev);
  } else if (up) {
    page.SetLastChild(ps, prev_is_sibling ? prev : kInvalidSlot);
  }
  guard->MarkDirty();
  if (up && page.FirstChildOf(ps) == kInvalidSlot) {
    return NodeID{guard->page_id(), ps};  // fragment emptied
  }
  return kInvalidNodeID;
}

Status DocumentUpdater::DeleteSubtree(NodeID node) {
  if (node == doc_->root) {
    return Status::InvalidArgument("cannot delete the document root");
  }
  // A stale synopsis would keep reporting the deleted subtree's counts.
  db_->InvalidateSummary();
  std::unordered_set<PageId> touched;
  {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard,
                             db_->buffer()->Fix(node.page));
    TreePage page(guard.data(), db_->options().page_size);
    if (node.slot >= page.slot_count() || !page.IsLive(node.slot) ||
        page.KindOf(node.slot) != RecordKind::kCore) {
      return Status::InvalidArgument("not a live element: " +
                                     node.ToString());
    }
    // Unlink from the sibling chain; collapse border pairs whose
    // fragments become empty (possibly cascading across clusters).
    NAVPATH_ASSIGN_OR_RETURN(NodeID emptied,
                             UnlinkChainElement(&guard, node.slot));
    touched.insert(node.page);
    guard.Release();
    while (emptied.valid()) {
      NAVPATH_ASSIGN_OR_RETURN(PageGuard up_guard,
                               db_->buffer()->Fix(emptied.page));
      TreePage up_page(up_guard.data(), db_->options().page_size);
      const NodeID partner = up_page.PartnerOf(emptied.slot);
      up_page.RemoveRecord(emptied.slot);
      up_guard.MarkDirty();
      touched.insert(emptied.page);
      up_guard.Release();

      NAVPATH_ASSIGN_OR_RETURN(PageGuard down_guard,
                               db_->buffer()->Fix(partner.page));
      NAVPATH_ASSIGN_OR_RETURN(emptied,
                               UnlinkChainElement(&down_guard, partner.slot));
      TreePage down_page(down_guard.data(), db_->options().page_size);
      down_page.RemoveRecord(partner.slot);
      down_guard.MarkDirty();
      touched.insert(partner.page);
      --doc_->border_pairs;
    }
  }

  // Remove the subtree's records across every cluster it spans.
  std::vector<NodeID> work{node};
  while (!work.empty()) {
    const NodeID root = work.back();
    work.pop_back();
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard,
                             db_->buffer()->Fix(root.page));
    TreePage page(guard.data(), db_->options().page_size);
    for (const SlotId s : CollectLocalSubtree(page, root.slot)) {
      switch (page.KindOf(s)) {
        case RecordKind::kCore:
          --doc_->core_records;
          break;
        case RecordKind::kAttribute:
          --doc_->attribute_records;
          break;
        case RecordKind::kBorderDown:
          work.push_back(page.PartnerOf(s));
          --doc_->border_pairs;
          break;
        case RecordKind::kBorderUp:
          break;  // the fragment root itself (when root is an up-border)
      }
      page.RemoveRecord(s);
    }
    guard.MarkDirty();
    touched.insert(root.page);
  }

  for (const PageId pid : touched) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, db_->buffer()->Fix(pid));
    TreePage page(guard.data(), db_->options().page_size);
    page.Compact();
    guard.MarkDirty();
  }
  return Status::OK();
}

Result<std::uint64_t> DocumentUpdater::MaxOrderInSubtree(NodeID node) {
  CrossClusterCursor cursor(db_);
  NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kDescendantOrSelf, node));
  std::uint64_t max_order = 0;
  LogicalNode n;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&n));
    if (!more) break;
    max_order = std::max(max_order, n.order);
  }
  return max_order;
}

Result<std::uint64_t> DocumentUpdater::DocOrderSuccessor(
    NodeID node, std::uint64_t fallback) {
  CrossClusterCursor cursor(db_);
  NodeID cur = node;
  for (;;) {
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kFollowingSibling, cur));
    LogicalNode n;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_sibling, cursor.Next(&n));
    if (has_sibling) return n.order;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kParent, cur));
    NAVPATH_ASSIGN_OR_RETURN(const bool has_parent, cursor.Next(&n));
    if (!has_parent) return fallback;  // end of document
    cur = n.id;
  }
}

Status DocumentUpdater::EvacuateSubtree(PageId pid,
                                        const std::vector<SlotId>& protect) {
  NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, db_->buffer()->Fix(pid));
  const std::size_t page_size = db_->options().page_size;
  TreePage page(guard.data(), page_size);
  const std::unordered_set<SlotId> protected_slots(protect.begin(),
                                                   protect.end());

  // Victim: the live core with the largest local subtree that contains
  // no protected slot and is not the document root.
  SlotId victim = kInvalidSlot;
  std::vector<SlotId> victim_subtree;
  std::size_t victim_bytes = 0;
  for (SlotId s = 0; s < page.slot_count(); ++s) {
    if (!page.IsLive(s) || page.KindOf(s) != RecordKind::kCore) continue;
    if (page.ParentOf(s) == kInvalidSlot) continue;  // document root
    if (protected_slots.count(s) > 0) continue;
    const std::vector<SlotId> subtree = CollectLocalSubtree(page, s);
    bool eligible = true;
    std::size_t bytes = 0;
    for (const SlotId member : subtree) {
      if (protected_slots.count(member) > 0) {
        eligible = false;
        break;
      }
      bytes += page.RecordBytes(member) + TreePage::kSlotEntryBytes;
    }
    if (eligible && bytes > victim_bytes) {
      victim = s;
      victim_bytes = bytes;
      victim_subtree = subtree;
    }
  }
  if (victim == kInvalidSlot) {
    return Status::ResourceExhausted("page full and nothing evacuable: " +
                                     std::to_string(pid));
  }

  // Chain context of the victim before removal.
  const SlotId ps = page.ParentOf(victim);
  const SlotId prev = page.PrevSiblingOf(victim);
  const SlotId next = page.NextSiblingOf(victim);
  const bool up = page.KindOf(ps) == RecordKind::kBorderUp;

  // Build the new cluster.
  NAVPATH_ASSIGN_OR_RETURN(const PageId new_pid, AppendPage());
  NAVPATH_ASSIGN_OR_RETURN(PageGuard new_guard,
                           db_->buffer()->Fix(new_pid));
  TreePage new_page(new_guard.data(), page_size);
  NAVPATH_ASSIGN_OR_RETURN(const SlotId up_slot,
                           new_page.AddBorderRecord(RecordKind::kBorderUp));
  std::unordered_map<SlotId, SlotId> remap;
  for (const SlotId s : victim_subtree) {
    SlotId ns;
    switch (page.KindOf(s)) {
      case RecordKind::kCore: {
        NAVPATH_ASSIGN_OR_RETURN(
            ns, new_page.AddCoreRecord(page.TagOf(s), page.OrderOf(s),
                                       page.TextOf(s)));
        break;
      }
      case RecordKind::kAttribute: {
        NAVPATH_ASSIGN_OR_RETURN(
            ns, new_page.AddAttributeRecord(page.TagOf(s), page.OrderOf(s),
                                            page.TextOf(s)));
        break;
      }
      default: {
        NAVPATH_ASSIGN_OR_RETURN(
            ns, new_page.AddBorderRecord(RecordKind::kBorderDown));
        new_page.SetPartner(ns, page.PartnerOf(s));
        break;
      }
    }
    remap[s] = ns;
  }
  // Rewire the copied records; the victim's external links point at the
  // new up-border (it becomes a plain fragment root child).
  auto map_link = [&](SlotId old_link) {
    if (old_link == kInvalidSlot) return kInvalidSlot;
    auto it = remap.find(old_link);
    return it == remap.end() ? up_slot : it->second;
  };
  for (const SlotId s : victim_subtree) {
    const SlotId ns = remap.at(s);
    new_page.SetParent(ns, map_link(page.ParentOf(s)));
    new_page.SetFirstChild(ns, map_link(page.FirstChildOf(s)));
    new_page.SetNextSibling(ns, map_link(page.NextSiblingOf(s)));
    new_page.SetPrevSibling(ns, map_link(page.PrevSiblingOf(s)));
    if (!page.IsBorder(s)) {
      new_page.SetFirstAttr(ns, map_link(page.FirstAttrOf(s)));
    }
  }
  const SlotId new_victim = remap.at(victim);
  new_page.SetFirstChild(up_slot, new_victim);
  new_page.SetLastChild(up_slot, new_victim);
  new_page.SetParent(new_victim, up_slot);
  new_page.SetPrevSibling(new_victim, up_slot);
  new_page.SetNextSibling(new_victim, up_slot);
  new_guard.MarkDirty();

  // Moved down-borders changed address: retarget their partners.
  for (const SlotId s : victim_subtree) {
    if (page.KindOf(s) != RecordKind::kBorderDown) continue;
    const NodeID target = page.PartnerOf(s);
    NAVPATH_ASSIGN_OR_RETURN(PageGuard target_guard,
                             db_->buffer()->Fix(target.page));
    TreePage target_page(target_guard.data(), page_size);
    target_page.SetPartner(target.slot, NodeID{new_pid, remap.at(s)});
    target_guard.MarkDirty();
  }

  // Reclaim the space and leave a border pair at the victim's position.
  for (const SlotId s : victim_subtree) page.RemoveRecord(s);
  page.Compact();
  NAVPATH_ASSIGN_OR_RETURN(const SlotId down_slot,
                           page.AddBorderRecord(RecordKind::kBorderDown));
  page.SetPartner(down_slot, NodeID{new_pid, up_slot});
  new_page.SetPartner(up_slot, NodeID{pid, down_slot});
  page.SetParent(down_slot, ps);
  page.SetPrevSibling(down_slot, prev);
  page.SetNextSibling(down_slot, next);
  const bool prev_is_sibling = prev != kInvalidSlot && !(up && prev == ps);
  const bool next_is_sibling = next != kInvalidSlot && !(up && next == ps);
  if (prev_is_sibling) {
    page.SetNextSibling(prev, down_slot);
  } else {
    page.SetFirstChild(ps, down_slot);
  }
  if (next_is_sibling) {
    page.SetPrevSibling(next, down_slot);
  } else if (up) {
    page.SetLastChild(ps, down_slot);
  }
  guard.MarkDirty();
  ++doc_->border_pairs;
  return Status::OK();
}

Result<InsertedNode> DocumentUpdater::InsertElement(
    NodeID parent, NodeID after, TagId tag, std::string_view text,
    const std::vector<AttributeSpec>& attrs) {
  const std::size_t page_size = db_->options().page_size;
  // The summary's exact counts and extents no longer describe the store.
  db_->InvalidateSummary();
  CrossClusterCursor cursor(db_);

  // Validate the anchors and find the document-order neighbors.
  NAVPATH_ASSIGN_OR_RETURN(const LogicalNode parent_node,
                           cursor.Describe(parent));
  std::uint64_t pred_order;
  std::uint64_t succ_order;
  if (after.valid()) {
    LogicalNode check;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kParent, after));
    NAVPATH_ASSIGN_OR_RETURN(const bool has_parent, cursor.Next(&check));
    if (!has_parent || check.id != parent) {
      return Status::InvalidArgument("'after' is not a child of 'parent'");
    }
    NAVPATH_ASSIGN_OR_RETURN(pred_order, MaxOrderInSubtree(after));
    // Successor: the next logical child, else the first node after the
    // whole subtree of `after`.
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kFollowingSibling, after));
    LogicalNode sibling;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_sibling, cursor.Next(&sibling));
    if (has_sibling) {
      succ_order = sibling.order;
    } else {
      NAVPATH_ASSIGN_OR_RETURN(
          succ_order,
          DocOrderSuccessor(parent, pred_order + 2 * kOrderKeyGap));
    }
  } else {
    pred_order = parent_node.order;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, parent));
    LogicalNode first_child;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_child, cursor.Next(&first_child));
    if (has_child) {
      succ_order = first_child.order;
    } else {
      NAVPATH_ASSIGN_OR_RETURN(
          succ_order,
          DocOrderSuccessor(parent, pred_order + 2 * kOrderKeyGap));
    }
  }
  if (succ_order - pred_order < 2) {
    return Status::ResourceExhausted(
        "order keys exhausted between neighbors; re-import to renumber");
  }
  const std::uint64_t order = pred_order + (succ_order - pred_order) / 2;

  // The chain position lives in `after`'s page (append) or the parent's
  // page (prepend).
  const PageId pid = after.valid() ? after.page : parent.page;
  const std::size_t text_cap = db_->options().import.text_cap;
  const std::string_view stored_text =
      text.substr(0, std::min(text.size(), text_cap));
  std::size_t attr_space = 0;
  for (const AttributeSpec& attr : attrs) {
    attr_space +=
        TreePage::CoreRecordSpace(std::min(attr.value.size(), text_cap));
  }

  // Writes the attribute chain next to a freshly inserted element.
  auto place_attrs = [&](TreePage page, SlotId element_slot,
                         std::uint64_t element_order) -> Status {
    SlotId prev = kInvalidSlot;
    std::uint64_t attr_order = element_order;
    for (const AttributeSpec& attr : attrs) {
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId slot,
          page.AddAttributeRecord(
              attr.name, ++attr_order,
              std::string_view(attr.value)
                  .substr(0, std::min(attr.value.size(), text_cap))));
      page.SetParent(slot, element_slot);
      if (prev == kInvalidSlot) {
        page.SetFirstAttr(element_slot, slot);
      } else {
        page.SetNextSibling(prev, slot);
      }
      prev = slot;
      ++doc_->attribute_records;
    }
    return Status::OK();
  };

  for (int attempt = 0; attempt < 2; ++attempt) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, db_->buffer()->Fix(pid));
    TreePage page(guard.data(), page_size);

    // Chain context.
    SlotId ps;
    SlotId left;
    SlotId right;
    if (after.valid()) {
      ps = page.ParentOf(after.slot);
      left = after.slot;
      right = page.NextSiblingOf(after.slot);
    } else {
      ps = parent.slot;
      left = kInvalidSlot;
      right = page.FirstChildOf(parent.slot);
    }
    const bool up = page.KindOf(ps) == RecordKind::kBorderUp;
    const bool right_is_sibling =
        right != kInvalidSlot && !(up && right == ps);

    SlotId element_slot = kInvalidSlot;  // the chain element to link
    InsertedNode result;
    result.order = order;
    if (page.FreeBytes() >=
        TreePage::CoreRecordSpace(stored_text.size()) + attr_space) {
      NAVPATH_ASSIGN_OR_RETURN(element_slot,
                               page.AddCoreRecord(tag, order, stored_text));
      NAVPATH_RETURN_NOT_OK(place_attrs(page, element_slot, order));
      result.id = NodeID{pid, element_slot};
      ++doc_->core_records;
    } else if (page.FreeBytes() >= TreePage::BorderRecordSpace()) {
      // New single-element fragment behind a border pair.
      NAVPATH_ASSIGN_OR_RETURN(const PageId new_pid, AppendPage());
      NAVPATH_ASSIGN_OR_RETURN(PageGuard new_guard,
                               db_->buffer()->Fix(new_pid));
      TreePage new_page(new_guard.data(), page_size);
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId up_slot,
          new_page.AddBorderRecord(RecordKind::kBorderUp));
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId core_slot,
          new_page.AddCoreRecord(tag, order, stored_text));
      NAVPATH_RETURN_NOT_OK(place_attrs(new_page, core_slot, order));
      new_page.SetFirstChild(up_slot, core_slot);
      new_page.SetLastChild(up_slot, core_slot);
      new_page.SetParent(core_slot, up_slot);
      new_page.SetPrevSibling(core_slot, up_slot);
      new_page.SetNextSibling(core_slot, up_slot);
      NAVPATH_ASSIGN_OR_RETURN(
          element_slot, page.AddBorderRecord(RecordKind::kBorderDown));
      page.SetPartner(element_slot, NodeID{new_pid, up_slot});
      new_page.SetPartner(up_slot, NodeID{pid, element_slot});
      new_guard.MarkDirty();
      result.id = NodeID{new_pid, core_slot};
      ++doc_->core_records;
      ++doc_->border_pairs;
    } else {
      // No room even for a down-border: split the page and retry once.
      if (attempt > 0) {
        return Status::ResourceExhausted("page split did not free space");
      }
      std::vector<SlotId> protect{ps};
      if (after.valid()) protect.push_back(after.slot);
      if (right != kInvalidSlot) protect.push_back(right);
      guard.Release();
      NAVPATH_RETURN_NOT_OK(EvacuateSubtree(pid, protect));
      continue;
    }

    // Link the new chain element between left and right.
    page.SetParent(element_slot, ps);
    if (left != kInvalidSlot) {
      page.SetNextSibling(left, element_slot);
      page.SetPrevSibling(element_slot, left);
    } else {
      page.SetFirstChild(ps, element_slot);
      page.SetPrevSibling(element_slot, up ? ps : kInvalidSlot);
    }
    if (right_is_sibling) {
      page.SetNextSibling(element_slot, right);
      page.SetPrevSibling(right, element_slot);
    } else {
      page.SetNextSibling(element_slot, up ? ps : kInvalidSlot);
      if (up) page.SetLastChild(ps, element_slot);
    }
    guard.MarkDirty();
    return result;
  }
  return Status::ResourceExhausted("insert failed after page split");
}

}  // namespace navpath
