#include "store/update.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "store/cross_cursor.h"
#include "store/tree_page.h"
#include "xml/dom.h"  // kOrderKeyGap

namespace navpath {
namespace {

/// Longest document-order run respaced by one gap redistribution. Bounds
/// the work of a single insert; the run's key range is re-spread evenly,
/// so headroom grows geometrically with repeated redistributions.
constexpr std::size_t kRedistributeRun = 32;

/// Collects `root` and all records of its subtree that live in the same
/// page (down-borders are leaves), in depth-first order.
std::vector<SlotId> CollectLocalSubtree(const TreePage& page, SlotId root) {
  std::vector<SlotId> out;
  std::vector<SlotId> stack{root};
  while (!stack.empty()) {
    const SlotId s = stack.back();
    stack.pop_back();
    out.push_back(s);
    // A local subtree can never exceed the page's record count; more
    // means a corrupted (cyclic) chain.
    NAVPATH_CHECK_MSG(out.size() <= page.slot_count(),
                      "cyclic sibling chain detected");
    const RecordKind kind = page.KindOf(s);
    if (kind == RecordKind::kBorderDown || kind == RecordKind::kAttribute) {
      continue;
    }
    if (kind == RecordKind::kCore) {
      for (SlotId a = page.FirstAttrOf(s); a != kInvalidSlot;
           a = page.NextSiblingOf(a)) {
        out.push_back(a);
      }
    }
    // Children chains below interior cores terminate with kInvalidSlot;
    // a fragment root's (up-border's) chain loops back to the root itself.
    std::vector<SlotId> children;
    for (SlotId c = page.FirstChildOf(s); c != kInvalidSlot && c != s;
         c = page.NextSiblingOf(c)) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

}  // namespace

Result<PageGuard> DocumentUpdater::FixPage(PageId id) {
  if (io_ != nullptr) return io_->FixMutable(id);
  return db_->buffer()->Fix(id);
}

CrossClusterCursor DocumentUpdater::MakeCursor() {
  if (io_ == nullptr) return CrossClusterCursor(db_);
  return CrossClusterCursor(db_, io_->translator(),
                            [io = io_](PageId p) { io->NoteReadDependency(p); });
}

void DocumentUpdater::NoteStructuralChange() {
  if (io_ == nullptr) {
    db_->InvalidateSummary();
  } else {
    structural_change_ = true;
  }
}

Result<PageId> DocumentUpdater::AppendPage() {
  PageId id;
  if (io_ == nullptr) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, db_->buffer()->NewPage());
    TreePage::Initialize(guard.data(), db_->options().page_size);
    guard.MarkDirty();
    id = guard.page_id();
  } else {
    NAVPATH_ASSIGN_OR_RETURN(id, io_->AppendLogicalPage());
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, io_->FixMutable(id));
    TreePage::Initialize(guard.data(), db_->options().page_size);
    guard.MarkDirty();
  }
  doc_->last_page = std::max(doc_->last_page, id);
  ++doc_->pages;
  return id;
}

Result<NodeID> DocumentUpdater::UnlinkChainElement(PageGuard* guard,
                                                   PageId logical,
                                                   SlotId slot) {
  TreePage page(guard->data(), db_->options().page_size);
  const SlotId ps = page.ParentOf(slot);
  NAVPATH_CHECK(ps != kInvalidSlot);
  const bool up = page.KindOf(ps) == RecordKind::kBorderUp;
  const SlotId prev = page.PrevSiblingOf(slot);
  const SlotId next = page.NextSiblingOf(slot);
  const bool prev_is_sibling =
      prev != kInvalidSlot && !(up && prev == ps);
  const bool next_is_sibling =
      next != kInvalidSlot && !(up && next == ps);

  if (prev_is_sibling) {
    page.SetNextSibling(prev, next);
  } else {
    page.SetFirstChild(ps, next_is_sibling ? next : kInvalidSlot);
  }
  if (next_is_sibling) {
    page.SetPrevSibling(next, prev);
  } else if (up) {
    page.SetLastChild(ps, prev_is_sibling ? prev : kInvalidSlot);
  }
  guard->MarkDirty();
  if (up && page.FirstChildOf(ps) == kInvalidSlot) {
    return NodeID{logical, ps};  // fragment emptied
  }
  return kInvalidNodeID;
}

Status DocumentUpdater::CollectDeleteDeltas(NodeID node) {
  // Root-to-node path of the subtree root; descendants extend it.
  NAVPATH_ASSIGN_OR_RETURN(std::vector<TagId> base, TagPathOf(node));
  // Fold repeated paths (an ordered map keeps the emitted delta order
  // deterministic).
  std::map<std::pair<std::vector<TagId>, DomNodeKind>, std::uint64_t> folded;
  CrossClusterCursor cursor = MakeCursor();
  struct Item {
    NodeID id;
    std::vector<TagId> path;
  };
  std::vector<Item> stack;
  stack.push_back(Item{node, std::move(base)});
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    LogicalNode n;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kAttribute, item.id));
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&n));
      if (!more) break;
      std::vector<TagId> attr_path = item.path;
      attr_path.push_back(n.tag);
      ++folded[{std::move(attr_path), DomNodeKind::kAttribute}];
    }
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, item.id));
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&n));
      if (!more) break;
      std::vector<TagId> child_path = item.path;
      child_path.push_back(n.tag);
      stack.push_back(Item{n.id, std::move(child_path)});
    }
    ++folded[{std::move(item.path), DomNodeKind::kElement}];
  }
  for (auto& [key, count] : folded) {
    SummaryDelete del;
    del.tags = key.first;
    del.kind = key.second;
    del.count = count;
    summary_deletes_.push_back(std::move(del));
  }
  return Status::OK();
}

Status DocumentUpdater::DeleteSubtree(NodeID node) {
  if (node == doc_->root) {
    return Status::InvalidArgument("cannot delete the document root");
  }
  {
    // Validate before touching any chain (and before delta collection
    // walks the subtree).
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(node.page));
    TreePage page(guard.data(), db_->options().page_size);
    if (node.slot >= page.slot_count() || !page.IsLive(node.slot) ||
        page.KindOf(node.slot) != RecordKind::kCore) {
      return Status::InvalidArgument("not a live element: " +
                                     node.ToString());
    }
  }
  if (io_ == nullptr) {
    // A stale synopsis would keep reporting the deleted subtree's counts;
    // legacy in-place mode invalidates wholesale.
    NoteStructuralChange();
  } else {
    // Transaction mode maintains the synopsis: fold the subtree into
    // per-path count decrements before the chains are unlinked. Extents
    // keep the (now over-approximate) pages — conservative for sweeps.
    NAVPATH_RETURN_NOT_OK(CollectDeleteDeltas(node));
  }
  std::unordered_set<PageId> touched;
  {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(node.page));
    // Unlink from the sibling chain; collapse border pairs whose
    // fragments become empty (possibly cascading across clusters).
    NAVPATH_ASSIGN_OR_RETURN(NodeID emptied,
                             UnlinkChainElement(&guard, node.page, node.slot));
    touched.insert(node.page);
    guard.Release();
    while (emptied.valid()) {
      NAVPATH_ASSIGN_OR_RETURN(PageGuard up_guard, FixPage(emptied.page));
      TreePage up_page(up_guard.data(), db_->options().page_size);
      const NodeID partner = up_page.PartnerOf(emptied.slot);
      up_page.RemoveRecord(emptied.slot);
      up_guard.MarkDirty();
      touched.insert(emptied.page);
      up_guard.Release();

      NAVPATH_ASSIGN_OR_RETURN(PageGuard down_guard, FixPage(partner.page));
      NAVPATH_ASSIGN_OR_RETURN(
          emptied,
          UnlinkChainElement(&down_guard, partner.page, partner.slot));
      TreePage down_page(down_guard.data(), db_->options().page_size);
      down_page.RemoveRecord(partner.slot);
      down_guard.MarkDirty();
      touched.insert(partner.page);
      --doc_->border_pairs;
    }
  }

  // Remove the subtree's records across every cluster it spans.
  std::vector<NodeID> work{node};
  while (!work.empty()) {
    const NodeID root = work.back();
    work.pop_back();
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(root.page));
    TreePage page(guard.data(), db_->options().page_size);
    for (const SlotId s : CollectLocalSubtree(page, root.slot)) {
      switch (page.KindOf(s)) {
        case RecordKind::kCore:
          --doc_->core_records;
          break;
        case RecordKind::kAttribute:
          --doc_->attribute_records;
          break;
        case RecordKind::kBorderDown:
          work.push_back(page.PartnerOf(s));
          --doc_->border_pairs;
          break;
        case RecordKind::kBorderUp:
          break;  // the fragment root itself (when root is an up-border)
      }
      page.RemoveRecord(s);
    }
    guard.MarkDirty();
    touched.insert(root.page);
  }

  for (const PageId pid : touched) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(pid));
    TreePage page(guard.data(), db_->options().page_size);
    page.Compact();
    guard.MarkDirty();
  }
  return Status::OK();
}

Result<std::uint64_t> DocumentUpdater::MaxOrderInSubtree(NodeID node) {
  CrossClusterCursor cursor = MakeCursor();
  NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kDescendantOrSelf, node));
  std::uint64_t max_order = 0;
  LogicalNode n;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&n));
    if (!more) break;
    max_order = std::max(max_order, n.order);
  }
  return max_order;
}

Result<std::uint64_t> DocumentUpdater::DocOrderSuccessor(
    NodeID node, std::uint64_t fallback, NodeID* succ_id) {
  CrossClusterCursor cursor = MakeCursor();
  NodeID cur = node;
  for (;;) {
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kFollowingSibling, cur));
    LogicalNode n;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_sibling, cursor.Next(&n));
    if (has_sibling) {
      if (succ_id != nullptr) *succ_id = n.id;
      return n.order;
    }
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kParent, cur));
    NAVPATH_ASSIGN_OR_RETURN(const bool has_parent, cursor.Next(&n));
    if (!has_parent) {
      if (succ_id != nullptr) *succ_id = kInvalidNodeID;
      return fallback;  // end of document
    }
    cur = n.id;
  }
}

Result<std::vector<TagId>> DocumentUpdater::TagPathOf(NodeID node) {
  CrossClusterCursor cursor = MakeCursor();
  NAVPATH_ASSIGN_OR_RETURN(LogicalNode cur, cursor.Describe(node));
  std::vector<TagId> tags{cur.tag};
  for (;;) {
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kParent, cur.id));
    LogicalNode up;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_parent, cursor.Next(&up));
    if (!has_parent) break;
    tags.push_back(up.tag);
    cur = up;
  }
  std::reverse(tags.begin(), tags.end());
  return tags;
}

Result<std::uint64_t> DocumentUpdater::RedistributeOrderKeys(
    std::uint64_t pred_order, NodeID succ, std::uint64_t reserve) {
  const std::size_t page_size = db_->options().page_size;
  CrossClusterCursor cursor = MakeCursor();

  // Advances to the next node in document order (first child, else
  // following sibling, else the nearest ancestor's following sibling).
  auto next_in_doc_order = [&](NodeID cur, NodeID* out) -> Result<bool> {
    LogicalNode n;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, cur));
    NAVPATH_ASSIGN_OR_RETURN(bool has, cursor.Next(&n));
    if (has) {
      *out = n.id;
      return true;
    }
    NodeID a = cur;
    for (;;) {
      NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kFollowingSibling, a));
      NAVPATH_ASSIGN_OR_RETURN(has, cursor.Next(&n));
      if (has) {
        *out = n.id;
        return true;
      }
      NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kParent, a));
      NAVPATH_ASSIGN_OR_RETURN(has, cursor.Next(&n));
      if (!has) return false;
      a = n.id;
    }
  };

  // Collect the bounded forward run and the key bound beyond it. The run
  // is a contiguous document-order (preorder) segment, so respacing it
  // monotonically inside (pred_order, bound) preserves global order.
  struct RunNode {
    NodeID id;
    std::uint64_t attrs = 0;
  };
  std::vector<RunNode> run;
  std::uint64_t total_units = reserve;  // key slots the new insert needs
  std::uint64_t last_old_order = pred_order;
  std::uint64_t bound = 0;
  bool bounded = false;
  NodeID cur = succ;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const LogicalNode info, cursor.Describe(cur));
    if (run.size() == kRedistributeRun) {
      bound = info.order;  // first node left untouched
      bounded = true;
      break;
    }
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(cur.page));
    TreePage page(guard.data(), page_size);
    std::uint64_t attrs = 0;
    for (SlotId a = page.FirstAttrOf(cur.slot); a != kInvalidSlot;
         a = page.NextSiblingOf(a)) {
      ++attrs;
    }
    guard.Release();
    run.push_back(RunNode{cur, attrs});
    total_units += 1 + attrs;
    last_old_order = info.order + attrs;
    NodeID next;
    NAVPATH_ASSIGN_OR_RETURN(const bool more, next_in_doc_order(cur, &next));
    if (!more) break;
    cur = next;
  }
  if (!bounded) {
    // The run reaches the document tail: nothing above constrains the
    // keys, so extend the range by a fresh import-sized gap.
    bound = last_old_order + 2 * kOrderKeyGap;
  }
  if (bound <= pred_order ||
      bound - pred_order <= total_units + run.size()) {
    return Status::ResourceExhausted(
        "order keys exhausted between neighbors; re-import to renumber");
  }

  // Even respacing: every node (and the pending insert) gets its key
  // slots plus `slack` headroom; slack >= 1 by the check above.
  const std::uint64_t slack =
      (bound - pred_order - total_units) / (run.size() + 1);
  std::uint64_t key = pred_order + reserve + slack;
  const std::uint64_t new_succ_order = key;
  for (const RunNode& rn : run) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(rn.id.page));
    TreePage page(guard.data(), page_size);
    page.SetOrder(rn.id.slot, key);
    std::uint64_t attr_key = key;
    for (SlotId a = page.FirstAttrOf(rn.id.slot); a != kInvalidSlot;
         a = page.NextSiblingOf(a)) {
      page.SetOrder(a, ++attr_key);
    }
    guard.MarkDirty();
    key += 1 + rn.attrs + slack;
  }
  return new_succ_order;
}

Status DocumentUpdater::EvacuateSubtree(PageId pid,
                                        const std::vector<SlotId>& protect,
                                        std::size_t needed_bytes) {
  NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(pid));
  const std::size_t page_size = db_->options().page_size;
  TreePage page(guard.data(), page_size);
  const std::unordered_set<SlotId> protected_slots(protect.begin(),
                                                   protect.end());

  // Record relocation breaks NodeID identity for the moved subtree. In
  // legacy mode the synopsis extents can no longer be maintained and the
  // whole summary is invalidated; in transaction mode the relocation is a
  // page remap (every record of `pid` that moved now lives on the new
  // page), applied to the committed version's extents.
  if (io_ == nullptr) NoteStructuralChange();

  // Eligibility per chain element: a live core (with its local subtree)
  // or down-border, not the document root, whose local records contain no
  // protected slot. Down-borders can never seed an evacuation (swapping
  // one border for another frees nothing) but ride along inside a run,
  // where the run's single replacement border is already paid for.
  struct Candidate {
    std::vector<SlotId> subtree;
    std::size_t bytes = 0;
  };
  std::unordered_map<SlotId, Candidate> eligible;
  SlotId victim = kInvalidSlot;
  std::size_t victim_bytes = 0;
  for (SlotId s = 0; s < page.slot_count(); ++s) {
    if (!page.IsLive(s)) continue;
    const RecordKind kind = page.KindOf(s);
    if (kind != RecordKind::kCore && kind != RecordKind::kBorderDown) {
      continue;
    }
    if (page.ParentOf(s) == kInvalidSlot) continue;  // document root
    if (protected_slots.count(s) > 0) continue;
    Candidate c;
    c.subtree = kind == RecordKind::kCore ? CollectLocalSubtree(page, s)
                                          : std::vector<SlotId>{s};
    bool ok = true;
    for (const SlotId member : c.subtree) {
      if (protected_slots.count(member) > 0) {
        ok = false;
        break;
      }
      c.bytes += page.RecordBytes(member) + TreePage::kSlotEntryBytes;
    }
    if (!ok) continue;
    if (kind == RecordKind::kCore && c.bytes > victim_bytes) {
      victim = s;
      victim_bytes = c.bytes;
    }
    eligible.emplace(s, std::move(c));
  }
  if (victim == kInvalidSlot) {
    return Status::ResourceExhausted("page full and nothing evacuable: " +
                                     std::to_string(pid));
  }

  // Grow a contiguous sibling run around the victim until evacuating it
  // frees `needed_bytes` beyond the down-border left in its place. A page
  // packed with tiny leaves is the motivating case: no single subtree
  // frees net space there, but a run shares one border pair across all
  // its members.
  const SlotId ps = page.ParentOf(victim);
  const bool up = page.KindOf(ps) == RecordKind::kBorderUp;
  // In a fragment the chain loops back to the up-border; treat that (and
  // a chain end) as "no sibling".
  const auto chain_sibling = [&](SlotId s) {
    return (s == kInvalidSlot || (up && s == ps)) ? kInvalidSlot : s;
  };
  const std::size_t evac_cost =
      TreePage::BorderRecordSpace() + TreePage::kSlotEntryBytes;
  const std::size_t target = needed_bytes + evac_cost;
  SlotId first = victim;
  SlotId last = victim;
  std::size_t freed = victim_bytes;
  while (freed < target) {
    const SlotId n = chain_sibling(page.NextSiblingOf(last));
    if (n == kInvalidSlot || eligible.count(n) == 0) break;
    last = n;
    freed += eligible.at(n).bytes;
  }
  while (freed < target) {
    const SlotId p = chain_sibling(page.PrevSiblingOf(first));
    if (p == kInvalidSlot || eligible.count(p) == 0) break;
    first = p;
    freed += eligible.at(p).bytes;
  }
  if (freed <= evac_cost) {
    return Status::ResourceExhausted("page full and nothing evacuable: " +
                                     std::to_string(pid));
  }
  std::vector<SlotId> run_roots;
  std::vector<SlotId> victim_subtree;
  for (SlotId s = first;; s = page.NextSiblingOf(s)) {
    run_roots.push_back(s);
    const auto& sub = eligible.at(s).subtree;
    victim_subtree.insert(victim_subtree.end(), sub.begin(), sub.end());
    if (s == last) break;
  }

  // Chain context of the run before removal.
  const SlotId prev = page.PrevSiblingOf(first);
  const SlotId next = page.NextSiblingOf(last);

  // Build the new cluster.
  NAVPATH_ASSIGN_OR_RETURN(const PageId new_pid, AppendPage());
  if (io_ != nullptr) {
    summary_remaps_.push_back(SummaryPageRemap{pid, new_pid});
  }
  NAVPATH_ASSIGN_OR_RETURN(PageGuard new_guard, FixPage(new_pid));
  TreePage new_page(new_guard.data(), page_size);
  NAVPATH_ASSIGN_OR_RETURN(const SlotId up_slot,
                           new_page.AddBorderRecord(RecordKind::kBorderUp));
  std::unordered_map<SlotId, SlotId> remap;
  for (const SlotId s : victim_subtree) {
    SlotId ns;
    switch (page.KindOf(s)) {
      case RecordKind::kCore: {
        NAVPATH_ASSIGN_OR_RETURN(
            ns, new_page.AddCoreRecord(page.TagOf(s), page.OrderOf(s),
                                       page.TextOf(s)));
        break;
      }
      case RecordKind::kAttribute: {
        NAVPATH_ASSIGN_OR_RETURN(
            ns, new_page.AddAttributeRecord(page.TagOf(s), page.OrderOf(s),
                                            page.TextOf(s)));
        break;
      }
      default: {
        NAVPATH_ASSIGN_OR_RETURN(
            ns, new_page.AddBorderRecord(RecordKind::kBorderDown));
        new_page.SetPartner(ns, page.PartnerOf(s));
        break;
      }
    }
    remap[s] = ns;
  }
  // Rewire the copied records; the victim's external links point at the
  // new up-border (it becomes a plain fragment root child).
  auto map_link = [&](SlotId old_link) {
    if (old_link == kInvalidSlot) return kInvalidSlot;
    auto it = remap.find(old_link);
    return it == remap.end() ? up_slot : it->second;
  };
  for (const SlotId s : victim_subtree) {
    const SlotId ns = remap.at(s);
    new_page.SetParent(ns, map_link(page.ParentOf(s)));
    new_page.SetFirstChild(ns, map_link(page.FirstChildOf(s)));
    new_page.SetNextSibling(ns, map_link(page.NextSiblingOf(s)));
    new_page.SetPrevSibling(ns, map_link(page.PrevSiblingOf(s)));
    if (!page.IsBorder(s)) {
      new_page.SetFirstAttr(ns, map_link(page.FirstAttrOf(s)));
    }
  }
  // Sibling links between run roots were remapped above; only the run's
  // outer boundary needs to be folded back onto the up-border.
  const SlotId new_first = remap.at(first);
  const SlotId new_last = remap.at(last);
  new_page.SetFirstChild(up_slot, new_first);
  new_page.SetLastChild(up_slot, new_last);
  for (const SlotId r : run_roots) new_page.SetParent(remap.at(r), up_slot);
  new_page.SetPrevSibling(new_first, up_slot);
  new_page.SetNextSibling(new_last, up_slot);
  new_guard.MarkDirty();

  // Moved down-borders changed address: retarget their partners.
  for (const SlotId s : victim_subtree) {
    if (page.KindOf(s) != RecordKind::kBorderDown) continue;
    const NodeID target = page.PartnerOf(s);
    NAVPATH_ASSIGN_OR_RETURN(PageGuard target_guard, FixPage(target.page));
    TreePage target_page(target_guard.data(), page_size);
    target_page.SetPartner(target.slot, NodeID{new_pid, remap.at(s)});
    target_guard.MarkDirty();
  }

  // Reclaim the space and leave a border pair at the run's position.
  for (const SlotId s : victim_subtree) page.RemoveRecord(s);
  page.Compact();
  NAVPATH_ASSIGN_OR_RETURN(const SlotId down_slot,
                           page.AddBorderRecord(RecordKind::kBorderDown));
  page.SetPartner(down_slot, NodeID{new_pid, up_slot});
  new_page.SetPartner(up_slot, NodeID{pid, down_slot});
  page.SetParent(down_slot, ps);
  page.SetPrevSibling(down_slot, prev);
  page.SetNextSibling(down_slot, next);
  const bool prev_is_sibling = prev != kInvalidSlot && !(up && prev == ps);
  const bool next_is_sibling = next != kInvalidSlot && !(up && next == ps);
  if (prev_is_sibling) {
    page.SetNextSibling(prev, down_slot);
  } else {
    page.SetFirstChild(ps, down_slot);
  }
  if (next_is_sibling) {
    page.SetPrevSibling(next, down_slot);
  } else if (up) {
    page.SetLastChild(ps, down_slot);
  }
  guard.MarkDirty();
  ++doc_->border_pairs;
  return Status::OK();
}

Result<InsertedNode> DocumentUpdater::InsertElement(
    NodeID parent, NodeID after, TagId tag, std::string_view text,
    const std::vector<AttributeSpec>& attrs) {
  const std::size_t page_size = db_->options().page_size;
  // Without a transaction layer the summary's exact counts and extents no
  // longer describe the store; with one, per-path deltas are reported
  // instead and applied at commit.
  if (io_ == nullptr) db_->InvalidateSummary();
  CrossClusterCursor cursor = MakeCursor();

  // Validate the anchors and find the document-order neighbors.
  NAVPATH_ASSIGN_OR_RETURN(const LogicalNode parent_node,
                           cursor.Describe(parent));
  std::uint64_t pred_order;
  std::uint64_t succ_order;
  NodeID succ_id = kInvalidNodeID;
  if (after.valid()) {
    LogicalNode check;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kParent, after));
    NAVPATH_ASSIGN_OR_RETURN(const bool has_parent, cursor.Next(&check));
    if (!has_parent || check.id != parent) {
      return Status::InvalidArgument("'after' is not a child of 'parent'");
    }
    NAVPATH_ASSIGN_OR_RETURN(pred_order, MaxOrderInSubtree(after));
    // Successor: the next logical child, else the first node after the
    // whole subtree of `after`.
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kFollowingSibling, after));
    LogicalNode sibling;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_sibling, cursor.Next(&sibling));
    if (has_sibling) {
      succ_order = sibling.order;
      succ_id = sibling.id;
    } else {
      NAVPATH_ASSIGN_OR_RETURN(
          succ_order,
          DocOrderSuccessor(parent, pred_order + 2 * kOrderKeyGap, &succ_id));
    }
  } else {
    pred_order = parent_node.order;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, parent));
    LogicalNode first_child;
    NAVPATH_ASSIGN_OR_RETURN(const bool has_child, cursor.Next(&first_child));
    if (has_child) {
      succ_order = first_child.order;
      succ_id = first_child.id;
    } else {
      NAVPATH_ASSIGN_OR_RETURN(
          succ_order,
          DocOrderSuccessor(parent, pred_order + 2 * kOrderKeyGap, &succ_id));
    }
  }
  // The element needs one key plus one per attribute, all strictly
  // between the neighbors. When the gap is dry, redistribute the forward
  // run's keys; only a genuinely saturated key range still fails.
  const std::uint64_t reserve = 2 + attrs.size();
  if (succ_order - pred_order < reserve) {
    if (!succ_id.valid()) {
      return Status::ResourceExhausted(
          "order keys exhausted between neighbors; re-import to renumber");
    }
    NAVPATH_ASSIGN_OR_RETURN(
        succ_order, RedistributeOrderKeys(pred_order, succ_id, reserve));
  }
  std::uint64_t order = pred_order + (succ_order - pred_order) / 2;
  if (order + attrs.size() >= succ_order) {
    order = succ_order - attrs.size() - 1;  // > pred_order by the check
  }

  // The root-to-parent tag path, for the summary delta (ancestors are
  // cheaper to read before the chains change).
  std::vector<TagId> path_tags;
  if (io_ != nullptr) {
    NAVPATH_ASSIGN_OR_RETURN(path_tags, TagPathOf(parent));
    path_tags.push_back(tag);
  }

  // The chain position lives in `after`'s page (append) or the parent's
  // page (prepend).
  const PageId pid = after.valid() ? after.page : parent.page;
  const std::size_t text_cap = db_->options().import.text_cap;
  const std::string_view stored_text =
      text.substr(0, std::min(text.size(), text_cap));
  std::size_t attr_space = 0;
  for (const AttributeSpec& attr : attrs) {
    attr_space +=
        TreePage::CoreRecordSpace(std::min(attr.value.size(), text_cap));
  }

  // Writes the attribute chain next to a freshly inserted element.
  auto place_attrs = [&](TreePage page, SlotId element_slot,
                         std::uint64_t element_order) -> Status {
    SlotId prev = kInvalidSlot;
    std::uint64_t attr_order = element_order;
    for (const AttributeSpec& attr : attrs) {
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId slot,
          page.AddAttributeRecord(
              attr.name, ++attr_order,
              std::string_view(attr.value)
                  .substr(0, std::min(attr.value.size(), text_cap))));
      page.SetParent(slot, element_slot);
      if (prev == kInvalidSlot) {
        page.SetFirstAttr(element_slot, slot);
      } else {
        page.SetNextSibling(prev, slot);
      }
      prev = slot;
      ++doc_->attribute_records;
    }
    return Status::OK();
  };

  for (int attempt = 0; attempt < 2; ++attempt) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, FixPage(pid));
    TreePage page(guard.data(), page_size);

    // Chain context.
    SlotId ps;
    SlotId left;
    SlotId right;
    if (after.valid()) {
      ps = page.ParentOf(after.slot);
      left = after.slot;
      right = page.NextSiblingOf(after.slot);
    } else {
      ps = parent.slot;
      left = kInvalidSlot;
      right = page.FirstChildOf(parent.slot);
    }
    const bool up = page.KindOf(ps) == RecordKind::kBorderUp;
    const bool right_is_sibling =
        right != kInvalidSlot && !(up && right == ps);

    SlotId element_slot = kInvalidSlot;  // the chain element to link
    InsertedNode result;
    result.order = order;
    if (page.FreeBytes() >=
        TreePage::CoreRecordSpace(stored_text.size()) + attr_space) {
      NAVPATH_ASSIGN_OR_RETURN(element_slot,
                               page.AddCoreRecord(tag, order, stored_text));
      NAVPATH_RETURN_NOT_OK(place_attrs(page, element_slot, order));
      result.id = NodeID{pid, element_slot};
      ++doc_->core_records;
    } else if (page.FreeBytes() >= TreePage::BorderRecordSpace()) {
      // New single-element fragment behind a border pair.
      NAVPATH_ASSIGN_OR_RETURN(const PageId new_pid, AppendPage());
      NAVPATH_ASSIGN_OR_RETURN(PageGuard new_guard, FixPage(new_pid));
      TreePage new_page(new_guard.data(), page_size);
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId up_slot,
          new_page.AddBorderRecord(RecordKind::kBorderUp));
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId core_slot,
          new_page.AddCoreRecord(tag, order, stored_text));
      NAVPATH_RETURN_NOT_OK(place_attrs(new_page, core_slot, order));
      new_page.SetFirstChild(up_slot, core_slot);
      new_page.SetLastChild(up_slot, core_slot);
      new_page.SetParent(core_slot, up_slot);
      new_page.SetPrevSibling(core_slot, up_slot);
      new_page.SetNextSibling(core_slot, up_slot);
      NAVPATH_ASSIGN_OR_RETURN(
          element_slot, page.AddBorderRecord(RecordKind::kBorderDown));
      page.SetPartner(element_slot, NodeID{new_pid, up_slot});
      new_page.SetPartner(up_slot, NodeID{pid, element_slot});
      new_guard.MarkDirty();
      result.id = NodeID{new_pid, core_slot};
      ++doc_->core_records;
      ++doc_->border_pairs;
    } else {
      // No room even for a down-border: split the page and retry once.
      if (attempt > 0) {
        return Status::ResourceExhausted("page split did not free space");
      }
      std::vector<SlotId> protect{ps};
      if (after.valid()) protect.push_back(after.slot);
      if (right != kInvalidSlot) protect.push_back(right);
      guard.Release();
      NAVPATH_RETURN_NOT_OK(EvacuateSubtree(
          pid, protect,
          TreePage::CoreRecordSpace(stored_text.size()) + attr_space));
      continue;
    }

    // Link the new chain element between left and right.
    page.SetParent(element_slot, ps);
    if (left != kInvalidSlot) {
      page.SetNextSibling(left, element_slot);
      page.SetPrevSibling(element_slot, left);
    } else {
      page.SetFirstChild(ps, element_slot);
      page.SetPrevSibling(element_slot, up ? ps : kInvalidSlot);
    }
    if (right_is_sibling) {
      page.SetNextSibling(element_slot, right);
      page.SetPrevSibling(right, element_slot);
    } else {
      page.SetNextSibling(element_slot, up ? ps : kInvalidSlot);
      if (up) page.SetLastChild(ps, element_slot);
    }
    guard.MarkDirty();

    if (io_ != nullptr) {
      // Record the delta: the element's path gains one instance on the
      // landing page (plus the chain page holding its down-border — an
      // over-approximation of extents is safe, a gap is not).
      SummaryInsert element_delta;
      element_delta.tags = path_tags;
      element_delta.kind = DomNodeKind::kElement;
      element_delta.pages = {pid, result.id.page};
      summary_inserts_.push_back(std::move(element_delta));
      for (const AttributeSpec& attr : attrs) {
        SummaryInsert attr_delta;
        attr_delta.tags = path_tags;
        attr_delta.tags.push_back(attr.name);
        attr_delta.kind = DomNodeKind::kAttribute;
        attr_delta.pages = {result.id.page};
        summary_inserts_.push_back(std::move(attr_delta));
      }
    }
    return result;
  }
  return Status::ResourceExhausted("insert failed after page split");
}

}  // namespace navpath
