// On-page storage format for clustered tree fragments (Sec. 3.2-3.4).
//
// A page is a slotted container of fixed-prefix records. Three record
// kinds exist:
//   * core records     — logical document nodes (tag, order key, text),
//   * down-borders     — a child-position proxy for an edge that leaves
//                        the cluster downwards,
//   * up-borders       — the parent proxy at the root of a fragment whose
//                        logical parent lives in another cluster.
// Border records store the NodeID of their partner border on the opposite
// side of the crossing (the paper's target(x), Sec. 3.4).
//
// Sibling chains of a fragment-root's children terminate *at the
// up-border* on both ends, so that sibling navigation can resume across
// the crossing in either direction. Chains below interior core nodes
// terminate with kInvalidSlot.
//
// Page layout:
//   [u16 slot_count][u16 record_start][slot dir: u16 offsets...]
//   ... free space ...
//   [records packed towards the end of the page]
#ifndef NAVPATH_STORE_TREE_PAGE_H_
#define NAVPATH_STORE_TREE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/macros.h"
#include "common/status.h"
#include "store/node_id.h"
#include "xml/tag_registry.h"

namespace navpath {

enum class RecordKind : std::uint8_t {
  kCore = 0,
  kBorderDown = 1,
  kBorderUp = 2,
  /// Attribute of a core element: chained from the element's first_attr
  /// link via next_sibling; never part of the child chain, never behind a
  /// border (attributes are co-located with their element).
  kAttribute = 3,
};

/// Read/write view over one tree page. Does not own the bytes and charges
/// no simulation cost (cost accounting lives in ClusterView).
class TreePage {
 public:
  // Record geometry (bytes).
  static constexpr std::size_t kHeaderBytes = 4;
  static constexpr std::size_t kSlotEntryBytes = 2;
  // prefix(10) + tag(4) + order(8) + first_attr(2) + text_len(2)
  static constexpr std::size_t kCoreRecordBase = 26;  // also attributes
  static constexpr std::size_t kBorderRecordBytes = 18;

  TreePage(std::byte* data, std::size_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Formats an empty page.
  static void Initialize(std::byte* data, std::size_t page_size);

  /// Space one core record with `text_len` bytes of text consumes,
  /// including its slot directory entry.
  static std::size_t CoreRecordSpace(std::size_t text_len) {
    return kCoreRecordBase + text_len + kSlotEntryBytes;
  }
  static std::size_t BorderRecordSpace() {
    return kBorderRecordBytes + kSlotEntryBytes;
  }

  std::uint16_t slot_count() const { return LoadU16(0); }
  std::size_t FreeBytes() const;

  /// Appends records. Fail with ResourceExhausted when the page is full.
  Result<SlotId> AddCoreRecord(TagId tag, std::uint64_t order,
                               std::string_view text);
  Result<SlotId> AddBorderRecord(RecordKind kind);
  /// An attribute record (same layout as a core record; `name` in the
  /// tag field, the value as text). Caller links it into the owning
  /// element's attribute chain.
  Result<SlotId> AddAttributeRecord(TagId name, std::uint64_t order,
                                    std::string_view value);

  // --- Record removal (updates) ----------------------------------------

  /// True unless the slot was removed. Dead slots keep their directory
  /// entry (slot ids are stable — border partners reference them) but
  /// their bytes are reclaimed by Compact().
  bool IsLive(SlotId slot) const {
    NAVPATH_DCHECK(slot < slot_count());
    return LoadU16(kHeaderBytes + slot * kSlotEntryBytes) != 0;
  }

  /// Marks a record dead. The caller is responsible for unlinking it from
  /// sibling/parent chains first. Space returns after Compact().
  void RemoveRecord(SlotId slot);

  /// Repacks live records to reclaim the space of removed ones.
  void Compact();

  /// Bytes a record currently occupies (for accounting).
  std::size_t RecordBytes(SlotId slot) const;

  // Record field accessors. All slots must be < slot_count().
  RecordKind KindOf(SlotId slot) const {
    return static_cast<RecordKind>(LoadU8(RecordOffset(slot)));
  }
  bool IsBorder(SlotId slot) const {
    const RecordKind k = KindOf(slot);
    return k == RecordKind::kBorderDown || k == RecordKind::kBorderUp;
  }

  SlotId ParentOf(SlotId slot) const { return LoadU16(RecordOffset(slot) + 2); }
  SlotId FirstChildOf(SlotId slot) const {
    return LoadU16(RecordOffset(slot) + 4);
  }
  SlotId NextSiblingOf(SlotId slot) const {
    return LoadU16(RecordOffset(slot) + 6);
  }
  SlotId PrevSiblingOf(SlotId slot) const {
    return LoadU16(RecordOffset(slot) + 8);
  }

  void SetParent(SlotId slot, SlotId v) { StoreU16(RecordOffset(slot) + 2, v); }
  void SetFirstChild(SlotId slot, SlotId v) {
    StoreU16(RecordOffset(slot) + 4, v);
  }
  void SetNextSibling(SlotId slot, SlotId v) {
    StoreU16(RecordOffset(slot) + 6, v);
  }
  void SetPrevSibling(SlotId slot, SlotId v) {
    StoreU16(RecordOffset(slot) + 8, v);
  }

  // Core/attribute fields (identical layout for both kinds).
  TagId TagOf(SlotId slot) const {
    NAVPATH_DCHECK(!IsBorder(slot));
    return LoadU32(RecordOffset(slot) + 10);
  }
  std::uint64_t OrderOf(SlotId slot) const {
    NAVPATH_DCHECK(!IsBorder(slot));
    return LoadU64(RecordOffset(slot) + 14);
  }
  /// Rewrites a record's order key in place (gap redistribution).
  void SetOrder(SlotId slot, std::uint64_t order) {
    NAVPATH_DCHECK(!IsBorder(slot));
    StoreU64(RecordOffset(slot) + 14, order);
  }
  /// First attribute of a core element (kInvalidSlot when none).
  SlotId FirstAttrOf(SlotId slot) const {
    NAVPATH_DCHECK(!IsBorder(slot));
    return LoadU16(RecordOffset(slot) + 22);
  }
  void SetFirstAttr(SlotId slot, SlotId v) {
    NAVPATH_DCHECK(!IsBorder(slot));
    StoreU16(RecordOffset(slot) + 22, v);
  }
  std::string_view TextOf(SlotId slot) const;

  // Border-only fields.
  NodeID PartnerOf(SlotId slot) const {
    NAVPATH_DCHECK(IsBorder(slot));
    const std::size_t off = RecordOffset(slot);
    return NodeID{LoadU32(off + 10), LoadU16(off + 14)};
  }
  void SetPartner(SlotId slot, NodeID partner) {
    NAVPATH_DCHECK(IsBorder(slot));
    const std::size_t off = RecordOffset(slot);
    StoreU32(off + 10, partner.page);
    StoreU16(off + 14, partner.slot);
  }
  /// Last child of an up-border (needed to resume preceding-sibling
  /// navigation across a crossing in reverse order).
  SlotId LastChildOf(SlotId slot) const {
    NAVPATH_DCHECK(IsBorder(slot));
    return LoadU16(RecordOffset(slot) + 16);
  }
  void SetLastChild(SlotId slot, SlotId v) {
    NAVPATH_DCHECK(IsBorder(slot));
    StoreU16(RecordOffset(slot) + 16, v);
  }

  /// Validates structural invariants of the page (for tests/fsck):
  /// in-bounds offsets, link symmetry, border field sanity.
  Status Validate() const;

 private:
  std::size_t RecordOffset(SlotId slot) const {
    NAVPATH_DCHECK(slot < slot_count());
    return LoadU16(kHeaderBytes + slot * kSlotEntryBytes);
  }
  std::size_t record_start() const { return LoadU16(2); }

  Result<SlotId> AddRecord(std::size_t record_bytes);
  Result<SlotId> AddNonBorderRecord(RecordKind kind, TagId tag,
                                    std::uint64_t order,
                                    std::string_view text);

  std::uint8_t LoadU8(std::size_t off) const {
    return static_cast<std::uint8_t>(data_[off]);
  }
  std::uint16_t LoadU16(std::size_t off) const {
    std::uint16_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  std::uint32_t LoadU32(std::size_t off) const {
    std::uint32_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  std::uint64_t LoadU64(std::size_t off) const {
    std::uint64_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  void StoreU8(std::size_t off, std::uint8_t v) {
    data_[off] = static_cast<std::byte>(v);
  }
  void StoreU16(std::size_t off, std::uint16_t v) {
    std::memcpy(data_ + off, &v, sizeof(v));
  }
  void StoreU32(std::size_t off, std::uint32_t v) {
    std::memcpy(data_ + off, &v, sizeof(v));
  }
  void StoreU64(std::size_t off, std::uint64_t v) {
    std::memcpy(data_ + off, &v, sizeof(v));
  }

  std::byte* data_;
  std::size_t page_size_;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_TREE_PAGE_H_
