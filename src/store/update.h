// In-place updates of the clustered tree store.
//
// The paper's requirement #2 (Sec. 1) demands storage formats that remain
// efficient *and updatable* — its critique of scan-optimized competitors
// is precisely that preorder numbering and fixed physical orders are
// "difficult to maintain during updates". This module demonstrates that
// the border-node format is not: elements can be inserted and whole
// subtrees deleted without touching unrelated pages.
//
//   * Document order keys are gap-based (kOrderKeyGap); an insert takes
//     the midpoint of its neighbors' keys — the insert-friendliness
//     ORDPATHs provide in the paper's setting.
//   * An insert goes into the page holding its chain position when space
//     allows; otherwise it becomes a fresh single-node fragment behind a
//     new border pair. If even the 18-byte down-border does not fit, the
//     page is split by evacuating its largest subtree into a new cluster
//     (partner pointers are remapped).
//   * Deleting a subtree removes its records from every cluster it spans,
//     unlinks it from the sibling chain, and collapses border pairs whose
//     fragments became empty.
#ifndef NAVPATH_STORE_UPDATE_H_
#define NAVPATH_STORE_UPDATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"

namespace navpath {

/// Result of an insertion: the new node's address and its document-order
/// key. NodeIDs are *physical*: a later page split may relocate other
/// records, so long-lived references should be re-resolved via order keys
/// (or the system extended with logical NodeIDs, cf. Sec. 3.2).
struct InsertedNode {
  NodeID id;
  std::uint64_t order = 0;
};

class DocumentUpdater {
 public:
  /// `db` and `doc` must outlive the updater; `doc`'s bookkeeping
  /// (record counts, page range) is maintained across updates. The
  /// database must contain only this document (new pages are appended to
  /// the segment and become part of the document's scan range).
  DocumentUpdater(Database* db, ImportedDocument* doc)
      : db_(db), doc_(doc) {}

  struct AttributeSpec {
    TagId name;
    std::string value;
  };

  /// Inserts a new element with `tag`, `text` and `attrs` as a child of
  /// `parent`, positioned after the existing child `after` (pass
  /// kInvalidNodeID to insert as the first child).
  Result<InsertedNode> InsertElement(NodeID parent, NodeID after, TagId tag,
                                     std::string_view text,
                                     const std::vector<AttributeSpec>& attrs =
                                         {});

  /// Deletes `node` and its entire subtree (which may span clusters).
  Status DeleteSubtree(NodeID node);

 private:
  /// Unlinks chain element `slot` (core or down-border) from its sibling
  /// chain in `page`, fixing first/last-child pointers. If this empties
  /// an up-border fragment, returns that up-border's id for cascading
  /// removal (otherwise kInvalidNodeID).
  Result<NodeID> UnlinkChainElement(PageGuard* guard, SlotId slot);

  /// Largest document-order key within the subtree of `node`.
  Result<std::uint64_t> MaxOrderInSubtree(NodeID node);

  /// Order key of the first node following `node`'s subtree in document
  /// order, or `fallback` if the subtree is the document's tail.
  Result<std::uint64_t> DocOrderSuccessor(NodeID node,
                                          std::uint64_t fallback);

  /// Moves the largest eligible local subtree out of `page` into a fresh
  /// cluster to free space, leaving a border pair behind. Slots listed in
  /// `protect` (and records whose local subtree contains them) are not
  /// moved.
  Status EvacuateSubtree(PageId page, const std::vector<SlotId>& protect);

  /// Appends a fresh page to the document and returns its id.
  Result<PageId> AppendPage();

  Database* db_;
  ImportedDocument* doc_;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_UPDATE_H_
