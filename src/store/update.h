// In-place updates of the clustered tree store.
//
// The paper's requirement #2 (Sec. 1) demands storage formats that remain
// efficient *and updatable* — its critique of scan-optimized competitors
// is precisely that preorder numbering and fixed physical orders are
// "difficult to maintain during updates". This module demonstrates that
// the border-node format is not: elements can be inserted and whole
// subtrees deleted without touching unrelated pages.
//
//   * Document order keys are gap-based (kOrderKeyGap); an insert takes
//     the midpoint of its neighbors' keys — the insert-friendliness
//     ORDPATHs provide in the paper's setting. When a gap runs dry the
//     updater redistributes: the forward document-order run after the
//     insertion point (bounded length) is respaced evenly across the key
//     range up to the first node beyond the run, restoring headroom
//     without renumbering the document.
//   * An insert goes into the page holding its chain position when space
//     allows; otherwise it becomes a fresh single-node fragment behind a
//     new border pair. If even the 18-byte down-border does not fit, the
//     page is split by evacuating its largest subtree into a new cluster
//     (partner pointers are remapped).
//   * Deleting a subtree removes its records from every cluster it spans,
//     unlinks it from the sibling chain, and collapses border pairs whose
//     fragments became empty.
//
// Page I/O goes through the WritePageIO seam: by default pages are fixed
// directly in the buffer (legacy in-place mutation, identical to the
// pre-MVCC behaviour including whole-synopsis invalidation); a
// transaction layer (src/txn/) plugs in copy-on-write fixes instead, and
// then the updater reports per-path summary deltas (inserts, deletes,
// evacuation page remaps) rather than invalidating the synopsis, plus the
// pages each update decision read (for conflict validation).
#ifndef NAVPATH_STORE_UPDATE_H_
#define NAVPATH_STORE_UPDATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "store/cross_cursor.h"
#include "store/database.h"
#include "store/import.h"
#include "store/path_summary.h"

namespace navpath {

/// Page-write seam between DocumentUpdater and the transaction layer.
/// The default (nullptr) behaviour fixes pages directly in the buffer;
/// a writer transaction substitutes copy-on-write fixes. All ids crossing
/// this interface are *logical* page ids.
class WritePageIO {
 public:
  virtual ~WritePageIO() = default;

  /// Fixes the writable image of logical page `id`. A COW implementation
  /// returns the transaction's private shadow copy.
  virtual Result<PageGuard> FixMutable(PageId id) = 0;

  /// Allocates a fresh logical page (zeroed, resident, not initialized as
  /// a TreePage) and returns its id.
  virtual Result<PageId> AppendLogicalPage() = 0;

  /// Translator for read navigation during the update (a writer must see
  /// its own earlier writes). nullptr = identity.
  virtual const PageTranslator* translator() const { return nullptr; }

  /// Reports a page whose *content* an update decision depended on without
  /// writing it (order-key neighbors, ancestor chains). A transaction
  /// layer folds these into its conflict-validation set; the default
  /// in-place mode has no concurrency and ignores them.
  virtual void NoteReadDependency(PageId id) { (void)id; }
};

/// Result of an insertion: the new node's address and its document-order
/// key. NodeIDs are *logical*: a later page split may relocate other
/// records, so long-lived references should be re-resolved via order keys
/// (or the system extended with logical NodeIDs, cf. Sec. 3.2).
struct InsertedNode {
  NodeID id;
  std::uint64_t order = 0;
};

class DocumentUpdater {
 public:
  /// `db` and `doc` must outlive the updater; `doc`'s bookkeeping
  /// (record counts, page range) is maintained across updates. The
  /// database must contain only this document (new pages are appended to
  /// the segment and become part of the document's scan range).
  ///
  /// With `io == nullptr` the updater mutates pages in place and
  /// invalidates the database's path summary on every mutation (the
  /// legacy single-version behaviour). With a transaction-layer `io`, all
  /// page writes go through it and the updater instead accumulates
  /// summary deltas (`summary_inserts`/`structural_change`) for the
  /// transaction to apply at commit.
  DocumentUpdater(Database* db, ImportedDocument* doc,
                  WritePageIO* io = nullptr)
      : db_(db), doc_(doc), io_(io) {}

  struct AttributeSpec {
    TagId name;
    std::string value;
  };

  /// Inserts a new element with `tag`, `text` and `attrs` as a child of
  /// `parent`, positioned after the existing child `after` (pass
  /// kInvalidNodeID to insert as the first child).
  Result<InsertedNode> InsertElement(NodeID parent, NodeID after, TagId tag,
                                     std::string_view text,
                                     const std::vector<AttributeSpec>& attrs =
                                         {});

  /// Deletes `node` and its entire subtree (which may span clusters).
  Status DeleteSubtree(NodeID node);

  // --- Summary-maintenance delta (transaction mode only) ----------------

  /// Per-path insertions accumulated since the last ClearSummaryDelta.
  const std::vector<SummaryInsert>& summary_inserts() const {
    return summary_inserts_;
  }
  /// Per-path deletions (subtree deletes fold into per-path counts).
  const std::vector<SummaryDelete>& summary_deletes() const {
    return summary_deletes_;
  }
  /// Page relocations from subtree evacuation, in occurrence order.
  const std::vector<SummaryPageRemap>& summary_remaps() const {
    return summary_remaps_;
  }
  /// True when a structural mutation outran incremental maintenance; the
  /// synopsis must be dropped at commit. With delete deltas and evacuation
  /// remaps maintained, this is now only set on delta-collection failure.
  bool structural_change() const { return structural_change_; }
  void ClearSummaryDelta() {
    summary_inserts_.clear();
    summary_deletes_.clear();
    summary_remaps_.clear();
    structural_change_ = false;
  }

 private:
  /// Fixes the writable image of logical page `id` through the seam.
  Result<PageGuard> FixPage(PageId id);
  const PageTranslator* translator() const {
    return io_ == nullptr ? nullptr : io_->translator();
  }
  /// Navigation cursor for this update; in transaction mode every page it
  /// pins is reported to the seam as a read dependency.
  CrossClusterCursor MakeCursor();
  /// Folds the subtree of `node` into per-path SummaryDelete deltas
  /// (walked before any chain is unlinked).
  Status CollectDeleteDeltas(NodeID node);
  /// Marks the synopsis unmaintainable: invalidated now (legacy) or at
  /// commit (transaction mode).
  void NoteStructuralChange();

  /// Unlinks chain element `slot` (core or down-border) from its sibling
  /// chain in `page` (logical id `logical`), fixing first/last-child
  /// pointers. If this empties an up-border fragment, returns that
  /// up-border's id for cascading removal (otherwise kInvalidNodeID).
  Result<NodeID> UnlinkChainElement(PageGuard* guard, PageId logical,
                                    SlotId slot);

  /// Largest document-order key within the subtree of `node`.
  Result<std::uint64_t> MaxOrderInSubtree(NodeID node);

  /// Order key of the first node following `node`'s subtree in document
  /// order, or `fallback` if the subtree is the document's tail. When a
  /// real successor exists and `succ_id` is non-null, its address is
  /// stored there (kInvalidNodeID for the tail case).
  Result<std::uint64_t> DocOrderSuccessor(NodeID node, std::uint64_t fallback,
                                          NodeID* succ_id = nullptr);

  /// Gap redistribution: respaces the document-order run starting at
  /// `succ` (bounded length) evenly across the key range (pred_order,
  /// first key beyond the run), leaving `reserve` key slots free directly
  /// after pred_order for the pending insert. Returns the run head's new
  /// order key (the caller's new successor key).
  Result<std::uint64_t> RedistributeOrderKeys(std::uint64_t pred_order,
                                              NodeID succ,
                                              std::uint64_t reserve);

  /// Moves a contiguous run of sibling subtrees out of `page` into a
  /// fresh cluster to free space, leaving a single border pair behind.
  /// The run is seeded at the largest eligible local subtree and extended
  /// along the sibling chain until at least `needed_bytes` are freed net
  /// of the down-border left in place (or the chain runs out). Slots
  /// listed in `protect` (and records whose local subtree contains them)
  /// are not moved.
  Status EvacuateSubtree(PageId page, const std::vector<SlotId>& protect,
                         std::size_t needed_bytes);

  /// Appends a fresh page to the document and returns its id.
  Result<PageId> AppendPage();

  /// Root-to-node tag path of `node` (inclusive), for summary deltas.
  Result<std::vector<TagId>> TagPathOf(NodeID node);

  Database* db_;
  ImportedDocument* doc_;
  WritePageIO* io_ = nullptr;
  std::vector<SummaryInsert> summary_inserts_;
  std::vector<SummaryDelete> summary_deletes_;
  std::vector<SummaryPageRemap> summary_remaps_;
  bool structural_change_ = false;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_UPDATE_H_
