#include "store/clustering.h"

#include <algorithm>

#include "common/random.h"
#include "store/tree_page.h"

namespace navpath {

std::size_t EstimateNodeBytes(const DomTree& tree, DomNodeId id) {
  std::size_t bytes = TreePage::CoreRecordSpace(tree.node(id).text.size());
  for (DomNodeId a = tree.node(id).first_attr; a != kNilDomNode;
       a = tree.node(a).next_sibling) {
    bytes += TreePage::CoreRecordSpace(tree.node(a).text.size());
  }
  return bytes;
}

namespace {

/// Total estimated bytes of every subtree, bottom-up.
std::vector<std::size_t> SubtreeBytes(const DomTree& tree) {
  std::vector<std::size_t> bytes(tree.size(), 0);
  // Children have larger DomNodeIds than parents (arena append order), so a
  // reverse sweep sees children before parents.
  for (DomNodeId id = static_cast<DomNodeId>(tree.size()); id-- > 0;) {
    // Attribute bytes are already included in their element's estimate.
    if (tree.node(id).kind == DomNodeKind::kAttribute) continue;
    bytes[id] += EstimateNodeBytes(tree, id);
    const DomNodeId parent = tree.node(id).parent;
    if (parent != kNilDomNode) bytes[parent] += bytes[id];
  }
  return bytes;
}

}  // namespace

SubtreeClusteringPolicy::SubtreeClusteringPolicy(std::size_t budget_bytes)
    : budget_(budget_bytes) {
  NAVPATH_CHECK(budget_bytes > 2 * TreePage::CoreRecordSpace(64));
}

ClusterAssignment SubtreeClusteringPolicy::Assign(const DomTree& tree) {
  ClusterAssignment assignment(tree.size(), 0);
  if (tree.empty()) return assignment;
  const std::vector<std::size_t> subtree_bytes = SubtreeBytes(tree);

  // remaining[c]: unspent byte budget of cluster c.
  std::vector<std::size_t> remaining;
  std::uint32_t next_cluster = 0;

  struct Item {
    DomNodeId node;
    std::uint32_t cluster;
    // When true the whole subtree was already charged against the cluster
    // budget by the parent; descendants simply inherit the cluster.
    bool inherited;
  };
  std::vector<Item> stack;

  auto new_cluster = [&]() {
    remaining.push_back(budget_);
    return next_cluster++;
  };

  stack.push_back(Item{tree.root(), new_cluster(), /*inherited=*/false});
  std::vector<Item> children;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const DomNodeId u = item.node;
    std::uint32_t cluster = item.cluster;

    children.clear();
    if (item.inherited) {
      assignment[u] = cluster;
      for (DomNodeId c = tree.node(u).first_child; c != kNilDomNode;
           c = tree.node(c).next_sibling) {
        children.push_back(Item{c, cluster, /*inherited=*/true});
      }
    } else {
      const std::size_t own = EstimateNodeBytes(tree, u);
      if (remaining[cluster] < own) {
        // The proposed cluster cannot even hold this node on its own:
        // open a fresh cluster for it.
        cluster = new_cluster();
      }
      assignment[u] = cluster;
      remaining[cluster] -= std::min(remaining[cluster], own);

      // Pack children whose whole subtree fits (reserving the bytes now)
      // into the current attachment cluster; when it fills up, open a
      // fresh cluster and keep packing consecutive siblings there, so
      // pages stay dense. Children too large for any single cluster are
      // recursed into with a cluster of their own.
      std::uint32_t attach = cluster;
      for (DomNodeId c = tree.node(u).first_child; c != kNilDomNode;
           c = tree.node(c).next_sibling) {
        if (subtree_bytes[c] <= remaining[attach]) {
          remaining[attach] -= subtree_bytes[c];
          children.push_back(Item{c, attach, /*inherited=*/true});
        } else if (subtree_bytes[c] <= budget_) {
          attach = new_cluster();
          remaining[attach] -= subtree_bytes[c];
          children.push_back(Item{c, attach, /*inherited=*/true});
        } else {
          children.push_back(Item{c, new_cluster(), /*inherited=*/false});
        }
      }
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return assignment;
}

DocOrderClusteringPolicy::DocOrderClusteringPolicy(std::size_t budget_bytes)
    : budget_(budget_bytes) {
  NAVPATH_CHECK(budget_bytes > 2 * TreePage::CoreRecordSpace(64));
}

ClusterAssignment DocOrderClusteringPolicy::Assign(const DomTree& tree) {
  ClusterAssignment assignment(tree.size(), 0);
  std::uint32_t cluster = 0;
  std::size_t used = 0;
  // DomNodeIds are assigned in document order by both the parser and the
  // generator (parents before children, siblings left to right).
  for (DomNodeId id = 0; id < tree.size(); ++id) {
    const std::size_t bytes = EstimateNodeBytes(tree, id);
    if (used + bytes > budget_ && used > 0) {
      ++cluster;
      used = 0;
    }
    assignment[id] = cluster;
    used += bytes;
  }
  return assignment;
}

RoundRobinClusteringPolicy::RoundRobinClusteringPolicy(
    std::size_t budget_bytes)
    : budget_(budget_bytes) {
  NAVPATH_CHECK(budget_bytes > 2 * TreePage::CoreRecordSpace(64));
}

ClusterAssignment RoundRobinClusteringPolicy::Assign(const DomTree& tree) {
  ClusterAssignment assignment(tree.size(), 0);
  std::size_t total = 0;
  for (DomNodeId id = 0; id < tree.size(); ++id) {
    total += EstimateNodeBytes(tree, id);
  }
  const std::uint32_t k = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(total / budget_ + 1));
  for (DomNodeId id = 0; id < tree.size(); ++id) {
    assignment[id] = id % k;
  }
  return assignment;
}

RandomClusteringPolicy::RandomClusteringPolicy(std::size_t budget_bytes,
                                               std::uint64_t seed)
    : budget_(budget_bytes), seed_(seed) {
  NAVPATH_CHECK(budget_bytes > 2 * TreePage::CoreRecordSpace(64));
}

ClusterAssignment RandomClusteringPolicy::Assign(const DomTree& tree) {
  ClusterAssignment assignment(tree.size(), 0);
  std::size_t total = 0;
  for (DomNodeId id = 0; id < tree.size(); ++id) {
    total += EstimateNodeBytes(tree, id);
  }
  const std::uint32_t k = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(total / budget_ + 1));
  Random rng(seed_);
  for (DomNodeId id = 0; id < tree.size(); ++id) {
    assignment[id] = static_cast<std::uint32_t>(rng.NextBounded(k));
  }
  return assignment;
}

}  // namespace navpath
