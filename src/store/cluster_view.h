// Intra-cluster navigational primitives (Sec. 3.5).
//
// ClusterView is a cheap value view over one *pinned* page that charges
// simulated CPU cost for every link followed and node inspected. Its
// AxisCursor enumerates, one node at a time, the nodes reachable from an
// origin record along an XPath axis *using intra-cluster navigation only*:
// core nodes are yielded as results, border records are yielded as
// crossings whose partner NodeID names the cluster where the step
// continues.
//
// The origin record may itself be a border record, in which case the
// cursor enumerates the continuation of a partially evaluated step that
// crossed *into* this cluster at that record:
//   * child / sibling axes arriving at an up-border continue through the
//     border's child chain,
//   * sibling axes arriving at a down-border continue along the chain the
//     down-border interrupts,
//   * descendant axes arriving at an up-border continue through the whole
//     fragment below it,
//   * parent / ancestor axes arriving at a down-border continue upwards
//     from its physical parent.
// Direction/record-kind combinations that cannot occur as real
// continuations (e.g. child from a down-border) enumerate nothing, which
// is what XScan's speculative seeds rely on (Sec. 5.4.3: seeds that fail
// to extend are filtered).
#ifndef NAVPATH_STORE_CLUSTER_VIEW_H_
#define NAVPATH_STORE_CLUSTER_VIEW_H_

#include <cstddef>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "storage/cpu_cost_model.h"
#include "store/axis.h"
#include "store/node_id.h"
#include "store/tree_page.h"

namespace navpath {

/// One enumeration result: either a core node in this cluster or a border
/// crossing to another cluster.
struct NavEntry {
  SlotId slot = kInvalidSlot;
  bool crossing = false;
};

class ClusterView {
 public:
  ClusterView(const std::byte* data, std::size_t page_size, PageId page_id,
              SimClock* clock, const CpuCostModel* costs, Metrics* metrics)
      : page_(const_cast<std::byte*>(data), page_size),
        page_id_(page_id),
        clock_(clock),
        costs_(costs),
        metrics_(metrics) {}

  PageId page_id() const { return page_id_; }
  std::uint16_t slot_count() const { return page_.slot_count(); }

  RecordKind KindOf(SlotId slot) const { return page_.KindOf(slot); }
  bool IsBorder(SlotId slot) const { return page_.IsBorder(slot); }
  /// False for slots whose record was removed by an update.
  bool IsLive(SlotId slot) const { return page_.IsLive(slot); }
  TagId TagOf(SlotId slot) const { return page_.TagOf(slot); }
  std::uint64_t OrderOf(SlotId slot) const { return page_.OrderOf(slot); }
  std::string_view TextOf(SlotId slot) const { return page_.TextOf(slot); }

  /// target(x) of the paper: the border record on the other side.
  NodeID PartnerOf(SlotId slot) const { return page_.PartnerOf(slot); }

  NodeID IdOf(SlotId slot) const { return NodeID{page_id_, slot}; }

  /// Charged tag comparison (one node test).
  bool TagEquals(SlotId slot, TagId tag) const {
    ChargeTest();
    return page_.TagOf(slot) == tag;
  }

  void ChargeHop() const {
    clock_->ChargeCpu(costs_->record_hop);
    ++metrics_->intra_cluster_hops;
  }
  void ChargeTest() const {
    clock_->ChargeCpu(costs_->node_test);
    ++metrics_->node_tests;
  }

  // Raw link accessors (uncharged; cursors charge per hop themselves).
  SlotId ParentOf(SlotId slot) const { return page_.ParentOf(slot); }
  SlotId FirstChildOf(SlotId slot) const { return page_.FirstChildOf(slot); }
  SlotId NextSiblingOf(SlotId slot) const {
    return page_.NextSiblingOf(slot);
  }
  SlotId PrevSiblingOf(SlotId slot) const {
    return page_.PrevSiblingOf(slot);
  }
  SlotId LastChildOf(SlotId slot) const { return page_.LastChildOf(slot); }
  SlotId FirstAttrOf(SlotId slot) const { return page_.FirstAttrOf(slot); }

 private:
  TreePage page_;
  PageId page_id_;
  SimClock* clock_;
  const CpuCostModel* costs_;
  Metrics* metrics_;
};

/// Streaming enumeration of one axis from one origin record. Holds the
/// ClusterView by value; the underlying page must stay pinned while the
/// cursor is in use.
class AxisCursor {
 public:
  AxisCursor() = default;
  AxisCursor(const ClusterView& view, Axis axis, SlotId origin);

  /// Produces the next entry; false when the enumeration is exhausted.
  bool Next(NavEntry* out);

  /// Re-points the cursor at a fresh view of the *same* page after the
  /// page was unfixed and fixed again (slot state stays valid; the buffer
  /// frame may have moved).
  void Rebind(const ClusterView& view) { view_ = view; }

 private:
  enum class Mode {
    kDone,
    kEmitSelf,      // pending self emission (self / *-or-self from core)
    kChainForward,  // sibling-chain walk via next pointers
    kChainReverse,  // sibling-chain walk via prev pointers
    kUpSingle,      // parent
    kUpWalk,        // ancestor(-or-self)
    kDfs,           // descendant(-or-self) preorder
    kAttrChain,     // attribute chain of a core element
  };

  bool StepChain(NavEntry* out, bool forward);
  bool StepAttrChain(NavEntry* out);
  bool StepUp(NavEntry* out, bool single);
  bool StepDfs(NavEntry* out);

  ClusterView view_{nullptr, 0, kInvalidPageId, nullptr, nullptr, nullptr};
  Axis axis_ = Axis::kSelf;
  Mode mode_ = Mode::kDone;
  Mode after_self_ = Mode::kDone;  // mode entered after kEmitSelf
  SlotId origin_ = kInvalidSlot;
  SlotId current_ = kInvalidSlot;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_CLUSTER_VIEW_H_
