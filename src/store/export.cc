#include "store/export.h"

#include <vector>

#include "store/cluster_view.h"

namespace navpath {

void AppendEscapedXmlText(std::string_view text, bool escape,
                          std::string* out) {
  if (!escape) {
    out->append(text);
    return;
  }
  for (const char c : text) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendEscapedXmlAttribute(std::string_view value, std::string* out) {
  for (const char c : value) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendAttributes(const ClusterView& view, TagRegistry* tags,
                      SlotId element, std::string* out) {
  for (SlotId a = view.FirstAttrOf(element); a != kInvalidSlot;
       a = view.NextSiblingOf(a)) {
    view.ChargeHop();
    out->push_back(' ');
    out->append(tags->Name(view.TagOf(a)));
    out->append("=\"");
    AppendEscapedXmlAttribute(view.TextOf(a), out);
    out->push_back('"');
  }
}

namespace {

/// Iterative exporter. The stack holds open elements plus, per level, the
/// (possibly cross-cluster) child enumeration state: a local AxisCursor
/// and the page it runs on. Only the top level keeps its page pinned.
class Exporter {
 public:
  Exporter(Database* db, const ExportOptions& options)
      : db_(db), options_(options) {}

  Result<std::string> Run(NodeID root) {
    NAVPATH_RETURN_NOT_OK(OpenElement(root, 0));
    while (!stack_.empty()) {
      NAVPATH_RETURN_NOT_OK(Advance());
    }
    return std::move(out_);
  }

 private:
  struct Level {
    NodeID element;          // the open element
    std::string tag_name;    // cached: closing tag after children
    bool closes_tag = true;  // detour levels only continue a chain
    bool has_children = false;
    int depth = 0;
    // Enumeration position within the current cluster's chain.
    PageId chain_page = kInvalidPageId;
    SlotId chain_slot = kInvalidSlot;    // next record to inspect
    SlotId chain_origin = kInvalidSlot;  // stop marker within chain_page
  };

  void Indent(int depth) {
    if (options_.indent) out_.append(static_cast<std::size_t>(depth) * 2, ' ');
  }

  Status OpenElement(NodeID id, int depth) {
    NAVPATH_ASSIGN_OR_RETURN(
        PageGuard guard,
        db_->buffer()->FixSwizzle(
            TranslateToPhysical(options_.translator, id.page)));
    const ClusterView view = db_->MakeView(guard, id.page);
    Level level;
    level.element = id;
    level.tag_name = db_->tags()->Name(view.TagOf(id.slot));
    level.depth = depth;
    level.chain_page = id.page;
    level.chain_slot = view.FirstChildOf(id.slot);
    level.chain_origin = id.slot;
    const std::string_view text = view.TextOf(id.slot);
    Indent(depth);
    out_.push_back('<');
    out_.append(level.tag_name);
    AppendAttributes(view, db_->tags(), id.slot, &out_);
    if (text.empty() && level.chain_slot == kInvalidSlot) {
      out_.append("/>");
      if (options_.indent) out_.push_back('\n');
      return Status::OK();  // nothing to push
    }
    out_.push_back('>');
    level.has_children = level.chain_slot != kInvalidSlot;
    if (options_.indent && level.has_children) out_.push_back('\n');
    AppendEscapedXmlText(text, options_.escape_text, &out_);
    stack_.push_back(std::move(level));
    return Status::OK();
  }

  void CloseElement(const Level& level) {
    if (!level.closes_tag) return;
    if (options_.indent && level.has_children) Indent(level.depth);
    out_.append("</");
    out_.append(level.tag_name);
    out_.push_back('>');
    if (options_.indent) out_.push_back('\n');
  }

  /// Processes one chain element of the top level (or closes it).
  Status Advance() {
    Level& top = stack_.back();
    if (top.chain_slot == kInvalidSlot ||
        top.chain_slot == top.chain_origin) {
      CloseElement(top);
      stack_.pop_back();
      return Status::OK();
    }
    NAVPATH_ASSIGN_OR_RETURN(
        PageGuard guard,
        db_->buffer()->Fix(
            TranslateToPhysical(options_.translator, top.chain_page)));
    const ClusterView view = db_->MakeView(guard, top.chain_page);
    const SlotId slot = top.chain_slot;
    view.ChargeHop();
    switch (view.KindOf(slot)) {
      case RecordKind::kCore: {
        top.chain_slot = view.NextSiblingOf(slot);
        const NodeID child{top.chain_page, slot};
        const int depth = top.depth + 1;
        guard.Release();
        return OpenElement(child, depth);
      }
      case RecordKind::kBorderDown: {
        // Continue this level's chain inside the partner fragment.
        const NodeID partner = view.PartnerOf(slot);
        ++db_->metrics()->inter_cluster_hops;
        top.chain_slot = view.NextSiblingOf(slot);
        // Remember where to resume after the partner fragment: the
        // partner's children are enumerated first, then we return here.
        Level detour = top;  // copy of the element level state
        NAVPATH_ASSIGN_OR_RETURN(
            PageGuard pguard,
            db_->buffer()->FixSwizzle(
                TranslateToPhysical(options_.translator, partner.page)));
        const ClusterView pview = db_->MakeView(pguard, partner.page);
        detour.chain_page = partner.page;
        detour.chain_slot = pview.FirstChildOf(partner.slot);
        detour.chain_origin = partner.slot;
        detour.has_children = true;
        detour.closes_tag = false;  // continues the element's child list
        detour.tag_name.clear();
        detour.depth = top.depth;
        stack_.push_back(std::move(detour));
        return Status::OK();
      }
      case RecordKind::kBorderUp:
        // End of a fragment chain: fall back to the outer level.
        top.chain_slot = kInvalidSlot;
        return Status::OK();
      case RecordKind::kAttribute:
        return Status::Corruption("attribute in a child chain");
    }
    return Status::Corruption("unknown record kind during export");
  }

  Database* db_;
  ExportOptions options_;
  std::string out_;
  std::vector<Level> stack_;
};

}  // namespace

Result<std::string> ExportSubtree(Database* db, NodeID node,
                                  const ExportOptions& options) {
  NAVPATH_CHECK(db != nullptr);
  Exporter exporter(db, options);
  return exporter.Run(node);
}

}  // namespace navpath
