#include "store/import.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "store/tree_page.h"

namespace navpath {
namespace {

/// Per-node attachment state while the node can still receive children:
/// the page and parent record under which the next child record goes, and
/// the last element of the current chain segment.
struct AttachState {
  std::uint32_t page = 0;      // index into the build-page list
  SlotId parent_slot = kInvalidSlot;
  SlotId last_elem = kInvalidSlot;
};

class Materializer {
 public:
  Materializer(const DomTree& tree, const ClusterAssignment& assignment,
               SimulatedDisk* disk, const ImportOptions& options,
               std::vector<PageId>* node_pages,
               std::vector<std::pair<DomNodeId, PageId>>* glue_pages)
      : tree_(tree),
        assignment_(assignment),
        disk_(disk),
        page_size_(disk->page_size()),
        options_(options),
        node_pages_(node_pages),
        glue_pages_(glue_pages) {}

  Result<ImportedDocument> Run();

 private:
  struct BuildPage {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t reserved = 0;  // bytes held back for continuation borders
  };

  TreePage View(std::uint32_t idx) {
    return TreePage(pages_[idx].bytes.get(), page_size_);
  }

  std::size_t EffectiveFree(std::uint32_t idx) {
    const std::size_t free = View(idx).FreeBytes();
    NAVPATH_DCHECK(free >= pages_[idx].reserved);
    return free - pages_[idx].reserved;
  }

  std::uint32_t NewPage() {
    BuildPage bp;
    bp.bytes = std::make_unique<std::byte[]>(page_size_);
    TreePage::Initialize(bp.bytes.get(), page_size_);
    pages_.push_back(std::move(bp));
    return static_cast<std::uint32_t>(pages_.size() - 1);
  }

  /// The page currently accepting new fragments of policy cluster `c`.
  std::uint32_t ClusterOpenPage(std::uint32_t c) {
    auto it = cluster_open_.find(c);
    if (it != cluster_open_.end()) return it->second;
    const std::uint32_t idx = NewPage();
    cluster_open_[c] = idx;
    return idx;
  }

  NodeID IdOf(std::uint32_t page_idx, SlotId slot) const {
    return NodeID{base_page_ + page_idx, slot};
  }

  std::string_view CappedText(DomNodeId v) const {
    const std::string& t = tree_.node(v).text;
    return std::string_view(t).substr(0, options_.text_cap);
  }

  /// Bytes node v's attribute records will occupy (incl. slot entries).
  std::size_t AttrSpace(DomNodeId v) const {
    std::size_t bytes = 0;
    for (DomNodeId a = tree_.node(v).first_attr; a != kNilDomNode;
         a = tree_.node(a).next_sibling) {
      bytes += TreePage::CoreRecordSpace(CappedText(a).size());
    }
    return bytes;
  }

  /// Materializes v's attribute chain next to its element record.
  Status PlaceAttributes(DomNodeId v, std::uint32_t page_idx,
                         SlotId element_slot) {
    TreePage page = View(page_idx);
    SlotId prev = kInvalidSlot;
    for (DomNodeId a = tree_.node(v).first_attr; a != kNilDomNode;
         a = tree_.node(a).next_sibling) {
      NAVPATH_ASSIGN_OR_RETURN(
          const SlotId slot,
          page.AddAttributeRecord(tree_.node(a).tag, tree_.node(a).order,
                                  CappedText(a)));
      page.SetParent(slot, element_slot);
      if (prev == kInvalidSlot) {
        page.SetFirstAttr(element_slot, slot);
      } else {
        page.SetNextSibling(prev, slot);
      }
      prev = slot;
      RecordNodePage(a, page_idx);
      ++doc_.attribute_records;
    }
    return Status::OK();
  }

  /// Appends chain element `e` (core or down-border) under `u`'s current
  /// attach point.
  void LinkChild(DomNodeId u, SlotId e) {
    AttachState& st = attach_[u];
    TreePage page = View(st.page);
    const SlotId ps = st.parent_slot;
    const bool parent_is_up = page.KindOf(ps) == RecordKind::kBorderUp;
    if (st.last_elem == kInvalidSlot) {
      page.SetFirstChild(ps, e);
      if (parent_is_up) page.SetPrevSibling(e, ps);
    } else {
      page.SetNextSibling(st.last_elem, e);
      page.SetPrevSibling(e, st.last_elem);
    }
    if (parent_is_up) page.SetLastChild(ps, e);
    page.SetParent(e, ps);
    st.last_elem = e;
  }

  /// Closes u's current chain segment (terminal next pointer towards the
  /// fragment's up-border, if any).
  void SealSegment(DomNodeId u) {
    const AttachState& st = attach_[u];
    if (st.last_elem == kInvalidSlot) return;
    TreePage page = View(st.page);
    if (page.KindOf(st.parent_slot) == RecordKind::kBorderUp) {
      page.SetNextSibling(st.last_elem, st.parent_slot);
    }
  }

  /// Makes sure u's attach page can absorb `need` more bytes, splitting
  /// the child list into a continuation fragment if it cannot.
  Status EnsureAttachSpace(DomNodeId u, std::size_t need) {
    AttachState& st = attach_[u];
    if (EffectiveFree(st.page) >= need) return Status::OK();

    // Consume u's reservation in the old page for the continuation
    // down-border.
    NAVPATH_DCHECK(pages_[st.page].reserved >= TreePage::BorderRecordSpace());
    pages_[st.page].reserved -= TreePage::BorderRecordSpace();
    TreePage old_page = View(st.page);
    NAVPATH_ASSIGN_OR_RETURN(const SlotId cont_down,
                             old_page.AddBorderRecord(RecordKind::kBorderDown));
    const std::uint32_t old_idx = st.page;
    LinkChild(u, cont_down);
    SealSegment(u);

    // Fresh page for the remaining children; it becomes the open page of
    // u's policy cluster so locality is preserved.
    const std::uint32_t new_idx = NewPage();
    cluster_open_[assignment_[u]] = new_idx;
    TreePage new_page = View(new_idx);
    NAVPATH_ASSIGN_OR_RETURN(const SlotId cont_up,
                             new_page.AddBorderRecord(RecordKind::kBorderUp));
    new_page.SetPartner(cont_up, IdOf(old_idx, cont_down));
    View(old_idx).SetPartner(cont_down, IdOf(new_idx, cont_up));
    pages_[new_idx].reserved += TreePage::BorderRecordSpace();

    st.page = new_idx;
    st.parent_slot = cont_up;
    st.last_elem = kInvalidSlot;
    // The fresh page extends u's child list: border records for u's later
    // children land here even if no record of u (or of any node the
    // synopsis tracks) ever does. Report it as u's glue page.
    if (glue_pages_ != nullptr) cont_page_.emplace_back(u, new_idx);
    ++doc_.border_pairs;
    ++doc_.continuation_pairs;
    NAVPATH_DCHECK(EffectiveFree(new_idx) >= need);
    return Status::OK();
  }

  Status PlaceRoot(DomNodeId root);
  Status PlaceChild(DomNodeId v);
  Status FinishNode(DomNodeId v);

  const DomTree& tree_;
  const ClusterAssignment& assignment_;
  SimulatedDisk* disk_;
  std::size_t page_size_;
  ImportOptions options_;

  /// Records node v's placement build page. AttachState::page can move
  /// later (continuation splits re-point the attach page); the record
  /// itself stays where it was placed, so capture the page here.
  void RecordNodePage(DomNodeId v, std::uint32_t build_idx) {
    if (node_pages_ != nullptr) build_page_[v] = build_idx;
  }

  std::vector<BuildPage> pages_;
  std::unordered_map<std::uint32_t, std::uint32_t> cluster_open_;
  std::vector<AttachState> attach_;
  PageId base_page_ = 0;
  ImportedDocument doc_;
  std::vector<PageId>* node_pages_;
  std::vector<std::pair<DomNodeId, PageId>>* glue_pages_;
  std::vector<std::uint32_t> build_page_;
  /// (owner, build page) per continuation split, in creation order.
  std::vector<std::pair<DomNodeId, std::uint32_t>> cont_page_;
};

Status Materializer::PlaceRoot(DomNodeId root) {
  const std::uint32_t idx = ClusterOpenPage(assignment_[root]);
  TreePage page = View(idx);
  NAVPATH_ASSIGN_OR_RETURN(
      const SlotId slot,
      page.AddCoreRecord(tree_.node(root).tag, tree_.node(root).order,
                         CappedText(root)));
  NAVPATH_RETURN_NOT_OK(PlaceAttributes(root, idx, slot));
  attach_[root] = AttachState{idx, slot, kInvalidSlot};
  RecordNodePage(root, idx);
  pages_[idx].reserved += TreePage::BorderRecordSpace();
  doc_.root = IdOf(idx, slot);
  doc_.root_order = tree_.node(root).order;
  ++doc_.core_records;
  return Status::OK();
}

Status Materializer::PlaceChild(DomNodeId v) {
  const DomNodeId u = tree_.node(v).parent;
  const std::string_view text = CappedText(v);
  const std::size_t core_space = TreePage::CoreRecordSpace(text.size());
  const std::size_t reserve_space = TreePage::BorderRecordSpace();

  const std::size_t attr_space = AttrSpace(v);
  if (assignment_[v] == assignment_[u]) {
    // Keep v next to its parent: place into u's attach page (after a
    // possible continuation split).
    NAVPATH_RETURN_NOT_OK(
        EnsureAttachSpace(u, core_space + attr_space + reserve_space));
    AttachState& ust = attach_[u];
    TreePage page = View(ust.page);
    NAVPATH_ASSIGN_OR_RETURN(
        const SlotId slot,
        page.AddCoreRecord(tree_.node(v).tag, tree_.node(v).order, text));
    NAVPATH_RETURN_NOT_OK(PlaceAttributes(v, ust.page, slot));
    LinkChild(u, slot);
    attach_[v] = AttachState{ust.page, slot, kInvalidSlot};
    RecordNodePage(v, ust.page);
    pages_[ust.page].reserved += reserve_space;
  } else {
    // v starts (or extends) a foreign cluster: border pair for the edge.
    std::uint32_t v_idx = ClusterOpenPage(assignment_[v]);
    const std::size_t fragment_space = TreePage::BorderRecordSpace() +
                                       core_space + attr_space +
                                       reserve_space;
    if (EffectiveFree(v_idx) < fragment_space) {
      v_idx = NewPage();
      cluster_open_[assignment_[v]] = v_idx;
    }
    TreePage v_page = View(v_idx);
    NAVPATH_ASSIGN_OR_RETURN(const SlotId up,
                             v_page.AddBorderRecord(RecordKind::kBorderUp));
    NAVPATH_ASSIGN_OR_RETURN(
        const SlotId slot,
        v_page.AddCoreRecord(tree_.node(v).tag, tree_.node(v).order, text));
    NAVPATH_RETURN_NOT_OK(PlaceAttributes(v, v_idx, slot));
    // v is the sole child of its plain up-border: the sibling chain starts
    // and ends at the border so navigation can resume in both directions.
    v_page.SetFirstChild(up, slot);
    v_page.SetLastChild(up, slot);
    v_page.SetParent(slot, up);
    v_page.SetPrevSibling(slot, up);
    v_page.SetNextSibling(slot, up);
    pages_[v_idx].reserved += reserve_space;

    NAVPATH_RETURN_NOT_OK(
        EnsureAttachSpace(u, TreePage::BorderRecordSpace()));
    AttachState& ust = attach_[u];
    TreePage u_page = View(ust.page);
    NAVPATH_ASSIGN_OR_RETURN(const SlotId down,
                             u_page.AddBorderRecord(RecordKind::kBorderDown));
    LinkChild(u, down);
    u_page.SetPartner(down, IdOf(v_idx, up));
    View(v_idx).SetPartner(up, IdOf(ust.page, down));
    attach_[v] = AttachState{v_idx, slot, kInvalidSlot};
    RecordNodePage(v, v_idx);
    ++doc_.border_pairs;
  }
  ++doc_.core_records;
  return Status::OK();
}

Status Materializer::FinishNode(DomNodeId v) {
  SealSegment(v);
  AttachState& st = attach_[v];
  NAVPATH_DCHECK(pages_[st.page].reserved >= TreePage::BorderRecordSpace());
  pages_[st.page].reserved -= TreePage::BorderRecordSpace();
  return Status::OK();
}

Result<ImportedDocument> Materializer::Run() {
  if (tree_.empty()) {
    return Status::InvalidArgument("cannot import an empty document");
  }
  if (assignment_.size() != tree_.size()) {
    return Status::InvalidArgument("assignment size != tree size");
  }
  // A fresh page must always fit one fragment with maximal text plus the
  // continuation machinery; clamp the text cap accordingly.
  const std::size_t overhead = TreePage::CoreRecordSpace(0) +
                               4 * TreePage::BorderRecordSpace() +
                               TreePage::kHeaderBytes;
  if (overhead + 16 > page_size_) {
    return Status::InvalidArgument("page size too small for tree records");
  }
  options_.text_cap = std::min(options_.text_cap, page_size_ - overhead - 16);

  attach_.resize(tree_.size());
  if (node_pages_ != nullptr) build_page_.resize(tree_.size(), 0);
  base_page_ = disk_->num_pages();

  // Depth-first traversal with pre/post events; parents are placed before
  // their children, nodes are sealed after their whole subtree.
  std::vector<std::pair<DomNodeId, bool>> stack;
  stack.emplace_back(tree_.root(), false);
  while (!stack.empty()) {
    const auto [v, post] = stack.back();
    stack.pop_back();
    if (post) {
      NAVPATH_RETURN_NOT_OK(FinishNode(v));
      continue;
    }
    if (v == tree_.root()) {
      NAVPATH_RETURN_NOT_OK(PlaceRoot(v));
    } else {
      NAVPATH_RETURN_NOT_OK(PlaceChild(v));
    }
    stack.emplace_back(v, true);
    // Children pushed right-to-left so they are placed in document order.
    for (DomNodeId c = tree_.node(v).last_child; c != kNilDomNode;
         c = tree_.node(c).prev_sibling) {
      stack.emplace_back(c, false);
    }
  }

  // Determine each build page's physical position. By default this is the
  // creation order; with fragmentation enabled, pages are displaced within
  // a window to model split-based imports and aged databases.
  std::vector<std::uint32_t> position(pages_.size());
  for (std::uint32_t i = 0; i < position.size(); ++i) position[i] = i;
  if (options_.fragmentation > 0.0 && pages_.size() > 1) {
    Random rng(options_.fragmentation_seed);
    const std::uint32_t n = static_cast<std::uint32_t>(pages_.size());
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!rng.NextBool(options_.fragmentation)) continue;
      const std::uint32_t span = static_cast<std::uint32_t>(std::min<
          std::size_t>(options_.fragmentation_window, n - 1 - i));
      if (span == 0) continue;
      const std::uint32_t j =
          i + 1 + static_cast<std::uint32_t>(rng.NextBounded(span));
      std::swap(position[i], position[j]);
    }
    // Remap every NodeID that names a page: border partners and the root.
    auto remap = [&](NodeID id) {
      return NodeID{base_page_ + position[id.page - base_page_], id.slot};
    };
    for (std::uint32_t i = 0; i < pages_.size(); ++i) {
      TreePage page = View(i);
      for (SlotId s = 0; s < page.slot_count(); ++s) {
        if (page.IsBorder(s)) page.SetPartner(s, remap(page.PartnerOf(s)));
      }
    }
    doc_.root = remap(doc_.root);
  }

  for (std::uint32_t i = 0; i < pages_.size(); ++i) {
    NAVPATH_CHECK(disk_->AllocatePage() == base_page_ + i);
  }
  for (std::uint32_t i = 0; i < pages_.size(); ++i) {
    if (options_.validate_pages) {
      NAVPATH_RETURN_NOT_OK(View(i).Validate());
    }
    NAVPATH_RETURN_NOT_OK(disk_->WriteSync(base_page_ + position[i],
                                           pages_[i].bytes.get()));
  }
  doc_.first_page = base_page_;
  doc_.last_page = base_page_ + static_cast<PageId>(pages_.size()) - 1;
  doc_.pages = pages_.size();
  if (node_pages_ != nullptr) {
    node_pages_->resize(tree_.size());
    for (DomNodeId v = 0; v < tree_.size(); ++v) {
      (*node_pages_)[v] = base_page_ + position[build_page_[v]];
    }
  }
  if (glue_pages_ != nullptr) {
    glue_pages_->clear();
    glue_pages_->reserve(cont_page_.size());
    for (const auto& [owner, idx] : cont_page_) {
      glue_pages_->emplace_back(owner, base_page_ + position[idx]);
    }
  }
  return doc_;
}

}  // namespace

Result<ImportedDocument> MaterializeDocument(
    const DomTree& tree, const ClusterAssignment& assignment,
    SimulatedDisk* disk, const ImportOptions& options,
    std::vector<PageId>* node_pages,
    std::vector<std::pair<DomNodeId, PageId>>* glue_pages) {
  NAVPATH_CHECK(disk != nullptr);
  Materializer m(tree, assignment, disk, options, node_pages, glue_pages);
  return m.Run();
}

}  // namespace navpath
