#include "store/path_summary.h"

#include <algorithm>
#include <cstring>

namespace navpath {
namespace {

void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Bounds-checked little cursor over the encoded bytes.
class Reader {
 public:
  Reader(const void* data, std::size_t size)
      : p_(static_cast<const unsigned char*>(data)), left_(size) {}

  bool ReadU8(std::uint8_t* v) {
    if (left_ < 1) return false;
    *v = *p_;
    p_ += 1;
    left_ -= 1;
    return true;
  }
  bool ReadU32(std::uint32_t* v) {
    if (left_ < 4) return false;
    std::memcpy(v, p_, 4);
    p_ += 4;
    left_ -= 4;
    return true;
  }
  bool ReadU64(std::uint64_t* v) {
    if (left_ < 8) return false;
    std::memcpy(v, p_, 8);
    p_ += 8;
    left_ -= 8;
    return true;
  }
  bool exhausted() const { return left_ == 0; }

 private:
  const unsigned char* p_;
  std::size_t left_;
};

/// Merges a sorted page list into inclusive [first, last] extents.
std::vector<SummaryExtent> MergePages(std::vector<PageId>* pages) {
  std::vector<SummaryExtent> extents;
  std::sort(pages->begin(), pages->end());
  pages->erase(std::unique(pages->begin(), pages->end()), pages->end());
  for (const PageId p : *pages) {
    if (!extents.empty() && p == extents.back().last + 1) {
      extents.back().last = p;
    } else {
      extents.push_back(SummaryExtent{p, p});
    }
  }
  return extents;
}

}  // namespace

std::unique_ptr<PathSummary> PathSummary::Build(
    const DomTree& tree, const std::vector<PageId>& node_pages,
    const std::vector<std::pair<DomNodeId, PageId>>& glue_pages) {
  NAVPATH_CHECK(!tree.empty());
  NAVPATH_CHECK(node_pages.size() == tree.size());
  std::unique_ptr<PathSummary> summary(new PathSummary());

  // summary_of[v] = summary node of DOM node v; filled top-down in
  // document order, so children vectors come out in first-encounter
  // (document) order — the encoding is deterministic by construction.
  std::vector<std::uint32_t> summary_of(tree.size(), kNoParent);
  std::vector<std::vector<PageId>> pages_of;

  auto child_summary = [&](std::uint32_t parent_sid, TagId tag,
                           DomNodeKind kind) {
    // Fan-out of *distinct* child paths is small; a linear scan of the
    // parent's children beats hashing and is order-deterministic.
    for (const std::uint32_t c : summary->nodes_[parent_sid].children) {
      const Node& cn = summary->nodes_[c];
      if (cn.tag == tag && cn.kind == kind) return c;
    }
    const std::uint32_t sid =
        static_cast<std::uint32_t>(summary->nodes_.size());
    Node node;
    node.tag = tag;
    node.kind = kind;
    node.parent = parent_sid;
    summary->nodes_.push_back(std::move(node));
    pages_of.emplace_back();
    summary->nodes_[parent_sid].children.push_back(sid);
    return sid;
  };

  auto record = [&](DomNodeId v, std::uint32_t sid) {
    summary_of[v] = sid;
    ++summary->nodes_[sid].count;
    ++summary->total_instances_;
    pages_of[sid].push_back(node_pages[v]);
  };

  // Root summary node.
  {
    Node node;
    node.tag = tree.node(tree.root()).tag;
    summary->nodes_.push_back(std::move(node));
    pages_of.emplace_back();
    record(tree.root(), 0);
  }

  // Document-order DFS over elements; attributes handled at their owner.
  std::vector<DomNodeId> stack;
  stack.push_back(tree.root());
  while (!stack.empty()) {
    const DomNodeId v = stack.back();
    stack.pop_back();
    const std::uint32_t sid = summary_of[v];
    for (DomNodeId a = tree.node(v).first_attr; a != kNilDomNode;
         a = tree.node(a).next_sibling) {
      record(a, child_summary(sid, tree.node(a).tag, DomNodeKind::kAttribute));
    }
    // Children pushed right-to-left so they are visited in document order.
    for (DomNodeId c = tree.node(v).last_child; c != kNilDomNode;
         c = tree.node(c).prev_sibling) {
      record(c, child_summary(sid, tree.node(c).tag, DomNodeKind::kElement));
      stack.push_back(c);
    }
  }

  // Continuation pages carry border glue of the owner's child list; count
  // them as the owner's so restricted sweeps keep cross-page assembly
  // intact even when no tracked record lives there.
  for (const auto& [owner, page] : glue_pages) {
    pages_of[summary_of[owner]].push_back(page);
  }

  for (std::uint32_t i = 0; i < summary->nodes_.size(); ++i) {
    summary->nodes_[i].extents = MergePages(&pages_of[i]);
  }
  return summary;
}

namespace {

/// Adds `p` to a sorted, non-overlapping extent list, merging with
/// adjacent/containing ranges so the Decode invariants keep holding.
void AddPageToExtents(std::vector<SummaryExtent>* extents, PageId p) {
  std::size_t i = 0;
  while (i < extents->size() && (*extents)[i].last + 1 < p) ++i;
  if (i == extents->size()) {
    extents->push_back(SummaryExtent{p, p});
    return;
  }
  SummaryExtent& e = (*extents)[i];
  if (p + 1 < e.first) {
    extents->insert(extents->begin() + i, SummaryExtent{p, p});
    return;
  }
  e.first = std::min(e.first, p);
  e.last = std::max(e.last, p);
  if (i + 1 < extents->size() && (*extents)[i + 1].first <= e.last + 1) {
    e.last = std::max(e.last, (*extents)[i + 1].last);
    extents->erase(extents->begin() + i + 1);
  }
}

}  // namespace

std::unique_ptr<PathSummary> PathSummary::CloneWithInserts(
    const std::vector<SummaryInsert>& inserts) const {
  std::unique_ptr<PathSummary> out(new PathSummary());
  out->nodes_ = nodes_;
  out->total_instances_ = total_instances_;
  for (const SummaryInsert& ins : inserts) {
    if (ins.tags.empty() || ins.tags.front() != out->nodes_[root()].tag) {
      return nullptr;
    }
    std::uint32_t sid = root();
    for (std::size_t d = 1; d < ins.tags.size(); ++d) {
      const bool leaf = d + 1 == ins.tags.size();
      const DomNodeKind kind = leaf ? ins.kind : DomNodeKind::kElement;
      std::uint32_t child = kNoParent;
      for (const std::uint32_t c : out->nodes_[sid].children) {
        if (out->nodes_[c].tag == ins.tags[d] &&
            out->nodes_[c].kind == kind) {
          child = c;
          break;
        }
      }
      if (child == kNoParent) {
        child = static_cast<std::uint32_t>(out->nodes_.size());
        Node node;
        node.tag = ins.tags[d];
        node.kind = kind;
        node.parent = sid;
        out->nodes_.push_back(std::move(node));
        out->nodes_[sid].children.push_back(child);
      }
      sid = child;
    }
    ++out->nodes_[sid].count;
    ++out->total_instances_;
    for (const PageId p : ins.pages) {
      AddPageToExtents(&out->nodes_[sid].extents, p);
    }
  }
  return out;
}

std::unique_ptr<PathSummary> PathSummary::CloneWithDeltas(
    const std::vector<SummaryInsert>& inserts,
    const std::vector<SummaryDelete>& deletes,
    const std::vector<SummaryPageRemap>& remaps) const {
  std::unique_ptr<PathSummary> out = CloneWithInserts(inserts);
  if (out == nullptr) return nullptr;
  for (const SummaryDelete& del : deletes) {
    if (del.tags.size() < 2 ||
        del.tags.front() != out->nodes_[out->root()].tag) {
      // Unknown root or an attempt to delete the document root itself.
      return nullptr;
    }
    std::uint32_t sid = out->root();
    for (std::size_t d = 1; d < del.tags.size(); ++d) {
      const bool leaf = d + 1 == del.tags.size();
      const DomNodeKind kind = leaf ? del.kind : DomNodeKind::kElement;
      std::uint32_t child = kNoParent;
      for (const std::uint32_t c : out->nodes_[sid].children) {
        if (out->nodes_[c].tag == del.tags[d] &&
            out->nodes_[c].kind == kind) {
          child = c;
          break;
        }
      }
      if (child == kNoParent) return nullptr;  // path never seen: stale delta
      sid = child;
    }
    if (out->nodes_[sid].count < del.count ||
        out->total_instances_ < del.count) {
      return nullptr;  // count underflow: the deltas cannot be trusted
    }
    out->nodes_[sid].count -= del.count;
    out->total_instances_ -= del.count;
  }
  for (const SummaryPageRemap& remap : remaps) {
    if (remap.from == kInvalidPageId || remap.to == kInvalidPageId) {
      return nullptr;
    }
    for (Node& node : out->nodes_) {
      bool covers = false;
      for (const SummaryExtent& e : node.extents) {
        if (e.first <= remap.from && remap.from <= e.last) {
          covers = true;
          break;
        }
      }
      if (covers) AddPageToExtents(&node.extents, remap.to);
    }
  }
  return out;
}

bool PathSummary::Supports(const LocationPath& path) {
  if (!path.absolute) return false;
  for (const LocationStep& step : path.steps) {
    if (!step.predicates.empty()) return false;
    switch (step.axis) {
      case Axis::kSelf:
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
      case Axis::kAttribute:
        break;
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        // Upward/sideways axes leave the frontier-instance-set argument
        // (DESIGN.md Sec. 11): counts would no longer be exact.
        return false;
    }
  }
  return true;
}

SummaryMatch PathSummary::Match(const LocationPath& path) const {
  SummaryMatch match;
  if (!Supports(path)) return match;
  match.applicable = true;

  const std::uint32_t n = static_cast<std::uint32_t>(nodes_.size());
  std::vector<std::uint8_t> touched(n, 0);
  std::vector<std::uint8_t> in_set(n, 0);  // scratch mask per step

  std::vector<std::uint32_t> frontier = {root()};
  touched[root()] = 1;

  auto count_of = [&](const std::vector<std::uint32_t>& set) {
    std::uint64_t total = 0;
    for (const std::uint32_t s : set) total += nodes_[s].count;
    return total;
  };

  for (std::size_t si = 0; si < path.steps.size(); ++si) {
    const LocationStep& step = path.steps[si];
    // Candidates the navigation inspects for this step, dedup'd via
    // in_set (overlapping descendant subtrees count once).
    std::vector<std::uint32_t> candidates;
    auto add_candidate = [&](std::uint32_t s) {
      if (in_set[s]) return;
      in_set[s] = 1;
      touched[s] = 1;
      candidates.push_back(s);
    };
    switch (step.axis) {
      case Axis::kSelf:
        for (const std::uint32_t f : frontier) add_candidate(f);
        break;
      case Axis::kChild:
      case Axis::kAttribute: {
        const DomNodeKind want = step.axis == Axis::kAttribute
                                     ? DomNodeKind::kAttribute
                                     : DomNodeKind::kElement;
        for (const std::uint32_t f : frontier) {
          for (const std::uint32_t c : nodes_[f].children) {
            if (nodes_[c].kind == want) add_candidate(c);
          }
        }
        break;
      }
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        std::vector<std::uint32_t> walk;
        for (const std::uint32_t f : frontier) {
          if (step.axis == Axis::kDescendantOrSelf) add_candidate(f);
          walk.push_back(f);
        }
        while (!walk.empty()) {
          const std::uint32_t s = walk.back();
          walk.pop_back();
          for (const std::uint32_t c : nodes_[s].children) {
            if (nodes_[c].kind != DomNodeKind::kElement) continue;
            const bool fresh = !in_set[c];
            add_candidate(c);
            if (fresh) walk.push_back(c);
          }
        }
        break;
      }
      case Axis::kParent:
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf:
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling:
        NAVPATH_CHECK_MSG(false, "unreachable: Supports() filtered axis");
    }
    std::sort(candidates.begin(), candidates.end());
    for (const std::uint32_t s : candidates) in_set[s] = 0;

    std::vector<std::uint32_t> matched;
    for (const std::uint32_t s : candidates) {
      if (step.test.Matches(nodes_[s].tag)) matched.push_back(s);
    }

    SummaryMatch::Step info;
    info.examined = count_of(candidates);
    info.selected = count_of(matched);
    match.nodes_examined += info.examined;
    match.steps.push_back(info);

    frontier = std::move(matched);
    if (frontier.empty()) {
      match.empty = true;
      match.empty_at = static_cast<int>(si);
      // Remaining steps select and examine nothing.
      for (std::size_t r = si + 1; r < path.steps.size(); ++r) {
        match.steps.push_back(SummaryMatch::Step{});
      }
      break;
    }
  }

  match.final_nodes = frontier;
  match.result_count = count_of(frontier);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (touched[s]) match.touched.push_back(s);
  }
  return match;
}

std::vector<SummaryExtent> PathSummary::ExtentUnion(
    const std::vector<std::uint32_t>& nodes) const {
  std::vector<SummaryExtent> all;
  for (const std::uint32_t s : nodes) {
    NAVPATH_DCHECK(s < nodes_.size());
    all.insert(all.end(), nodes_[s].extents.begin(), nodes_[s].extents.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SummaryExtent& a, const SummaryExtent& b) {
              return a.first != b.first ? a.first < b.first : a.last < b.last;
            });
  std::vector<SummaryExtent> merged;
  for (const SummaryExtent& e : all) {
    if (!merged.empty() && e.first <= merged.back().last + 1 &&
        merged.back().last != kInvalidPageId) {
      merged.back().last = std::max(merged.back().last, e.last);
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

std::uint64_t PathSummary::ExtentPages(
    const std::vector<SummaryExtent>& extents) {
  std::uint64_t total = 0;
  for (const SummaryExtent& e : extents) total += e.pages();
  return total;
}

void PathSummary::Encode(std::string* out) const {
  AppendU32(out, static_cast<std::uint32_t>(nodes_.size()));
  AppendU64(out, total_instances_);
  for (const Node& node : nodes_) {
    AppendU32(out, node.tag);
    AppendU8(out, static_cast<std::uint8_t>(node.kind));
    AppendU32(out, node.parent);
    AppendU64(out, node.count);
    AppendU32(out, static_cast<std::uint32_t>(node.extents.size()));
    for (const SummaryExtent& e : node.extents) {
      AppendU32(out, e.first);
      AppendU32(out, e.last);
    }
  }
}

Result<std::unique_ptr<PathSummary>> PathSummary::Decode(const void* data,
                                                         std::size_t size) {
  Reader reader(data, size);
  std::uint32_t count = 0;
  std::unique_ptr<PathSummary> summary(new PathSummary());
  if (!reader.ReadU32(&count) || !reader.ReadU64(&summary->total_instances_)) {
    return Status::Corruption("path summary header truncated");
  }
  if (count == 0) return Status::Corruption("path summary has no nodes");
  summary->nodes_.reserve(count);
  std::uint64_t instance_sum = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    Node node;
    std::uint8_t kind = 0;
    std::uint32_t extent_count = 0;
    if (!reader.ReadU32(&node.tag) || !reader.ReadU8(&kind) ||
        !reader.ReadU32(&node.parent) || !reader.ReadU64(&node.count) ||
        !reader.ReadU32(&extent_count)) {
      return Status::Corruption("path summary node truncated");
    }
    if (kind > static_cast<std::uint8_t>(DomNodeKind::kAttribute)) {
      return Status::Corruption("path summary node kind out of range");
    }
    node.kind = static_cast<DomNodeKind>(kind);
    // Creation order places every parent before its children; the root
    // (and only the root) has no parent.
    if (i == 0 ? node.parent != kNoParent : node.parent >= i) {
      return Status::Corruption("path summary parent link out of order");
    }
    node.extents.reserve(extent_count);
    for (std::uint32_t e = 0; e < extent_count; ++e) {
      SummaryExtent extent;
      if (!reader.ReadU32(&extent.first) || !reader.ReadU32(&extent.last)) {
        return Status::Corruption("path summary extent truncated");
      }
      if (extent.first > extent.last ||
          (!node.extents.empty() &&
           extent.first <= node.extents.back().last)) {
        return Status::Corruption("path summary extents unordered");
      }
      node.extents.push_back(extent);
    }
    instance_sum += node.count;
    if (i != 0) summary->nodes_[node.parent].children.push_back(i);
    summary->nodes_.push_back(std::move(node));
  }
  if (!reader.exhausted()) {
    return Status::Corruption("path summary has trailing bytes");
  }
  if (instance_sum != summary->total_instances_) {
    return Status::Corruption("path summary instance counts inconsistent");
  }
  return summary;
}

}  // namespace navpath
