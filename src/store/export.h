// Document export from the paged store.
//
// Serializes (sub)documents back to XML text by navigating the physical
// tree — the workload the paper's outlook mentions as another application
// of partial path instances ("speed up document export"). The exporter
// here is the navigational baseline: it walks child axes across clusters
// and charges the usual navigation costs, so its metrics can be compared
// against query plans.
#ifndef NAVPATH_STORE_EXPORT_H_
#define NAVPATH_STORE_EXPORT_H_

#include <string>

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"

namespace navpath {

struct ExportOptions {
  bool indent = false;
  bool escape_text = true;
  /// MVCC page translation (a Snapshot or WriterTxn); nullptr exports the
  /// current page images. Lets tests serialize exactly what one snapshot
  /// sees, independent of later commits.
  const PageTranslator* translator = nullptr;
};

/// Serializes the subtree rooted at `node` from the paged store.
Result<std::string> ExportSubtree(Database* db, NodeID node,
                                  const ExportOptions& options = {});

/// Appends `text` to `out`, escaping &, <, > when `escape` is set
/// (shared by the navigational and scan-based exporters).
void AppendEscapedXmlText(std::string_view text, bool escape,
                          std::string* out);

/// Appends an attribute value, escaping &, <, ".
void AppendEscapedXmlAttribute(std::string_view value, std::string* out);

/// Appends ` name="value"` pairs for an element's attribute chain.
class ClusterView;  // fwd
void AppendAttributes(const ClusterView& view, TagRegistry* tags,
                      SlotId element, std::string* out);

/// Serializes the whole document.
inline Result<std::string> ExportDocument(Database* db,
                                          const ImportedDocument& doc,
                                          const ExportOptions& options = {}) {
  return ExportSubtree(db, doc.root, options);
}

}  // namespace navpath

#endif  // NAVPATH_STORE_EXPORT_H_
