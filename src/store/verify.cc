#include "store/verify.h"

#include <deque>
#include <unordered_set>

#include "store/cross_cursor.h"
#include "store/tree_page.h"

namespace navpath {

Result<VerifyReport> VerifyStore(Database* db, const ImportedDocument& doc) {
  VerifyReport report;
  const std::size_t page_size = db->options().page_size;

  for (PageId p = doc.first_page; p <= doc.last_page; ++p) {
    NAVPATH_ASSIGN_OR_RETURN(PageGuard guard, db->buffer()->Fix(p));
    TreePage page(guard.data(), page_size);
    NAVPATH_RETURN_NOT_OK(page.Validate());
    ++report.pages;
    for (SlotId s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s)) continue;
      if (page.KindOf(s) == RecordKind::kAttribute) {
        ++report.attribute_records;
        continue;
      }
      if (!page.IsBorder(s)) {
        ++report.core_records;
        continue;
      }
      ++report.border_records;
      const NodeID partner = page.PartnerOf(s);
      if (partner.page < doc.first_page || partner.page > doc.last_page) {
        return Status::Corruption("partner outside document: " +
                                  partner.ToString());
      }
      NAVPATH_ASSIGN_OR_RETURN(PageGuard partner_guard,
                               db->buffer()->Fix(partner.page));
      TreePage partner_page(partner_guard.data(), page_size);
      if (partner.slot >= partner_page.slot_count() ||
          !partner_page.IsLive(partner.slot) ||
          !partner_page.IsBorder(partner.slot)) {
        return Status::Corruption("partner is not a border: " +
                                  partner.ToString());
      }
      if (partner_page.KindOf(partner.slot) == page.KindOf(s)) {
        return Status::Corruption("partner has same direction: " +
                                  partner.ToString());
      }
      if (partner_page.PartnerOf(partner.slot) != (NodeID{p, s})) {
        return Status::Corruption("asymmetric border pair at " +
                                  NodeID{p, s}.ToString());
      }
    }
  }
  if (report.core_records != doc.core_records) {
    return Status::Corruption("core record count mismatch");
  }
  if (report.attribute_records != doc.attribute_records) {
    return Status::Corruption("attribute record count mismatch");
  }
  if (report.border_records != 2 * doc.border_pairs) {
    return Status::Corruption("border record count mismatch");
  }

  // Logical walk: every core reachable exactly once, unique order keys.
  std::unordered_set<std::uint64_t> seen_orders;
  std::deque<LogicalNode> queue;
  queue.push_back(LogicalNode{doc.root, 0, doc.root_order});
  CrossClusterCursor cursor(db);
  while (!queue.empty()) {
    const LogicalNode node = queue.front();
    queue.pop_front();
    if (!seen_orders.insert(node.order).second) {
      return Status::Corruption("duplicate order key " +
                                std::to_string(node.order));
    }
    ++report.reachable_cores;
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kAttribute, node.id));
    LogicalNode attr;
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&attr));
      if (!more) break;
      if (!seen_orders.insert(attr.order).second) {
        return Status::Corruption("duplicate attribute order key");
      }
      ++report.reachable_attributes;
    }
    NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, node.id));
    LogicalNode child;
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&child));
      if (!more) break;
      queue.push_back(child);
    }
  }
  if (report.reachable_cores != doc.core_records) {
    return Status::Corruption(
        "unreachable core records: " +
        std::to_string(doc.core_records - report.reachable_cores));
  }
  if (report.reachable_attributes != doc.attribute_records) {
    return Status::Corruption("unreachable attribute records");
  }
  return report;
}

}  // namespace navpath
