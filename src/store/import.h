// Document import: materializes a DOM into clustered tree pages.
//
// The materializer honors a ClusteringPolicy's proposed assignment as far
// as page capacity allows. Where a proposed cluster overflows its page, it
// splits the node's child list with a *continuation* border pair: the
// down-border ends the chain segment in the full page and its up-border
// partner acts as the physical parent of the remaining children in a fresh
// page. (This is the role Natix's helper/proxy nodes play; the paper's
// per-edge border-node model is the special case of a fragment with one
// child.) Space accounting is exact: every core record placed in a page
// reserves room for one potential continuation down-border so a split is
// always possible.
#ifndef NAVPATH_STORE_IMPORT_H_
#define NAVPATH_STORE_IMPORT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/disk.h"
#include "store/clustering.h"
#include "store/node_id.h"
#include "xml/dom.h"

namespace navpath {

struct ImportedDocument {
  NodeID root;
  std::uint64_t root_order = 0;
  /// The document's pages occupy the contiguous disk range
  /// [first_page, last_page] in materialization order.
  PageId first_page = kInvalidPageId;
  PageId last_page = kInvalidPageId;

  std::uint64_t core_records = 0;
  std::uint64_t attribute_records = 0;
  std::uint64_t border_pairs = 0;         // total crossings (incl. below)
  std::uint64_t continuation_pairs = 0;   // crossings from chain splits
  std::uint64_t pages = 0;

  PageId page_count() const {
    return first_page == kInvalidPageId ? 0 : last_page - first_page + 1;
  }
};

struct ImportOptions {
  /// Character content is truncated to this many stored bytes per node.
  std::size_t text_cap = 2048;
  /// Run TreePage::Validate on every materialized page.
  bool validate_pages = false;

  /// Physical fragmentation of the layout: the fraction of pages that are
  /// displaced from their creation-order position (swapped with a page up
  /// to `fragmentation_window` slots ahead, deterministically).
  ///
  /// Our materializer writes pages in depth-first creation order, which
  /// is an unrealistically perfect layout: real imports (Natix splits
  /// overflowing pages to the end of the segment) and incremental updates
  /// scatter logically adjacent pages (paper Sec. 1). Benchmarks run with
  /// a fragmented layout; 0.0 keeps the pristine order.
  double fragmentation = 0.0;
  std::size_t fragmentation_window = 64;
  std::uint64_t fragmentation_seed = 1;

  /// Build the path-summary synopsis at import (Database::Import). The
  /// summary gives the planner exact cardinalities, empty-path proofs and
  /// navigation-free count()/existence answers on predicate-free paths;
  /// off reproduces pre-summary behavior byte-for-byte.
  bool build_summary = true;
};

/// Builds pages for `tree` under `assignment` and writes them to `disk`.
/// The caller typically resets the simulated clock and metrics afterwards
/// (import cost is not part of any measured query).
///
/// When `node_pages` is non-null it is resized to tree.size() and filled
/// with the final physical page of every DOM node's core (or attribute)
/// record — placement page with the fragmentation permutation applied.
/// The path-summary synopsis derives its cluster extents from this.
///
/// When `glue_pages` is non-null it receives one (owner, page) pair per
/// continuation split: the fresh page holds the up-border that extends
/// `owner`'s child list, so border records linking owner's children may
/// live there without any record of owner itself. The synopsis must count
/// such pages among owner's extents or a restricted sweep would skip the
/// glue that cross-page assembly needs.
Result<ImportedDocument> MaterializeDocument(
    const DomTree& tree, const ClusterAssignment& assignment,
    SimulatedDisk* disk, const ImportOptions& options = {},
    std::vector<PageId>* node_pages = nullptr,
    std::vector<std::pair<DomNodeId, PageId>>* glue_pages = nullptr);

}  // namespace navpath

#endif  // NAVPATH_STORE_IMPORT_H_
