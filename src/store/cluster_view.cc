#include "store/cluster_view.h"

namespace navpath {

AxisCursor::AxisCursor(const ClusterView& view, Axis axis, SlotId origin)
    : view_(view), axis_(axis), origin_(origin) {
  const RecordKind k = view_.KindOf(origin);
  switch (axis) {
    case Axis::kSelf:
      if (k == RecordKind::kCore || k == RecordKind::kAttribute) {
        mode_ = Mode::kEmitSelf;
        after_self_ = Mode::kDone;
      }
      break;
    case Axis::kAttribute:
      if (k == RecordKind::kCore) {
        mode_ = Mode::kAttrChain;
        current_ = view_.FirstAttrOf(origin);
      }
      break;
    case Axis::kChild:
      if (k == RecordKind::kCore || k == RecordKind::kBorderUp) {
        mode_ = Mode::kChainForward;
        current_ = view_.FirstChildOf(origin);
      }
      break;
    case Axis::kFollowingSibling:
      if (k == RecordKind::kBorderUp) {
        // A crossing along the sibling chain arrived here: the border's
        // children are the chain's continuation.
        mode_ = Mode::kChainForward;
        current_ = view_.FirstChildOf(origin);
      } else if (k != RecordKind::kAttribute) {
        mode_ = Mode::kChainForward;
        current_ = view_.NextSiblingOf(origin);
      }
      break;
    case Axis::kPrecedingSibling:
      if (k == RecordKind::kBorderUp) {
        mode_ = Mode::kChainReverse;
        current_ = view_.LastChildOf(origin);
      } else if (k != RecordKind::kAttribute) {
        mode_ = Mode::kChainReverse;
        current_ = view_.PrevSiblingOf(origin);
      }
      break;
    case Axis::kParent:
      if (k == RecordKind::kCore || k == RecordKind::kBorderDown ||
          k == RecordKind::kAttribute) {
        mode_ = Mode::kUpSingle;
        current_ = view_.ParentOf(origin);
      }
      break;
    case Axis::kAncestor:
      if (k == RecordKind::kCore || k == RecordKind::kBorderDown ||
          k == RecordKind::kAttribute) {
        mode_ = Mode::kUpWalk;
        current_ = view_.ParentOf(origin);
      }
      break;
    case Axis::kAncestorOrSelf:
      if (k == RecordKind::kCore || k == RecordKind::kAttribute) {
        mode_ = Mode::kEmitSelf;
        after_self_ = Mode::kUpWalk;
        current_ = view_.ParentOf(origin);
      } else if (k == RecordKind::kBorderDown) {
        // "self" was already produced in the cluster the step came from.
        mode_ = Mode::kUpWalk;
        current_ = view_.ParentOf(origin);
      }
      break;
    case Axis::kDescendant:
      if (k == RecordKind::kCore || k == RecordKind::kBorderUp) {
        mode_ = Mode::kDfs;
        current_ = origin;
      }
      break;
    case Axis::kDescendantOrSelf:
      if (k == RecordKind::kCore) {
        mode_ = Mode::kEmitSelf;
        after_self_ = Mode::kDfs;
        current_ = origin;
      } else if (k == RecordKind::kBorderUp) {
        mode_ = Mode::kDfs;
        current_ = origin;
      } else if (k == RecordKind::kAttribute) {
        mode_ = Mode::kEmitSelf;  // an attribute's only "descendant"
        after_self_ = Mode::kDone;
      }
      break;
  }
}

bool AxisCursor::Next(NavEntry* out) {
  switch (mode_) {
    case Mode::kDone:
      return false;
    case Mode::kEmitSelf:
      mode_ = after_self_;
      view_.ChargeHop();
      out->slot = origin_;
      out->crossing = false;
      return true;
    case Mode::kChainForward:
      return StepChain(out, /*forward=*/true);
    case Mode::kChainReverse:
      return StepChain(out, /*forward=*/false);
    case Mode::kUpSingle:
      return StepUp(out, /*single=*/true);
    case Mode::kUpWalk:
      return StepUp(out, /*single=*/false);
    case Mode::kDfs:
      return StepDfs(out);
    case Mode::kAttrChain:
      return StepAttrChain(out);
  }
  return false;
}

bool AxisCursor::StepAttrChain(NavEntry* out) {
  const SlotId s = current_;
  if (s == kInvalidSlot) {
    mode_ = Mode::kDone;
    return false;
  }
  view_.ChargeHop();
  NAVPATH_DCHECK(view_.KindOf(s) == RecordKind::kAttribute);
  current_ = view_.NextSiblingOf(s);
  out->slot = s;
  out->crossing = false;
  return true;
}

bool AxisCursor::StepChain(NavEntry* out, bool forward) {
  const SlotId s = current_;
  if (s == kInvalidSlot || s == origin_) {
    mode_ = Mode::kDone;
    return false;
  }
  view_.ChargeHop();
  const RecordKind k = view_.KindOf(s);
  switch (k) {
    case RecordKind::kCore:
    case RecordKind::kBorderDown:
      current_ = forward ? view_.NextSiblingOf(s) : view_.PrevSiblingOf(s);
      out->slot = s;
      out->crossing = (k == RecordKind::kBorderDown);
      return true;
    case RecordKind::kBorderUp:
      // Chain terminal. For sibling axes the chain logically continues in
      // the partner cluster; for the child axis the parent border is not a
      // child, so the enumeration simply ends.
      mode_ = Mode::kDone;
      if (axis_ == Axis::kFollowingSibling ||
          axis_ == Axis::kPrecedingSibling) {
        out->slot = s;
        out->crossing = true;
        return true;
      }
      return false;
    case RecordKind::kAttribute:
      // Attributes never appear in child chains.
      NAVPATH_DCHECK(false);
      mode_ = Mode::kDone;
      return false;
  }
  return false;
}

bool AxisCursor::StepUp(NavEntry* out, bool single) {
  const SlotId s = current_;
  if (s == kInvalidSlot) {
    mode_ = Mode::kDone;
    return false;
  }
  view_.ChargeHop();
  const RecordKind k = view_.KindOf(s);
  if (k == RecordKind::kBorderUp) {
    // The ancestor chain leaves the cluster here.
    mode_ = Mode::kDone;
    out->slot = s;
    out->crossing = true;
    return true;
  }
  NAVPATH_DCHECK(k == RecordKind::kCore);
  out->slot = s;
  out->crossing = false;
  if (single) {
    mode_ = Mode::kDone;
  } else {
    current_ = view_.ParentOf(s);
  }
  return true;
}

bool AxisCursor::StepDfs(NavEntry* out) {
  SlotId cur = current_;
  // Descend if possible; down-borders are leaves within this cluster.
  SlotId next = view_.KindOf(cur) == RecordKind::kBorderDown
                    ? kInvalidSlot
                    : view_.FirstChildOf(cur);
  if (next == kInvalidSlot) {
    // Move to the next sibling, climbing when chains end. Chains of a
    // fragment root's children terminate at the up-border (== origin_ when
    // resuming); interior chains terminate with kInvalidSlot.
    for (;;) {
      if (cur == origin_) {
        mode_ = Mode::kDone;
        return false;
      }
      const SlotId ns = view_.NextSiblingOf(cur);
      view_.ChargeHop();
      if (ns == kInvalidSlot || ns == origin_ ||
          view_.KindOf(ns) == RecordKind::kBorderUp) {
        cur = view_.ParentOf(cur);
        continue;
      }
      next = ns;
      break;
    }
  }
  view_.ChargeHop();
  current_ = next;
  out->slot = next;
  out->crossing = view_.KindOf(next) == RecordKind::kBorderDown;
  return true;
}

}  // namespace navpath
