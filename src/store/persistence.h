// Database persistence: save/load the page image and catalog to a file.
//
// The simulated disk holds page images in memory; persistence writes them
// (plus the tag registry and the document catalog entry) to an ordinary
// file so that imported documents survive process restarts — the
// "industrial-strength DBMS" framing of Sec. 1 without simulating
// recovery. The file layout is:
//
//   [magic "NVPH"][u32 version][u32 page_size][u32 page_count]
//   [u32 tag_count][tag_count x (u32 len, bytes)]      -- tag registry
//   [catalog: root NodeID, root order, page range, record counts]
//   [u8 has_summary][u64 len, bytes, u32 crc]          -- path summary (v3)
//   [page_count x (page_size bytes + 8-byte trailer)]  -- raw pages
//
// Since version 2 every page image is followed by its trailer (CRC32C of
// the payload + a reserved word). Load verifies each page against its
// trailer and fails with Status::Corruption on the first mismatch, so a
// damaged database file is detected at open time rather than surfacing as
// undefined navigation behaviour later.
//
// Version 3 adds the path-summary synopsis between catalog and pages,
// protected by its own CRC32C. Summary damage is NOT fatal: the synopsis
// is derived data, so load degrades — the database comes up without a
// summary (queries fall back to navigation and DocumentStats estimates)
// and LoadedDatabase.summary_status carries the Corruption report.
// Version-2 files load unchanged, with no summary.
#ifndef NAVPATH_STORE_PERSISTENCE_H_
#define NAVPATH_STORE_PERSISTENCE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"

namespace navpath {

/// The MVCC transaction layer's durable state (format v4): the published
/// version sequence plus the logical->physical page mapping of the
/// current root, the shadow-page set (physical pages that must never be
/// interpreted as logical clusters), and the recyclable free list. The
/// page images themselves need no special handling — SaveDatabase writes
/// every disk page, shadows included. A plain value type so the store
/// layer stays independent of src/txn/.
struct VersionedRootState {
  std::uint64_t seq = 0;
  std::vector<std::pair<PageId, PageId>> mappings;  // logical -> physical
  std::vector<PageId> shadow_pages;
  std::vector<PageId> free_pages;
};

/// Writes the database's pages, tags and `doc`'s catalog entry to `path`.
/// `txn_state`, when non-null, persists the MVCC versioned root so the
/// current document version survives the round trip (without it, a reload
/// would see pre-copy-on-write page images for shadowed pages).
Status SaveDatabase(Database* db, const ImportedDocument& doc,
                    const std::string& path,
                    const VersionedRootState* txn_state = nullptr);

struct LoadedDatabase {
  std::unique_ptr<Database> db;
  ImportedDocument doc;
  /// OK when the summary block loaded cleanly (or the file has none);
  /// Status::Corruption when the block was damaged and the database was
  /// opened without a synopsis (degrade-to-rebuild, never abort).
  Status summary_status = Status::OK();
  /// Set when the file carried a versioned root (format v4): feed it to
  /// TxnManager::RestoreState before serving snapshots.
  bool has_txn_state = false;
  VersionedRootState txn_state;
};

/// Restores a database saved with SaveDatabase. `options` configures the
/// simulation (buffer size, cost models); the page size is taken from the
/// file and overrides options.page_size.
Result<LoadedDatabase> LoadDatabase(const std::string& path,
                                    DatabaseOptions options = {});

}  // namespace navpath

#endif  // NAVPATH_STORE_PERSISTENCE_H_
