// Database persistence: save/load the page image and catalog to a file.
//
// The simulated disk holds page images in memory; persistence writes them
// (plus the tag registry and the document catalog entry) to an ordinary
// file so that imported documents survive process restarts — the
// "industrial-strength DBMS" framing of Sec. 1 without simulating
// recovery. The file layout is:
//
//   [magic "NVPH"][u32 version][u32 page_size][u32 page_count]
//   [u32 tag_count][tag_count x (u32 len, bytes)]      -- tag registry
//   [catalog: root NodeID, root order, page range, record counts]
//   [page_count x (page_size bytes + 8-byte trailer)]  -- raw pages
//
// Since version 2 every page image is followed by its trailer (CRC32C of
// the payload + a reserved word). Load verifies each page against its
// trailer and fails with Status::Corruption on the first mismatch, so a
// damaged database file is detected at open time rather than surfacing as
// undefined navigation behaviour later.
#ifndef NAVPATH_STORE_PERSISTENCE_H_
#define NAVPATH_STORE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"

namespace navpath {

/// Writes the database's pages, tags and `doc`'s catalog entry to `path`.
Status SaveDatabase(Database* db, const ImportedDocument& doc,
                    const std::string& path);

struct LoadedDatabase {
  std::unique_ptr<Database> db;
  ImportedDocument doc;
};

/// Restores a database saved with SaveDatabase. `options` configures the
/// simulation (buffer size, cost models); the page size is taken from the
/// file and overrides options.page_size.
Result<LoadedDatabase> LoadDatabase(const std::string& path,
                                    DatabaseOptions options = {});

}  // namespace navpath

#endif  // NAVPATH_STORE_PERSISTENCE_H_
