// XPath axes supported by the navigational primitives.
#ifndef NAVPATH_STORE_AXIS_H_
#define NAVPATH_STORE_AXIS_H_

#include <optional>
#include <string_view>

namespace navpath {

enum class Axis {
  kSelf,
  kChild,
  kParent,
  kDescendant,
  kDescendantOrSelf,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kAttribute,
};

inline const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kAttribute:
      return "attribute";
  }
  return "?";
}

inline std::optional<Axis> AxisFromName(std::string_view name) {
  if (name == "self") return Axis::kSelf;
  if (name == "child") return Axis::kChild;
  if (name == "parent") return Axis::kParent;
  if (name == "descendant") return Axis::kDescendant;
  if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
  if (name == "ancestor") return Axis::kAncestor;
  if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
  if (name == "following-sibling") return Axis::kFollowingSibling;
  if (name == "preceding-sibling") return Axis::kPrecedingSibling;
  if (name == "attribute") return Axis::kAttribute;
  return std::nullopt;
}

/// True for axes whose result sets can grow with subtree size (used by the
/// planner's selectivity estimates).
inline bool IsRecursiveAxis(Axis axis) {
  return axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf ||
         axis == Axis::kAncestor || axis == Axis::kAncestorOrSelf;
}

}  // namespace navpath

#endif  // NAVPATH_STORE_AXIS_H_
