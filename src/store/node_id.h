// NodeIDs: persistent node addresses (Sec. 3.2 Example 2).
//
// A NodeID is a record id: the page that stores the record plus the slot
// within that page. The page number doubles as the cluster id (Sec. 3.3:
// the cluster a node belongs to is deducible from its NodeID).
#ifndef NAVPATH_STORE_NODE_ID_H_
#define NAVPATH_STORE_NODE_ID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/page.h"

namespace navpath {

using SlotId = std::uint16_t;
constexpr SlotId kInvalidSlot = 0xFFFF;

struct NodeID {
  PageId page = kInvalidPageId;
  SlotId slot = kInvalidSlot;

  bool valid() const { return page != kInvalidPageId; }

  /// The cluster this node belongs to (Sec. 3.3: clusters are pages).
  PageId cluster() const { return page; }

  std::uint64_t Pack() const {
    return (static_cast<std::uint64_t>(page) << 16) | slot;
  }
  static NodeID Unpack(std::uint64_t packed) {
    return NodeID{static_cast<PageId>(packed >> 16),
                  static_cast<SlotId>(packed & 0xFFFF)};
  }

  friend bool operator==(const NodeID& a, const NodeID& b) {
    return a.page == b.page && a.slot == b.slot;
  }
  friend bool operator!=(const NodeID& a, const NodeID& b) {
    return !(a == b);
  }
  friend bool operator<(const NodeID& a, const NodeID& b) {
    return a.Pack() < b.Pack();
  }

  std::string ToString() const {
    return "(" + std::to_string(page) + "." + std::to_string(slot) + ")";
  }
};

constexpr NodeID kInvalidNodeID{};

struct NodeIDHash {
  std::size_t operator()(const NodeID& id) const {
    // splitmix64 finalizer over the packed representation.
    std::uint64_t z = id.Pack() + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace navpath

#endif  // NAVPATH_STORE_NODE_ID_H_
