#include "store/database.h"

namespace navpath {

Database::Database(const DatabaseOptions& options) : options_(options) {
  disk_ = std::make_unique<SimulatedDisk>(options_.disk_model,
                                          options_.page_size, &clock_,
                                          &metrics_);
  if (options_.faults.AnyEnabled()) {
    fault_injector_ = std::make_unique<FaultInjector>(options_.faults);
    disk_->SetFaultInjector(fault_injector_.get());
  }
  buffer_ = std::make_unique<BufferManager>(disk_.get(),
                                            options_.buffer_pages,
                                            options_.cpu_costs, &clock_,
                                            &metrics_, options_.retry);
}

Database::~Database() { DisableTracing(); }

Tracer* Database::EnableTracing() { return EnableTracing(TracerOptions{}); }

Tracer* Database::EnableTracing(const TracerOptions& options) {
#if NAVPATH_OBSERVE_ENABLED
  DisableTracing();
  tracer_ = new Tracer(&clock_, options);
  disk_->SetTracer(tracer_);
  buffer_->SetTracer(tracer_);
  return tracer_;
#else
  (void)options;
  return nullptr;
#endif
}

void Database::DisableTracing() {
#if NAVPATH_OBSERVE_ENABLED
  if (tracer_ == nullptr) return;
  disk_->SetTracer(nullptr);
  buffer_->SetTracer(nullptr);
  delete tracer_;
  tracer_ = nullptr;
#endif
}

Result<ImportedDocument> Database::Import(const DomTree& tree,
                                          ClusteringPolicy* policy) {
  NAVPATH_CHECK(policy != nullptr);
  if (tree.tags() != &tags_) {
    return Status::InvalidArgument(
        "document was built against a foreign tag registry");
  }
  const ClusterAssignment assignment = policy->Assign(tree);
  const bool want_summary =
      options_.import.build_summary && imported_docs_ == 0;
  std::vector<PageId> node_pages;
  std::vector<std::pair<DomNodeId, PageId>> glue_pages;
  NAVPATH_ASSIGN_OR_RETURN(
      ImportedDocument doc,
      MaterializeDocument(tree, assignment, disk_.get(), options_.import,
                          want_summary ? &node_pages : nullptr,
                          want_summary ? &glue_pages : nullptr));
  ++imported_docs_;
  if (want_summary) {
    summary_ = PathSummary::Build(tree, node_pages, glue_pages);
  } else {
    // The synopsis describes exactly one document; a second import (or a
    // summary-off import) leaves the database without one.
    summary_.reset();
  }
  return doc;
}

Status Database::ResetMeasurement() {
  NAVPATH_RETURN_NOT_OK(buffer_->InvalidateAll());
  clock_.Reset();
  disk_->ResetTimeline();
  metrics_.Reset();
#if NAVPATH_OBSERVE_ENABLED
  // Trace timestamps must match the fresh clock, so the window restarts.
  if (tracer_ != nullptr) tracer_->Clear();
#endif
  return Status::OK();
}

}  // namespace navpath
