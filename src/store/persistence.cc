#include "store/persistence.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "storage/checksum.h"

namespace navpath {
namespace {

constexpr char kMagic[4] = {'N', 'V', 'P', 'H'};
// Version 2: every page image is followed by its 8-byte integrity trailer.
// Version 3: CRC-protected path-summary block between catalog and pages.
// Version 4: versioned-root (MVCC) block between summary and pages.
constexpr std::uint32_t kVersion = 4;
constexpr std::uint32_t kMinVersion = 2;

void WriteU8(std::ostream& out, std::uint8_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU8(std::istream& in, std::uint8_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadU32(std::istream& in, std::uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadU64(std::istream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

Status SaveDatabase(Database* db, const ImportedDocument& doc,
                    const std::string& path,
                    const VersionedRootState* txn_state) {
  NAVPATH_CHECK(db != nullptr);
  // Everything buffered must reach the page images first.
  NAVPATH_RETURN_NOT_OK(db->buffer()->FlushAll());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);

  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteU32(out, static_cast<std::uint32_t>(db->options().page_size));
  const PageId page_count = db->disk()->num_pages();
  WriteU32(out, page_count);

  const TagRegistry* tags = db->tags();
  WriteU32(out, static_cast<std::uint32_t>(tags->size()));
  for (TagId t = 0; t < tags->size(); ++t) {
    const std::string& name = db->tags()->Name(t);
    WriteU32(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }

  WriteU32(out, doc.root.page);
  WriteU32(out, doc.root.slot);
  WriteU64(out, doc.root_order);
  WriteU32(out, doc.first_page);
  WriteU32(out, doc.last_page);
  WriteU64(out, doc.core_records);
  WriteU64(out, doc.attribute_records);
  WriteU64(out, doc.border_pairs);
  WriteU64(out, doc.continuation_pairs);
  WriteU64(out, doc.pages);

  // Path-summary block: derived data, so it travels with its own CRC and
  // never invalidates the rest of the file.
  const PathSummary* summary = db->summary();
  if (summary != nullptr) {
    std::string encoded;
    summary->Encode(&encoded);
    WriteU8(out, 1);
    WriteU64(out, encoded.size());
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    WriteU32(out, Crc32c(reinterpret_cast<const std::byte*>(encoded.data()),
                         encoded.size()));
  } else {
    WriteU8(out, 0);
  }

  // Versioned-root block (v4): the txn layer's logical->physical mapping
  // and page bookkeeping. The shadow page images themselves are ordinary
  // disk pages and travel in the page section below.
  if (txn_state != nullptr) {
    WriteU8(out, 1);
    WriteU64(out, txn_state->seq);
    WriteU32(out, static_cast<std::uint32_t>(txn_state->mappings.size()));
    for (const auto& [logical, physical] : txn_state->mappings) {
      WriteU32(out, logical);
      WriteU32(out, physical);
    }
    WriteU32(out, static_cast<std::uint32_t>(txn_state->shadow_pages.size()));
    for (const PageId p : txn_state->shadow_pages) WriteU32(out, p);
    WriteU32(out, static_cast<std::uint32_t>(txn_state->free_pages.size()));
    for (const PageId p : txn_state->free_pages) WriteU32(out, p);
  } else {
    WriteU8(out, 0);
  }

  for (PageId p = 0; p < page_count; ++p) {
    out.write(reinterpret_cast<const char*>(db->disk()->RawPage(p)),
              static_cast<std::streamsize>(db->options().page_size));
    // The page's trailer, as maintained by the buffer manager / disk.
    WriteU32(out, db->disk()->PageCrc(p));
    WriteU32(out, 0);  // reserved
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<LoadedDatabase> LoadDatabase(const std::string& path,
                                    DatabaseOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a navpath database: " + path);
  }
  std::uint32_t version = 0, page_size = 0, page_count = 0, tag_count = 0;
  if (!ReadU32(in, &version) || version < kMinVersion ||
      version > kVersion) {
    return Status::Corruption("unsupported database version");
  }
  if (!ReadU32(in, &page_size) || !ReadU32(in, &page_count) ||
      !ReadU32(in, &tag_count)) {
    return Status::Corruption("truncated header");
  }
  options.page_size = page_size;

  LoadedDatabase loaded;
  loaded.db = std::make_unique<Database>(options);
  for (std::uint32_t t = 0; t < tag_count; ++t) {
    std::uint32_t len = 0;
    if (!ReadU32(in, &len) || len > 1 << 20) {
      return Status::Corruption("bad tag entry");
    }
    std::string name(len, '\0');
    in.read(name.data(), len);
    if (!in) return Status::Corruption("truncated tag table");
    const TagId assigned = loaded.db->tags()->Intern(name);
    if (assigned != t) {
      return Status::Corruption("tag table out of order");
    }
  }

  ImportedDocument& doc = loaded.doc;
  std::uint32_t root_page = 0, root_slot = 0;
  if (!ReadU32(in, &root_page) || !ReadU32(in, &root_slot) ||
      !ReadU64(in, &doc.root_order)) {
    return Status::Corruption("truncated catalog");
  }
  doc.root = NodeID{root_page, static_cast<SlotId>(root_slot)};
  if (!ReadU32(in, &doc.first_page) || !ReadU32(in, &doc.last_page) ||
      !ReadU64(in, &doc.core_records) ||
      !ReadU64(in, &doc.attribute_records) ||
      !ReadU64(in, &doc.border_pairs) ||
      !ReadU64(in, &doc.continuation_pairs) || !ReadU64(in, &doc.pages)) {
    return Status::Corruption("truncated catalog");
  }

  if (version >= 3) {
    // The summary is derived data: any damage here degrades to "no
    // synopsis" (recorded in summary_status) instead of failing the load.
    std::uint8_t has_summary = 0;
    if (!ReadU8(in, &has_summary) || has_summary > 1) {
      return Status::Corruption("truncated summary block");
    }
    if (has_summary == 1) {
      std::uint64_t len = 0;
      if (!ReadU64(in, &len) || len > (1ull << 31)) {
        return Status::Corruption("bad summary block length");
      }
      std::string encoded(len, '\0');
      in.read(encoded.data(), static_cast<std::streamsize>(len));
      std::uint32_t stored_crc = 0;
      if (!in || !ReadU32(in, &stored_crc)) {
        return Status::Corruption("truncated summary block");
      }
      if (Crc32c(reinterpret_cast<const std::byte*>(encoded.data()),
                 encoded.size()) != stored_crc) {
        loaded.summary_status =
            Status::Corruption("path summary failed checksum verification");
      } else {
        auto summary = PathSummary::Decode(encoded.data(), encoded.size());
        if (summary.ok()) {
          loaded.db->SetSummary(std::shared_ptr<const PathSummary>(
              std::move(*summary)));
        } else {
          loaded.summary_status = summary.status();
        }
      }
    }
  }

  if (version >= 4) {
    std::uint8_t has_txn = 0;
    if (!ReadU8(in, &has_txn) || has_txn > 1) {
      return Status::Corruption("truncated versioned-root block");
    }
    if (has_txn == 1) {
      VersionedRootState& txn = loaded.txn_state;
      std::uint32_t mapping_count = 0;
      if (!ReadU64(in, &txn.seq) || !ReadU32(in, &mapping_count) ||
          mapping_count > page_count) {
        return Status::Corruption("bad versioned-root mapping table");
      }
      txn.mappings.reserve(mapping_count);
      for (std::uint32_t i = 0; i < mapping_count; ++i) {
        std::uint32_t logical = 0, physical = 0;
        if (!ReadU32(in, &logical) || !ReadU32(in, &physical) ||
            logical >= page_count || physical >= page_count) {
          return Status::Corruption("versioned-root mapping out of range");
        }
        txn.mappings.emplace_back(logical, physical);
      }
      auto read_page_list = [&](std::vector<PageId>* list,
                                const char* what) -> Status {
        std::uint32_t n = 0;
        if (!ReadU32(in, &n) || n > page_count) {
          return Status::Corruption(std::string("bad ") + what + " list");
        }
        list->reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          std::uint32_t p = 0;
          if (!ReadU32(in, &p) || p >= page_count) {
            return Status::Corruption(std::string(what) +
                                      " page out of range");
          }
          list->push_back(p);
        }
        return Status::OK();
      };
      NAVPATH_RETURN_NOT_OK(read_page_list(&txn.shadow_pages, "shadow"));
      NAVPATH_RETURN_NOT_OK(read_page_list(&txn.free_pages, "free"));
      loaded.has_txn_state = true;
    }
  }

  std::vector<std::byte> buf(page_size);
  for (std::uint32_t p = 0; p < page_count; ++p) {
    in.read(reinterpret_cast<char*>(buf.data()), page_size);
    if (!in) return Status::Corruption("truncated page data");
    std::uint32_t stored_crc = 0, reserved = 0;
    if (!ReadU32(in, &stored_crc) || !ReadU32(in, &reserved)) {
      return Status::Corruption("truncated page trailer");
    }
    if (Crc32c(buf.data(), page_size) != stored_crc) {
      return Status::Corruption("page " + std::to_string(p) +
                                " failed checksum verification");
    }
    loaded.db->disk()->LoadRawPage(buf.data());
  }
  return loaded;
}

}  // namespace navpath
