// Clustering policies for document import (Sec. 3.3).
//
// A policy proposes which cluster each DOM node should live in. The
// materializer (import.cc) honors the proposal as far as page capacity
// allows and splits overflowing clusters with continuation fragments.
#ifndef NAVPATH_STORE_CLUSTERING_H_
#define NAVPATH_STORE_CLUSTERING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "xml/dom.h"

namespace navpath {

/// cluster assignment: one proposed cluster index per DOM node, indexed by
/// DomNodeId. Cluster indices need not be dense or ordered.
using ClusterAssignment = std::vector<std::uint32_t>;

class ClusteringPolicy {
 public:
  virtual ~ClusteringPolicy() = default;
  virtual ClusterAssignment Assign(const DomTree& tree) = 0;
  virtual const char* name() const = 0;
};

/// Natix-style subtree clustering: greedily keeps connected subtrees
/// together, cutting off children whose subtrees do not fit into the
/// remaining budget of the parent's cluster. Produces high intra-cluster
/// locality; the default for all experiments.
class SubtreeClusteringPolicy : public ClusteringPolicy {
 public:
  explicit SubtreeClusteringPolicy(std::size_t budget_bytes);
  ClusterAssignment Assign(const DomTree& tree) override;
  const char* name() const override { return "subtree"; }

 private:
  std::size_t budget_;
};

/// Document-order segmentation: fills clusters with nodes in document
/// order, ignoring tree structure ("time-of-creation clustering" in the
/// paper's terms). Decent locality for depth-first queries.
class DocOrderClusteringPolicy : public ClusteringPolicy {
 public:
  explicit DocOrderClusteringPolicy(std::size_t budget_bytes);
  ClusterAssignment Assign(const DomTree& tree) override;
  const char* name() const override { return "doc-order"; }

 private:
  std::size_t budget_;
};

/// Round-robin scatter: node i goes to cluster i mod k. Adversarial:
/// almost every edge is an inter-cluster edge.
class RoundRobinClusteringPolicy : public ClusteringPolicy {
 public:
  /// `budget_bytes` determines k so that average fill matches the others.
  explicit RoundRobinClusteringPolicy(std::size_t budget_bytes);
  ClusterAssignment Assign(const DomTree& tree) override;
  const char* name() const override { return "round-robin"; }

 private:
  std::size_t budget_;
};

/// Uniform random assignment (seeded, deterministic).
class RandomClusteringPolicy : public ClusteringPolicy {
 public:
  RandomClusteringPolicy(std::size_t budget_bytes, std::uint64_t seed);
  ClusterAssignment Assign(const DomTree& tree) override;
  const char* name() const override { return "random"; }

 private:
  std::size_t budget_;
  std::uint64_t seed_;
};

/// Approximate bytes node `id` will occupy as a core record.
std::size_t EstimateNodeBytes(const DomTree& tree, DomNodeId id);

}  // namespace navpath

#endif  // NAVPATH_STORE_CLUSTERING_H_
