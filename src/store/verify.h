// Store verification (fsck) for imported documents.
#ifndef NAVPATH_STORE_VERIFY_H_
#define NAVPATH_STORE_VERIFY_H_

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"

namespace navpath {

struct VerifyReport {
  std::uint64_t pages = 0;
  std::uint64_t core_records = 0;
  std::uint64_t attribute_records = 0;
  std::uint64_t border_records = 0;
  std::uint64_t reachable_cores = 0;
  std::uint64_t reachable_attributes = 0;
};

/// Checks physical and logical invariants of an imported document:
///   * every page passes TreePage::Validate,
///   * border partners are symmetric (target(target(x)) == x) and point
///     at borders of the opposite direction,
///   * every core record is reachable from the root via child navigation
///     exactly once, with unique order keys,
///   * record counts match the import metadata.
/// Returns the first violation as a Corruption status.
Result<VerifyReport> VerifyStore(Database* db, const ImportedDocument& doc);

}  // namespace navpath

#endif  // NAVPATH_STORE_VERIFY_H_
