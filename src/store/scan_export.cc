#include "store/scan_export.h"

#include <unordered_map>
#include <vector>

#include "store/cluster_view.h"
#include "store/export.h"

namespace navpath {
namespace {

constexpr std::uint64_t kRootKey = ~0ull;

/// A partial document instance: the serialized text of one fragment with
/// holes where down-borders interrupt it. texts.size() ==
/// children.size() + 1; the final text is texts[0] + expand(children[0]) +
/// texts[1] + ...
struct FragmentText {
  std::vector<std::string> texts{std::string()};
  std::vector<std::uint64_t> children;  // packed up-border NodeIDs

  void Append(std::string_view piece) { texts.back().append(piece); }
  void AppendChar(char c) { texts.back().push_back(c); }
  void Hole(std::uint64_t key) {
    children.push_back(key);
    texts.emplace_back();
  }
};

class ScanExporter {
 public:
  explicit ScanExporter(Database* db) : db_(db) {}

  Result<std::string> Run(const ImportedDocument& doc) {
    for (PageId page = doc.first_page; page <= doc.last_page; ++page) {
      NAVPATH_ASSIGN_OR_RETURN(PageGuard guard,
                               db_->buffer()->FixSwizzle(page));
      const ClusterView view = db_->MakeView(guard);
      NAVPATH_RETURN_NOT_OK(SerializeClusterFragments(view));
    }
    return Assemble();
  }

 private:
  /// Serializes every fragment rooted in this cluster into a partial
  /// document instance.
  Status SerializeClusterFragments(const ClusterView& view) {
    for (SlotId slot = 0; slot < view.slot_count(); ++slot) {
      view.ChargeHop();
      if (!view.IsLive(slot)) continue;
      const RecordKind kind = view.KindOf(slot);
      if (kind == RecordKind::kBorderUp) {
        FragmentText fragment;
        SerializeChain(view, view.FirstChildOf(slot), slot, &fragment);
        Store(view.IdOf(slot).Pack(), std::move(fragment));
      } else if (kind == RecordKind::kCore &&
                 view.ParentOf(slot) == kInvalidSlot) {
        // The document root: a fragment of its own.
        FragmentText fragment;
        SerializeElement(view, slot, &fragment);
        Store(kRootKey, std::move(fragment));
      }
    }
    return Status::OK();
  }

  /// Serializes the chain starting at `first` until it terminates
  /// (kInvalidSlot) or loops back to the fragment root `stop`.
  void SerializeChain(const ClusterView& view, SlotId first, SlotId stop,
                      FragmentText* out) {
    for (SlotId cur = first; cur != kInvalidSlot && cur != stop;) {
      view.ChargeHop();
      switch (view.KindOf(cur)) {
        case RecordKind::kCore:
          SerializeElement(view, cur, out);
          break;
        case RecordKind::kBorderDown:
          out->Hole(view.PartnerOf(cur).Pack());
          break;
        case RecordKind::kBorderUp:
          return;  // chain terminal (defensive; stop should catch it)
        case RecordKind::kAttribute:
          return;  // attributes never appear in child chains
      }
      cur = view.NextSiblingOf(cur);
    }
  }

  void SerializeElement(const ClusterView& view, SlotId element,
                        FragmentText* out) {
    const std::string& name = db_->tags()->Name(view.TagOf(element));
    const std::string_view text = view.TextOf(element);
    const SlotId first_child = view.FirstChildOf(element);
    out->AppendChar('<');
    out->Append(name);
    AppendAttributes(view, db_->tags(), element, &out->texts.back());
    if (text.empty() && first_child == kInvalidSlot) {
      out->Append("/>");
      return;
    }
    out->AppendChar('>');
    AppendEscapedXmlText(text, /*escape=*/true, &out->texts.back());
    SerializeChain(view, first_child, element, out);
    out->Append("</");
    out->Append(name);
    out->AppendChar('>');
  }

  void Store(std::uint64_t key, FragmentText fragment) {
    db_->clock()->ChargeCpu(db_->costs().set_op);
    ++db_->metrics()->instances_created;
    fragments_.emplace(key, std::move(fragment));
  }

  /// Expands the root instance, splicing child fragments into holes.
  Result<std::string> Assemble() {
    struct Frame {
      const FragmentText* fragment;
      std::size_t index = 0;
    };
    auto root_it = fragments_.find(kRootKey);
    if (root_it == fragments_.end()) {
      return Status::Corruption("scan found no document root fragment");
    }
    std::string out;
    std::vector<Frame> stack;
    stack.push_back(Frame{&root_it->second});
    out += root_it->second.texts[0];
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.index < frame.fragment->children.size()) {
        const std::uint64_t key = frame.fragment->children[frame.index];
        ++frame.index;
        db_->clock()->ChargeCpu(db_->costs().set_op);
        auto it = fragments_.find(key);
        if (it == fragments_.end()) {
          return Status::Corruption("missing fragment for border " +
                                    NodeID::Unpack(key).ToString());
        }
        stack.push_back(Frame{&it->second});
        out += it->second.texts[0];
        continue;
      }
      stack.pop_back();
      if (!stack.empty()) {
        Frame& parent = stack.back();
        out += parent.fragment->texts[parent.index];
      }
    }
    return out;
  }

  Database* db_;
  std::unordered_map<std::uint64_t, FragmentText> fragments_;
};

}  // namespace

Result<std::string> ScanExportDocument(Database* db,
                                       const ImportedDocument& doc) {
  NAVPATH_CHECK(db != nullptr);
  ScanExporter exporter(db);
  return exporter.Run(doc);
}

}  // namespace navpath
