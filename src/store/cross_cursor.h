// Cross-cluster logical navigation.
//
// Enumerates an XPath axis over the *logical* tree, transparently
// traversing inter-cluster edges: every crossing fixes the partner page in
// the buffer (a swizzle plus, on a miss, a synchronous random read). This
// is exactly the access pattern of the paper's Simple method (Sec. 5.1);
// the whole point of the XStep/XSchedule algebra is to avoid it.
#ifndef NAVPATH_STORE_CROSS_CURSOR_H_
#define NAVPATH_STORE_CROSS_CURSOR_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "store/database.h"

namespace navpath {

/// A logical document node surfaced by navigation.
struct LogicalNode {
  NodeID id;
  TagId tag = 0;
  std::uint64_t order = 0;
};

class CrossClusterCursor {
 public:
  /// `translator` (optional) maps the logical page ids stored in NodeIDs
  /// onto the physical pages of an MVCC snapshot; all NodeIDs surfaced by
  /// the cursor stay logical. nullptr is the identity map.
  /// `on_visit` (optional) is called with the logical id of every page the
  /// cursor pins — a writer transaction uses it to record the pages its
  /// decisions depended on (page-granular conflict validation).
  explicit CrossClusterCursor(Database* db,
                              const PageTranslator* translator = nullptr,
                              std::function<void(PageId)> on_visit = {})
      : db_(db), translator_(translator), on_visit_(std::move(on_visit)) {}

  CrossClusterCursor(const CrossClusterCursor&) = delete;
  CrossClusterCursor& operator=(const CrossClusterCursor&) = delete;
  CrossClusterCursor(CrossClusterCursor&&) = default;
  CrossClusterCursor& operator=(CrossClusterCursor&&) = default;

  /// Begins enumerating `axis` from the core node `origin`.
  Status Start(Axis axis, NodeID origin);

  /// Fetches the next logical result node into `out`; returns false when
  /// the axis is exhausted.
  Result<bool> Next(LogicalNode* out);

  /// Convenience: reads one core node's identity fields (pins its page
  /// for the duration of the call).
  Result<LogicalNode> Describe(NodeID id);

 private:
  struct Level {
    PageId page = kInvalidPageId;
    PageGuard guard;  // valid only while this level is on top
    AxisCursor cursor;
  };

  Status PushLevel(Axis axis, NodeID at);

  Database* db_;
  const PageTranslator* translator_ = nullptr;
  std::function<void(PageId)> on_visit_;
  Axis axis_ = Axis::kSelf;
  std::vector<std::unique_ptr<Level>> stack_;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_CROSS_CURSOR_H_
