// Path-summary synopsis: a structural index over distinct root-to-node
// tag paths (Arion et al., "Path Summaries and Path Partitioning in
// Modern XML Databases").
//
// One summary node per distinct root-to-tag path, carrying the exact
// instance count and the cluster-extent list (merged physical page
// ranges) of its instances. Built once at import in O(nodes); the
// summary itself is tiny (proportional to the number of *distinct*
// paths, not nodes).
//
// For absolute, predicate-free location paths whose axes only move
// downward (self / child / descendant / descendant-or-self / attribute),
// the summary answers exactly: starting from the root, every step maps a
// frontier of summary nodes to the matched summary nodes of the next
// step, and the instance set of the result is precisely the union of the
// matched nodes' instance sets. That yields
//   - exact result cardinalities and per-step selected/examined counts
//     for the cost model (replacing independence-assumption estimates),
//   - empty-path proofs (a step with no matching summary node proves the
//     whole query empty without touching a single cluster),
//   - navigation-free count()/existence answers, and
//   - the extent union of all *touched* summary nodes, which bounds the
//     pages any navigational plan must visit (XScan sweep restriction).
// Paths with predicates, upward/sideways axes, or a relative start fall
// outside the summary's exactness domain; callers fall back to
// DocumentStats there.
#ifndef NAVPATH_STORE_PATH_SUMMARY_H_
#define NAVPATH_STORE_PATH_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/page.h"
#include "xml/dom.h"
#include "xpath/location_path.h"

namespace navpath {

/// A contiguous physical page range [first, last] (inclusive).
struct SummaryExtent {
  PageId first = kInvalidPageId;
  PageId last = kInvalidPageId;

  std::uint64_t pages() const {
    return first == kInvalidPageId ? 0
                                   : static_cast<std::uint64_t>(last) -
                                         first + 1;
  }
  friend bool operator==(const SummaryExtent& a, const SummaryExtent& b) {
    return a.first == b.first && a.last == b.last;
  }
};

/// One committed insertion, described by its root-to-node tag path — the
/// unit of incremental summary maintenance (DocumentUpdater reports these
/// instead of invalidating the synopsis wholesale).
struct SummaryInsert {
  /// Tag path from the document root (inclusive) down to the inserted
  /// node (inclusive), in root-first order.
  std::vector<TagId> tags;
  /// Kind of the inserted node (intermediate steps are always elements).
  DomNodeKind kind = DomNodeKind::kElement;
  /// Logical pages that now hold instances (or border glue) of the path.
  std::vector<PageId> pages;
};

/// One committed deletion, described by its root-to-node tag path — the
/// delete-side counterpart of SummaryInsert. Extents are left untouched
/// (a page is never removed from an extent), which stays conservative for
/// restricted sweeps; only the exact counts shrink.
struct SummaryDelete {
  /// Tag path from the document root (inclusive) down to the deleted
  /// node (inclusive), in root-first order.
  std::vector<TagId> tags;
  DomNodeKind kind = DomNodeKind::kElement;
  /// Number of instances of this exact path removed (subtree deletes
  /// fold repeated paths into one delta).
  std::uint64_t count = 1;
};

/// One page relocation from EvacuateSubtree: every record that lived on
/// `from` now lives on `to` (the border pair left behind keeps `from`
/// reachable, so `from` stays in the extents too — conservative).
struct SummaryPageRemap {
  PageId from = kInvalidPageId;
  PageId to = kInvalidPageId;
};

/// Result of matching one location path against the summary.
struct SummaryMatch {
  /// False when the path is outside the summary's exactness domain
  /// (relative start, predicates, upward/sideways axes); every other
  /// field is meaningless then.
  bool applicable = false;
  /// True when some step has no matching summary node: the query result
  /// is provably empty, no cluster access required.
  bool empty = false;
  /// Index of the first step whose matched set is empty (-1 when none).
  int empty_at = -1;

  struct Step {
    std::uint64_t selected = 0;  // exact result cardinality after step
    std::uint64_t examined = 0;  // exact candidate instances inspected
  };
  std::vector<Step> steps;

  /// Exact result cardinality (== steps.back().selected, 0 when empty).
  std::uint64_t result_count = 0;
  /// Exact total navigation work: sum of examined over all steps.
  std::uint64_t nodes_examined = 0;
  /// Summary nodes matched by the final step (sorted, unique).
  std::vector<std::uint32_t> final_nodes;
  /// Every summary node a navigational evaluation touches: frontiers
  /// plus all candidates examined along the way (sorted, unique).
  /// The extent union of this set bounds the pages any plan must load.
  std::vector<std::uint32_t> touched;
};

/// The synopsis itself. Immutable after Build/Decode.
class PathSummary {
 public:
  static constexpr std::uint32_t kNoParent =
      std::numeric_limits<std::uint32_t>::max();

  struct Node {
    TagId tag = 0;
    DomNodeKind kind = DomNodeKind::kElement;
    std::uint32_t parent = kNoParent;
    std::uint64_t count = 0;               // exact instances of this path
    std::vector<std::uint32_t> children;   // creation (document) order
    std::vector<SummaryExtent> extents;    // merged, sorted by first page
  };

  /// Builds the summary from the DOM in O(nodes). `node_pages[v]` is the
  /// final physical page of DOM node v as placed by the materializer
  /// (import.h's MaterializeDocument fills it on request); `glue_pages`
  /// are the materializer's continuation (owner, page) pairs — each page
  /// holds border glue of owner's child list and is merged into owner's
  /// extents so a restricted sweep never skips it.
  static std::unique_ptr<PathSummary> Build(
      const DomTree& tree, const std::vector<PageId>& node_pages,
      const std::vector<std::pair<DomNodeId, PageId>>& glue_pages = {});

  std::size_t size() const { return nodes_.size(); }
  const Node& node(std::uint32_t i) const { return nodes_[i]; }
  std::uint32_t root() const { return 0; }
  std::uint64_t total_instances() const { return total_instances_; }

  /// True iff `path` lies in the summary's exactness domain: absolute,
  /// predicate-free, downward axes only.
  static bool Supports(const LocationPath& path);

  /// Matches `path`; `applicable` is false when !Supports(path).
  SummaryMatch Match(const LocationPath& path) const;

  /// Merged union of the extents of `nodes` (summary node indices),
  /// sorted by first page.
  std::vector<SummaryExtent> ExtentUnion(
      const std::vector<std::uint32_t>& nodes) const;

  static std::uint64_t ExtentPages(const std::vector<SummaryExtent>& extents);

  /// Incremental maintenance: a copy of this summary with `inserts`
  /// applied — each insert bumps the exact count of its path node
  /// (creating summary nodes for previously unseen paths) and widens the
  /// node's extents by the landing pages. Extent growth is conservative
  /// (a page is added, never removed), so restricted sweeps stay correct.
  /// Returns nullptr when an insert's tag path does not start at this
  /// summary's root — the caller falls back to dropping the synopsis.
  std::unique_ptr<PathSummary> CloneWithInserts(
      const std::vector<SummaryInsert>& inserts) const;

  /// Full delta maintenance: inserts, then deletes, then page remaps.
  /// Deletes decrement the exact count of their path node (extents stay —
  /// conservative); remaps add the destination page to every node whose
  /// extents cover the source page (EvacuateSubtree moves a whole run, so
  /// any path that could live on `from` may now live on `to`). Returns
  /// nullptr when a delta falls outside this summary (unknown path, count
  /// underflow, root mismatch) — the caller degrades to summary-free.
  std::unique_ptr<PathSummary> CloneWithDeltas(
      const std::vector<SummaryInsert>& inserts,
      const std::vector<SummaryDelete>& deletes,
      const std::vector<SummaryPageRemap>& remaps) const;

  /// Deterministic byte encoding (summary nodes in creation order); two
  /// summaries of the same document encode byte-identically.
  void Encode(std::string* out) const;

  /// Inverse of Encode. Returns Status::Corruption on any structural
  /// inconsistency (truncation, forward parent references, unordered
  /// extents).
  static Result<std::unique_ptr<PathSummary>> Decode(const void* data,
                                                     std::size_t size);

 private:
  PathSummary() = default;

  std::vector<Node> nodes_;
  std::uint64_t total_instances_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_PATH_SUMMARY_H_
