// Scan-based document export (paper Sec. 7 outlook: "we also want to
// investigate how our method can be used to speed up document export,
// where our 'path instance' becomes the textual representation of a whole
// document (or subtree)").
//
// One sequential scan visits every cluster exactly once. Each fragment
// encountered is serialized into a *partial document instance*: its XML
// text with a hole wherever a down-border interrupts the fragment. The
// assembler keeps these keyed by the fragment's up-border and stitches
// children into parents; when the scan completes, the root instance is a
// complete serialization. This trades main memory (all fragment texts)
// for strictly sequential I/O — the XScan trade applied to export.
#ifndef NAVPATH_STORE_SCAN_EXPORT_H_
#define NAVPATH_STORE_SCAN_EXPORT_H_

#include <string>

#include "common/status.h"
#include "store/database.h"
#include "store/import.h"

namespace navpath {

/// Serializes the whole document with a single sequential scan.
/// Output is byte-identical to ExportDocument (navigational export).
Result<std::string> ScanExportDocument(Database* db,
                                       const ImportedDocument& doc);

}  // namespace navpath

#endif  // NAVPATH_STORE_SCAN_EXPORT_H_
