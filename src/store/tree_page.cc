#include "store/tree_page.h"

#include <vector>

namespace navpath {

void TreePage::Initialize(std::byte* data, std::size_t page_size) {
  NAVPATH_CHECK(page_size >= 64 && page_size <= 0xFFFF);
  TreePage page(data, page_size);
  page.StoreU16(0, 0);  // slot_count
  page.StoreU16(2, static_cast<std::uint16_t>(page_size));  // record_start
}

std::size_t TreePage::FreeBytes() const {
  const std::size_t dir_end =
      kHeaderBytes + slot_count() * kSlotEntryBytes;
  NAVPATH_DCHECK(record_start() >= dir_end);
  return record_start() - dir_end;
}

Result<SlotId> TreePage::AddRecord(std::size_t record_bytes) {
  if (FreeBytes() < record_bytes + kSlotEntryBytes) {
    return Status::ResourceExhausted("page full");
  }
  const std::uint16_t count = slot_count();
  if (count == kInvalidSlot) {
    return Status::ResourceExhausted("slot directory full");
  }
  const std::uint16_t new_start =
      static_cast<std::uint16_t>(record_start() - record_bytes);
  StoreU16(2, new_start);
  StoreU16(kHeaderBytes + count * kSlotEntryBytes, new_start);
  StoreU16(0, static_cast<std::uint16_t>(count + 1));
  return static_cast<SlotId>(count);
}

Result<SlotId> TreePage::AddNonBorderRecord(RecordKind kind, TagId tag,
                                            std::uint64_t order,
                                            std::string_view text) {
  NAVPATH_ASSIGN_OR_RETURN(const SlotId slot,
                           AddRecord(kCoreRecordBase + text.size()));
  const std::size_t off = RecordOffset(slot);
  StoreU8(off, static_cast<std::uint8_t>(kind));
  StoreU8(off + 1, 0);
  SetParent(slot, kInvalidSlot);
  SetFirstChild(slot, kInvalidSlot);
  SetNextSibling(slot, kInvalidSlot);
  SetPrevSibling(slot, kInvalidSlot);
  StoreU32(off + 10, tag);
  StoreU64(off + 14, order);
  StoreU16(off + 22, kInvalidSlot);  // first_attr
  StoreU16(off + 24, static_cast<std::uint16_t>(text.size()));
  if (!text.empty()) {
    std::memcpy(data_ + off + kCoreRecordBase, text.data(), text.size());
  }
  return slot;
}

Result<SlotId> TreePage::AddCoreRecord(TagId tag, std::uint64_t order,
                                       std::string_view text) {
  return AddNonBorderRecord(RecordKind::kCore, tag, order, text);
}

Result<SlotId> TreePage::AddAttributeRecord(TagId name, std::uint64_t order,
                                            std::string_view value) {
  return AddNonBorderRecord(RecordKind::kAttribute, name, order, value);
}

Result<SlotId> TreePage::AddBorderRecord(RecordKind kind) {
  NAVPATH_DCHECK(kind != RecordKind::kCore);
  NAVPATH_ASSIGN_OR_RETURN(const SlotId slot, AddRecord(kBorderRecordBytes));
  const std::size_t off = RecordOffset(slot);
  StoreU8(off, static_cast<std::uint8_t>(kind));
  StoreU8(off + 1, 0);
  SetParent(slot, kInvalidSlot);
  SetFirstChild(slot, kInvalidSlot);
  SetNextSibling(slot, kInvalidSlot);
  SetPrevSibling(slot, kInvalidSlot);
  SetPartner(slot, kInvalidNodeID);
  SetLastChild(slot, kInvalidSlot);
  return slot;
}

std::size_t TreePage::RecordBytes(SlotId slot) const {
  if (IsBorder(slot)) return kBorderRecordBytes;
  const std::size_t off = RecordOffset(slot);
  return kCoreRecordBase + LoadU16(off + 24);
}

void TreePage::RemoveRecord(SlotId slot) {
  NAVPATH_DCHECK(IsLive(slot));
  StoreU16(kHeaderBytes + slot * kSlotEntryBytes, 0);
}

void TreePage::Compact() {
  // Copy live records, packed towards the end, into a scratch image.
  std::vector<std::byte> scratch(page_size_);
  std::size_t write_pos = page_size_;
  const std::uint16_t count = slot_count();
  std::vector<std::uint16_t> new_offsets(count, 0);
  for (SlotId s = 0; s < count; ++s) {
    if (!IsLive(s)) continue;
    const std::size_t bytes = RecordBytes(s);
    write_pos -= bytes;
    std::memcpy(scratch.data() + write_pos, data_ + RecordOffset(s), bytes);
    new_offsets[s] = static_cast<std::uint16_t>(write_pos);
  }
  std::memcpy(data_ + write_pos, scratch.data() + write_pos,
              page_size_ - write_pos);
  for (SlotId s = 0; s < count; ++s) {
    StoreU16(kHeaderBytes + s * kSlotEntryBytes, new_offsets[s]);
  }
  StoreU16(2, static_cast<std::uint16_t>(write_pos));
}

std::string_view TreePage::TextOf(SlotId slot) const {
  NAVPATH_DCHECK(!IsBorder(slot));
  const std::size_t off = RecordOffset(slot);
  const std::uint16_t len = LoadU16(off + 24);
  return std::string_view(reinterpret_cast<const char*>(data_) + off +
                              kCoreRecordBase,
                          len);
}

Status TreePage::Validate() const {
  const std::uint16_t count = slot_count();
  const std::size_t dir_end = kHeaderBytes + count * kSlotEntryBytes;
  if (dir_end > page_size_ || record_start() > page_size_ ||
      record_start() < dir_end) {
    return Status::Corruption("page header out of bounds");
  }
  auto check_link = [&](SlotId s) {
    return s == kInvalidSlot || (s < count && IsLive(s));
  };
  for (SlotId s = 0; s < count; ++s) {
    if (!IsLive(s)) continue;
    const std::size_t off = LoadU16(kHeaderBytes + s * kSlotEntryBytes);
    if (off < record_start() || off + 10 > page_size_) {
      return Status::Corruption("record offset out of bounds");
    }
    const auto kind = KindOf(s);
    if (kind != RecordKind::kCore && kind != RecordKind::kBorderDown &&
        kind != RecordKind::kBorderUp && kind != RecordKind::kAttribute) {
      return Status::Corruption("bad record kind");
    }
    if (!check_link(ParentOf(s)) || !check_link(FirstChildOf(s)) ||
        !check_link(NextSiblingOf(s)) || !check_link(PrevSiblingOf(s))) {
      return Status::Corruption("dangling slot link");
    }
    if (kind == RecordKind::kCore || kind == RecordKind::kAttribute) {
      if (off + kCoreRecordBase + TextOf(s).size() > page_size_) {
        return Status::Corruption("core record overflows page");
      }
      if (!check_link(FirstAttrOf(s))) {
        return Status::Corruption("dangling attribute link");
      }
      if (kind == RecordKind::kAttribute &&
          FirstChildOf(s) != kInvalidSlot) {
        return Status::Corruption("attribute with children");
      }
    } else {
      if (!PartnerOf(s).valid()) {
        return Status::Corruption("border without partner");
      }
      if (kind == RecordKind::kBorderDown && FirstChildOf(s) != kInvalidSlot) {
        return Status::Corruption("down-border with local children");
      }
    }
    // Link symmetry within the page.
    const SlotId fc = FirstChildOf(s);
    if (fc != kInvalidSlot && ParentOf(fc) != s) {
      return Status::Corruption("first_child/parent mismatch");
    }
    const SlotId ns = NextSiblingOf(s);
    // Attribute chains are singly linked; child chains must be symmetric.
    if (ns != kInvalidSlot && KindOf(ns) != RecordKind::kBorderUp &&
        KindOf(ns) != RecordKind::kAttribute && PrevSiblingOf(ns) != s) {
      return Status::Corruption("next/prev sibling mismatch");
    }
  }
  return Status::OK();
}

}  // namespace navpath
