#include "store/cross_cursor.h"

namespace navpath {

Status CrossClusterCursor::PushLevel(Axis axis, NodeID at) {
  // Crossing into a cluster translates a NodeID into a buffer address:
  // a swizzle plus possibly a synchronous page read.
  NAVPATH_ASSIGN_OR_RETURN(
      PageGuard guard,
      db_->buffer()->FixSwizzle(TranslateToPhysical(translator_, at.page)));
  if (on_visit_) on_visit_(at.page);
  // Only the top level keeps its page pinned; suspended levels are
  // re-fixed on resume. This bounds pin usage to one frame regardless of
  // crossing depth (and charges the realistic re-probe cost).
  if (!stack_.empty()) stack_.back()->guard.Release();
  auto level = std::make_unique<Level>();
  level->page = at.page;
  const ClusterView view = db_->MakeView(guard, at.page);
  level->guard = std::move(guard);
  level->cursor = AxisCursor(view, axis, at.slot);
  stack_.push_back(std::move(level));
  return Status::OK();
}

Result<bool> CrossClusterCursor::Next(LogicalNode* out) {
  while (!stack_.empty()) {
    Level& top = *stack_.back();
    if (!top.guard.valid()) {
      // Resuming a suspended level: fix its page again.
      NAVPATH_ASSIGN_OR_RETURN(
          PageGuard guard,
          db_->buffer()->Fix(TranslateToPhysical(translator_, top.page)));
      const ClusterView view = db_->MakeView(guard, top.page);
      top.guard = std::move(guard);
      top.cursor.Rebind(view);
    }
    NavEntry entry;
    if (!top.cursor.Next(&entry)) {
      stack_.pop_back();
      continue;
    }
    const ClusterView view = db_->MakeView(top.guard, top.page);
    if (entry.crossing) {
      const NodeID partner = view.PartnerOf(entry.slot);
      ++db_->metrics()->inter_cluster_hops;
      NAVPATH_RETURN_NOT_OK(PushLevel(axis_, partner));
      continue;
    }
    out->id = view.IdOf(entry.slot);
    out->tag = view.TagOf(entry.slot);
    out->order = view.OrderOf(entry.slot);
    return true;
  }
  return false;
}

Status CrossClusterCursor::Start(Axis axis, NodeID origin) {
  stack_.clear();
  axis_ = axis;
  return PushLevel(axis, origin);
}

Result<LogicalNode> CrossClusterCursor::Describe(NodeID id) {
  NAVPATH_ASSIGN_OR_RETURN(
      PageGuard guard,
      db_->buffer()->Fix(TranslateToPhysical(translator_, id.page)));
  if (on_visit_) on_visit_(id.page);
  const ClusterView view = db_->MakeView(guard, id.page);
  if (id.slot >= view.slot_count() || !view.IsLive(id.slot) ||
      view.KindOf(id.slot) != RecordKind::kCore) {
    return Status::InvalidArgument("not a core node: " + id.ToString());
  }
  return LogicalNode{id, view.TagOf(id.slot), view.OrderOf(id.slot)};
}

}  // namespace navpath
