// Database: the environment every experiment runs in.
//
// Owns the simulated clock, metrics, tag registry, simulated disk and
// buffer manager, and tracks imported documents. The algebra operators and
// the baseline access it through thin accessors.
#ifndef NAVPATH_STORE_DATABASE_H_
#define NAVPATH_STORE_DATABASE_H_

#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/cpu_cost_model.h"
#include "storage/disk.h"
#include "storage/fault_injector.h"
#include "store/cluster_view.h"
#include "store/clustering.h"
#include "store/import.h"
#include "store/path_summary.h"
#include "xml/dom.h"
#include "xml/tag_registry.h"

namespace navpath {

struct DatabaseOptions {
  std::size_t page_size = kDefaultPageSize;
  /// Page buffer capacity; the paper's setup uses 1000 pages (Sec. 6.1).
  std::size_t buffer_pages = 1000;
  DiskModel disk_model;
  CpuCostModel cpu_costs;
  ImportOptions import;
  /// Storage fault injection (off by default: all rates zero). When any
  /// knob is enabled a seeded injector is attached to the disk.
  FaultInjectorOptions faults;
  /// Buffer-level retry/backoff for transient I/O failures.
  RetryPolicy retry;
};

class Database {
 public:
  explicit Database(const DatabaseOptions& options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  TagRegistry* tags() { return &tags_; }
  SimClock* clock() { return &clock_; }
  Metrics* metrics() { return &metrics_; }
  SimulatedDisk* disk() { return disk_.get(); }
  BufferManager* buffer() { return buffer_.get(); }
  /// nullptr when fault injection is disabled.
  FaultInjector* fault_injector() { return fault_injector_.get(); }
  const CpuCostModel& costs() const { return options_.cpu_costs; }
  const DatabaseOptions& options() const { return options_; }

  /// Creates (or reconfigures) the tracer and wires it into the disk and
  /// buffer manager; all subsequent I/O emits spans. Returns the tracer —
  /// or nullptr on a build configured with -DNAVPATH_OBSERVE=OFF, where
  /// these calls are stubs and nothing is ever recorded.
  Tracer* EnableTracing();
  Tracer* EnableTracing(const TracerOptions& options);
  void DisableTracing();
  /// nullptr unless EnableTracing was called (or observability is off).
  Tracer* tracer() const { return tracer_; }

  /// Imports `tree` clustered by `policy`. The tree must have been built
  /// against this database's tag registry and have order keys assigned.
  /// When ImportOptions::build_summary is set, the first import also
  /// builds the path-summary synopsis; a second import into the same
  /// database invalidates it (the summary is per-document).
  Result<ImportedDocument> Import(const DomTree& tree,
                                  ClusteringPolicy* policy);

  /// The path-summary synopsis of the (single) imported document, or
  /// nullptr when disabled, invalidated, or nothing was imported yet.
  const PathSummary* summary() const { return summary_.get(); }
  std::shared_ptr<const PathSummary> shared_summary() const {
    return summary_;
  }
  /// Installs a summary (persistence load, tests).
  void SetSummary(std::shared_ptr<const PathSummary> summary) {
    summary_ = std::move(summary);
  }
  /// Drops the summary. Store mutations (DocumentUpdater) call this: a
  /// stale synopsis would return confidently wrong exact counts.
  void InvalidateSummary() { summary_.reset(); }

  /// Builds a cost-charging view over a pinned page.
  ClusterView MakeView(const PageGuard& guard) {
    return ClusterView(guard.data(), options_.page_size, guard.page_id(),
                       &clock_, &options_.cpu_costs, &metrics_);
  }

  /// View over a pinned page that identifies itself by `logical_id`
  /// rather than the guard's physical id. Under MVCC a snapshot may fix a
  /// shadow copy of logical page L at physical page P; NodeIDs minted by
  /// the view must keep saying L or stored-id identity breaks.
  ClusterView MakeView(const PageGuard& guard, PageId logical_id) {
    return ClusterView(guard.data(), options_.page_size, logical_id, &clock_,
                       &options_.cpu_costs, &metrics_);
  }

  /// Cold-starts a measurement: drops the buffer, resets clock + metrics.
  Status ResetMeasurement();

 private:
  DatabaseOptions options_;
  SimClock clock_;
  Metrics metrics_;
  TagRegistry tags_;
  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<BufferManager> buffer_;
  std::shared_ptr<const PathSummary> summary_;
  std::size_t imported_docs_ = 0;
  /// Owned; raw because the observe-off build must not reference ~Tracer.
  Tracer* tracer_ = nullptr;
};

}  // namespace navpath

#endif  // NAVPATH_STORE_DATABASE_H_
