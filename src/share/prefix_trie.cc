#include "share/prefix_trie.h"

#include <algorithm>

namespace navpath {

void PrefixTrie::AddPath(std::size_t index, const LocationPath& path) {
  if (!path.absolute) return;  // per-query context sets cannot be shared
  ++paths_indexed_;
  Node* node = &root_;
  for (const LocationStep& step : path.steps) {
    if (!step.predicates.empty()) break;  // predicate ends the shared run
    const StepKey key = StepKey::Of(step);
    Node* child = nullptr;
    for (const std::unique_ptr<Node>& c : node->children) {
      if (c->key == key) {
        child = c.get();
        break;
      }
    }
    if (child == nullptr) {
      auto fresh = std::make_unique<Node>();
      fresh->key = key;
      fresh->step = step;  // predicate-free by the break above
      child = fresh.get();
      node->children.push_back(std::move(fresh));
    }
    child->members.push_back(index);
    node = child;
  }
}

std::vector<SharedPrefix> PrefixTrie::ExtractGroups(
    std::size_t min_depth, std::size_t min_members) const {
  // Collect candidate nodes with their full step prefix via DFS.
  struct Candidate {
    std::vector<LocationStep> steps;
    const std::vector<std::size_t>* members;
  };
  std::vector<Candidate> candidates;
  std::vector<LocationStep> stack;
  // Iterative DFS in child insertion order keeps extraction deterministic.
  struct Frame {
    const Node* node;
    std::size_t next_child = 0;
  };
  std::vector<Frame> frames;
  frames.push_back(Frame{&root_});
  while (!frames.empty()) {
    Frame& top = frames.back();
    if (top.next_child == top.node->children.size()) {
      if (!stack.empty()) stack.pop_back();
      frames.pop_back();
      continue;
    }
    const Node* child = top.node->children[top.next_child++].get();
    stack.push_back(child->step);
    if (stack.size() >= min_depth && child->members.size() >= min_members) {
      candidates.push_back(Candidate{stack, &child->members});
    }
    frames.push_back(Frame{child});
  }

  // Deepest-first; ties to the smallest first member, then fewer members
  // (a fully deterministic total order).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.steps.size() != b.steps.size()) {
                return a.steps.size() > b.steps.size();
              }
              if (a.members->front() != b.members->front()) {
                return a.members->front() < b.members->front();
              }
              return a.members->size() < b.members->size();
            });

  std::vector<SharedPrefix> groups;
  std::vector<bool> assigned;
  for (const Candidate& candidate : candidates) {
    std::vector<std::size_t> free_members;
    for (const std::size_t m : *candidate.members) {
      if (m >= assigned.size()) assigned.resize(m + 1, false);
      if (!assigned[m]) free_members.push_back(m);
    }
    if (free_members.size() < min_members) continue;
    for (const std::size_t m : free_members) assigned[m] = true;
    SharedPrefix group;
    group.prefix.absolute = true;
    group.prefix.steps = candidate.steps;
    group.members = std::move(free_members);
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace navpath
