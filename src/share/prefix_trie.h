// Path-prefix trie over a workload's location paths.
//
// The sharing subsystem's front end: the compiled step sequences of all
// workload queries are inserted into a trie keyed by normalized steps
// (axis + node test), and every trie node reached by two or more queries
// names a candidate shared prefix. Steps carrying predicates end a
// query's insertion — a predicated step filters differently per query, so
// only the predicate-free common prefix is shareable (the workload
// executor additionally rejects predicated queries outright; the trie
// handles them so it can be used on raw parsed input).
//
// Group extraction is greedy deepest-first: the deepest candidate claims
// its queries, shallower candidates share what remains. Ordering is fully
// deterministic (children in insertion order, ties to the smallest query
// index), so the same workload always produces the same groups — a
// prerequisite for the executor's reproducible scheduling.
#ifndef NAVPATH_SHARE_PREFIX_TRIE_H_
#define NAVPATH_SHARE_PREFIX_TRIE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "xpath/location_path.h"

namespace navpath {

/// The normalized identity of one step: axis plus node test. Two steps
/// with equal keys select the same nodes from the same context (predicates
/// excluded by construction — predicated steps are never inserted).
struct StepKey {
  Axis axis = Axis::kChild;
  NodeTest::Kind test_kind = NodeTest::Kind::kAnyNode;
  TagId tag = 0;  // kName only

  static StepKey Of(const LocationStep& step) {
    StepKey key;
    key.axis = step.axis;
    key.test_kind = step.test.kind;
    key.tag = step.test.kind == NodeTest::Kind::kName ? step.test.tag : 0;
    return key;
  }

  bool operator==(const StepKey& other) const {
    return axis == other.axis && test_kind == other.test_kind &&
           tag == other.tag;
  }
};

/// One shared prefix and the queries that can ride it.
struct SharedPrefix {
  /// The prefix as an absolute location path (steps copied from the first
  /// member, which is identical to every member's prefix by construction).
  LocationPath prefix;
  /// Indices (as passed to AddPath) of the participating queries, in
  /// ascending order.
  std::vector<std::size_t> members;

  std::size_t depth() const { return prefix.steps.size(); }
};

class PrefixTrie {
 public:
  /// Inserts the predicate-free prefix of `path` for query `index`.
  /// Relative paths are skipped entirely (their context sets differ per
  /// query); insertion stops before the first predicated step.
  void AddPath(std::size_t index, const LocationPath& path);

  /// Extracts disjoint sharing groups: every group has >= `min_members`
  /// queries sharing >= `min_depth` normalized steps, each query belongs
  /// to at most one group (its deepest candidate), and groups are
  /// reported deepest-first, ties by smallest member index.
  std::vector<SharedPrefix> ExtractGroups(std::size_t min_depth = 2,
                                          std::size_t min_members = 2) const;

  std::size_t paths_indexed() const { return paths_indexed_; }

 private:
  struct Node {
    StepKey key;  // edge from the parent (unused on the root)
    LocationStep step;  // representative step for prefix reconstruction
    std::vector<std::size_t> members;  // queries passing through, ascending
    std::vector<std::unique_ptr<Node>> children;  // insertion order
  };

  Node root_;
  std::size_t paths_indexed_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_SHARE_PREFIX_TRIE_H_
