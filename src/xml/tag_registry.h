// Interned element names.
//
// Node tests in the paper are subsets of the tag alphabet (Sec. 4.1);
// interning tags as dense integers makes a node test a single integer
// comparison and keeps on-page records small.
#ifndef NAVPATH_XML_TAG_REGISTRY_H_
#define NAVPATH_XML_TAG_REGISTRY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace navpath {

using TagId = std::uint32_t;

class TagRegistry {
 public:
  TagRegistry() = default;
  TagRegistry(const TagRegistry&) = delete;
  TagRegistry& operator=(const TagRegistry&) = delete;

  /// Returns the id for `name`, creating one on first use.
  TagId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    const TagId id = static_cast<TagId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` if it was interned before.
  std::optional<TagId> Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& Name(TagId id) const { return names_.at(id); }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

}  // namespace navpath

#endif  // NAVPATH_XML_TAG_REGISTRY_H_
