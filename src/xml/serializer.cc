#include "xml/serializer.h"

namespace navpath {
namespace {

void AppendEscaped(std::string_view text, bool escape, std::string* out) {
  if (!escape) {
    out->append(text);
    return;
  }
  for (const char c : text) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendAttributeValue(std::string_view value, std::string* out) {
  for (const char c : value) {
    switch (c) {
      case '&':
        out->append("&amp;");
        break;
      case '<':
        out->append("&lt;");
        break;
      case '"':
        out->append("&quot;");
        break;
      default:
        out->push_back(c);
    }
  }
}

void SerializeNode(const DomTree& tree, DomNodeId id,
                   const SerializeOptions& options, int depth,
                   std::string* out) {
  const DomNode& n = tree.node(id);
  const std::string& name = tree.TagName(id);
  if (options.indent) out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->push_back('<');
  out->append(name);
  for (DomNodeId a = n.first_attr; a != kNilDomNode;
       a = tree.node(a).next_sibling) {
    out->push_back(' ');
    out->append(tree.TagName(a));
    out->append("=\"");
    AppendAttributeValue(tree.node(a).text, out);
    out->push_back('"');
  }
  if (n.first_child == kNilDomNode && n.text.empty()) {
    out->append("/>");
    if (options.indent) out->push_back('\n');
    return;
  }
  out->push_back('>');
  const bool has_children = n.first_child != kNilDomNode;
  if (options.indent && has_children) out->push_back('\n');
  AppendEscaped(n.text, options.escape_text, out);
  for (DomNodeId c = n.first_child; c != kNilDomNode;
       c = tree.node(c).next_sibling) {
    SerializeNode(tree, c, options, depth + 1, out);
  }
  if (options.indent && has_children) {
    out->append(static_cast<std::size_t>(depth) * 2, ' ');
  }
  out->append("</");
  out->append(name);
  out->push_back('>');
  if (options.indent) out->push_back('\n');
}

}  // namespace

std::string SerializeSubtree(const DomTree& tree, DomNodeId root,
                             const SerializeOptions& options) {
  std::string out;
  if (root != kNilDomNode) SerializeNode(tree, root, options, 0, &out);
  return out;
}

std::string SerializeXml(const DomTree& tree,
                         const SerializeOptions& options) {
  return SerializeSubtree(tree, tree.root(), options);
}

}  // namespace navpath
