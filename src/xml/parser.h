// Minimal non-validating XML parser.
//
// Supports the XML subset the system queries: elements with character
// content. Attributes, comments, processing instructions, CDATA sections
// and the XML declaration are parsed and skipped (attributes are not
// queryable in this reproduction — the paper excludes them, Sec. 3.1).
// Entity references for the five predefined entities are decoded.
#ifndef NAVPATH_XML_PARSER_H_
#define NAVPATH_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/dom.h"

namespace navpath {

/// Parses `input` into a DomTree using `tags` for interning.
/// Order keys are assigned before returning.
Result<DomTree> ParseXml(std::string_view input, TagRegistry* tags);

}  // namespace navpath

#endif  // NAVPATH_XML_PARSER_H_
