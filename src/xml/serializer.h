// XML serializer for DomTree (round-tripping and examples).
#ifndef NAVPATH_XML_SERIALIZER_H_
#define NAVPATH_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace navpath {

struct SerializeOptions {
  bool indent = false;       // pretty-print with 2-space indentation
  bool escape_text = true;   // escape &, <, > in character content
};

/// Serializes `tree` (or the subtree rooted at `root`) to XML text.
std::string SerializeXml(const DomTree& tree,
                         const SerializeOptions& options = {});
std::string SerializeSubtree(const DomTree& tree, DomNodeId root,
                             const SerializeOptions& options = {});

}  // namespace navpath

#endif  // NAVPATH_XML_SERIALIZER_H_
