// In-memory DOM (arena-based labeled ordered tree, Sec. 3.1).
//
// The DOM is the logical-level representation: it is the input of the
// storage import, the source of truth for the test oracle, and what the
// XML parser produces. Query processing itself never touches it — the
// operators work exclusively on the paged store.
#ifndef NAVPATH_XML_DOM_H_
#define NAVPATH_XML_DOM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/macros.h"
#include "xml/tag_registry.h"

namespace navpath {

using DomNodeId = std::uint32_t;
constexpr DomNodeId kNilDomNode = std::numeric_limits<DomNodeId>::max();

/// Order keys are assigned with gaps (preorder rank * kOrderKeyGap) so
/// that nodes inserted later can receive midpoint keys without
/// renumbering — the insert-friendliness ORDPATHs provide in the paper's
/// setting (Sec. 5.5). ~1M inserts fit between any two original keys.
constexpr std::uint64_t kOrderKeyGap = 1ull << 20;

enum class DomNodeKind : std::uint8_t { kElement, kAttribute };

struct DomNode {
  DomNodeKind kind = DomNodeKind::kElement;
  /// Element tag, or attribute name for kAttribute nodes.
  TagId tag = 0;
  DomNodeId parent = kNilDomNode;
  DomNodeId first_child = kNilDomNode;
  DomNodeId last_child = kNilDomNode;
  DomNodeId next_sibling = kNilDomNode;
  DomNodeId prev_sibling = kNilDomNode;
  /// First attribute node (attributes chain through next_sibling but are
  /// NOT part of the child chain — the child/descendant axes never see
  /// them, only the attribute axis does).
  DomNodeId first_attr = kNilDomNode;
  /// Concatenated character content for elements; the value for
  /// attributes. (Text nodes themselves are not queryable, matching the
  /// paper's model, Sec. 3.1; the bytes still occupy page space.)
  std::string text;
  /// Document-order key; assigned by AssignOrderKeys(). Establishes
  /// document order (the role ORDPATHs play in the paper, Sec. 5.5).
  /// Attributes order directly after their element.
  std::uint64_t order = 0;
};

class DomTree {
 public:
  /// `tags` must outlive the tree.
  explicit DomTree(TagRegistry* tags) : tags_(tags) {
    NAVPATH_CHECK(tags != nullptr);
  }

  DomTree(const DomTree&) = delete;
  DomTree& operator=(const DomTree&) = delete;
  DomTree(DomTree&&) = default;
  DomTree& operator=(DomTree&&) = default;

  TagRegistry* tags() const { return tags_; }

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }
  DomNodeId root() const { return empty() ? kNilDomNode : 0; }

  DomNodeId CreateRoot(TagId tag) {
    NAVPATH_CHECK_MSG(empty(), "root already exists");
    nodes_.emplace_back();
    nodes_[0].tag = tag;
    return 0;
  }

  DomNodeId AppendChild(DomNodeId parent, TagId tag) {
    NAVPATH_DCHECK(parent < nodes_.size());
    const DomNodeId id = static_cast<DomNodeId>(nodes_.size());
    nodes_.emplace_back();
    DomNode& n = nodes_[id];
    n.tag = tag;
    n.parent = parent;
    DomNode& p = nodes_[parent];
    if (p.last_child == kNilDomNode) {
      p.first_child = id;
    } else {
      nodes_[p.last_child].next_sibling = id;
      n.prev_sibling = p.last_child;
    }
    p.last_child = id;
    return id;
  }

  void AppendText(DomNodeId node, std::string_view text) {
    NAVPATH_DCHECK(node < nodes_.size());
    nodes_[node].text.append(text);
  }

  /// Appends an attribute to `element` (document order of attributes is
  /// their insertion order).
  DomNodeId AddAttribute(DomNodeId element, TagId name,
                         std::string_view value) {
    NAVPATH_DCHECK(element < nodes_.size());
    NAVPATH_DCHECK(nodes_[element].kind == DomNodeKind::kElement);
    const DomNodeId id = static_cast<DomNodeId>(nodes_.size());
    nodes_.emplace_back();
    DomNode& a = nodes_[id];
    a.kind = DomNodeKind::kAttribute;
    a.tag = name;
    a.parent = element;
    a.text = value;
    DomNodeId* link = &nodes_[element].first_attr;
    while (*link != kNilDomNode) link = &nodes_[*link].next_sibling;
    *link = id;
    return id;
  }

  /// Number of element nodes reachable from the root (attributes and
  /// detached mirror subtrees excluded).
  std::size_t element_count() const;

  /// Number of attribute nodes reachable from the root.
  std::size_t attribute_count() const;

  /// Inserts a new element under `parent` after child `after` (kNilDomNode
  /// == as first child). Arena nodes are append-only, so DomNodeIds are
  /// NOT in document order after this; order keys are not assigned (used
  /// for mirroring store updates in tests).
  DomNodeId InsertChild(DomNodeId parent, DomNodeId after, TagId tag) {
    NAVPATH_DCHECK(parent < nodes_.size());
    const DomNodeId id = static_cast<DomNodeId>(nodes_.size());
    nodes_.emplace_back();
    DomNode& n = nodes_[id];
    n.tag = tag;
    n.parent = parent;
    DomNode& p = nodes_[parent];
    const DomNodeId next =
        after == kNilDomNode ? p.first_child : nodes_[after].next_sibling;
    n.prev_sibling = after;
    n.next_sibling = next;
    if (after == kNilDomNode) {
      p.first_child = id;
    } else {
      nodes_[after].next_sibling = id;
    }
    if (next == kNilDomNode) {
      p.last_child = id;
    } else {
      nodes_[next].prev_sibling = id;
    }
    return id;
  }

  /// Unlinks the subtree rooted at `node` (nodes stay allocated; size()
  /// and CountTag() become stale — test-mirroring only).
  void RemoveSubtree(DomNodeId node) {
    NAVPATH_DCHECK(node < nodes_.size() && node != root());
    DomNode& n = nodes_[node];
    DomNode& p = nodes_[n.parent];
    if (n.prev_sibling == kNilDomNode) {
      p.first_child = n.next_sibling;
    } else {
      nodes_[n.prev_sibling].next_sibling = n.next_sibling;
    }
    if (n.next_sibling == kNilDomNode) {
      p.last_child = n.prev_sibling;
    } else {
      nodes_[n.next_sibling].prev_sibling = n.prev_sibling;
    }
    n.parent = kNilDomNode;
    n.prev_sibling = kNilDomNode;
    n.next_sibling = kNilDomNode;
  }

  const DomNode& node(DomNodeId id) const {
    NAVPATH_DCHECK(id < nodes_.size());
    return nodes_[id];
  }

  const std::string& TagName(DomNodeId id) const {
    return tags_->Name(node(id).tag);
  }

  /// Assigns gapped preorder keys to every node. Call once after
  /// construction.
  void AssignOrderKeys();

  /// Sets one node's order key (mirroring a store-side insertion).
  void SetOrder(DomNodeId id, std::uint64_t order) {
    NAVPATH_DCHECK(id < nodes_.size());
    nodes_[id].order = order;
  }

  /// Number of elements with tag `tag` (handy for generator tests).
  std::size_t CountTag(TagId tag) const;

  /// Total bytes of character content (for sizing statistics).
  std::size_t TotalTextBytes() const;

 private:
  TagRegistry* tags_;
  std::vector<DomNode> nodes_;
};

}  // namespace navpath

#endif  // NAVPATH_XML_DOM_H_
