#include "xml/dom.h"

namespace navpath {

void DomTree::AssignOrderKeys() {
  if (empty()) return;
  std::uint64_t next = 0;
  std::vector<DomNodeId> stack;
  stack.push_back(root());
  while (!stack.empty()) {
    const DomNodeId id = stack.back();
    stack.pop_back();
    nodes_[id].order = next;
    // Attributes come directly after their element in document order;
    // they use the low bits of the element's gap.
    std::uint64_t attr_offset = 1;
    for (DomNodeId a = nodes_[id].first_attr; a != kNilDomNode;
         a = nodes_[a].next_sibling) {
      nodes_[a].order = next + attr_offset++;
    }
    next += kOrderKeyGap;
    // Push children in reverse so the first child is visited first.
    std::vector<DomNodeId> children;
    for (DomNodeId c = nodes_[id].first_child; c != kNilDomNode;
         c = nodes_[c].next_sibling) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
}

namespace {

template <typename Fn>
void VisitReachable(const DomTree& tree, Fn&& fn) {
  if (tree.empty()) return;
  std::vector<DomNodeId> stack{tree.root()};
  while (!stack.empty()) {
    const DomNodeId id = stack.back();
    stack.pop_back();
    fn(id);
    for (DomNodeId a = tree.node(id).first_attr; a != kNilDomNode;
         a = tree.node(a).next_sibling) {
      fn(a);
    }
    for (DomNodeId c = tree.node(id).first_child; c != kNilDomNode;
         c = tree.node(c).next_sibling) {
      stack.push_back(c);
    }
  }
}

}  // namespace

std::size_t DomTree::element_count() const {
  std::size_t count = 0;
  VisitReachable(*this, [&](DomNodeId id) {
    if (node(id).kind == DomNodeKind::kElement) ++count;
  });
  return count;
}

std::size_t DomTree::attribute_count() const {
  std::size_t count = 0;
  VisitReachable(*this, [&](DomNodeId id) {
    if (node(id).kind == DomNodeKind::kAttribute) ++count;
  });
  return count;
}

std::size_t DomTree::CountTag(TagId tag) const {
  std::size_t count = 0;
  for (const DomNode& n : nodes_) {
    if (n.kind == DomNodeKind::kElement && n.tag == tag) ++count;
  }
  return count;
}

std::size_t DomTree::TotalTextBytes() const {
  std::size_t bytes = 0;
  for (const DomNode& n : nodes_) bytes += n.text.size();
  return bytes;
}

}  // namespace navpath
