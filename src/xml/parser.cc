#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace navpath {
namespace {

class Parser {
 public:
  Parser(std::string_view input, TagRegistry* tags)
      : input_(input), tags_(tags), tree_(tags) {}

  Result<DomTree> Run() {
    SkipProlog();
    NAVPATH_RETURN_NOT_OK(ParseElement(kNilDomNode));
    SkipMisc();
    if (pos_ != input_.size()) {
      return Fail("trailing content after document element");
    }
    tree_.AssignOrderKeys();
    return std::move(tree_);
  }

 private:
  Status Fail(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  bool Match(std::string_view s) {
    if (input_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  void SkipUntil(std::string_view terminator) {
    const std::size_t found = input_.find(terminator, pos_);
    pos_ = found == std::string_view::npos ? input_.size()
                                           : found + terminator.size();
  }

  void SkipProlog() {
    SkipWhitespace();
    for (;;) {
      if (Match("<?")) {
        SkipUntil("?>");
      } else if (Match("<!--")) {
        SkipUntil("-->");
      } else if (Match("<!DOCTYPE")) {
        SkipUntil(">");
      } else {
        break;
      }
      SkipWhitespace();
    }
  }

  void SkipMisc() {
    SkipWhitespace();
    for (;;) {
      if (Match("<!--")) {
        SkipUntil("-->");
      } else if (Match("<?")) {
        SkipUntil("?>");
      } else {
        break;
      }
      SkipWhitespace();
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string_view> ParseName() {
    const std::size_t start = pos_;
    if (AtEnd() || !IsNameStart(Peek())) {
      return Result<std::string_view>(Fail("expected name"));
    }
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return input_.substr(start, pos_ - start);
  }

  Status ParseAttributes(DomNodeId element) {
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Fail("unexpected end inside tag");
      const char c = Peek();
      if (c == '>' || c == '/') return Status::OK();
      NAVPATH_ASSIGN_OR_RETURN(const std::string_view name, ParseName());
      SkipWhitespace();
      if (!Match("=")) return Fail("expected '=' in attribute");
      SkipWhitespace();
      if (AtEnd()) return Fail("unexpected end in attribute value");
      const char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Fail("expected quoted attribute value");
      }
      ++pos_;
      const std::size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Fail("unterminated attribute value");
      }
      std::string value;
      DecodeTextInto(input_.substr(pos_, end - pos_), &value);
      tree_.AddAttribute(element, tags_->Intern(name), value);
      pos_ = end + 1;
    }
  }

  void DecodeTextInto(std::string_view raw, std::string* out) {
    std::size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      const std::string_view rest = raw.substr(i);
      if (rest.starts_with("&amp;")) {
        out->push_back('&');
        i += 5;
      } else if (rest.starts_with("&lt;")) {
        out->push_back('<');
        i += 4;
      } else if (rest.starts_with("&gt;")) {
        out->push_back('>');
        i += 4;
      } else if (rest.starts_with("&quot;")) {
        out->push_back('"');
        i += 6;
      } else if (rest.starts_with("&apos;")) {
        out->push_back('\'');
        i += 6;
      } else {
        out->push_back(raw[i++]);  // tolerate unknown entities literally
      }
    }
  }

  Status ParseContent(DomNodeId element) {
    for (;;) {
      const std::size_t text_start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      if (pos_ > text_start) {
        std::string decoded;
        DecodeTextInto(input_.substr(text_start, pos_ - text_start),
                       &decoded);
        tree_.AppendText(element, decoded);
      }
      if (AtEnd()) return Fail("unexpected end inside element");
      if (Match("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (Match("<![CDATA[")) {
        const std::size_t start = pos_;
        SkipUntil("]]>");
        tree_.AppendText(element,
                         input_.substr(start, pos_ - 3 - start));
        continue;
      }
      if (Match("<?")) {
        SkipUntil("?>");
        continue;
      }
      if (input_.substr(pos_, 2) == "</") return Status::OK();
      NAVPATH_RETURN_NOT_OK(ParseElement(element));
    }
  }

  Status ParseElement(DomNodeId parent) {
    if (!Match("<")) return Fail("expected '<'");
    NAVPATH_ASSIGN_OR_RETURN(const std::string_view name, ParseName());
    const TagId tag = tags_->Intern(name);
    const DomNodeId element = parent == kNilDomNode
                                  ? tree_.CreateRoot(tag)
                                  : tree_.AppendChild(parent, tag);
    NAVPATH_RETURN_NOT_OK(ParseAttributes(element));
    if (Match("/>")) return Status::OK();
    if (!Match(">")) return Fail("expected '>'");
    NAVPATH_RETURN_NOT_OK(ParseContent(element));
    if (!Match("</")) return Fail("expected end tag");
    NAVPATH_ASSIGN_OR_RETURN(const std::string_view end_name, ParseName());
    if (end_name != name) {
      return Fail("mismatched end tag </" + std::string(end_name) +
                  "> for <" + std::string(name) + ">");
    }
    SkipWhitespace();
    if (!Match(">")) return Fail("expected '>' after end tag name");
    return Status::OK();
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  TagRegistry* tags_;
  DomTree tree_;
};

}  // namespace

Result<DomTree> ParseXml(std::string_view input, TagRegistry* tags) {
  NAVPATH_CHECK(tags != nullptr);
  Parser parser(input, tags);
  return parser.Run();
}

}  // namespace navpath
