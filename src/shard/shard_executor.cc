#include "shard/shard_executor.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace navpath {

void AccumulateMetrics(Metrics* into, const Metrics& add) {
  into->disk_reads += add.disk_reads;
  into->disk_seq_reads += add.disk_seq_reads;
  into->disk_writes += add.disk_writes;
  into->disk_seek_pages += add.disk_seek_pages;
  into->async_requests += add.async_requests;
  into->async_reorderings += add.async_reorderings;
  into->requests_merged += add.requests_merged;
  into->elevator_batches += add.elevator_batches;
  into->elevator_depth_sum += add.elevator_depth_sum;
  into->elevator_depth_max =
      std::max(into->elevator_depth_max, add.elevator_depth_max);
  into->priority_jumps += add.priority_jumps;
  into->buffer_hits += add.buffer_hits;
  into->buffer_misses += add.buffer_misses;
  into->buffer_evictions += add.buffer_evictions;
  into->swizzle_ops += add.swizzle_ops;
  into->unswizzle_ops += add.unswizzle_ops;
  into->faults_injected += add.faults_injected;
  into->fault_retries += add.fault_retries;
  into->corruptions_detected += add.corruptions_detected;
  into->fault_fallbacks += add.fault_fallbacks;
  into->clusters_visited += add.clusters_visited;
  into->intra_cluster_hops += add.intra_cluster_hops;
  into->inter_cluster_hops += add.inter_cluster_hops;
  into->node_tests += add.node_tests;
  into->instances_created += add.instances_created;
  into->instances_full += add.instances_full;
  into->speculative_instances += add.speculative_instances;
  into->r_set_probes += add.r_set_probes;
  into->s_set_probes += add.s_set_probes;
  into->fallback_activations += add.fallback_activations;
}

namespace {

/// Sorts by the original document's order keys and drops duplicates (the
/// replicated root is the only node two shards can both report). Returns
/// the number of duplicates removed.
std::uint64_t MergeDocumentOrder(std::vector<LogicalNode>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const LogicalNode& a, const LogicalNode& b) {
              return a.order < b.order;
            });
  const auto last = std::unique(nodes->begin(), nodes->end(),
                                [](const LogicalNode& a,
                                   const LogicalNode& b) {
                                  return a.order == b.order;
                                });
  const std::uint64_t duplicates =
      static_cast<std::uint64_t>(nodes->end() - last);
  nodes->erase(last, nodes->end());
  return duplicates;
}

}  // namespace

ShardedWorkloadExecutor::ShardedWorkloadExecutor(
    ShardedStore* store, const WorkloadOptions& options)
    : store_(store), router_(store), options_(options) {
  NAVPATH_CHECK(store != nullptr);
  // Mark the options as shard-driving so ValidateWorkloadOptions applies
  // the shard combination rules (no txn, no cross-query sharing).
  options_.shards = store;
}

Status ShardedWorkloadExecutor::Add(const std::string& query,
                                    const PlanOptions& plan, SimTime arrival,
                                    SimTime deadline) {
  NAVPATH_ASSIGN_OR_RETURN(QueryRoute route, router_.Route(query));
  if (route.unrouted && store_->shard_count() > 1) {
    return Status::InvalidArgument(
        "query is outside the shard router's domain (" + route.reason +
        "); the home-shard fallback only holds the full document at K=1");
  }
  PendingQuery pending;
  pending.route = std::move(route);
  pending.plan = plan;
  pending.arrival = arrival;
  pending.deadline = deadline;
  pending_.push_back(std::move(pending));
  return Status::OK();
}

Result<ShardWorkloadResult> ShardedWorkloadExecutor::Run() {
  NAVPATH_RETURN_NOT_OK(ValidateWorkloadOptions(options_));
  const std::size_t shard_count = store_->shard_count();

  // One plain WorkloadExecutor per participating shard; sub-queries are
  // admitted in global Add() order, so at K=1 the single shard sees the
  // exact job sequence an unsharded executor would.
  std::vector<std::unique_ptr<WorkloadExecutor>> execs(shard_count);
  // Per query: (shard, job index within that shard's executor).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> slots(
      pending_.size());
  std::vector<std::size_t> jobs_in(shard_count, 0);
  for (std::size_t qi = 0; qi < pending_.size(); ++qi) {
    const PendingQuery& q = pending_[qi];
    for (const std::size_t k : q.route.participants) {
      if (execs[k] == nullptr) {
        WorkloadOptions per_shard = options_;
        per_shard.shards = nullptr;
        per_shard.stats = &store_->stats(k);
        per_shard.on_pull = [this, k](std::size_t job, std::size_t active) {
          if (on_shard_pull) on_shard_pull(k, job, active);
          if (options_.on_pull) options_.on_pull(job, active);
        };
        execs[k] = std::make_unique<WorkloadExecutor>(
            store_->db(k), store_->doc(k), per_shard);
      }
      NAVPATH_RETURN_NOT_OK(execs[k]->Add(q.route.per_shard[k], q.plan, {},
                                          q.arrival, q.deadline));
      slots[qi].emplace_back(k, jobs_in[k]++);
    }
  }

  ShardWorkloadResult out;
  out.shards.resize(shard_count);
  out.utilization.assign(shard_count, 0.0);
  std::vector<SimTime> busy(shard_count, 0);

  // The shards' clocks are independent and all start cold at zero: the
  // drives run in parallel in simulated time, and this host-side loop is
  // just how the simulation grinds through them.
  for (std::size_t k = 0; k < shard_count; ++k) {
    if (execs[k] == nullptr) continue;
    const SimTime busy_before = store_->db(k)->disk()->busy_time();
    NAVPATH_ASSIGN_OR_RETURN(out.shards[k], execs[k]->Run());
    const SimTime busy_after = store_->db(k)->disk()->busy_time();
    // A cold start resets the drive's busy accumulator with its timeline.
    busy[k] = busy_after >= busy_before ? busy_after - busy_before
                                        : busy_after;
    out.total_time = std::max(out.total_time, out.shards[k].total_time);
    out.cpu_time += out.shards[k].cpu_time;
    AccumulateMetrics(&out.metrics, out.shards[k].metrics);
  }

  // Per-query merge.
  MetricsRegistry registry;
  std::uint64_t& fanout = registry.Counter("shard.fanout");
  std::uint64_t& routed_single = registry.Counter("shard.routed.single");
  std::uint64_t& routed_home = registry.Counter("shard.routed.home");
  std::uint64_t& merge_duplicates =
      registry.Counter("shard.merge.duplicates");
  Histogram& width_histogram = registry.GetHistogram("shard.fanout.width");

  out.queries.resize(pending_.size());
  for (std::size_t qi = 0; qi < pending_.size(); ++qi) {
    const PendingQuery& q = pending_[qi];
    WorkloadQueryResult merged;
    merged.arrival = q.arrival;
    std::uint64_t sum = 0;
    bool first = true;
    for (const auto& [k, slot] : slots[qi]) {
      WorkloadQueryResult& part = out.shards[k].queries[slot];
      if (!part.status.ok() && merged.status.ok()) {
        merged.status = part.status;
      }
      sum += part.count;
      merged.pulls += part.pulls;
      merged.degraded |= part.degraded;
      if (first) {
        merged.admitted_at = part.admitted_at;
        merged.finished_at = part.finished_at;
        first = false;
      } else {
        merged.admitted_at = std::min(merged.admitted_at, part.admitted_at);
        merged.finished_at = std::max(merged.finished_at, part.finished_at);
      }
      if (!part.nodes.empty()) {
        merged.nodes.insert(merged.nodes.end(),
                            std::make_move_iterator(part.nodes.begin()),
                            std::make_move_iterator(part.nodes.end()));
        part.nodes.clear();
      }
    }
    // The workload layer reports raw distinct-node counts for every mode
    // (a WorkloadExecutor does not clamp exists() to 0/1), and the only
    // node two shards can both count is the replicated root, so the merge
    // is the same arithmetic everywhere: sum minus the known overcount.
    merged.count = sum - q.route.root_dup;
    if (slots[qi].size() > 1 && !merged.nodes.empty()) {
      merge_duplicates += MergeDocumentOrder(&merged.nodes);
    } else {
      merge_duplicates += q.route.root_dup;
    }

    width_histogram.Record(q.route.width());
    if (q.route.unrouted) {
      ++routed_home;
    } else if (q.route.width() > 1) {
      ++fanout;
    } else {
      ++routed_single;
    }
    out.queries[qi] = std::move(merged);
  }

  for (std::size_t k = 0; k < shard_count; ++k) {
    const std::string prefix = "disk.shard." + std::to_string(k) + ".";
    registry.Gauge(prefix + "utilization") =
        out.total_time > 0 ? static_cast<double>(busy[k]) /
                                 static_cast<double>(out.total_time)
                           : 0.0;
    registry.Gauge(prefix + "busy_seconds") = SimClock::ToSeconds(busy[k]);
    registry.Gauge(prefix + "reads") =
        static_cast<double>(out.shards[k].metrics.disk_reads);
    out.utilization[k] =
        out.total_time > 0 ? static_cast<double>(busy[k]) /
                                 static_cast<double>(out.total_time)
                           : 0.0;
  }
  out.scheduler = registry.Snapshot();
  return out;
}

Result<QueryRunResult> ShardedExecuteQuery(ShardedStore* store,
                                           const std::string& query,
                                           const ExecuteOptions& options) {
  NAVPATH_CHECK(store != nullptr);
  const ShardRouter router(store);
  NAVPATH_ASSIGN_OR_RETURN(QueryRoute route, router.Route(query));
  if (route.unrouted && store->shard_count() > 1) {
    return Status::InvalidArgument(
        "query is outside the shard router's domain (" + route.reason +
        "); the home-shard fallback only holds the full document at K=1");
  }

  QueryRunResult merged;
  std::uint64_t sum = 0;
  for (const std::size_t k : route.participants) {
    NAVPATH_ASSIGN_OR_RETURN(
        QueryRunResult part,
        ExecuteQuery(store->db(k), store->doc(k), route.per_shard[k],
                     options));
    sum += part.count;
    merged.total_time = std::max(merged.total_time, part.total_time);
    merged.cpu_time += part.cpu_time;
    AccumulateMetrics(&merged.metrics, part.metrics);
    merged.nodes.insert(merged.nodes.end(),
                        std::make_move_iterator(part.nodes.begin()),
                        std::make_move_iterator(part.nodes.end()));
  }
  const PathQuery::Mode mode = route.per_shard[0].mode;
  if (mode == PathQuery::Mode::kExists) {
    merged.count = sum > 0 ? 1 : 0;
  } else {
    merged.count = sum - route.root_dup;
  }
  if (route.width() > 1 && !merged.nodes.empty()) {
    MergeDocumentOrder(&merged.nodes);
  }
  return merged;
}

}  // namespace navpath
