// Shard-parallel workload execution with document-order merge.
//
// ShardedWorkloadExecutor is the multi-drive counterpart of
// WorkloadExecutor: each query is routed (shard_router.h), its per-shard
// sub-queries are admitted as ordinary cooperative jobs into one plain
// WorkloadExecutor per participating shard — so fan-out work interleaves
// with every other query's sub-queries under the existing scheduling
// policies, admission control, and buffer budgets — and the per-shard
// results are merged back per query.
//
// Time semantics: the shards' databases own independent simulated clocks,
// all cold-started at zero, modeling K drives working in parallel. The
// sharded makespan is therefore the MAX over the per-shard makespans (the
// host-side loop running the shard executors one after another is
// measurement scaffolding, not simulated time), per-query completion is
// the max over that query's participants, and per-shard disk utilization
// is the drive's busy time over the global makespan.
//
// Result semantics: per-shard node vectors arrive sorted by the original
// document's gapped order keys, which are globally unique and preserved
// by the partitioned import, so the cross-shard merge is an order-key
// merge; the only node two shards can both report is the replicated root
// element, deduplicated by key (node mode) or subtracted via the route's
// root_dup (count mode). exists() merges as OR.
//
// At K = 1 every query — in-domain or not — routes to the single home
// shard in Add() order, so the run is byte-identical to a plain
// WorkloadExecutor over an identically-configured unsharded database:
// same schedule, same results, same metrics. Tests and the
// workload_shard bench gate on this.
#ifndef NAVPATH_SHARD_SHARD_EXECUTOR_H_
#define NAVPATH_SHARD_SHARD_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compiler/workload_executor.h"
#include "shard/shard_router.h"
#include "shard/sharded_store.h"

namespace navpath {

struct ShardWorkloadResult {
  /// Per-query merged outcomes, in Add() order.
  std::vector<WorkloadQueryResult> queries;

  /// Sharded makespan (max over per-shard makespans) and aggregate CPU
  /// time summed across the parallel drives.
  SimTime total_time = 0;
  SimTime cpu_time = 0;
  /// Field-wise aggregate of the per-shard metrics windows (counters
  /// summed; elevator_depth_max maxed).
  Metrics metrics;

  /// Shard-layer observability: counters "shard.fanout" (queries fanned
  /// to >1 shard), "shard.routed.single", "shard.routed.home" (out-of-
  /// domain fallbacks), "shard.merge.duplicates" (replicated-root copies
  /// removed); the "shard.fanout.width" histogram (participants per
  /// query); and per-drive gauges "disk.shard.<k>.utilization" (busy over
  /// makespan), "disk.shard.<k>.busy_seconds", "disk.shard.<k>.reads".
  RegistrySnapshot scheduler;

  /// Raw per-shard runs (default-constructed for shards no query
  /// touched), including each shard's own WorkloadResult::scheduler.
  std::vector<WorkloadResult> shards;
  /// Per-shard disk utilization in [0, 1] over the sharded makespan.
  std::vector<double> utilization;
};

class ShardedWorkloadExecutor {
 public:
  /// `store` must outlive the executor. `options` govern every per-shard
  /// executor (policy, budgets, collect_nodes, ...); `options.stats` is
  /// overridden per shard with that shard's DocumentStats, and
  /// `options.shards` is set internally so ValidateWorkloadOptions
  /// enforces the shard combination rules (no txn, no sharing).
  ShardedWorkloadExecutor(ShardedStore* store,
                          const WorkloadOptions& options);

  /// Routes `query` and stages its per-shard sub-queries. A query
  /// outside the router's domain falls back to the home shard at K=1 and
  /// is rejected with InvalidArgument at K>1 (the home shard only holds
  /// the full document unsharded).
  Status Add(const std::string& query, const PlanOptions& plan,
             SimTime arrival = 0, SimTime deadline = 0);

  /// Runs every participating shard's executor and merges. Hard failures
  /// (validation, a shard run failing as a whole) fail the call;
  /// per-query errors stay per-query, as in WorkloadExecutor.
  Result<ShardWorkloadResult> Run();

  /// Test hook: like WorkloadOptions::on_pull with the shard id
  /// prepended. Shards run sequentially (shard 0 first), so the combined
  /// trace is deterministic. Fires in addition to options.on_pull.
  std::function<void(std::size_t shard, std::size_t job_index,
                     std::size_t active_size)>
      on_shard_pull;

 private:
  struct PendingQuery {
    QueryRoute route;
    PlanOptions plan;
    SimTime arrival = 0;
    SimTime deadline = 0;
  };

  ShardedStore* store_;
  ShardRouter router_;
  WorkloadOptions options_;
  std::vector<PendingQuery> pending_;
};

/// Single-query sharded execution (the compiler-layer ExecuteQuery lifted
/// over shards): routes `query`, runs ExecuteQuery on every participating
/// shard with `options`, and merges count/nodes/metrics as above, with
/// total_time the max over participants. Supports predicated queries —
/// routing only needs the predicate-free skeleton. Out-of-domain queries
/// run on the home shard at K=1 and fail with InvalidArgument at K>1.
Result<QueryRunResult> ShardedExecuteQuery(ShardedStore* store,
                                           const std::string& query,
                                           const ExecuteOptions& options);

/// Sums `add` into `into` field-wise (elevator_depth_max as max): the
/// aggregate I/O picture across parallel drives.
void AccumulateMetrics(Metrics* into, const Metrics& add);

}  // namespace navpath

#endif  // NAVPATH_SHARD_SHARD_EXECUTOR_H_
