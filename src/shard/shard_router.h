// Compile-time query routing over a path-partitioned store.
//
// The router decides, per location path, which shards must run it. Its
// domain is the summary's exactness domain lifted to queries: absolute
// paths over downward axes (self, child, descendant, descendant-or-self,
// attribute), with predicates allowed as long as their relative sub-paths
// are downward too — a predicate then only ever navigates inside one
// shard's subtree, because partitioning is by depth-1 subtree and every
// non-root node's whole subtree is co-located.
//
// Routing is summary-driven: an operand participates on exactly the
// shards whose per-shard path summary proves the (predicate-free skeleton
// of the) path non-empty. A `/site/regions//item` therefore routes to the
// single shard owning `regions`; a `//keyword` fans out to every shard
// whose partition contains keywords; a path no shard can satisfy runs on
// the home shard (whose summary collapses it to an empty plan, exactly as
// the unsharded executor would).
//
// The one replicated node is the root element, present on every shard
// under its original order key. The router tracks the root through the
// step frontier: a query whose result can contain the root reports the
// overcount (`root_dup`) so merges can correct counts, and a predicate
// over a root-selecting step is out-of-domain (its evaluation would need
// the whole document on one shard). Out-of-domain queries are flagged
// `unrouted` and mapped to the home shard — correct only at K=1, where
// the home shard holds the full document; callers reject them at K>1.
#ifndef NAVPATH_SHARD_SHARD_ROUTER_H_
#define NAVPATH_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "shard/sharded_store.h"
#include "xpath/location_path.h"

namespace navpath {

/// Where one query runs: per-shard sub-queries plus merge metadata.
struct QueryRoute {
  /// Sub-query for each shard, parsed against that shard's registry;
  /// shards with an empty `paths` vector sit this query out. All entries
  /// share the original query's mode.
  std::vector<PathQuery> per_shard;
  /// Shards with a non-empty sub-query, ascending.
  std::vector<std::size_t> participants;
  /// Count overcount from the replicated root: summed over operand paths
  /// that select the root element, (participants - 1) each. Node-mode
  /// merges equivalently drop duplicate order keys.
  std::uint64_t root_dup = 0;
  /// Some operand's result set contains the (replicated) root element.
  bool root_in_result = false;
  /// The query is outside the router's domain; the whole query was
  /// assigned to the home shard, which is only correct at K=1.
  bool unrouted = false;
  /// Human-readable reason when unrouted.
  std::string reason;

  std::size_t width() const { return participants.size(); }
};

class ShardRouter {
 public:
  /// `store` must outlive the router.
  explicit ShardRouter(ShardedStore* store) : store_(store) {}

  /// Parses `query` against every shard's registry and routes each
  /// operand path. Parse errors fail the call; out-of-domain queries
  /// succeed with `unrouted` set (home-shard assignment).
  Result<QueryRoute> Route(const std::string& query) const;

 private:
  ShardedStore* store_;
};

}  // namespace navpath

#endif  // NAVPATH_SHARD_SHARD_ROUTER_H_
