#include "shard/sharded_store.h"

#include <algorithm>
#include <numeric>

#include "store/clustering.h"

namespace navpath {

std::uint64_t ShardFaultSeed(std::uint64_t base, std::size_t shard) {
  if (shard == 0) return base;  // K=1 replays the unsharded fault stream
  // splitmix64 finalizer over (base, shard): well-mixed, stateless,
  // reproducible.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * shard;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// Exact record bytes of the subtree rooted at `node` (elements and
/// their attributes), in the same approximation the clustering policies
/// budget with — so unit weights are cardinality-times-record-bytes in
/// page-true units.
std::uint64_t SubtreeWeight(const DomTree& tree, DomNodeId node) {
  std::uint64_t bytes = 0;
  std::vector<DomNodeId> stack{node};
  while (!stack.empty()) {
    const DomNodeId v = stack.back();
    stack.pop_back();
    bytes += EstimateNodeBytes(tree, v);
    for (DomNodeId a = tree.node(v).first_attr; a != kNilDomNode;
         a = tree.node(a).next_sibling) {
      bytes += EstimateNodeBytes(tree, a);
    }
    for (DomNodeId c = tree.node(v).first_child; c != kNilDomNode;
         c = tree.node(c).next_sibling) {
      stack.push_back(c);
    }
  }
  return bytes;
}

/// Copies the subtree rooted at `src_node` under `dst_parent`, preserving
/// tags (same registry), text, attributes and — the merge invariant —
/// the original order keys.
void CopySubtree(const DomTree& src, DomNodeId src_node, DomTree* dst,
                 DomNodeId dst_parent) {
  std::vector<std::pair<DomNodeId, DomNodeId>> stack;  // (src, dst parent)
  stack.emplace_back(src_node, dst_parent);
  while (!stack.empty()) {
    const auto [s, parent] = stack.back();
    stack.pop_back();
    const DomNode& n = src.node(s);
    const DomNodeId d = dst->AppendChild(parent, n.tag);
    dst->SetOrder(d, n.order);
    if (!n.text.empty()) dst->AppendText(d, n.text);
    for (DomNodeId a = n.first_attr; a != kNilDomNode;
         a = src.node(a).next_sibling) {
      const DomNode& an = src.node(a);
      const DomNodeId da = dst->AddAttribute(d, an.tag, an.text);
      dst->SetOrder(da, an.order);
    }
    // Push children in reverse so the copy preserves sibling order.
    std::vector<DomNodeId> children;
    for (DomNodeId c = n.first_child; c != kNilDomNode;
         c = src.node(c).next_sibling) {
      children.push_back(c);
    }
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.emplace_back(*it, d);
    }
  }
}

}  // namespace

std::optional<std::size_t> ShardedStore::OwnerOf(std::string_view tag) const {
  const auto it = owner_.find(std::string(tag));
  if (it == owner_.end()) return std::nullopt;
  return units_[it->second].owner;
}

Result<std::unique_ptr<ShardedStore>> ShardedStore::Build(
    const ShardOptions& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("a sharded store needs at least 1 shard");
  }
  if (!options.source) {
    return Status::InvalidArgument("ShardOptions.source is required");
  }
  if (!options.clustering) {
    return Status::InvalidArgument("ShardOptions.clustering is required");
  }
  if (!options.db.import.build_summary) {
    return Status::InvalidArgument(
        "sharded stores require the path-summary synopsis "
        "(ImportOptions::build_summary): per-shard summaries are the "
        "router's pruning table");
  }

  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  const std::uint64_t base_seed = options.db.faults.seed;

  for (std::size_t k = 0; k < options.shards; ++k) {
    DatabaseOptions db_options = options.db;
    db_options.faults.seed = ShardFaultSeed(base_seed, k);
    ShardState state;
    state.db = std::make_unique<Database>(db_options);

    const DomTree tree = options.source(state.db->tags());
    if (tree.empty()) {
      return Status::InvalidArgument("shard source produced an empty "
                                     "document");
    }

    if (k == 0) {
      // Partition once, from the first generated copy: depth-1 units in
      // first-occurrence (document) order, weighted by exact subtree
      // record bytes.
      store->root_tag_ = tree.TagName(tree.root());
      for (DomNodeId c = tree.node(tree.root()).first_child;
           c != kNilDomNode; c = tree.node(c).next_sibling) {
        const std::string& tag = tree.TagName(c);
        auto [it, inserted] =
            store->owner_.emplace(tag, store->units_.size());
        if (inserted) {
          ShardUnit unit;
          unit.tag = tag;
          store->units_.push_back(std::move(unit));
        }
        ShardUnit& unit = store->units_[it->second];
        unit.weight += SubtreeWeight(tree, c);
        ++unit.subtrees;
      }
      // LPT greedy: heaviest unit first (ties: earlier in document),
      // placed on the least-loaded shard (ties: lowest id). Deterministic
      // by construction, and at K=1 everything lands on shard 0.
      std::vector<std::size_t> order(store->units_.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return store->units_[a].weight >
                                store->units_[b].weight;
                       });
      std::vector<std::uint64_t> load(options.shards, 0);
      for (const std::size_t u : order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        store->units_[u].owner = target;
        load[target] += store->units_[u].weight;
      }
    }

    const std::unique_ptr<ClusteringPolicy> policy = options.clustering();
    if (policy == nullptr) {
      return Status::InvalidArgument("clustering factory returned null");
    }

    if (options.shards == 1) {
      // Single shard: import the source document untouched — byte
      // identical to an unsharded Database fed the same options.
      NAVPATH_ASSIGN_OR_RETURN(state.doc,
                               state.db->Import(tree, policy.get()));
      state.stats = DocumentStats::Build(tree, state.doc,
                                         db_options.page_size);
    } else {
      // Pruned copy: the root element (text, attributes — the latter only
      // on the home shard so no attribute is replicated) plus the owned
      // depth-1 subtrees, in document order, under their original order
      // keys.
      DomTree shard_tree(state.db->tags());
      const DomNode& root = tree.node(tree.root());
      shard_tree.CreateRoot(root.tag);
      shard_tree.SetOrder(0, root.order);
      if (!root.text.empty()) shard_tree.AppendText(0, root.text);
      if (k == store->home_shard()) {
        for (DomNodeId a = root.first_attr; a != kNilDomNode;
             a = tree.node(a).next_sibling) {
          const DomNode& an = tree.node(a);
          const DomNodeId da = shard_tree.AddAttribute(0, an.tag, an.text);
          shard_tree.SetOrder(da, an.order);
        }
      }
      for (DomNodeId c = root.first_child; c != kNilDomNode;
           c = tree.node(c).next_sibling) {
        const auto it = store->owner_.find(tree.TagName(c));
        NAVPATH_CHECK(it != store->owner_.end());
        if (store->units_[it->second].owner == k) {
          CopySubtree(tree, c, &shard_tree, 0);
        }
      }
      NAVPATH_ASSIGN_OR_RETURN(state.doc,
                               state.db->Import(shard_tree, policy.get()));
      state.stats = DocumentStats::Build(shard_tree, state.doc,
                                         db_options.page_size);
    }

    NAVPATH_CHECK(state.db->summary() != nullptr);
    store->shards_.push_back(std::move(state));
  }
  return store;
}

}  // namespace navpath
