// Path-partitioned multi-drive store (ROADMAP scale-out item).
//
// One logical document is partitioned by subtree across K shards, each a
// full Database instance: its own SimulatedDisk with its own elevator, its
// own BufferManager, and — crucially — its own SimClock. K independent
// clocks, all cold-started at zero, model K drives running in parallel: a
// workload fanned out over the shards finishes when the slowest shard
// does, so the sharded makespan is the max over per-shard makespans.
//
// The partitioning scheme follows Arion et al. ("Path Summaries and Path
// Partitioning in Modern XML Databases", PAPERS.md): partition units are
// the document's depth-1 path groups — the root's children grouped by tag
// — weighted by their exact subtree record bytes and placed onto shards
// with a longest-processing-time greedy pass. Every shard keeps a copy of
// the root element under its original order key, so per-shard documents
// are well-formed, per-shard path summaries exist, and those summaries
// double as the router's pruning table (shard_router.h). Order keys are
// assigned on the full document before partitioning and survive the
// per-shard import verbatim, which is what makes cross-shard results
// mergeable in document order.
//
// At K = 1 nothing is pruned: the single shard imports the source
// document exactly as an unsharded Database would, byte for byte —
// including the fault-injector seed (ShardFaultSeed(base, 0) == base) —
// which is the identity the routing tests and the workload_shard bench
// gate on.
#ifndef NAVPATH_SHARD_SHARDED_STORE_H_
#define NAVPATH_SHARD_SHARDED_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/cost_model.h"
#include "store/database.h"

namespace navpath {

/// Deterministic per-shard fault seed. Shard 0 keeps the base seed — the
/// K=1 shard must replay an unsharded database's fault stream exactly —
/// and every other shard mixes its id through a splitmix64 finalizer, so
/// fault tests stay reproducible at any K without the shards sharing one
/// random stream.
std::uint64_t ShardFaultSeed(std::uint64_t base, std::size_t shard);

struct ShardOptions {
  /// Number of shards (drives). Must be >= 1.
  std::size_t shards = 1;

  /// Per-shard database options, applied verbatim to every shard: each
  /// shard gets its own `buffer_pages`-page pool. Callers comparing
  /// against an unsharded baseline at constant aggregate memory divide
  /// the total by K themselves. `faults.seed` is treated as the base
  /// seed and re-derived per shard via ShardFaultSeed.
  DatabaseOptions db;

  /// Deterministic document source, called once per shard with that
  /// shard's tag registry. It must produce the same document every call:
  /// same structure, same text, same order keys (generators driven by a
  /// fixed seed qualify). Each shard imports a pruned copy holding the
  /// root plus its owned depth-1 subtrees.
  std::function<DomTree(TagRegistry*)> source;

  /// Clustering-policy factory; invoked once per shard import.
  std::function<std::unique_ptr<ClusteringPolicy>()> clustering;
};

/// One depth-1 partition unit: all root children sharing a tag.
struct ShardUnit {
  std::string tag;            // child tag name under the root
  std::size_t owner = 0;      // shard the unit was placed on
  std::uint64_t weight = 0;   // exact subtree record bytes (all members)
  std::uint64_t subtrees = 0; // number of root children in the unit
};

class ShardedStore {
 public:
  /// Generates the document once per shard, partitions its depth-1 units
  /// by weight (LPT greedy, deterministic tie-breaks: heavier first,
  /// earlier-in-document first among equals, lowest shard id among
  /// equally loaded shards), prunes each shard's copy to the root plus
  /// its owned units, and imports shard-locally. Fails if the source
  /// yields an empty document or options are malformed.
  static Result<std::unique_ptr<ShardedStore>> Build(
      const ShardOptions& options);

  std::size_t shard_count() const { return shards_.size(); }
  /// Out-of-domain queries run here (only valid at K=1, where the home
  /// shard holds the whole document).
  std::size_t home_shard() const { return 0; }

  Database* db(std::size_t shard) { return shards_[shard].db.get(); }
  const Database* db(std::size_t shard) const {
    return shards_[shard].db.get();
  }
  const ImportedDocument& doc(std::size_t shard) const {
    return shards_[shard].doc;
  }
  ImportedDocument* mutable_doc(std::size_t shard) {
    return &shards_[shard].doc;
  }
  const DocumentStats& stats(std::size_t shard) const {
    return shards_[shard].stats;
  }
  /// Per-shard path summary; never null (shard imports always build it —
  /// the router depends on it).
  const PathSummary* summary(std::size_t shard) const {
    return shards_[shard].db->summary();
  }

  const std::string& root_tag() const { return root_tag_; }
  const std::vector<ShardUnit>& units() const { return units_; }
  /// Owning shard for a depth-1 child tag, if that tag occurs.
  std::optional<std::size_t> OwnerOf(std::string_view tag) const;

 private:
  struct ShardState {
    std::unique_ptr<Database> db;
    ImportedDocument doc;
    DocumentStats stats;
  };

  ShardedStore() = default;

  std::vector<ShardState> shards_;
  std::vector<ShardUnit> units_;
  std::unordered_map<std::string, std::size_t> owner_;  // tag -> unit index
  std::string root_tag_;
};

}  // namespace navpath

#endif  // NAVPATH_SHARD_SHARDED_STORE_H_
