#include "shard/shard_router.h"

#include <algorithm>

#include "xpath/parser.h"

namespace navpath {

namespace {

bool DownwardAxis(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
    case Axis::kChild:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kAttribute:
      return true;
    default:
      return false;
  }
}

bool TestMatchesRoot(const NodeTest& test, const std::string& root_tag) {
  return test.kind != NodeTest::Kind::kName || test.name == root_tag;
}

/// Checks a predicate sub-path (recursively): it must be relative and
/// purely downward, so its evaluation stays inside the candidate's
/// shard-local subtree.
const char* CheckPredicatePath(const LocationPath& path) {
  if (path.absolute) {
    return "absolute predicate path restarts at the partitioned root";
  }
  for (const LocationStep& step : path.steps) {
    if (!DownwardAxis(step.axis)) {
      return "predicate navigates a non-downward axis";
    }
    for (const Predicate& nested : step.predicates) {
      if (const char* reason = CheckPredicatePath(*nested.path)) {
        return reason;
      }
    }
  }
  return nullptr;
}

struct PathAnalysis {
  bool in_domain = true;
  bool root_in_result = false;
  const char* reason = "";
};

/// Static analysis of one operand path: domain membership plus whether
/// the replicated root element can appear in the result. The frontier
/// starts at the root (absolute paths evaluate from the root element,
/// matching the parser's first-step projection and the oracle); with
/// downward-only axes the root survives a step only through
/// self/descendant-or-self whose test matches it, and once dropped it
/// never re-enters.
PathAnalysis AnalyzePath(const LocationPath& path,
                         const std::string& root_tag) {
  PathAnalysis analysis;
  if (!path.absolute) {
    analysis.in_domain = false;
    analysis.reason = "relative path needs caller-supplied context nodes";
    return analysis;
  }
  bool root_in_frontier = true;
  for (const LocationStep& step : path.steps) {
    if (!DownwardAxis(step.axis)) {
      analysis.in_domain = false;
      analysis.reason = "upward or sideways axis can cross shards";
      return analysis;
    }
    for (const Predicate& pred : step.predicates) {
      if (const char* reason = CheckPredicatePath(*pred.path)) {
        analysis.in_domain = false;
        analysis.reason = reason;
        return analysis;
      }
    }
    const bool selects_root =
        root_in_frontier &&
        (step.axis == Axis::kSelf || step.axis == Axis::kDescendantOrSelf) &&
        TestMatchesRoot(step.test, root_tag);
    if (selects_root && !step.predicates.empty()) {
      analysis.in_domain = false;
      analysis.reason =
          "predicate over the replicated root element needs the whole "
          "document";
      return analysis;
    }
    root_in_frontier = selects_root;
  }
  analysis.root_in_result = root_in_frontier;
  return analysis;
}

LocationPath StripPredicates(const LocationPath& path) {
  LocationPath skeleton;
  skeleton.absolute = path.absolute;
  skeleton.steps.reserve(path.steps.size());
  for (const LocationStep& step : path.steps) {
    LocationStep bare;
    bare.axis = step.axis;
    bare.test = step.test;
    skeleton.steps.push_back(std::move(bare));
  }
  return skeleton;
}

}  // namespace

Result<QueryRoute> ShardRouter::Route(const std::string& query) const {
  const std::size_t shard_count = store_->shard_count();
  QueryRoute route;
  route.per_shard.resize(shard_count);

  // Each shard re-parses the query against its own registry so node
  // tests resolve to shard-local TagIds. Parses of the same text agree
  // structurally; a name unknown to some shard simply interns fresh and
  // matches nothing in that shard's summary.
  std::vector<PathQuery> parsed;
  parsed.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    NAVPATH_ASSIGN_OR_RETURN(
        PathQuery q, ParseQuery(query, store_->db(k)->tags()));
    route.per_shard[k].mode = q.mode;
    parsed.push_back(std::move(q));
  }

  auto fall_back_home = [&](const char* reason) {
    route.unrouted = true;
    route.reason = reason;
    route.root_dup = 0;
    route.root_in_result = false;
    route.participants.assign(1, store_->home_shard());
    for (std::size_t k = 0; k < shard_count; ++k) {
      route.per_shard[k].paths.clear();
    }
    route.per_shard[store_->home_shard()] =
        std::move(parsed[store_->home_shard()]);
  };

  std::vector<bool> participates(shard_count, false);
  const std::size_t operand_count = parsed[0].paths.size();
  for (std::size_t op = 0; op < operand_count; ++op) {
    const PathAnalysis analysis =
        AnalyzePath(parsed[0].paths[op], store_->root_tag());
    if (!analysis.in_domain) {
      fall_back_home(analysis.reason);
      return route;
    }
    // Summary-pruned participant set: only shards whose partition can
    // produce a result run this operand. When no shard can, the home
    // shard still schedules the job (its summary collapses it to an
    // empty plan), mirroring the unsharded executor's behavior.
    std::vector<std::size_t> shards;
    for (std::size_t k = 0; k < shard_count; ++k) {
      const LocationPath skeleton = StripPredicates(parsed[k].paths[op]);
      const SummaryMatch match = store_->summary(k)->Match(skeleton);
      if (!match.applicable) {
        fall_back_home("path outside the summary's exactness domain");
        return route;
      }
      if (!match.empty) shards.push_back(k);
    }
    if (shards.empty()) shards.push_back(store_->home_shard());
    if (analysis.root_in_result) {
      route.root_in_result = true;
      route.root_dup += shards.size() - 1;
    }
    for (const std::size_t k : shards) {
      route.per_shard[k].paths.push_back(parsed[k].paths[op]);
      participates[k] = true;
    }
  }

  for (std::size_t k = 0; k < shard_count; ++k) {
    if (participates[k]) route.participants.push_back(k);
  }
  return route;
}

}  // namespace navpath
