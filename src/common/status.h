// Arrow-style Status/Result error model.
//
// Fallible operations return Status (no payload) or Result<T> (payload or
// error). Hot paths that cannot fail use plain values plus NAVPATH_DCHECK.
#ifndef NAVPATH_COMMON_STATUS_H_
#define NAVPATH_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace navpath {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kOutOfMemory = 3,
  kNotFound = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kParseError = 7,
  kResourceExhausted = 8,
  kUnknown = 9,
  kAborted = 10,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to pass around: the OK state carries no
/// allocation; error states hold a code and message on the heap.
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The operation lost a race (e.g. an optimistic transaction whose base
  /// version is no longer current) and can be retried from scratch.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code() == StatusCode::kAborted; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process if this status is not OK. Use only where failure
  /// indicates a bug (e.g., in tests and examples).
  void Abort() const;
  void AbortIfNotOk() const {
    if (!ok()) Abort();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr == OK
};

/// A value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT implicit
  Result(Status status)                            // NOLINT implicit
      : payload_(std::move(status)) {
    NAVPATH_CHECK_MSG(!std::get<Status>(payload_).ok(),
                      "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    NAVPATH_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    NAVPATH_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(payload_);
  }
  T ValueOrDie() && {
    NAVPATH_CHECK_MSG(ok(), status().ToString().c_str());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace navpath

#endif  // NAVPATH_COMMON_STATUS_H_
