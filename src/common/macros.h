// Core assertion and utility macros used across navpath.
//
// Invariant violations are programming errors and abort the process
// (NAVPATH_CHECK / NAVPATH_DCHECK); environmental failures (I/O, parse
// errors, resource exhaustion) are reported through Status/Result instead.
#ifndef NAVPATH_COMMON_MACROS_H_
#define NAVPATH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define NAVPATH_CHECK(condition)                                            \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::std::fprintf(stderr, "NAVPATH_CHECK failed at %s:%d: %s\n",         \
                     __FILE__, __LINE__, #condition);                       \
      ::std::abort();                                                       \
    }                                                                       \
  } while (false)

#define NAVPATH_CHECK_MSG(condition, msg)                                   \
  do {                                                                      \
    if (!(condition)) {                                                     \
      ::std::fprintf(stderr, "NAVPATH_CHECK failed at %s:%d: %s (%s)\n",    \
                     __FILE__, __LINE__, #condition, msg);                  \
      ::std::abort();                                                       \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define NAVPATH_DCHECK(condition) \
  do {                            \
  } while (false)
#else
#define NAVPATH_DCHECK(condition) NAVPATH_CHECK(condition)
#endif

// Marks a statement control flow can never reach (e.g. after a switch that
// covers every enumerator and returns from each case). Aborts loudly if it
// is ever executed, instead of silently falling into a default value.
// Builds compile with -Werror=switch, so the combination "exhaustive
// switch + NAVPATH_UNREACHABLE after it" turns a newly added enumerator
// without a case into a compile error.
#define NAVPATH_UNREACHABLE()                                               \
  do {                                                                      \
    ::std::fprintf(stderr, "NAVPATH_UNREACHABLE reached at %s:%d\n",        \
                   __FILE__, __LINE__);                                     \
    ::std::abort();                                                         \
  } while (false)

// Propagates a non-OK Status from an expression producing a Status.
#define NAVPATH_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::navpath::Status _navpath_status = (expr);      \
    if (!_navpath_status.ok()) return _navpath_status; \
  } while (false)

// Observability (src/observe) compile gate. The build defines
// NAVPATH_OBSERVE_DISABLED when configured with -DNAVPATH_OBSERVE=OFF;
// instrumented call sites test NAVPATH_OBSERVE_ENABLED so the hooks (and
// every reference to observe symbols) vanish from the hot path.
#ifdef NAVPATH_OBSERVE_DISABLED
#define NAVPATH_OBSERVE_ENABLED 0
#else
#define NAVPATH_OBSERVE_ENABLED 1
#endif

#define NAVPATH_CONCAT_IMPL(x, y) x##y
#define NAVPATH_CONCAT(x, y) NAVPATH_CONCAT_IMPL(x, y)

// Evaluates an expression producing Result<T>; on success binds the value
// to `lhs`, on failure returns the error Status.
#define NAVPATH_ASSIGN_OR_RETURN(lhs, expr)                       \
  NAVPATH_ASSIGN_OR_RETURN_IMPL(                                  \
      NAVPATH_CONCAT(_navpath_result_, __LINE__), lhs, expr)

#define NAVPATH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

#endif  // NAVPATH_COMMON_MACROS_H_
