// Deterministic pseudo-random number generation (xoshiro256**).
//
// Used by the XMark generator, the random clustering policy, and the
// property-based tests. std::mt19937_64 is avoided so that sequences are
// stable across standard library implementations.
#ifndef NAVPATH_COMMON_RANDOM_H_
#define NAVPATH_COMMON_RANDOM_H_

#include <cstdint>

#include "common/macros.h"

namespace navpath {

/// xoshiro256** by Blackman & Vigna; seeded via splitmix64.
class Random {
 public:
  explicit Random(std::uint64_t seed) {
    // splitmix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    NAVPATH_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    NAVPATH_DCHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextBounded(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0, 1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace navpath

#endif  // NAVPATH_COMMON_RANDOM_H_
