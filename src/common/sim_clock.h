// Deterministic simulated clock.
//
// All experiment timing in navpath is accounted against a SimClock instead
// of the wall clock: CPU work is charged explicitly by the component that
// performs it (buffer probes, navigation hops, node tests, ...), and I/O
// waits advance the clock to the simulated completion time of the disk
// request. This makes every benchmark bit-for-bit reproducible while
// preserving the relative cost structure the paper exploits.
#ifndef NAVPATH_COMMON_SIM_CLOCK_H_
#define NAVPATH_COMMON_SIM_CLOCK_H_

#include <cstdint>

#include "common/macros.h"

namespace navpath {

/// Simulated time in nanoseconds since experiment start.
using SimTime = std::uint64_t;

constexpr SimTime kSimNanosecond = 1;
constexpr SimTime kSimMicrosecond = 1000;
constexpr SimTime kSimMillisecond = 1000 * 1000;
constexpr SimTime kSimSecond = 1000ull * 1000 * 1000;

/// Tracks total simulated time and, separately, the CPU portion of it.
///
/// The invariant `cpu_time() + io_wait_time() == now()` always holds:
/// ChargeCpu advances both `now` and `cpu_time`, WaitUntil advances `now`
/// only (the difference is time spent blocked on I/O).
class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimTime now() const { return now_; }
  SimTime cpu_time() const { return cpu_; }
  SimTime io_wait_time() const { return now_ - cpu_; }

  /// Accounts `amount` of CPU work: the simulation moves forward and the
  /// CPU counter grows by the same amount.
  void ChargeCpu(SimTime amount) {
    now_ += amount;
    cpu_ += amount;
  }

  /// Blocks (in simulation) until `t`. No-op if `t` is in the past: the
  /// I/O already completed while the CPU was busy.
  void WaitUntil(SimTime t) {
    if (t > now_) now_ = t;
  }

  void Reset() {
    now_ = 0;
    cpu_ = 0;
  }

  static double ToSeconds(SimTime t) {
    return static_cast<double>(t) / static_cast<double>(kSimSecond);
  }

 private:
  SimTime now_ = 0;
  SimTime cpu_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_COMMON_SIM_CLOCK_H_
