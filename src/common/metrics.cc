#include "common/metrics.h"

#include <cstdio>

namespace navpath {

std::string Metrics::ToString() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "disk: reads=%llu (seq=%llu) writes=%llu seek_pages=%llu "
      "async=%llu (reordered=%llu)\n"
      "sched: merged=%llu elevator_batches=%llu depth_sum=%llu "
      "depth_max=%llu\n"
      "buffer: hits=%llu misses=%llu evictions=%llu swizzle=%llu "
      "unswizzle=%llu\n"
      "faults: injected=%llu retries=%llu corruptions_detected=%llu "
      "fallbacks=%llu\n"
      "nav: clusters=%llu intra=%llu inter=%llu tests=%llu\n"
      "algebra: instances=%llu full=%llu speculative=%llu r_probes=%llu "
      "s_probes=%llu fallbacks=%llu",
      static_cast<unsigned long long>(disk_reads),
      static_cast<unsigned long long>(disk_seq_reads),
      static_cast<unsigned long long>(disk_writes),
      static_cast<unsigned long long>(disk_seek_pages),
      static_cast<unsigned long long>(async_requests),
      static_cast<unsigned long long>(async_reorderings),
      static_cast<unsigned long long>(requests_merged),
      static_cast<unsigned long long>(elevator_batches),
      static_cast<unsigned long long>(elevator_depth_sum),
      static_cast<unsigned long long>(elevator_depth_max),
      static_cast<unsigned long long>(buffer_hits),
      static_cast<unsigned long long>(buffer_misses),
      static_cast<unsigned long long>(buffer_evictions),
      static_cast<unsigned long long>(swizzle_ops),
      static_cast<unsigned long long>(unswizzle_ops),
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(fault_retries),
      static_cast<unsigned long long>(corruptions_detected),
      static_cast<unsigned long long>(fault_fallbacks),
      static_cast<unsigned long long>(clusters_visited),
      static_cast<unsigned long long>(intra_cluster_hops),
      static_cast<unsigned long long>(inter_cluster_hops),
      static_cast<unsigned long long>(node_tests),
      static_cast<unsigned long long>(instances_created),
      static_cast<unsigned long long>(instances_full),
      static_cast<unsigned long long>(speculative_instances),
      static_cast<unsigned long long>(r_set_probes),
      static_cast<unsigned long long>(s_set_probes),
      static_cast<unsigned long long>(fallback_activations));
  return buf;
}

}  // namespace navpath
