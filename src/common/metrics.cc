#include "common/metrics.h"

#include <cstdio>

namespace navpath {

Metrics Metrics::Delta(const Metrics& start) const {
  Metrics d;
  d.disk_reads = disk_reads - start.disk_reads;
  d.disk_seq_reads = disk_seq_reads - start.disk_seq_reads;
  d.disk_writes = disk_writes - start.disk_writes;
  d.disk_seek_pages = disk_seek_pages - start.disk_seek_pages;
  d.async_requests = async_requests - start.async_requests;
  d.async_reorderings = async_reorderings - start.async_reorderings;
  d.requests_merged = requests_merged - start.requests_merged;
  d.elevator_batches = elevator_batches - start.elevator_batches;
  d.elevator_depth_sum = elevator_depth_sum - start.elevator_depth_sum;
  d.elevator_depth_max = elevator_depth_max;  // high-water mark, not a count
  d.priority_jumps = priority_jumps - start.priority_jumps;
  d.buffer_hits = buffer_hits - start.buffer_hits;
  d.buffer_misses = buffer_misses - start.buffer_misses;
  d.buffer_evictions = buffer_evictions - start.buffer_evictions;
  d.swizzle_ops = swizzle_ops - start.swizzle_ops;
  d.unswizzle_ops = unswizzle_ops - start.unswizzle_ops;
  d.faults_injected = faults_injected - start.faults_injected;
  d.fault_retries = fault_retries - start.fault_retries;
  d.corruptions_detected = corruptions_detected - start.corruptions_detected;
  d.fault_fallbacks = fault_fallbacks - start.fault_fallbacks;
  d.clusters_visited = clusters_visited - start.clusters_visited;
  d.intra_cluster_hops = intra_cluster_hops - start.intra_cluster_hops;
  d.inter_cluster_hops = inter_cluster_hops - start.inter_cluster_hops;
  d.node_tests = node_tests - start.node_tests;
  d.instances_created = instances_created - start.instances_created;
  d.instances_full = instances_full - start.instances_full;
  d.speculative_instances =
      speculative_instances - start.speculative_instances;
  d.r_set_probes = r_set_probes - start.r_set_probes;
  d.s_set_probes = s_set_probes - start.s_set_probes;
  d.fallback_activations = fallback_activations - start.fallback_activations;
  return d;
}

std::string Metrics::ToString() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "disk: reads=%llu (seq=%llu) writes=%llu seek_pages=%llu "
      "async=%llu (reordered=%llu)\n"
      "sched: merged=%llu elevator_batches=%llu depth_sum=%llu "
      "depth_max=%llu priority_jumps=%llu\n"
      "buffer: hits=%llu misses=%llu evictions=%llu swizzle=%llu "
      "unswizzle=%llu\n"
      "faults: injected=%llu retries=%llu corruptions_detected=%llu "
      "fallbacks=%llu\n"
      "nav: clusters=%llu intra=%llu inter=%llu tests=%llu\n"
      "algebra: instances=%llu full=%llu speculative=%llu r_probes=%llu "
      "s_probes=%llu fallbacks=%llu",
      static_cast<unsigned long long>(disk_reads),
      static_cast<unsigned long long>(disk_seq_reads),
      static_cast<unsigned long long>(disk_writes),
      static_cast<unsigned long long>(disk_seek_pages),
      static_cast<unsigned long long>(async_requests),
      static_cast<unsigned long long>(async_reorderings),
      static_cast<unsigned long long>(requests_merged),
      static_cast<unsigned long long>(elevator_batches),
      static_cast<unsigned long long>(elevator_depth_sum),
      static_cast<unsigned long long>(elevator_depth_max),
      static_cast<unsigned long long>(priority_jumps),
      static_cast<unsigned long long>(buffer_hits),
      static_cast<unsigned long long>(buffer_misses),
      static_cast<unsigned long long>(buffer_evictions),
      static_cast<unsigned long long>(swizzle_ops),
      static_cast<unsigned long long>(unswizzle_ops),
      static_cast<unsigned long long>(faults_injected),
      static_cast<unsigned long long>(fault_retries),
      static_cast<unsigned long long>(corruptions_detected),
      static_cast<unsigned long long>(fault_fallbacks),
      static_cast<unsigned long long>(clusters_visited),
      static_cast<unsigned long long>(intra_cluster_hops),
      static_cast<unsigned long long>(inter_cluster_hops),
      static_cast<unsigned long long>(node_tests),
      static_cast<unsigned long long>(instances_created),
      static_cast<unsigned long long>(instances_full),
      static_cast<unsigned long long>(speculative_instances),
      static_cast<unsigned long long>(r_set_probes),
      static_cast<unsigned long long>(s_set_probes),
      static_cast<unsigned long long>(fallback_activations));
  return buf;
}

}  // namespace navpath
