#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace navpath {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  result += ": ";
  result += state_->msg;
  return result;
}

void Status::Abort() const {
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace navpath
