// Execution metrics gathered during query evaluation.
//
// Every layer increments counters on the shared Metrics object owned by the
// Database; benchmarks and tests read them to explain *why* one plan beats
// another (I/O counts, seek distance, buffer hits, swizzle operations, ...).
#ifndef NAVPATH_COMMON_METRICS_H_
#define NAVPATH_COMMON_METRICS_H_

#include <cstdint>
#include <string>

namespace navpath {

struct Metrics {
  // Disk level.
  std::uint64_t disk_reads = 0;        // pages read (any mode)
  std::uint64_t disk_seq_reads = 0;    // pages read at sequential cost
  std::uint64_t disk_writes = 0;       // pages written back
  std::uint64_t disk_seek_pages = 0;   // total seek distance in pages
  std::uint64_t async_requests = 0;    // async read requests issued
  std::uint64_t async_reorderings = 0; // async requests served out of order

  // Cross-query I/O scheduling (workload layer). The elevator depth
  // counters sample the pending pool visible to the drive at each service
  // decision; deeper pools mean more reordering freedom (Sec. 7).
  std::uint64_t requests_merged = 0;    // duplicate async reads coalesced
  std::uint64_t elevator_batches = 0;   // async service decisions taken
  std::uint64_t elevator_depth_sum = 0; // pending pool size, summed
  std::uint64_t elevator_depth_max = 0; // deepest pool observed
  std::uint64_t priority_jumps = 0;     // high-priority reads served past
                                        // visible normal-priority requests

  // Buffer level.
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;
  std::uint64_t buffer_evictions = 0;
  std::uint64_t swizzle_ops = 0;    // NodeID -> pointer translations
  std::uint64_t unswizzle_ops = 0;  // pointer -> NodeID translations

  // Fault handling (storage robustness layer).
  std::uint64_t faults_injected = 0;       // fault events the disk injected
  std::uint64_t fault_retries = 0;         // I/O attempts retried with backoff
  std::uint64_t corruptions_detected = 0;  // page checksum mismatches caught
  std::uint64_t fault_fallbacks = 0;       // async->sync degradations taken

  // Navigation level.
  std::uint64_t clusters_visited = 0;  // cluster entries by I/O operators
  std::uint64_t intra_cluster_hops = 0;
  std::uint64_t inter_cluster_hops = 0;
  std::uint64_t node_tests = 0;

  // Algebra level.
  std::uint64_t instances_created = 0;
  std::uint64_t instances_full = 0;
  std::uint64_t speculative_instances = 0;
  std::uint64_t r_set_probes = 0;
  std::uint64_t s_set_probes = 0;
  std::uint64_t fallback_activations = 0;

  /// Mean pending-pool depth over all elevator service decisions.
  double MeanElevatorDepth() const {
    return elevator_batches == 0
               ? 0.0
               : static_cast<double>(elevator_depth_sum) /
                     static_cast<double>(elevator_batches);
  }

  void Reset() { *this = Metrics(); }

  /// Point-in-time copy, taken at the start of a measurement window.
  Metrics Snapshot() const { return *this; }

  /// Counter deltas since `start` (a Snapshot taken earlier): what happened
  /// within the window alone. Benchmarks that reuse one Database across
  /// sweep points report windows, not lifetime accumulations.
  /// elevator_depth_max is a high-water mark, not a counter, so the
  /// window's value is the current maximum.
  Metrics Delta(const Metrics& start) const;

  /// Multi-line human-readable dump (for examples and debugging).
  std::string ToString() const;
};

}  // namespace navpath

#endif  // NAVPATH_COMMON_METRICS_H_
