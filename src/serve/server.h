// Always-on serving layer over the multi-query workload executor.
//
// The paper prices every plan before it runs; a serving system uses those
// same prices *at admission time*. This module is the admission front-end
// the ROADMAP names around the open-system Poisson mode and the two-level
// drive read-priority class: per-tenant bounded queues with weighted fair
// sharing (deficit round-robin on estimated cost), per-query deadlines
// that map onto drive read priority and hybrid-window placement, and an
// overload controller with three explicit responses instead of unbounded
// queueing:
//
//   degrade — re-plan queued queries onto a cheaper tier (Simple-method
//             chain or reduced-window XSchedule, priced by the cost
//             model's ChooseDegradedTier) before activation; reported in
//             EXPLAIN ANALYZE and the query's result,
//   shed    — reject at the queue with Status::ResourceExhausted carrying
//             the tenant's current queue occupancy and fair-share budget,
//   recover — hysteresis back to full-fidelity plans and FIFO admission
//             once pressure drains.
//
// While the controller reads "normal", admission is the executor's own
// global FIFO with head-of-line blocking, driven through the stepping
// interface — the pull loop is byte-for-byte Run()'s, so an underloaded
// serving layer produces the exact schedule of a serving-layer-off run.
// The fairness machinery (DRR) engages only under overload, where the
// FIFO guarantee is already forfeit.
#ifndef NAVPATH_SERVE_SERVER_H_
#define NAVPATH_SERVE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "compiler/workload_executor.h"
#include "observe/metrics_registry.h"

namespace navpath {

/// One tenant class: a bounded admission queue and a weight for the
/// overload fair-sharing pass. Tenants are identified by their index in
/// ServeOptions::tenants.
struct TenantSpec {
  std::string name;
  /// Bounded queue: arrivals beyond this are shed (ResourceExhausted).
  /// Zero is rejected by validation — a tenant that can never enqueue is
  /// a configuration error, not a policy.
  std::size_t queue_capacity = 16;
  /// Deficit-round-robin weight under overload (> 0). A weight-2 tenant
  /// is granted twice the estimated-cost budget per admission round.
  double weight = 1.0;
  /// Default relative deadline applied to this tenant's queries (0 =
  /// none): a query submitted without its own deadline gets
  /// arrival + deadline_slack. Deadlines map onto drive read priority
  /// and hybrid-window placement, never onto correctness.
  SimTime deadline_slack = 0;
};

/// Overload controller state. Transitions are driven by live signals
/// (aggregate queue depth, turnaround EWMA, buffer-pool pressure) and are
/// strictly ordered: normal -> degrade -> shed, with hysteresis on the
/// way back down.
enum class OverloadState { kNormal, kDegrade, kShed };

const char* OverloadStateName(OverloadState state);

struct ServeOptions {
  std::vector<TenantSpec> tenants;

  /// Executor configuration (policy, budget fraction, stats, priority_io,
  /// explain, ...). Validated on entry via ValidateWorkloadOptions.
  /// enable_sharing is unsupported under external admission.
  WorkloadOptions workload;

  // --- Overload controller thresholds ---------------------------------

  /// Aggregate queued queries at or above this enter the degrade state.
  std::size_t degrade_queue_depth = 8;
  /// Aggregate queued queries at or above this enter the shed state.
  /// Must be >= degrade_queue_depth.
  std::size_t shed_queue_depth = 16;
  /// Turnaround SLO (simulated ns; 0 disables the signal): an EWMA of
  /// completed turnarounds above this counts as pressure.
  SimTime turnaround_slo = 0;
  /// EWMA smoothing factor in (0, 1].
  double ewma_alpha = 0.25;
  /// In the shed state, a tenant whose queue occupancy is at or above
  /// this fraction of its capacity sheds new arrivals early, preserving
  /// headroom for tenants that are not flooding the system.
  double shed_occupancy = 0.5;
  /// Recovery hysteresis: the controller steps DOWN one state only after
  /// `recover_hold` consecutive healthy evaluations (aggregate queue at
  /// or below `recover_below`, EWMA under 80% of the SLO, buffer
  /// footprint under 90% of budget). Any unhealthy evaluation resets the
  /// streak — one good completion never flips the system back.
  std::size_t recover_below = 1;
  std::size_t recover_hold = 4;
  /// DRR refill per round, in estimated-cost units (0 = auto: the mean
  /// estimated cost of the tenants' queue heads at the start of each
  /// admission pass).
  double drr_quantum = 0.0;
};

/// Entry validation for the serving configuration (tenant set, queue
/// capacities, weights, controller thresholds). Run() refuses to start on
/// a malformed configuration instead of asserting mid-serve.
Status ValidateServeOptions(const ServeOptions& options);

/// Outcome of one submitted query, in Submit() order.
struct ServeOutcome {
  std::size_t tenant = 0;
  /// The query was rejected at the queue and never ran.
  bool shed = false;
  /// A write transaction (SubmitWrite). `count` stays 0; `commit_seq`
  /// records the version it published (0 on abort or shed).
  bool is_write = false;
  std::uint64_t commit_seq = 0;
  /// ResourceExhausted when shed; otherwise the query's own execution
  /// status (per-query isolation: one query's corruption fails only it).
  Status status;
  /// Ran on a cheaper tier than requested (overload degradation).
  bool degraded = false;
  SimTime arrival = 0;
  SimTime admitted_at = 0;   // activation time (0 when shed)
  SimTime finished_at = 0;   // completion time (0 when shed)
  std::uint64_t count = 0;   // result count (0 when shed)

  /// Zero for shed outcomes (finished_at stays 0, which would otherwise
  /// wrap below a positive arrival).
  SimTime turnaround() const {
    return finished_at < arrival ? 0 : finished_at - arrival;
  }
};

struct ServeResult {
  /// Per-submission outcomes, in Submit() order.
  std::vector<ServeOutcome> outcomes;
  /// Submission indices in activation order — the serving layer's actual
  /// admission sequence (determinism tests compare this byte for byte).
  std::vector<std::size_t> admission_order;
  /// Submission indices shed at the queue, in arrival order.
  std::vector<std::size_t> shed;
  /// The executor-side aggregate result (queries in executor Add order =
  /// arrival order of the non-shed submissions; metrics window, scheduler
  /// snapshot).
  WorkloadResult workload;
  /// serve.* counters and histograms: "serve.submitted" / "serve.shed" /
  /// "serve.degraded" / "serve.admitted" / "serve.failed", state
  /// transition counters ("serve.state.degrade_entered" /
  /// "serve.state.shed_entered" / "serve.state.recovered"), the
  /// "serve.queue_wait" and "serve.turnaround" histograms, and per-tenant
  /// variants "serve.tenant.<name>.{shed,degraded,completed,turnaround}".
  RegistrySnapshot metrics;
  /// Controller state when the last query drained.
  OverloadState final_state = OverloadState::kNormal;
};

/// The admission front-end. One Server serves one submission batch: queue
/// the workload with Submit(), then Run() plays it against the simulated
/// clock (arrivals, admissions, overload responses) to completion.
class Server {
 public:
  /// `db` and `doc` must outlive the server.
  Server(Database* db, const ImportedDocument& doc,
         const ServeOptions& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Queues one query for tenant `tenant` (index into options.tenants)
  /// arriving at simulated time `arrival`. Arrivals must be nondecreasing
  /// in Submit() order (a merged arrival stream). `deadline` is the
  /// absolute turnaround target (0 = tenant default); a deadline at or
  /// before the arrival is InvalidArgument. The query is parsed here, so
  /// malformed input fails at submission, not mid-serve.
  Status Submit(std::size_t tenant, const std::string& query,
                const PlanOptions& plan, SimTime arrival,
                SimTime deadline = 0);

  /// Queues a write transaction for tenant `tenant` (requires
  /// WorkloadOptions.txn on the serving configuration). Writes share the
  /// tenant's bounded queue and shed rules with reads, pass through the
  /// same admission passes (FIFO or DRR), and are never re-planned by
  /// the overload controller — there is no cheaper tier for a write, and
  /// degrading durability is not an overload response.
  Status SubmitWrite(std::size_t tenant, std::vector<WriteOp> ops,
                     SimTime arrival);

  std::size_t size() const { return subs_.size(); }

  /// Serves every submission to completion (or shedding) and reports the
  /// per-submission outcomes, the admission order, and the serve metrics.
  /// One-shot: the submission list is consumed.
  Result<ServeResult> Run();

 private:
  struct Submission {
    std::size_t tenant = 0;
    PathQuery query;
    PlanOptions plan;
    SimTime arrival = 0;
    SimTime deadline = 0;  // absolute, already defaulted from the tenant
    bool is_write = false;
    std::vector<WriteOp> write_ops;
  };

  /// Moves every submission whose arrival is due into its tenant queue
  /// (executor Add + queue push), shedding on overflow and on the shed
  /// state's early-occupancy rule.
  Status ProcessArrivals();

  /// Admission pass: global FIFO with head-of-line blocking in the normal
  /// state (byte-identical to Run()'s admit()), deficit round-robin over
  /// the tenant queues under overload.
  Status TryAdmit();
  Status AdmitFifo();
  Status AdmitDrr();

  /// Activates the submission at the front of its tenant queue,
  /// re-planning it onto the degraded tier first when the controller says
  /// so. Updates the admission bookkeeping and serve metrics.
  Status Activate(std::size_t sub);

  /// Re-evaluates the overload state from the live signals, applying the
  /// recovery hysteresis.
  void UpdateController();

  /// Completion bookkeeping for the job that finished on this decision.
  void OnJobFinished(std::size_t job);

  Database* db_;
  ServeOptions options_;
  WorkloadExecutor executor_;

  std::vector<Submission> subs_;
  std::vector<std::size_t> job_of_;     // submission -> executor job (npos = shed)
  std::vector<std::size_t> sub_of_job_; // executor job -> submission
  std::vector<char> job_activated_;     // executor job -> handed to ActivateJob
  std::vector<Status> shed_status_;     // submission -> shed rejection (OK = not shed)
  std::vector<std::deque<std::size_t>> queues_;  // queued submissions
  std::vector<double> deficit_;         // DRR state per tenant
  std::size_t queued_total_ = 0;
  std::size_t next_submit_ = 0;         // arrival cursor over subs_
  std::size_t next_fifo_ = 0;           // FIFO cursor over executor jobs

  OverloadState state_ = OverloadState::kNormal;
  double turnaround_ewma_ = 0.0;        // simulated ns
  std::size_t healthy_streak_ = 0;

  std::vector<std::size_t> admission_order_;
  std::vector<std::size_t> shed_;
  MetricsRegistry serve_;
};

}  // namespace navpath

#endif  // NAVPATH_SERVE_SERVER_H_
