#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "compiler/cost_model.h"
#include "store/database.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

constexpr std::size_t kNoSub = static_cast<std::size_t>(-1);

/// Recovery hysteresis margins: the EWMA must drop under this fraction of
/// the SLO and the buffer footprint under this fraction of the budget
/// before an evaluation counts as healthy — recovering at exactly the
/// entry threshold would oscillate.
constexpr double kSloRecoverFraction = 0.8;
constexpr double kBufferHotFraction = 0.9;

}  // namespace

const char* OverloadStateName(OverloadState state) {
  switch (state) {
    case OverloadState::kNormal:
      return "normal";
    case OverloadState::kDegrade:
      return "degrade";
    case OverloadState::kShed:
      return "shed";
  }
  NAVPATH_UNREACHABLE();
}

Status ValidateServeOptions(const ServeOptions& options) {
  if (options.tenants.empty()) {
    return Status::InvalidArgument("no tenants configured");
  }
  for (const TenantSpec& tenant : options.tenants) {
    if (tenant.queue_capacity == 0) {
      return Status::InvalidArgument("zero-capacity tenant queue: '" +
                                     tenant.name + "'");
    }
    // NaN fails the > comparison and lands here too.
    if (!(tenant.weight > 0.0)) {
      return Status::InvalidArgument("tenant weight must be positive: '" +
                                     tenant.name + "'");
    }
  }
  if (!(options.ewma_alpha > 0.0) || options.ewma_alpha > 1.0) {
    return Status::InvalidArgument("ewma_alpha must be in (0, 1]");
  }
  if (!(options.shed_occupancy > 0.0) || options.shed_occupancy > 1.0) {
    return Status::InvalidArgument("shed_occupancy must be in (0, 1]");
  }
  if (options.degrade_queue_depth == 0) {
    return Status::InvalidArgument("degrade_queue_depth must be positive");
  }
  if (options.shed_queue_depth < options.degrade_queue_depth) {
    return Status::InvalidArgument(
        "shed_queue_depth below degrade_queue_depth");
  }
  if (options.recover_hold == 0) {
    return Status::InvalidArgument("recover_hold must be positive");
  }
  if (!(options.drr_quantum >= 0.0)) {
    return Status::InvalidArgument("drr_quantum must be nonnegative");
  }
  // The txn+sharing combination gets its own message ahead of the
  // generic sharing rejection: a tenant config that sets both must learn
  // the combination itself is invalid (at every entry point, not just
  // ValidateWorkloadOptions), not merely that serving lacks sharing.
  if (options.workload.txn != nullptr && options.workload.enable_sharing) {
    return Status::InvalidArgument(
        "transactional serving (WorkloadOptions.txn) cannot be combined "
        "with cross-query sharing: one producer stream cannot serve "
        "tenants pinned to different snapshot versions");
  }
  if (options.workload.enable_sharing) {
    return Status::InvalidArgument(
        "cross-query sharing is not available under the serving layer");
  }
  // Same pattern for shard knobs: the shards+txn combination is invalid
  // in itself (sharded MVCC is unimplemented), and must say so at this
  // entry point too rather than hiding behind the generic shard
  // rejection below.
  if (options.workload.shards != nullptr && options.workload.txn != nullptr) {
    return Status::InvalidArgument(
        "sharded serving (WorkloadOptions.shards) cannot be combined with "
        "transactions (WorkloadOptions.txn): commit ordering across "
        "shard-local version chains is not implemented");
  }
  if (options.workload.shards != nullptr) {
    return Status::InvalidArgument(
        "serving a sharded store is not supported yet: the admission "
        "front-end steps one WorkloadExecutor over one database; run "
        "sharded workloads through ShardedWorkloadExecutor directly");
  }
  return ValidateWorkloadOptions(options.workload);
}

Server::Server(Database* db, const ImportedDocument& doc,
               const ServeOptions& options)
    : db_(db), options_(options), executor_(db, doc, options.workload) {
  NAVPATH_CHECK(db != nullptr);
}

Status Server::Submit(std::size_t tenant, const std::string& query,
                      const PlanOptions& plan, SimTime arrival,
                      SimTime deadline) {
  if (tenant >= options_.tenants.size()) {
    return Status::InvalidArgument("unknown tenant index");
  }
  if (!subs_.empty() && arrival < subs_.back().arrival) {
    return Status::InvalidArgument(
        "arrivals must be nondecreasing in Submit() order");
  }
  if (deadline != 0 && deadline <= arrival) {
    return Status::InvalidArgument(
        "deadline in the past: at or before the arrival");
  }
  NAVPATH_ASSIGN_OR_RETURN(PathQuery parsed, ParseQuery(query, db_->tags()));
  Submission sub;
  sub.tenant = tenant;
  sub.query = std::move(parsed);
  sub.plan = plan;
  sub.arrival = arrival;
  sub.deadline = deadline;
  if (sub.deadline == 0 && options_.tenants[tenant].deadline_slack > 0) {
    sub.deadline = arrival + options_.tenants[tenant].deadline_slack;
  }
  subs_.push_back(std::move(sub));
  return Status::OK();
}

Status Server::SubmitWrite(std::size_t tenant, std::vector<WriteOp> ops,
                           SimTime arrival) {
  if (tenant >= options_.tenants.size()) {
    return Status::InvalidArgument("unknown tenant index");
  }
  if (options_.workload.txn == nullptr) {
    return Status::InvalidArgument(
        "write submissions require WorkloadOptions.txn");
  }
  if (ops.empty()) {
    return Status::InvalidArgument("write transaction without operations");
  }
  if (!subs_.empty() && arrival < subs_.back().arrival) {
    return Status::InvalidArgument(
        "arrivals must be nondecreasing in Submit() order");
  }
  Submission sub;
  sub.tenant = tenant;
  sub.arrival = arrival;
  sub.is_write = true;
  sub.write_ops = std::move(ops);
  subs_.push_back(std::move(sub));
  return Status::OK();
}

Status Server::ProcessArrivals() {
  const SimTime now = db_->clock()->now();
  while (next_submit_ < subs_.size() &&
         subs_[next_submit_].arrival <= now) {
    const std::size_t sub = next_submit_++;
    const Submission& s = subs_[sub];
    const TenantSpec& spec = options_.tenants[s.tenant];
    std::deque<std::size_t>& queue = queues_[s.tenant];
    ++serve_.Counter("serve.submitted");

    // Bounded queue: overflow always sheds. In the shed state a tenant
    // additionally sheds early, at a fraction of its capacity, so a
    // flooding tenant cannot consume the whole system's headroom while
    // the controller is already rejecting work.
    const std::size_t early_cap = static_cast<std::size_t>(std::ceil(
        options_.shed_occupancy * static_cast<double>(spec.queue_capacity)));
    const bool full = queue.size() >= spec.queue_capacity;
    const bool early = state_ == OverloadState::kShed &&
                       queue.size() >= early_cap;
    if (full || early) {
      shed_status_[sub] = Status::ResourceExhausted(
          "tenant '" + spec.name + "': " +
          (full ? "admission queue full" : "overload shedding") + " (" +
          std::to_string(queue.size()) + "/" +
          std::to_string(spec.queue_capacity) + " queued, state=" +
          OverloadStateName(state_) + ", fair-share budget " +
          std::to_string(deficit_[s.tenant]) + " cost units); retry later");
      shed_.push_back(sub);
      ++serve_.Counter("serve.shed");
      ++serve_.Counter("serve.tenant." + spec.name + ".shed");
      continue;
    }
    if (s.is_write) {
      NAVPATH_RETURN_NOT_OK(executor_.AddWrite(s.write_ops, s.arrival));
    } else {
      NAVPATH_RETURN_NOT_OK(
          executor_.Add(s.query, s.plan, {}, s.arrival, s.deadline));
    }
    job_of_[sub] = executor_.size() - 1;
    sub_of_job_.push_back(sub);
    job_activated_.push_back(0);
    queue.push_back(sub);
    ++queued_total_;
  }
  return Status::OK();
}

Status Server::Activate(std::size_t sub) {
  const Submission& s = subs_[sub];
  const TenantSpec& spec = options_.tenants[s.tenant];
  std::deque<std::size_t>& queue = queues_[s.tenant];
  NAVPATH_CHECK(!queue.empty() && queue.front() == sub);
  const std::size_t job = job_of_[sub];

  // Overload degradation: while the controller is under pressure, every
  // activation is re-planned onto the cost model's cheaper tier (reduced
  // elevator window or Simple-method chain). Priced, not guessed: the
  // tier helper reports the latency traded for the freed footprint.
  // Writes are exempt — they have no plan tier, and dropping committed
  // work is not an overload response. This is the only RetierJob call
  // site, so the guard (backed by RetierJob's own writer rejection) is
  // the invariant that overload control never re-plans a write
  // transaction — including one mid-retry after an optimistic abort,
  // which stays activated and never re-enters this path.
  if (!s.is_write && state_ != OverloadState::kNormal &&
      options_.workload.stats != nullptr) {
    const DegradedTier tier = ChooseDegradedTier(
        *options_.workload.stats, s.query, s.plan,
        db_->options().disk_model, db_->costs(),
        options_.workload.summary ? db_->summary() : nullptr);
    if (tier.viable) {
      NAVPATH_RETURN_NOT_OK(executor_.RetierJob(job, tier.plan));
      ++serve_.Counter("serve.degraded");
      ++serve_.Counter("serve.tenant." + spec.name + ".degraded");
    }
  }

  const std::size_t active_before = executor_.active_count();
  NAVPATH_RETURN_NOT_OK(executor_.ActivateJob(job));
  job_activated_[job] = 1;
  queue.pop_front();
  --queued_total_;
  admission_order_.push_back(sub);
  ++serve_.Counter("serve.admitted");
  serve_.GetHistogram("serve.queue_wait")
      .Record(static_cast<std::uint64_t>(db_->clock()->now() - s.arrival));
  if (executor_.active_count() == active_before) {
    // The plan failed to open: the job finished instantly with its error
    // (per-query isolation) and will never pass through StepOnce.
    OnJobFinished(job);
  }
  return Status::OK();
}

Status Server::AdmitFifo() {
  // The executor's own admission policy, externalized: strict Add-order
  // FIFO with head-of-line blocking. Byte-identical to Run()'s admit(),
  // which is what makes an underloaded serving layer transparent.
  for (;;) {
    while (next_fifo_ < executor_.size() && job_activated_[next_fifo_]) {
      ++next_fifo_;
    }
    if (next_fifo_ >= executor_.size()) break;
    if (!executor_.CanAdmit(next_fifo_)) break;
    NAVPATH_RETURN_NOT_OK(Activate(sub_of_job_[next_fifo_]));
  }
  return Status::OK();
}

Status Server::AdmitDrr() {
  // Deficit round-robin on estimated cost: each pass grants every tenant
  // with admissible work quantum x weight cost units; a tenant admits
  // queue heads while its deficit covers them. Weights therefore share
  // *work*, not query counts — a weight-2 tenant gets twice the estimated
  // cost through per round. The pass loop ends when a full pass admits
  // nothing (budget exhausted or heads blocked by CanAdmit) — except
  // while the executor is idle, when it must first admit something.
  double quantum = options_.drr_quantum;
  if (quantum <= 0.0) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const std::deque<std::size_t>& queue : queues_) {
      if (queue.empty()) continue;
      sum += std::max(1.0, executor_.EstimatedCost(job_of_[queue.front()]));
      ++n;
    }
    quantum = n == 0 ? 1.0 : sum / static_cast<double>(n);
  }
  bool admitted_any = false;
  for (;;) {
    bool progress = false;
    bool admissible_head = false;
    for (std::size_t t = 0; t < queues_.size(); ++t) {
      std::deque<std::size_t>& queue = queues_[t];
      if (queue.empty()) {
        deficit_[t] = 0.0;  // no banking while idle
        continue;
      }
      if (!executor_.CanAdmit(job_of_[queue.front()])) continue;
      admissible_head = true;
      deficit_[t] += quantum * options_.tenants[t].weight;
      while (!queue.empty()) {
        const std::size_t job = job_of_[queue.front()];
        if (!executor_.CanAdmit(job)) break;
        if (deficit_[t] < std::max(1.0, executor_.EstimatedCost(job))) {
          break;
        }
        NAVPATH_RETURN_NOT_OK(Activate(queue.front()));
        // Charge the work actually admitted, not the requested tier:
        // Activate may have re-tiered the job onto a cheaper plan, and
        // fair share is shares of admitted work.
        deficit_[t] -= std::max(1.0, executor_.EstimatedCost(job));
        progress = true;
        admitted_any = true;
      }
      if (queue.empty()) deficit_[t] = 0.0;
    }
    if (progress) continue;
    // Progress guarantee: with an idle executor no completion will ever
    // re-trigger admission, so ending on a pass that only banked deficit
    // (small quantum or sub-unit weights) would strand the queued work —
    // and the serving loop behind it. Jump straight to the pass on which
    // the first head becomes covered: every admissible tenant banks the
    // same number of rounds, so the accounting is exactly the pass loop's.
    if (!admitted_any && executor_.active_count() == 0 && admissible_head) {
      double passes = -1.0;
      for (std::size_t t = 0; t < queues_.size(); ++t) {
        const std::deque<std::size_t>& queue = queues_[t];
        if (queue.empty()) continue;
        const std::size_t job = job_of_[queue.front()];
        if (!executor_.CanAdmit(job)) continue;
        // A no-progress pass already topped this tenant up, so the head
        // cost strictly exceeds the banked deficit. The pass on which the
        // head crosses accrues in-pass, hence the -1: the jump banks only
        // the rounds before it.
        const double need =
            std::max(1.0, executor_.EstimatedCost(job)) - deficit_[t];
        const double rounds = std::max(
            0.0,
            std::ceil(need / (quantum * options_.tenants[t].weight)) - 1.0);
        if (passes < 0.0 || rounds < passes) passes = rounds;
      }
      for (std::size_t t = 0; t < queues_.size(); ++t) {
        const std::deque<std::size_t>& queue = queues_[t];
        if (queue.empty()) continue;
        if (!executor_.CanAdmit(job_of_[queue.front()])) continue;
        deficit_[t] += passes * quantum * options_.tenants[t].weight;
      }
      continue;
    }
    break;
  }
  return Status::OK();
}

Status Server::TryAdmit() {
  return state_ == OverloadState::kNormal ? AdmitFifo() : AdmitDrr();
}

void Server::UpdateController() {
  const bool buffer_hot =
      static_cast<double>(executor_.footprint_used()) >=
      kBufferHotFraction * static_cast<double>(executor_.footprint_budget());
  const bool slo_breach =
      options_.turnaround_slo > 0 &&
      turnaround_ewma_ > static_cast<double>(options_.turnaround_slo);

  // Escalation is immediate: queue depth alone forces shed; degrade also
  // triggers on a breached turnaround SLO or a hot buffer pool once a
  // backlog exists (either signal with an empty queue is just the active
  // set working, not overload).
  OverloadState target = state_;
  if (queued_total_ >= options_.shed_queue_depth) {
    target = OverloadState::kShed;
  } else if (queued_total_ >= options_.degrade_queue_depth ||
             (slo_breach && queued_total_ >= 2) ||
             (buffer_hot &&
              queued_total_ * 2 >= options_.degrade_queue_depth)) {
    target = OverloadState::kDegrade;
  }
  if (static_cast<int>(target) > static_cast<int>(state_)) {
    if (target == OverloadState::kShed) {
      ++serve_.Counter("serve.state.shed_entered");
    } else {
      ++serve_.Counter("serve.state.degrade_entered");
    }
    state_ = target;
    healthy_streak_ = 0;
    return;
  }

  // Recovery steps down ONE state per hysteresis window: shed drains to
  // degrade, degrade to normal, each requiring recover_hold consecutive
  // healthy evaluations. Any pressure resets the streak.
  if (state_ == OverloadState::kNormal) return;
  const bool healthy =
      queued_total_ <= options_.recover_below && !buffer_hot &&
      (options_.turnaround_slo == 0 ||
       turnaround_ewma_ < kSloRecoverFraction *
                              static_cast<double>(options_.turnaround_slo));
  if (!healthy) {
    healthy_streak_ = 0;
    return;
  }
  if (++healthy_streak_ >= options_.recover_hold) {
    state_ = state_ == OverloadState::kShed ? OverloadState::kDegrade
                                            : OverloadState::kNormal;
    healthy_streak_ = 0;
    ++serve_.Counter("serve.state.recovered");
  }
}

void Server::OnJobFinished(std::size_t job) {
  const std::size_t sub = sub_of_job_[job];
  const TenantSpec& spec = options_.tenants[subs_[sub].tenant];
  const WorkloadQueryResult& result = executor_.JobResult(job);
  const SimTime turnaround = result.finished_at - result.arrival;
  // First completion seeds the EWMA; blending from zero would read as a
  // phantom period of instant service.
  if (serve_.Counter("serve.completed") == 0) {
    turnaround_ewma_ = static_cast<double>(turnaround);
  } else {
    turnaround_ewma_ =
        options_.ewma_alpha * static_cast<double>(turnaround) +
        (1.0 - options_.ewma_alpha) * turnaround_ewma_;
  }
  ++serve_.Counter("serve.completed");
  ++serve_.Counter("serve.tenant." + spec.name + ".completed");
  serve_.GetHistogram("serve.turnaround")
      .Record(static_cast<std::uint64_t>(turnaround));
  serve_.GetHistogram("serve.tenant." + spec.name + ".turnaround")
      .Record(static_cast<std::uint64_t>(turnaround));
  if (!result.status.ok()) {
    ++serve_.Counter("serve.failed");
    ++serve_.Counter("serve.tenant." + spec.name + ".failed");
  }
}

Result<ServeResult> Server::Run() {
  NAVPATH_RETURN_NOT_OK(ValidateServeOptions(options_));
  if (subs_.empty()) {
    return Status::InvalidArgument("empty submission list");
  }
  queues_.assign(options_.tenants.size(), {});
  deficit_.assign(options_.tenants.size(), 0.0);
  job_of_.assign(subs_.size(), kNoSub);
  shed_status_.assign(subs_.size(), Status::OK());
  sub_of_job_.clear();
  job_activated_.clear();
  admission_order_.clear();
  shed_.clear();
  queued_total_ = 0;
  next_submit_ = 0;
  next_fifo_ = 0;
  state_ = OverloadState::kNormal;
  turnaround_ewma_ = 0.0;
  healthy_streak_ = 0;
  serve_.Reset();

  NAVPATH_RETURN_NOT_OK(executor_.BeginStepping(subs_.size()));
  NAVPATH_RETURN_NOT_OK(ProcessArrivals());
  UpdateController();
  NAVPATH_RETURN_NOT_OK(TryAdmit());

  while (executor_.active_count() > 0 || next_submit_ < subs_.size() ||
         queued_total_ > 0) {
    if (executor_.active_count() == 0) {
      // With an empty active set every queue head is admissible, so a
      // drained system can only be waiting on the next arrival.
      NAVPATH_CHECK(queued_total_ == 0 && next_submit_ < subs_.size());
      db_->clock()->WaitUntil(subs_[next_submit_].arrival);
      NAVPATH_RETURN_NOT_OK(ProcessArrivals());
      UpdateController();
      NAVPATH_RETURN_NOT_OK(TryAdmit());
      continue;
    }
    // Open-system arrivals join mid-serve, exactly on Run()'s gate.
    if (next_submit_ < subs_.size() &&
        subs_[next_submit_].arrival != 0 &&
        subs_[next_submit_].arrival <= db_->clock()->now()) {
      NAVPATH_RETURN_NOT_OK(ProcessArrivals());
      UpdateController();
      NAVPATH_RETURN_NOT_OK(TryAdmit());
    }
    NAVPATH_ASSIGN_OR_RETURN(const std::size_t done, executor_.StepOnce());
    if (done != WorkloadExecutor::kNoJob) {
      OnJobFinished(done);
      UpdateController();
      NAVPATH_RETURN_NOT_OK(TryAdmit());
    }
  }

  NAVPATH_ASSIGN_OR_RETURN(WorkloadResult workload,
                           executor_.EndStepping());

  ServeResult result;
  result.outcomes.resize(subs_.size());
  for (std::size_t sub = 0; sub < subs_.size(); ++sub) {
    ServeOutcome& out = result.outcomes[sub];
    out.tenant = subs_[sub].tenant;
    out.arrival = subs_[sub].arrival;
    out.is_write = subs_[sub].is_write;
    if (job_of_[sub] == kNoSub) {
      out.shed = true;
      out.status = shed_status_[sub];
      continue;
    }
    const WorkloadQueryResult& qr = workload.queries[job_of_[sub]];
    // Writers must come back untiered no matter what the controller did
    // while they were queued or retrying an optimistic abort.
    NAVPATH_DCHECK(!(qr.is_write && qr.degraded));
    out.status = qr.status;
    out.degraded = qr.degraded;
    out.is_write = qr.is_write;
    out.commit_seq = qr.commit_seq;
    out.admitted_at = qr.admitted_at;
    out.finished_at = qr.finished_at;
    out.count = qr.count;
  }
  result.admission_order = std::move(admission_order_);
  result.shed = std::move(shed_);
  result.workload = std::move(workload);
  serve_.Gauge("serve.turnaround_ewma") = turnaround_ewma_;
  result.metrics = serve_.Snapshot();
  result.final_state = state_;
  subs_.clear();
  return result;
}

}  // namespace navpath
