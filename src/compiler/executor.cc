#include "compiler/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace navpath {
namespace {

/// Runs one prepared plan to exhaustion, deduplicating result nodes.
/// `stop_after` > 0 stops pulling once that many distinct results exist
/// (existence queries need just one).
Status DrainPlan(Database* db, PathPlan* plan, bool collect_nodes,
                 std::uint64_t* count, std::vector<LogicalNode>* nodes,
                 std::uint64_t stop_after = 0) {
  NAVPATH_RETURN_NOT_OK(plan->root()->Open());
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t produced = 0;
  bool stopped_early = false;
  PathInstance inst;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const bool have, plan->root()->Pull(&inst));
    if (!have) break;
    // Final duplicate elimination (required for the Simple method; a
    // cheap re-check for XAssembly plans, whose R already deduplicates).
    db->clock()->ChargeCpu(db->costs().set_op);
    if (!seen.insert(inst.right.node.Pack()).second) continue;
    ++*count;
    ++produced;
    if (collect_nodes) {
      nodes->push_back(LogicalNode{inst.right.node, 0, inst.right.order});
    }
    if (stop_after != 0 && produced >= stop_after) {
      stopped_early = true;
      break;
    }
  }
  NAVPATH_RETURN_NOT_OK(plan->root()->Close());
  // An early stop (existence queries) abandons the plan's speculative
  // prefetches mid-flight; drain them so the database stays reusable and
  // the device-busy tail is accounted for (same contract as
  // WorkloadExecutor::CollectResult).
  if (stopped_early) {
    while (db->buffer()->HasPrefetchInFlight()) {
      (void)db->buffer()->WaitAnyPrefetch();
    }
  }
  return Status::OK();
}

/// String value of a node (element text or attribute value). `id` is
/// logical; `translator` (nullable) supplies the MVCC page mapping.
Result<std::string> NodeStringValue(Database* db, NodeID id,
                                    const PageTranslator* translator) {
  NAVPATH_ASSIGN_OR_RETURN(
      PageGuard guard,
      db->buffer()->Fix(TranslateToPhysical(translator, id.page)));
  const ClusterView view = db->MakeView(guard, id.page);
  return std::string(view.TextOf(id.slot));
}

/// Existence (or string-equality) check of a relative path from `context`,
/// navigating the paged store directly. Nested predicates recurse.
Result<bool> StorePredicateHolds(Database* db, NodeID context,
                                 const Predicate& pred,
                                 const PageTranslator* translator);

Result<bool> StepSatisfiesPredicates(Database* db, const LogicalNode& node,
                                     const LocationStep& step,
                                     const PageTranslator* translator) {
  for (const Predicate& pred : step.predicates) {
    NAVPATH_ASSIGN_OR_RETURN(
        const bool holds,
        StorePredicateHolds(db, node.id, pred, translator));
    if (!holds) return false;
  }
  return true;
}

Result<bool> StorePredicateHolds(Database* db, NodeID context,
                                 const Predicate& pred,
                                 const PageTranslator* translator) {
  std::vector<NodeID> frontier{context};
  const LocationPath& path = *pred.path;
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const LocationStep& step = path.steps[i];
    const bool last = i + 1 == path.steps.size();
    std::vector<NodeID> next;
    std::unordered_set<std::uint64_t> seen;
    CrossClusterCursor cursor(db, translator);
    for (const NodeID ctx : frontier) {
      NAVPATH_RETURN_NOT_OK(cursor.Start(step.axis, ctx));
      LogicalNode node;
      for (;;) {
        NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&node));
        if (!more) break;
        db->clock()->ChargeCpu(db->costs().node_test);
        if (!step.test.Matches(node.tag)) continue;
        if (!seen.insert(node.id.Pack()).second) continue;
        NAVPATH_ASSIGN_OR_RETURN(
            const bool keep,
            StepSatisfiesPredicates(db, node, step, translator));
        if (!keep) continue;
        if (last && !pred.has_value) return true;  // existence: early out
        if (last && pred.has_value) {
          NAVPATH_ASSIGN_OR_RETURN(
              const std::string value,
              NodeStringValue(db, node.id, translator));
          if (value == pred.value) return true;
          continue;
        }
        next.push_back(node.id);
      }
    }
    if (last) return false;
    if (next.empty()) return false;
    frontier = std::move(next);
  }
  // Zero-step relative path: the context itself exists.
  return !pred.has_value;
}

/// Evaluates a predicated path by splitting it into predicate-free
/// segments, each run through the chosen physical plan, with predicate
/// filtering between segments (the "more expressive algebra" around the
/// paper's operators).
Result<std::vector<LogicalNode>> EvaluateWithPredicates(
    Database* db, const ImportedDocument& doc, const LocationPath& path,
    std::vector<LogicalNode> contexts, const PlanOptions& plan_options) {
  if (path.absolute) {
    contexts.assign(1, LogicalNode{doc.root, 0, doc.root_order});
  }
  std::size_t begin = 0;
  bool first_segment = true;
  while (begin < path.steps.size()) {
    // Segment = maximal run ending at a predicated step (or path end).
    std::size_t end = begin;
    while (end < path.steps.size() &&
           path.steps[end].predicates.empty()) {
      ++end;
    }
    const bool segment_has_predicates = end < path.steps.size();
    if (segment_has_predicates) ++end;  // include the predicated step

    LocationPath segment;
    segment.absolute = first_segment && path.absolute;
    for (std::size_t i = begin; i < end; ++i) {
      LocationStep step = path.steps[i];
      step.predicates.clear();
      segment.steps.push_back(std::move(step));
    }
    NAVPATH_ASSIGN_OR_RETURN(
        PathPlan plan,
        BuildPlan(db, doc, segment, contexts, plan_options));
    NAVPATH_RETURN_NOT_OK(plan.root()->Open());
    std::vector<LogicalNode> nodes;
    std::unordered_set<std::uint64_t> seen;
    PathInstance inst;
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, plan.root()->Pull(&inst));
      if (!more) break;
      db->clock()->ChargeCpu(db->costs().set_op);
      if (!seen.insert(inst.right.node.Pack()).second) continue;
      nodes.push_back(LogicalNode{inst.right.node, 0, inst.right.order});
    }
    NAVPATH_RETURN_NOT_OK(plan.root()->Close());

    if (segment_has_predicates) {
      const LocationStep& predicated = path.steps[end - 1];
      std::vector<LogicalNode> kept;
      for (const LogicalNode& node : nodes) {
        NAVPATH_ASSIGN_OR_RETURN(
            const bool keep,
            StepSatisfiesPredicates(db, node, predicated,
                                    plan_options.translator));
        if (keep) kept.push_back(node);
      }
      nodes = std::move(kept);
    }
    contexts = std::move(nodes);
    begin = end;
    first_segment = false;
    if (contexts.empty()) break;
  }
  return contexts;
}

}  // namespace

PathExplain BuildPathExplain(Database* db, const LocationPath& path,
                             const PathPlan& plan,
                             const PlanOptions& plan_options,
                             const DocumentStats* stats,
                             std::uint64_t result_count, SimTime total_time,
                             SimTime io_wait_time, const Metrics& window,
                             const PathSummary* summary) {
  PathExplain explain;
  explain.query = path.ToString();
  explain.plan_kind = PlanKindName(plan_options.kind);
  explain.result_count = result_count;
  explain.total_time = total_time;
  explain.io_wait_time = io_wait_time;
  explain.disk_reads = window.disk_reads;
  explain.buffer_hits = window.buffer_hits;
  explain.buffer_misses = window.buffer_misses;
  explain.fallback_activated = window.fallback_activations > 0;
  explain.summary_pruned = plan.summary_pruned();

  std::vector<double> est_steps;
  bool est_exact = false;
  if (stats != nullptr) {
    const PathEstimate estimate =
        EstimatePathDetailed(*stats, path, &est_steps, summary);
    est_exact = estimate.summary_exact;
    explain.estimated_clusters_touched = estimate.clusters_touched;
    const PlanCosts costs =
        EstimatePlanCosts(*stats, path, db->options().disk_model,
                          db->options().cpu_costs, summary);
    switch (plan_options.kind) {
      case PlanKind::kSimple:
        explain.estimated_cost = costs.simple;
        break;
      case PlanKind::kXSchedule:
        explain.estimated_cost = costs.xschedule;
        break;
      case PlanKind::kXScan:
        explain.estimated_cost = costs.xscan;
        break;
    }
  }

  const PlanProfiler* profiler = plan.profiler();
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    ExplainStep step;
    step.description = path.steps[i].ToString();
    if (i < est_steps.size()) step.estimated_rows = est_steps[i];
    if (stats != nullptr) {
      step.estimate_source = est_exact ? "summary-exact" : "stats-estimate";
    }
    if (profiler != nullptr && i + 1 < profiler->step_rows.size()) {
      step.actual_rows = profiler->step_rows[i + 1];
    }
    explain.steps.push_back(std::move(step));
  }
  if (profiler != nullptr) {
    explain.actual_clusters_entered = profiler->clusters_entered;
    for (const OperatorProfile& op : profiler->operators()) {
      ExplainOperator out;
      out.name = op.name;
      out.step = op.step;
      out.pulls = op.pulls;
      out.rows = op.rows;
      out.total_time = op.total_time;
      out.self_time = op.self_time;
      out.total_io_wait = op.total_io_wait;
      out.self_io_wait = op.self_io_wait;
      explain.operators.push_back(std::move(out));
    }
  }
  return explain;
}

namespace {

Result<QueryRunResult> ExecuteQueryImpl(Database* db,
                                        const ImportedDocument& doc,
                                        const PathQuery& query,
                                        const ExecuteOptions& options,
                                        bool allow_summary_answer) {
  if (query.paths.empty()) {
    return Status::InvalidArgument("query without paths");
  }
  const bool collect =
      options.collect_nodes && query.mode == PathQuery::Mode::kNodes;
  if (options.cold_start) {
    NAVPATH_RETURN_NOT_OK(db->ResetMeasurement());
  }

  // Everything below reports deltas over this window, so a warm run on a
  // shared Database measures only itself. After a cold start the window
  // base is zero and the deltas equal the absolute readings.
  const Metrics window_start = db->metrics()->Snapshot();
  const SimTime window_t0 = db->clock()->now();
  const SimTime window_cpu0 = db->clock()->cpu_time();

  PlanOptions plan_options = options.plan;
  if (options.explain) plan_options.profile = true;

  const PathSummary* summary =
      plan_options.use_summary
          ? (plan_options.translator != nullptr
                 ? plan_options.snapshot_summary
                 : db->summary())
          : nullptr;
  const bool exists_mode = query.mode == PathQuery::Mode::kExists;

  QueryRunResult result;
  if (options.explain) result.explain = std::make_shared<QueryExplain>();
  for (const LocationPath& path : query.paths) {
    // exists(a)+exists(b) is the logical OR: one hit settles the query.
    if (exists_mode && result.count > 0) break;
    if (path.HasPredicates()) {
      NAVPATH_ASSIGN_OR_RETURN(
          const std::vector<LogicalNode> nodes,
          EvaluateWithPredicates(db, doc, path, options.contexts,
                                 plan_options));
      if (exists_mode) {
        if (!nodes.empty()) result.count = 1;
      } else {
        result.count += nodes.size();
      }
      if (collect) {
        result.nodes.insert(result.nodes.end(), nodes.begin(), nodes.end());
      }
      continue;
    }
    // Navigation-free fast path: a predicate-free count()/exists() is
    // answered from the path summary alone — exact, zero cluster accesses.
    if (allow_summary_answer && summary != nullptr &&
        query.mode != PathQuery::Mode::kNodes &&
        PathSummary::Supports(path)) {
      const SummaryMatch match = summary->Match(path);
      if (match.applicable) {
        const SimTime fast_t0 = db->clock()->now();
        db->clock()->ChargeCpu(
            static_cast<SimTime>(match.nodes_examined) *
            db->costs().node_test);
        if (exists_mode) {
          if (match.result_count > 0) result.count = 1;
        } else {
          result.count += match.result_count;
        }
        if (result.explain != nullptr) {
          PathExplain explain;
          explain.query = path.ToString();
          explain.plan_kind = "SummaryIndex";
          explain.result_count = exists_mode
                                     ? (match.result_count > 0 ? 1 : 0)
                                     : match.result_count;
          explain.total_time = db->clock()->now() - fast_t0;
          for (std::size_t i = 0; i < path.steps.size(); ++i) {
            ExplainStep step;
            step.description = path.steps[i].ToString();
            const std::uint64_t selected =
                i < match.steps.size() ? match.steps[i].selected : 0;
            step.estimated_rows = static_cast<double>(selected);
            step.actual_rows = selected;
            step.estimate_source = "summary-exact";
            explain.steps.push_back(std::move(step));
          }
          result.explain->paths.push_back(std::move(explain));
        }
        continue;
      }
    }
    const Metrics path_start = db->metrics()->Snapshot();
    const SimTime path_t0 = db->clock()->now();
    const SimTime path_io0 = db->clock()->io_wait_time();
    const std::uint64_t count_before = result.count;
    NAVPATH_ASSIGN_OR_RETURN(
        PathPlan plan,
        BuildPlan(db, doc, path, options.contexts, plan_options));
    NAVPATH_RETURN_NOT_OK(
        DrainPlan(db, &plan, collect, &result.count, &result.nodes,
                  exists_mode ? 1 : 0));
    if (result.explain != nullptr) {
      result.explain->paths.push_back(BuildPathExplain(
          db, path, plan, plan_options, options.stats,
          result.count - count_before, db->clock()->now() - path_t0,
          db->clock()->io_wait_time() - path_io0,
          db->metrics()->Delta(path_start), summary));
    }
  }

  if (collect && result.nodes.size() > 1) {
    // Document-order sort (Sec. 5.5); order keys travel with instances so
    // no I/O is needed.
    const double n = static_cast<double>(result.nodes.size());
    db->clock()->ChargeCpu(static_cast<SimTime>(
        n * std::max(1.0, std::log2(n)) *
        static_cast<double>(db->costs().sort_op)));
    std::sort(result.nodes.begin(), result.nodes.end(),
              [](const LogicalNode& a, const LogicalNode& b) {
                return a.order < b.order;
              });
  }

  result.total_time = db->clock()->now() - window_t0;
  result.cpu_time = db->clock()->cpu_time() - window_cpu0;
  result.metrics = db->metrics()->Delta(window_start);
  return result;
}

}  // namespace

Result<QueryRunResult> ExecutePath(Database* db, const ImportedDocument& doc,
                                   const LocationPath& path,
                                   const ExecuteOptions& options) {
  PathQuery query;
  query.mode = options.collect_nodes ? PathQuery::Mode::kNodes
                                     : PathQuery::Mode::kCount;
  query.paths.push_back(path);
  // ExecutePath drives the caller's chosen physical plan even for counts:
  // its contract is "run this path", so the navigation-free summary answer
  // would bypass exactly what plan-level callers measure. Full queries go
  // through ExecuteQuery, where count()/exists() may skip navigation.
  return ExecuteQueryImpl(db, doc, query, options,
                          /*allow_summary_answer=*/false);
}

Result<QueryRunResult> ExecuteQuery(Database* db, const ImportedDocument& doc,
                                    const PathQuery& query,
                                    const ExecuteOptions& options) {
  return ExecuteQueryImpl(db, doc, query, options,
                          /*allow_summary_answer=*/true);
}

}  // namespace navpath
