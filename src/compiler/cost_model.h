// Cost-based choice of the I/O-performing operator.
//
// The paper leaves this to future work ("Further research is needed to
// create a cost model to support the choice of the I/O-performing
// operator", Sec. 7). This module implements it: document statistics
// gathered at import time estimate, per location path, how many nodes a
// plan examines and how many clusters it must visit; plugging those into
// the disk and CPU models yields estimated total costs per plan kind, and
// the planner picks the cheapest. The Q7/Q15 selectivity contrast in the
// evaluation is exactly the crossover this model captures.
#ifndef NAVPATH_COMPILER_COST_MODEL_H_
#define NAVPATH_COMPILER_COST_MODEL_H_

#include <unordered_map>
#include <vector>

#include "compiler/plan.h"
#include "store/path_summary.h"
#include "xml/dom.h"
#include "xpath/location_path.h"

namespace navpath {

/// Per-document statistics for cardinality estimation. Built once from
/// the DOM at import time; O(nodes) construction.
class DocumentStats {
 public:
  /// Gathers statistics from `tree`. `borders_per_node` is the fraction
  /// of logical edges that became inter-cluster edges at import (from
  /// ImportedDocument::border_pairs / core_records).
  static DocumentStats Build(const DomTree& tree, const ImportedDocument& doc,
                             std::size_t page_size);

  std::uint64_t node_count() const { return node_count_; }
  std::uint64_t page_count() const { return page_count_; }
  double nodes_per_page() const {
    return page_count_ == 0 ? 1.0
                            : static_cast<double>(node_count_) /
                                  static_cast<double>(page_count_);
  }
  /// Probability that an edge traversal crosses clusters.
  double crossing_probability() const { return crossing_probability_; }
  TagId root_tag() const { return root_tag_; }
  std::uint64_t border_records() const { return border_records_; }

  std::uint64_t CountOfTag(TagId tag) const;
  /// Total attributes named `attr` on elements with tag `parent`.
  std::uint64_t AttributeCount(TagId parent, TagId attr) const;
  std::uint64_t AttributeCountAny(TagId parent) const;
  /// Total children with tag `child` under elements with tag `parent`.
  std::uint64_t ChildCount(TagId parent, TagId child) const;
  std::uint64_t ChildCountAny(TagId parent) const;
  /// Total proper descendants with tag `desc` under elements of `parent`.
  std::uint64_t DescendantCount(TagId parent, TagId desc) const;
  std::uint64_t DescendantCountAny(TagId parent) const;

 private:
  using TagPairCounts =
      std::unordered_map<std::uint64_t, std::uint64_t>;  // (a<<32|b) -> n

  static std::uint64_t PairKey(TagId a, TagId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::uint64_t node_count_ = 0;
  std::uint64_t page_count_ = 0;
  std::uint64_t border_records_ = 0;
  double crossing_probability_ = 0.0;
  TagId root_tag_ = 0;
  std::unordered_map<TagId, std::uint64_t> tag_counts_;
  std::unordered_map<TagId, std::uint64_t> child_any_;
  std::unordered_map<TagId, std::uint64_t> desc_any_;
  TagPairCounts child_pair_;
  TagPairCounts desc_pair_;
  TagPairCounts attr_pair_;
  std::unordered_map<TagId, std::uint64_t> attr_any_;
};

/// Estimated evaluation profile of one location path.
struct PathEstimate {
  double result_cardinality = 0;  // nodes the path selects
  double nodes_examined = 0;      // navigation work across all steps
  double crossings = 0;           // expected inter-cluster traversals
  double clusters_touched = 0;    // distinct clusters a navigational plan
                                  // must load
  /// Pages an XScan-style sweep must visit: the whole document under
  /// DocumentStats, the touched-extent union under a summary.
  double scan_pages = 0;
  /// True when the path-summary synopsis supplied exact cardinalities
  /// (result, per-step and nodes_examined are then exact counts, not
  /// independence-assumption estimates; crossings stay estimated).
  bool summary_exact = false;
};

/// Estimates `path` against the statistics. When `summary` is non-null
/// and the path lies in the synopsis' exactness domain (absolute,
/// predicate-free, downward axes), cardinalities are exact.
PathEstimate EstimatePath(const DocumentStats& stats,
                          const LocationPath& path,
                          const PathSummary* summary = nullptr);

/// Fraction (in [0, 1]) of a path's estimated output already produced,
/// for progress-discounting remaining-cost and remaining-clusters
/// estimates mid-run. Cardinality estimates below one node are clamped
/// to one: a degenerate (sub-unit) estimate must still let produced
/// output discount the remainder, otherwise remaining cost stays frozen
/// at its a-priori value and SJF ordering degenerates to tie-breaking.
double EstimatedProgress(std::uint64_t produced,
                         double estimated_cardinality);

/// As EstimatePath, additionally recording the estimated cardinality after
/// each step into `per_step` (resized to path.length(); entry i is the
/// estimate after step i+1). EXPLAIN ANALYZE pairs these with the actual
/// per-step row counts.
PathEstimate EstimatePathDetailed(const DocumentStats& stats,
                                  const LocationPath& path,
                                  std::vector<double>* per_step,
                                  const PathSummary* summary = nullptr);

/// Estimated total simulated cost of running `path` with each plan kind.
struct PlanCosts {
  double simple = 0;
  double xschedule = 0;
  double xscan = 0;

  PlanKind Best() const {
    if (xschedule <= simple && xschedule <= xscan) {
      return PlanKind::kXSchedule;
    }
    return xscan <= simple ? PlanKind::kXScan : PlanKind::kSimple;
  }
};

PlanCosts EstimatePlanCosts(const DocumentStats& stats,
                            const LocationPath& path, const DiskModel& disk,
                            const CpuCostModel& cpu,
                            const PathSummary* summary = nullptr);

/// Estimated benefit of evaluating one shared prefix for a group of
/// queries: a single XSchedule producer materializes the prefix instances
/// once, and each member extends them with its residual steps against a
/// buffer pool that keeps residual clusters resident across members.
struct SharedPrefixEstimate {
  double producer_cost = 0;       // one XSchedule evaluation of the prefix
  double suffix_cost_total = 0;   // pooled residual I/O + per-member CPU
  double private_cost_total = 0;  // sum of cheapest private plans
  double shared_cost() const { return producer_cost + suffix_cost_total; }
  bool beneficial = false;        // shared_cost() < private_cost_total
};

/// Prices sharing `prefix` across `members` (full paths; each must extend
/// `prefix`) against the cheapest private plan per member. The workload
/// executor adopts a sharing group only when `beneficial`.
SharedPrefixEstimate EstimateSharedPrefix(const DocumentStats& stats,
                                          const LocationPath& prefix,
                                          const std::vector<LocationPath>& members,
                                          const DiskModel& disk,
                                          const CpuCostModel& cpu);

/// The optimizer: picks the cheapest I/O-performing operator for `query`
/// (summing estimates over count() operands).
PlanKind ChoosePlanKind(const DocumentStats& stats, const PathQuery& query,
                        const DiskModel& disk, const CpuCostModel& cpu,
                        const PathSummary* summary = nullptr);

/// Overload degradation tier for a serving layer: a plan for `query` with
/// a much smaller buffer/prefetch footprint than `requested`, priced by
/// the cost model so the controller knows the latency it is trading for
/// the freed resources. Candidates are a quarter-window XSchedule (the
/// elevator still reorders, over a shallower pool) and the Simple-method
/// chain (synchronous, two-page footprint); the helper returns whichever
/// prices cheaper. Only an XSchedule request has a meaningful footprint
/// to shrink — for other kinds `viable` stays false and `plan` echoes the
/// request.
struct DegradedTier {
  PlanOptions plan;           // the tier to re-plan onto
  double requested_cost = 0;  // estimated cost of the requested plan
  double degraded_cost = 0;   // estimated cost of `plan`
  bool viable = false;        // a lower-footprint tier exists
};

DegradedTier ChooseDegradedTier(const DocumentStats& stats,
                                const PathQuery& query,
                                const PlanOptions& requested,
                                const DiskModel& disk,
                                const CpuCostModel& cpu,
                                const PathSummary* summary = nullptr);

/// Expected per-transaction cost of admitting `writers` write
/// transactions optimistically (first-committer-wins, bounded retry with
/// backoff) versus serializing them (one active writer, the rest queue).
/// The workload executor's admission gate compares the two to pick a
/// writer concurrency under the observed conflict rate: optimistic wins
/// at low conflict (retries are rare, queueing is pure loss), serialized
/// wins once expected aborted work plus backoff exceeds the average
/// queue wait of (writers-1)/2 transactions.
struct WriterAdmission {
  double attempts = 1.0;        // expected commit attempts per transaction
  double optimistic_cost = 0;   // attempts * txn + retry backoff waits
  double serialized_cost = 0;   // one txn + expected queue wait
  bool prefer_optimistic = true;
};

/// Sharded fan-out pricing (src/shard): a query fanned across K shards
/// finishes when its slowest participant does — the shards' drives run in
/// parallel — and then pays a coordinator-side document-order merge over
/// the gapped order keys of the combined result.
struct ShardFanoutEstimate {
  double parallel_cost = 0;  // max over participants' sub-plan costs
  double serial_cost = 0;    // sum: what one drive would have paid
  double merge_cost = 0;     // coordinator merge of the combined result
  /// serial / (parallel + merge); 1.0 for width-1 routes, degrades
  /// toward 1/K-imbalance for skewed partitions.
  double speedup = 1.0;
  std::size_t participants = 0;
};

/// Prices fanning one query over participants whose estimated private
/// sub-plan costs are `per_shard_costs`. `result_cardinality` nodes cross
/// the coordinator merge at `merge_op_cost` each (a compare-and-emit on
/// the order key; callers pass the CPU model's set/sort op cost).
ShardFanoutEstimate EstimateShardFanout(
    const std::vector<double>& per_shard_costs, double result_cardinality,
    double merge_op_cost);

/// `conflict_probability` is the chance one optimistic attempt loses the
/// first-committer race (clamped into [0, 0.95]); `txn_cost` and
/// `retry_backoff` are in the same (simulated-time) unit; `max_retries`
/// bounds the attempt count at 1 + max_retries, after which the
/// transaction fails instead of retrying.
WriterAdmission EstimateWriterAdmission(std::size_t writers,
                                        double conflict_probability,
                                        double txn_cost,
                                        double retry_backoff,
                                        std::size_t max_retries);

}  // namespace navpath

#endif  // NAVPATH_COMPILER_COST_MODEL_H_
