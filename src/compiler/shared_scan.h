// Multi-path evaluation with a single I/O-performing operator.
//
// The paper's Sec. 7 outlook: "Our method can be easily extended to
// evaluate multiple location paths with a single I/O-performing
// operator." This module implements that extension for the scan case: one
// sequential pass over the document drives any number of location paths
// at once. Each path keeps its own XStep chain and XAssembly (R/S
// structures), all sharing the plan-wide current cluster; the driver
// feeds every path its context instances and speculative seeds per
// visited cluster and drains full instances after each cluster.
//
// A query like Q7 — three count() paths — thus pays ONE document scan
// instead of three.
#ifndef NAVPATH_COMPILER_SHARED_SCAN_H_
#define NAVPATH_COMPILER_SHARED_SCAN_H_

#include <deque>

#include "compiler/executor.h"

namespace navpath {

/// A PathOperator whose input is pushed by an external driver. Returning
/// false only means "nothing buffered right now"; the driver may push
/// more and pull again.
///
/// Contract: Open() before the first Push(). Re-opening with instances
/// still queued is refused — silently discarding them would make the
/// consumer miss input the driver already accounted for (and charged the
/// simulated clock for). A driver that genuinely wants to abandon queued
/// input drains it first.
class FeedOperator : public PathOperator {
 public:
  Status Open() override {
    if (!queue_.empty()) {
      return Status::InvalidArgument(
          "FeedOperator::Open with instances still queued; drain first");
    }
    return Status::OK();
  }
  Result<bool> Next(PathInstance* out) override {
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    return true;
  }
  Status Close() override { return Status::OK(); }

  void Push(const PathInstance& inst) { queue_.push_back(inst); }

 private:
  std::deque<PathInstance> queue_;
};

/// Per-path result breakdown of a shared scan.
struct SharedScanResult {
  QueryRunResult combined;                  // summed count, overall timing
  std::vector<std::uint64_t> path_counts;   // one entry per query path
};

struct SharedScanOptions {
  /// Reset buffer/clock/metrics before the run.
  bool cold_start = true;
  /// Memory budget for each lane's speculative structure S. Shared scan
  /// cannot honor one: fallback mode (Sec. 5.4.6) would make one lane
  /// navigate across borders while the others still speculate against
  /// the pinned cluster. Any nonzero value is rejected with
  /// InvalidArgument — use ExecuteQuery for budgeted evaluation.
  std::size_t s_budget = 0;
};

/// Evaluates all paths of `query` in one sequential scan.
Result<SharedScanResult> ExecuteQuerySharedScan(
    Database* db, const ImportedDocument& doc, const PathQuery& query,
    const SharedScanOptions& options);

/// Back-compat convenience overload (default options but cold_start).
Result<SharedScanResult> ExecuteQuerySharedScan(
    Database* db, const ImportedDocument& doc, const PathQuery& query,
    bool cold_start = true);

}  // namespace navpath

#endif  // NAVPATH_COMPILER_SHARED_SCAN_H_
