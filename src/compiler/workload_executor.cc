#include "compiler/workload_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "algebra/unnest_map.h"
#include "storage/disk.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

/// kHybrid classification window: the yield/block ratio is evaluated
/// over at most this many recent pulls of a job, so classification
/// follows phase changes (I/O wave -> resident consumption) instead of
/// averaging over the job's whole life.
constexpr std::uint64_t kClassifyWindow = 16;
/// Minimum pulls in the current window before the ratio is trusted;
/// younger windows classify on the cost model's remaining-clusters
/// estimate alone.
constexpr std::uint64_t kClassifyMinPulls = 4;

/// kHybrid scheduling-window breadth while the cheap half of the
/// workload drains: only the kHybridBreadth cheapest-remaining jobs may
/// run. Breadth 1 deliberately serializes the cheap jobs — they overlap
/// heavily in the pages they touch, so running them back-to-back turns
/// the second job's reads into buffer hits, which beats splitting the
/// elevator between them (measured: two-wide costs ~2x the turnaround of
/// back-to-back on the XMark mix). Once half the jobs have completed the
/// window opens to the whole active set and the remaining expensive,
/// I/O-bound jobs run round-robin so their overlapping scans merge in
/// flight and the elevator pool stays deep.
constexpr std::size_t kHybridBreadth = 1;

/// Buffer pages a plan's prefetch/speculative state may occupy while the
/// query is active: XSchedule keeps its in-flight reads (bounded by
/// prefetch_inflight_cap once the workload sets one, queue_k-ish
/// otherwise) plus the pinned current cluster; XScan and Simple touch one
/// page at a time.
std::size_t EstimateFootprint(const PlanOptions& plan) {
  switch (plan.kind) {
    case PlanKind::kXSchedule:
      return (plan.prefetch_inflight_cap > 0
                  ? std::min(plan.queue_k, plan.prefetch_inflight_cap)
                  : plan.queue_k) +
             2;
    case PlanKind::kXScan:
    case PlanKind::kSimple:
      return 2;
  }
  return 2;
}

/// Admission footprint of a sharing-group consumer: FanOutReader +
/// UnnestMap chains navigate one page at a time, like kSimple plans.
constexpr std::size_t kConsumerFootprint = 2;

/// Approximate in-memory size of one buffered PathInstance, translating
/// the page-denominated stream budget into a FanOut instance budget.
constexpr std::size_t kInstanceBytes = 64;

/// Deadline-urgency headroom: a job is urgent once its remaining slack no
/// longer covers this multiple of its estimated remaining cost. Two keeps
/// a margin for estimate error and queueing ahead of the deadline instead
/// of reacting only when it is already lost.
constexpr double kDeadlineHeadroom = 2.0;

/// Admission footprint of a write transaction: copy-on-write touches one
/// base page and one shadow page at a time (both pinned across the copy),
/// plus slack for the chain page a gapped insert may redistribute into.
constexpr std::size_t kWriterFootprint = 4;

}  // namespace

Status ValidateWorkloadOptions(const WorkloadOptions& options) {
  // NaN fails the > comparison, so it lands here too.
  if (!(options.buffer_budget_fraction > 0.0) ||
      options.buffer_budget_fraction > 1.0) {
    return Status::InvalidArgument(
        "buffer_budget_fraction must be in (0, 1]");
  }
  if (options.enable_sharing && options.share_buffer_pages == 0) {
    return Status::InvalidArgument(
        "sharing requires a nonzero share_buffer_pages stream budget");
  }
  if (options.txn != nullptr && options.enable_sharing) {
    return Status::InvalidArgument(
        "cross-query sharing streams one producer's instances to all "
        "members and cannot serve snapshots pinned to different versions");
  }
  if (options.max_writers == 0) {
    return Status::InvalidArgument(
        "max_writers must be at least 1 (0 would never admit a writer)");
  }
  if (options.shards != nullptr && options.txn != nullptr) {
    return Status::InvalidArgument(
        "sharded execution (WorkloadOptions.shards) cannot be combined "
        "with transactions (WorkloadOptions.txn): commit ordering and "
        "snapshot visibility across shard-local version chains are not "
        "implemented — run transactional workloads unsharded");
  }
  if (options.shards != nullptr && options.enable_sharing) {
    return Status::InvalidArgument(
        "cross-query sharing plans prefix groups whole-workload against "
        "one store and cannot span shard-partitioned sub-workloads");
  }
  if (options.writer_batch == 0) {
    return Status::InvalidArgument(
        "writer_batch must be at least 1 (a pull must make progress)");
  }
  return Status::OK();
}

const char* WorkloadPolicyName(WorkloadPolicy policy) {
  switch (policy) {
    case WorkloadPolicy::kRoundRobin:
      return "round-robin";
    case WorkloadPolicy::kFewestPendingIos:
      return "fewest-pending-ios";
    case WorkloadPolicy::kShortestRemainingCost:
      return "shortest-remaining-cost";
    case WorkloadPolicy::kHybrid:
      return "hybrid";
  }
  NAVPATH_UNREACHABLE();
}

WorkloadExecutor::WorkloadExecutor(Database* db, const ImportedDocument& doc,
                                   const WorkloadOptions& options)
    : db_(db), doc_(&doc), options_(options) {
  NAVPATH_CHECK(db != nullptr);
}

Status WorkloadExecutor::Add(const PathQuery& query, const PlanOptions& plan,
                             std::vector<LogicalNode> contexts,
                             SimTime arrival, SimTime deadline) {
  if (query.paths.empty()) {
    return Status::InvalidArgument("query without paths");
  }
  for (const LocationPath& path : query.paths) {
    if (path.HasPredicates()) {
      return Status::InvalidArgument(
          "workload executor supports predicate-free paths only");
    }
    if (!path.absolute && contexts.empty()) {
      return Status::InvalidArgument("relative path without context nodes");
    }
  }
  if (!jobs_.empty() && arrival < jobs_.back().arrival) {
    return Status::InvalidArgument(
        "arrivals must be nondecreasing in Add() order");
  }
  if (deadline != 0 && deadline <= arrival) {
    return Status::InvalidArgument("deadline not after arrival");
  }
  Job job;
  job.query = query;
  job.plan_options = plan;
  if (options_.explain) job.plan_options.profile = true;
  // Under external admission the per-query prefetch cap applies from the
  // moment the job exists (Run() instead applies it once, in BeginRun,
  // when it knows the workload runs concurrently).
  if (stepping_ && options_.prefetch_inflight_cap > 0 &&
      job.plan_options.kind == PlanKind::kXSchedule) {
    job.plan_options.prefetch_inflight_cap = options_.prefetch_inflight_cap;
  }
  job.contexts = std::move(contexts);
  job.arrival = arrival;
  job.deadline = deadline;
  job.result.arrival = arrival;
  // Owner 0 is reserved for standalone execution, so merges are only ever
  // attributed to genuine cross-query interest.
  job.owner_id = static_cast<std::uint32_t>(jobs_.size()) + 1;
  ComputeEstimates(&job);
  job.footprint = FootprintFor(job);
  jobs_.push_back(std::move(job));
  return Status::OK();
}

Status WorkloadExecutor::Add(const std::string& query,
                             const PlanOptions& plan, SimTime arrival,
                             SimTime deadline) {
  NAVPATH_ASSIGN_OR_RETURN(const PathQuery parsed,
                           ParseQuery(query, db_->tags()));
  return Add(parsed, plan, {}, arrival, deadline);
}

Status WorkloadExecutor::AddWrite(std::vector<WriteOp> ops,
                                  SimTime arrival) {
  if (options_.txn == nullptr) {
    return Status::InvalidArgument(
        "write transactions require WorkloadOptions.txn");
  }
  if (ops.empty()) {
    return Status::InvalidArgument("write transaction without operations");
  }
  if (!jobs_.empty() && arrival < jobs_.back().arrival) {
    return Status::InvalidArgument(
        "arrivals must be nondecreasing in Add() order");
  }
  Job job;
  job.is_write = true;
  job.write_ops = std::move(ops);
  job.arrival = arrival;
  job.result.arrival = arrival;
  job.result.is_write = true;
  job.owner_id = static_cast<std::uint32_t>(jobs_.size()) + 1;
  job.footprint = kWriterFootprint;
  jobs_.push_back(std::move(job));
  return Status::OK();
}

void WorkloadExecutor::ComputeEstimates(Job* job) const {
  job->path_costs.clear();
  job->path_cards.clear();
  job->path_clusters.clear();
  job->clusters_touched = 0.0;
  if (options_.stats == nullptr) return;
  const PathSummary* summary =
      options_.summary ? db_->summary() : nullptr;
  for (const LocationPath& path : job->query.paths) {
    const PlanCosts costs =
        EstimatePlanCosts(*options_.stats, path, db_->options().disk_model,
                          db_->costs(), summary);
    double cost = costs.simple;
    if (job->plan_options.kind == PlanKind::kXSchedule) {
      cost = costs.xschedule;
    }
    if (job->plan_options.kind == PlanKind::kXScan) cost = costs.xscan;
    job->path_costs.push_back(cost);
    const PathEstimate estimate =
        EstimatePath(*options_.stats, path, summary);
    job->path_cards.push_back(estimate.result_cardinality);
    job->path_clusters.push_back(estimate.clusters_touched);
    job->clusters_touched =
        std::max(job->clusters_touched, estimate.clusters_touched);
  }
}

std::size_t WorkloadExecutor::FootprintFor(const Job& job) const {
  if (job.is_write) return kWriterFootprint;
  const std::size_t static_bound = EstimateFootprint(job.plan_options);
  // A query whose whole result set fits in few clusters can never keep
  // more pages than that in flight, no matter how large its prefetch
  // window is configured; charge it only what the cost model says it can
  // use. The derived bound only tightens the static one, so stats never
  // make admission more conservative than before.
  if (!options_.footprint_from_stats ||
      job.plan_options.kind != PlanKind::kXSchedule ||
      job.clusters_touched <= 0.0) {
    return static_bound;
  }
  const std::size_t derived =
      static_cast<std::size_t>(std::ceil(job.clusters_touched)) + 2;
  return std::min(static_bound, std::max<std::size_t>(3, derived));
}

Status WorkloadExecutor::PlanShareGroups() {
  groups_.clear();
  if (!options_.enable_sharing || options_.stats == nullptr) {
    return Status::OK();
  }
  // Sharing plans the whole group up front, so only the closed-system
  // part of the workload (present at the start) participates. Multi-path
  // queries are excluded: a member holds its stream slot for exactly one
  // path, and holding it across unrelated paths would stall the group.
  PrefixTrie trie;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& job = jobs_[i];
    if (job.query.paths.size() != 1 || job.arrival != 0) continue;
    trie.AddPath(i, job.query.paths[0]);
  }
  std::vector<SharedPrefix> candidates = trie.ExtractGroups();
  for (SharedPrefix& candidate : candidates) {
    std::vector<LocationPath> fulls;
    fulls.reserve(candidate.members.size());
    for (const std::size_t m : candidate.members) {
      fulls.push_back(jobs_[m].query.paths[0]);
    }
    const SharedPrefixEstimate estimate = EstimateSharedPrefix(
        *options_.stats, candidate.prefix, fulls,
        db_->options().disk_model, db_->costs());
    if (!estimate.beneficial) {
      ++sched_.Counter("share.groups_declined");
      continue;
    }

    ShareGroup group;
    group.prefix = std::move(candidate.prefix);
    group.members = std::move(candidate.members);
    group.remaining = group.members.size();

    // The producer evaluates the prefix once with XSchedule — the
    // operator built for exactly this streaming role; its options derive
    // from the first member's, so workload-wide tuning (queue_k,
    // prefetch caps) carries over.
    PlanOptions producer_options = jobs_[group.members.front()].plan_options;
    producer_options.kind = PlanKind::kXSchedule;
    producer_options.profile = false;
    NAVPATH_ASSIGN_OR_RETURN(
        PathPlan producer,
        BuildPlan(db_, *doc_, group.prefix, {}, producer_options));
    // The producer is its own buffer-interest owner, past every query id.
    producer.shared()->owner_id =
        static_cast<std::uint32_t>(jobs_.size() + 1 + groups_.size());
    producer.shared()->cooperative = true;
    group.producer = std::move(producer);

    group.footprint = EstimateFootprint(producer_options);
    if (options_.footprint_from_stats) {
      const PathEstimate prefix_estimate =
          EstimatePath(*options_.stats, group.prefix);
      if (prefix_estimate.clusters_touched > 0.0) {
        const std::size_t derived =
            static_cast<std::size_t>(
                std::ceil(prefix_estimate.clusters_touched)) +
            2;
        group.footprint =
            std::min(group.footprint, std::max<std::size_t>(3, derived));
      }
    }

    FanOutOptions fanout_options;
    fanout_options.max_buffered = std::max<std::size_t>(
        1, options_.share_buffer_pages *
               (db_->options().page_size / kInstanceBytes));
    group.fanout = std::make_unique<FanOut>(db_, group.producer.root(),
                                            group.producer.shared(),
                                            fanout_options);
    group.reserved_pages = options_.share_buffer_pages;
    db_->buffer()->ReserveAux(group.reserved_pages);

    for (const std::size_t m : group.members) {
      Job& member = jobs_[m];
      member.share_group = groups_.size();
      member.share_slot = group.fanout->AddConsumer();
      member.footprint = kConsumerFootprint;
      sched_.GetHistogram("share.prefix_hit_depth")
          .Record(group.prefix.steps.size());
    }
    ++sched_.Counter("share.groups_adopted");
    sched_.Counter("share.members_shared") += group.members.size();
    groups_.push_back(std::move(group));
  }
  return Status::OK();
}

Status WorkloadExecutor::StartSharedPath(Job* job) {
  ShareGroup& group = groups_[job->share_group];
  auto shared = std::make_unique<PlanSharedState>(db_);
  shared->owner_id = job->owner_id;
  shared->cooperative = true;
  std::vector<std::unique_ptr<PathOperator>> ops;
  ops.push_back(std::make_unique<FanOutReader>(
      group.fanout.get(), job->share_slot, shared.get()));
  PathOperator* tip = ops.back().get();
  // Residual steps extend the streamed prefix instances; UnnestMap is the
  // right extension operator here — unlike XStep it has no exhaustion
  // latch, so it re-pulls the stream after a producer yield, and it
  // navigates synchronously against pages the group largely keeps warm.
  const LocationPath& full = job->query.paths[job->path_index];
  for (std::size_t i = group.prefix.steps.size(); i < full.steps.size();
       ++i) {
    ops.push_back(std::make_unique<UnnestMap>(
        db_, shared.get(), tip, static_cast<int>(i) + 1, full.steps[i]));
    tip = ops.back().get();
  }
  job->plan = PathPlan::Assemble(std::move(shared), std::move(ops), tip);
  job->seen.clear();
  job->produced_in_path = 0;
  job->window_pulls0 = job->result.pulls;
  job->window_yields0 = 0;
  job->window_blocks0 = 0;
  if (options_.explain) {
    job->path_metrics_start = db_->metrics()->Snapshot();
    job->path_t0 = db_->clock()->now();
    job->path_io0 = db_->clock()->io_wait_time();
    job->path_count_before = job->result.count;
  }
  return job->plan.root()->Open();
}

void WorkloadExecutor::LeaveShareGroup(Job* job) {
  ShareGroup& group = groups_[job->share_group];
  job->share_group = kNoGroup;
  NAVPATH_DCHECK(group.remaining > 0);
  if (--group.remaining > 0) return;
  // Last member out: fold the stream's statistics into the run metrics
  // and release everything the group held. The FanOut goes before the
  // producer plan it references.
  const FanOut& fanout = *group.fanout;
  sched_.Counter("share.producer_pulls") += fanout.producer_pulls();
  sched_.Counter("share.consumer_pulls") += fanout.consumer_pulls();
  sched_.Counter("share.instances_streamed") += fanout.instances_streamed();
  sched_.Counter("share.dedup_hits") += fanout.dedup_hits();
  sched_.Counter("share.spills") += fanout.spills();
  group.fanout.reset();
  group.producer = PathPlan();
  db_->buffer()->ReleaseAux(group.reserved_pages);
  group.reserved_pages = 0;
  if (group.charged) {
    group.charged = false;
    footprint_used_ -= group.footprint;
  }
}

Status WorkloadExecutor::FallBackToPrivate(Job* job) {
  ++sched_.Counter("share.private_fallbacks");
  // Closing the consumer plan releases its stream slot.
  NAVPATH_RETURN_NOT_OK(job->plan.root()->Close());
  LeaveShareGroup(job);
  const std::size_t private_footprint = FootprintFor(*job);
  footprint_used_ = footprint_used_ - job->footprint + private_footprint;
  job->footprint = private_footprint;
  // Restart the path privately. Everything already emitted stays in the
  // result-level dedup set, so re-derived instances are dropped and the
  // query's output is exactly-once.
  auto seen = std::move(job->seen);
  const std::uint64_t produced = job->produced_in_path;
  NAVPATH_RETURN_NOT_OK(StartNextPath(job));
  job->seen = std::move(seen);
  job->produced_in_path = produced;
  return Status::OK();
}

Status WorkloadExecutor::StartNextPath(Job* job) {
  if (job->is_write) {
    // Activation of a write transaction: open the writer against the
    // current version. The ops themselves are applied writer_batch per
    // pull (see PullOnce), so writes interleave with reads at pull
    // granularity.
    job->writer = options_.txn->BeginWrite();
    job->result.snapshot_seq = job->writer->base_seq();
    ++writers_active_;
    return Status::OK();
  }
  if (options_.txn != nullptr && job->snapshot == nullptr) {
    // Snapshot isolation: the query pins one committed version at
    // activation and every path of the query reads it, no matter what
    // commits mid-flight. Opening a snapshot is a host-side operation
    // (no simulated-clock charges), and a genesis snapshot translates
    // identically, so a zero-writer workload schedules byte for byte
    // like one without a TxnManager.
    job->snapshot = options_.txn->OpenSnapshot();
    job->result.snapshot_seq = job->snapshot->seq();
  }
  if (job->snapshot != nullptr) {
    job->plan_options.translator = job->snapshot.get();
    job->plan_options.snapshot_summary = job->snapshot->summary();
  }
  if (job->share_group != kNoGroup && job->path_index == 0) {
    ShareGroup& group = groups_[job->share_group];
    if (!group.fanout->detached(job->share_slot)) {
      return StartSharedPath(job);
    }
    // Detached before it ever started (admission lag outran the stream
    // budget): abandon the slot and run privately from the start. The
    // caller charges the (updated) footprint after this returns.
    NAVPATH_RETURN_NOT_OK(group.fanout->CloseFor(job->share_slot));
    ++sched_.Counter("share.private_fallbacks");
    LeaveShareGroup(job);
    job->footprint = FootprintFor(*job);
  }
  const LocationPath& path = job->query.paths[job->path_index];
  // A snapshot-pinned query plans over its version's document (root and
  // scan bounds may differ from the canonical one after appends).
  const ImportedDocument& doc =
      job->snapshot != nullptr ? job->snapshot->doc() : *doc_;
  NAVPATH_ASSIGN_OR_RETURN(
      PathPlan plan,
      BuildPlan(db_, doc, path, job->contexts, job->plan_options));
  plan.shared()->owner_id = job->owner_id;
  plan.shared()->cooperative = true;
  job->plan = std::move(plan);
  job->seen.clear();
  job->produced_in_path = 0;
  // Fresh plan, fresh yield/block counters: restart the classification
  // window so the new path's behavior is judged on its own pulls.
  job->window_pulls0 = job->result.pulls;
  job->window_yields0 = 0;
  job->window_blocks0 = 0;
  if (options_.explain) {
    job->path_metrics_start = db_->metrics()->Snapshot();
    job->path_t0 = db_->clock()->now();
    job->path_io0 = db_->clock()->io_wait_time();
    job->path_count_before = job->result.count;
  }
  return job->plan.root()->Open();
}

Status WorkloadExecutor::ApplyWriteOp(Job* job, const WriteOp& op) {
  if (op.kind == WriteOp::Kind::kInsert) {
    NAVPATH_ASSIGN_OR_RETURN(
        const InsertedNode inserted,
        job->writer->updater()->InsertElement(op.parent, op.after, op.tag,
                                              op.text, op.attrs));
    (void)inserted;
    ++job->result.writes_applied;
    return Status::OK();
  }
  // kDelete: resolve the last child of `parent` tagged `tag` through the
  // writer's own translator (ops earlier in this transaction are
  // visible) and delete its whole subtree. The pages scanned to pick the
  // victim are decision inputs like any other read, so they join the
  // writer's conflict-validation set.
  WriterTxn* writer = job->writer.get();
  CrossClusterCursor cursor(
      db_, writer->translator(),
      [writer](PageId page) { writer->NoteReadDependency(page); });
  NAVPATH_RETURN_NOT_OK(cursor.Start(Axis::kChild, op.parent));
  NodeID victim = kInvalidNodeID;
  LogicalNode node;
  for (;;) {
    NAVPATH_ASSIGN_OR_RETURN(const bool more, cursor.Next(&node));
    if (!more) break;
    if (node.tag == op.tag) victim = node.id;
  }
  if (victim == kInvalidNodeID) {
    return Status::InvalidArgument(
        "delete op: parent has no child with the requested tag");
  }
  NAVPATH_RETURN_NOT_OK(job->writer->updater()->DeleteSubtree(victim));
  ++job->result.deletes_applied;
  return Status::OK();
}

std::size_t WorkloadExecutor::WriterLimit() const {
  if (options_.max_writers <= 1) return 1;
  // Conflict rate observed this run; 0 before the first commit attempt,
  // so a fresh run starts optimistic and narrows only on evidence.
  const double p =
      writer_commit_attempts_ == 0
          ? 0.0
          : static_cast<double>(writer_conflict_aborts_) /
                static_cast<double>(writer_commit_attempts_);
  const WriterAdmission est = EstimateWriterAdmission(
      options_.max_writers, p, writer_cost_ewma_,
      static_cast<double>(options_.writer_retry_backoff),
      options_.writer_max_retries);
  return est.prefer_optimistic ? options_.max_writers : 1;
}

void WorkloadExecutor::FinishPath(Job* job) {
  if (!options_.explain) return;
  if (job->result.explain == nullptr) {
    job->result.explain = std::make_shared<QueryExplain>();
    job->result.explain->degraded = job->result.degraded;
  }
  job->result.explain->paths.push_back(BuildPathExplain(
      db_, job->query.paths[job->path_index], job->plan, job->plan_options,
      options_.stats, job->result.count - job->path_count_before,
      db_->clock()->now() - job->path_t0,
      db_->clock()->io_wait_time() - job->path_io0,
      db_->metrics()->Delta(job->path_metrics_start)));
}

double WorkloadExecutor::RemainingCost(const Job& job) const {
  if (job.path_costs.empty()) return 0.0;
  double remaining = 0.0;
  // Completed paths (i < path_index) contribute zero by construction;
  // the current path is discounted by produced-output progress with its
  // cardinality estimate clamped to >= 1 (EstimatedProgress), so
  // low-cardinality estimates shrink with progress instead of freezing
  // SJF into stamp-order tie-breaking.
  for (std::size_t i = job.path_index; i < job.query.paths.size(); ++i) {
    double cost = job.path_costs[i];
    if (i == job.path_index) {
      cost *=
          1.0 - EstimatedProgress(job.produced_in_path, job.path_cards[i]);
    }
    remaining += cost;
  }
  return remaining;
}

double WorkloadExecutor::RemainingClusters(const Job& job) const {
  if (job.path_clusters.empty()) return 0.0;
  double remaining = 0.0;
  for (std::size_t i = job.path_index; i < job.query.paths.size(); ++i) {
    double clusters = job.path_clusters[i];
    if (i == job.path_index) {
      clusters *=
          1.0 - EstimatedProgress(job.produced_in_path, job.path_cards[i]);
    }
    remaining += clusters;
  }
  return remaining;
}

bool WorkloadExecutor::IoBound(const Job& job) const {
  // Writers fix pages synchronously (no operator tree, no prefetches);
  // they compete in the CPU/SJF half, where their empty cost vector
  // ranks them cheapest — short transactions drain first.
  if (job.is_write) return false;
  const std::size_t pending = db_->buffer()->PendingFor(job.owner_id);
  if (pending == 0) return false;  // nothing in flight: pure CPU work
  const PlanSharedState* shared = job.plan.shared();
  const std::uint64_t pulls = job.result.pulls - job.window_pulls0;
  const std::uint64_t waits = (shared->io_yields - job.window_yields0) +
                              (shared->io_blocks - job.window_blocks0);
  // Recent pulls mostly ended waiting on the drive: the job's progress
  // is gated by I/O, not by how often the scheduler runs it.
  if (pulls >= kClassifyMinPulls && 2 * waits >= pulls) return true;
  // More clusters still to load than it has on order: pulling it makes
  // it submit, deepening the elevator pool. A job whose in-flight set
  // already covers its remaining clusters is just consuming (CPU-bound).
  return RemainingClusters(job) > static_cast<double>(pending);
}

std::size_t WorkloadExecutor::RotatePick(
    const std::vector<std::size_t>& active,
    const std::vector<std::size_t>& candidates, std::size_t* cursor) const {
  NAVPATH_DCHECK(!candidates.empty());
  // `active` is in admission order (ascending job index), so the first
  // candidate past the cursor is the rotation's next stop; wrap to the
  // first candidate when the cursor is past them all.
  std::size_t pick = candidates.front();
  for (const std::size_t pos : candidates) {
    if (active[pos] > *cursor) {
      pick = pos;
      break;
    }
  }
  *cursor = active[pick];
  return pick;
}

std::size_t WorkloadExecutor::SjfPick(
    const std::vector<std::size_t>& active,
    const std::vector<std::size_t>& candidates) const {
  NAVPATH_DCHECK(!candidates.empty());
  std::size_t best = candidates.front();
  double best_cost = std::numeric_limits<double>::infinity();
  std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
  for (const std::size_t pos : candidates) {
    const Job& job = jobs_[active[pos]];
    const double cost = RemainingCost(job);
    if (cost < best_cost ||
        (cost == best_cost && job.last_pull < best_stamp)) {
      best = pos;
      best_cost = cost;
      best_stamp = job.last_pull;
    }
  }
  return best;
}

std::size_t WorkloadExecutor::PickNext(
    const std::vector<std::size_t>& active, std::uint64_t decisions) {
  NAVPATH_DCHECK(!active.empty());
  // Measurement-side observability; never touches the simulated clock.
  ++sched_.Counter("sched.decisions");
  sched_.GetHistogram("sched.pool_depth")
      .Record(db_->disk()->pending_requests());
  switch (options_.policy) {
    case WorkloadPolicy::kRoundRobin: {
      // Rotate over stable job ids, not positions: `decisions % size`
      // re-aligns whenever the active set shrinks and can repeatedly
      // skip the same job. With ids, every active job is pulled within
      // one rotation no matter how the set reshuffles.
      std::size_t pick = 0;
      for (std::size_t i = 0; i < active.size(); ++i) {
        if (active[i] > rr_cursor_) {
          pick = i;
          break;
        }
      }
      rr_cursor_ = active[pick];
      return pick;
    }
    case WorkloadPolicy::kFewestPendingIos: {
      // Queries with few reads on order are either near completion or
      // starved for I/O; pulling them makes them submit, keeping the
      // elevator pool deep. Ties go to the least recently pulled.
      std::size_t best = 0;
      std::size_t best_pending = std::numeric_limits<std::size_t>::max();
      std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t i = 0; i < active.size(); ++i) {
        const Job& job = jobs_[active[i]];
        const std::size_t pending =
            db_->buffer()->PendingFor(job.owner_id);
        if (pending < best_pending ||
            (pending == best_pending && job.last_pull < best_stamp)) {
          best = i;
          best_pending = pending;
          best_stamp = job.last_pull;
        }
      }
      return best;
    }
    case WorkloadPolicy::kShortestRemainingCost: {
      std::vector<std::size_t> all(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) all[i] = i;
      return SjfPick(active, all);
    }
    case WorkloadPolicy::kHybrid: {
      // Restrict scheduling to the cheapest-remaining jobs and widen the
      // window as jobs finish. The drive's SSTF elevator serves whatever
      // requests are pending, so the only way to carry SJF's cheap-first
      // completion order to the I/O side is to bound the *breadth* of
      // queries allowed to have reads in flight: a job outside the
      // window is never pulled, hence never submits. Two slots keep the
      // pool deep (a single fresh XSchedule already pools ~queue_k
      // requests; the near-done window head rarely has many), and every
      // completion adds a slot, so the expensive endgame runs at full
      // breadth — round-robin pool depth and cross-query merges. Without
      // document statistics there is no cost signal to rank by and the
      // window covers the whole active set.
      std::vector<std::size_t> ranked(active.size());
      for (std::size_t i = 0; i < active.size(); ++i) ranked[i] = i;
      if (options_.stats != nullptr) {
        std::sort(ranked.begin(), ranked.end(),
                  [&](std::size_t a, std::size_t b) {
                    const double ca = RemainingCost(jobs_[active[a]]);
                    const double cb = RemainingCost(jobs_[active[b]]);
                    if (ca != cb) return ca < cb;
                    return active[a] < active[b];
                  });
        // Narrow until half the submitted workload has completed, then
        // open to the whole active set. The total-count rule also turned
        // out to be the right one for open systems: making the window
        // relative to the live active set (or dropping it for arrivals)
        // flip-flops between narrow and full under backlog, leaving a
        // flooded elevator competing against a serialized cheap job —
        // measurably worse than either parent policy.
        const std::size_t window = completed_ * 2 < std::max(n_total_,
                                                             jobs_.size())
                                       ? kHybridBreadth
                                       : active.size();
        const std::size_t cut = std::min(active.size(), window);
        // Deadline-urgent jobs stay inside the window regardless of rank:
        // a job whose slack no longer covers its remaining cost cannot
        // afford to be parked outside the breadth bound. Without
        // deadlines (the default) this appends nothing.
        std::vector<std::size_t> kept(ranked.begin(),
                                      ranked.begin() +
                                          static_cast<std::ptrdiff_t>(cut));
        for (std::size_t i = cut; i < ranked.size(); ++i) {
          if (DeadlineUrgent(jobs_[active[ranked[i]]])) {
            kept.push_back(ranked[i]);
          }
        }
        ranked = std::move(kept);
      }
      // Inside the window, split by what gates each job's progress: the
      // I/O-bound jobs rotate (their pulls are cheap — they submit and
      // yield), the CPU-bound ones compete on shortest remaining cost.
      // Alternating decisions interleave the two at pull granularity.
      std::vector<std::size_t> io, cpu;
      for (const std::size_t pos : ranked) {
        (IoBound(jobs_[active[pos]]) ? io : cpu).push_back(pos);
      }
      sched_.Counter("sched.classified.io_bound") += io.size();
      sched_.Counter("sched.classified.cpu_bound") += cpu.size();
      const bool serve_io =
          !io.empty() && (cpu.empty() || decisions % 2 == 0);
      if (serve_io) {
        ++sched_.Counter("sched.picks.io_rr");
        return RotatePick(active, io, &hybrid_io_cursor_);
      }
      ++sched_.Counter("sched.picks.cpu_sjf");
      return SjfPick(active, cpu);
    }
  }
  NAVPATH_UNREACHABLE();
}

Status WorkloadExecutor::BeginRun() {
  NAVPATH_RETURN_NOT_OK(ValidateWorkloadOptions(options_));
  if (options_.shards != nullptr) {
    return Status::InvalidArgument(
        "a plain WorkloadExecutor runs one shard; drive sharded stores "
        "through ShardedWorkloadExecutor, which routes each query and "
        "fans sub-queries out to per-shard executors");
  }
  if (!stepping_) n_total_ = jobs_.size();
  if (options_.cold_start) {
    NAVPATH_RETURN_NOT_OK(db_->ResetMeasurement());
  }
  sched_.Reset();
  rr_cursor_ = static_cast<std::size_t>(-1);
  hybrid_io_cursor_ = static_cast<std::size_t>(-1);
  completed_ = 0;
  run_active_.clear();
  run_decisions_ = 0;
  consecutive_yields_ = 0;
  footprint_used_ = 0;
  writers_active_ = 0;
  writer_commit_attempts_ = 0;
  writer_conflict_aborts_ = 0;
  writer_cost_ewma_ = 0.0;

  // Everything below reports deltas over this window, so repeated runs on
  // a shared Database measure only themselves. After a cold start the
  // window base is zero and the deltas equal the absolute readings.
  window_start_ = db_->metrics()->Snapshot();
  window_t0_ = db_->clock()->now();
  window_cpu0_ = db_->clock()->cpu_time();

  // Optionally bound each query's outstanding prefetches. Unbounded is
  // the default and usually the right call: claimed-frame protection in
  // the buffer keeps install-ahead pages alive, and yielding (below)
  // means deep pools are an asset, not a liability. The explicit cap
  // exists for configurations whose buffer genuinely cannot hold the
  // aggregate in-flight set. Stepping drivers admit jobs that are not
  // known yet, so they always run concurrently-capped (see Add).
  const std::size_t n_target =
      options_.max_concurrent == 0
          ? jobs_.size()
          : std::min(jobs_.size(), options_.max_concurrent);
  if ((n_target > 1 || stepping_) && options_.prefetch_inflight_cap > 0) {
    for (Job& job : jobs_) {
      if (job.plan_options.kind == PlanKind::kXSchedule) {
        job.plan_options.prefetch_inflight_cap =
            options_.prefetch_inflight_cap;
        job.footprint = FootprintFor(job);
      }
    }
  }

  budget_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(db_->buffer()->capacity()) *
             options_.buffer_budget_fraction));
  return Status::OK();
}

void WorkloadExecutor::FinishJob(std::size_t active_pos) {
  Job& job = jobs_[run_active_[active_pos]];
  job.result.finished_at = db_->clock()->now();
  job.plan = PathPlan();
  job.seen.clear();
  // Transaction state goes after the plan (the plan's translator points
  // into the snapshot). Dropping the snapshot unpins its version for
  // reclamation; a writer still open here (insert failure path) was
  // already aborted. The writer slot frees for the next queued writer.
  job.snapshot.reset();
  job.writer.reset();
  if (job.is_write) --writers_active_;
  if (job.share_group != kNoGroup) LeaveShareGroup(&job);
  job.done = true;
  ++completed_;
  footprint_used_ -= job.footprint;
  run_active_.erase(run_active_.begin() +
                    static_cast<std::ptrdiff_t>(active_pos));
}

Result<std::size_t> WorkloadExecutor::PullOnce() {
  NAVPATH_DCHECK(!run_active_.empty());
  const std::size_t pick = PickNext(run_active_, run_decisions_);
  const std::size_t job_index = run_active_[pick];
  Job& job = jobs_[job_index];
  if (options_.on_pull) options_.on_pull(job_index, run_active_.size());
  // One scheduling decision per pull: picking the query is a set probe
  // over the active list, not free.
  db_->clock()->ChargeCpu(db_->costs().set_op);
  job.last_pull = ++run_decisions_;
  ++job.result.pulls;

  if (job.is_write) {
    // A write transaction has no operator tree: each pull applies a
    // batch of WriteOps (copy-on-write fixes charge the clock through
    // the buffer; writer_batch == 1 is the historical one-op pull), and
    // the pull after the last op commits — group commit amortizes the
    // publish over the batch. Failures fail this job alone, exactly like
    // a reader's bad pull; a lost first-committer race retries below. A
    // writer pull advances the clock (synchronous fixes), so yielded
    // readers get a fresh round before anyone is allowed to block.
    consecutive_yields_ = 0;
    if (job.ops_done < job.write_ops.size()) {
      for (std::size_t applied = 0;
           applied < options_.writer_batch &&
           job.ops_done < job.write_ops.size();
           ++applied) {
        const Status op_status =
            ApplyWriteOp(&job, job.write_ops[job.ops_done]);
        if (!op_status.ok()) {
          job.result.status = op_status;
          (void)job.writer->Abort();
          FinishJob(pick);
          return job_index;
        }
        ++job.ops_done;
      }
      return kNoJob;
    }
    const SimTime active_for =
        db_->clock()->now() - job.result.admitted_at;
    const Status committed = job.writer->Commit();
    ++writer_commit_attempts_;
    {
      // Per-attempt cost sample for the admission estimate: the writer's
      // wall time since activation, spread over its attempts (retries
      // redo the whole transaction). EWMA with 1/4 gain follows phase
      // changes without whipsawing on one odd transaction.
      const double sample = static_cast<double>(active_for) /
                            static_cast<double>(job.result.aborts + 1);
      writer_cost_ewma_ = writer_cost_ewma_ == 0.0
                              ? sample
                              : 0.75 * writer_cost_ewma_ + 0.25 * sample;
    }
    if (!committed.ok()) {
      if (committed.IsAborted() &&
          job.result.aborts < options_.writer_max_retries) {
        // Optimistic retry: back off in simulated time (exponential,
        // capped at 64x, so conflictors get the window), re-begin
        // against the new head, and re-apply the ops from scratch — the
        // aborted attempt's work was rolled back with its shadow pages.
        // A retried writer keeps its job: it never re-enters admission,
        // so overload control cannot re-tier it mid-flight.
        ++writer_conflict_aborts_;
        ++job.result.aborts;
        NAVPATH_DCHECK(!job.result.degraded);
        const unsigned shift = static_cast<unsigned>(
            std::min<std::uint64_t>(job.result.aborts - 1, 6));
        db_->clock()->WaitUntil(db_->clock()->now() +
                                (options_.writer_retry_backoff << shift));
        job.writer = options_.txn->BeginWrite();
        job.result.snapshot_seq = job.writer->base_seq();
        job.ops_done = 0;
        job.result.writes_applied = 0;
        job.result.deletes_applied = 0;
        return kNoJob;
      }
      job.result.status = committed;
      FinishJob(pick);
      return job_index;
    }
    job.result.commit_seq = job.writer->commit_seq();
    FinishJob(pick);
    return job_index;
  }

  // Slide the classification window once it is full, so the hybrid
  // policy judges a job on its recent behavior, not its whole history.
  if (job.result.pulls - job.window_pulls0 >= kClassifyWindow) {
    const PlanSharedState* window_shared = job.plan.shared();
    job.window_pulls0 = job.result.pulls;
    job.window_yields0 = window_shared->io_yields;
    job.window_blocks0 = window_shared->io_blocks;
  }

  // An I/O-bound query yields instead of blocking while siblings still
  // have CPU work — its pending reads keep pooling at the disk. Once a
  // full round of active queries yielded, everyone is I/O bound: let
  // this one block, serving the deepest possible pool.
  PlanSharedState* shared = job.plan.shared();
  shared->yield_on_block = run_active_.size() > 1 &&
                           consecutive_yields_ < run_active_.size();

  if (options_.priority_io && options_.stats != nullptr) {
    // Drive-side priority class: the cheapest-remaining quartile of
    // the active set submits its reads at high priority, so its few
    // remaining pages jump the elevator sweep instead of queueing
    // behind the long queries' scans. Ranked per pull from live
    // estimates; ties break to the lower job id. A job whose deadline
    // slack ran out joins the class regardless of rank.
    const double mine = RemainingCost(job);
    std::size_t cheaper = 0;
    for (const std::size_t idx : run_active_) {
      if (idx == job_index) continue;
      const double cost = RemainingCost(jobs_[idx]);
      if (cost < mine || (cost == mine && idx < job_index)) ++cheaper;
    }
    shared->io_priority =
        cheaper < std::max<std::size_t>(1, run_active_.size() / 4) ||
        DeadlineUrgent(job);
  }
  if (job.share_group != kNoGroup) {
    // Measurement-side: stream-buffer occupancy seen by shared pulls.
    sched_.GetHistogram("share.buffered_instances")
        .Record(groups_[job.share_group].fanout->buffered());
  }

  Result<bool> pulled = job.plan.root()->Pull(&step_inst_);
  if (!pulled.ok()) {
    // Per-query fault isolation: a pull that surfaces an error (e.g.
    // Status::Corruption from a permanently bad page after retries)
    // fails this query alone. Its neighbors and the serving loop keep
    // running; the error is reported in the query's result status.
    job.result.status = pulled.status();
    (void)job.plan.root()->Close();  // best-effort resource release
    FinishJob(pick);
    return job_index;
  }
  const bool have = *pulled;
  if (!have && shared->yielded) {
    shared->yielded = false;
    ++consecutive_yields_;
    return kNoJob;
  }
  consecutive_yields_ = 0;
  if (have) {
    // Final duplicate elimination, as in single-query execution.
    db_->clock()->ChargeCpu(db_->costs().set_op);
    if (!job.seen.insert(step_inst_.right.node.Pack()).second) {
      return kNoJob;
    }
    ++job.result.count;
    ++job.produced_in_path;
    if (options_.collect_nodes &&
        job.query.mode == PathQuery::Mode::kNodes) {
      job.result.nodes.push_back(
          LogicalNode{step_inst_.right.node, 0, step_inst_.right.order});
    }
    return kNoJob;
  }

  // Exhaustion — unless the stream detached this member mid-flight
  // (spill-to-recompute): then the member has NOT seen the whole
  // stream and must re-derive its path privately.
  if (job.share_group != kNoGroup &&
      groups_[job.share_group].fanout->detached(job.share_slot)) {
    NAVPATH_RETURN_NOT_OK(FallBackToPrivate(&job));
    return kNoJob;
  }

  const Status closed = job.plan.root()->Close();
  if (!closed.ok()) {
    job.result.status = closed;
    FinishJob(pick);
    return job_index;
  }
  FinishPath(&job);
  ++job.path_index;
  if (job.path_index < job.query.paths.size()) {
    const Status started = StartNextPath(&job);
    if (!started.ok()) {
      job.result.status = started;
      FinishJob(pick);
      return job_index;
    }
    return kNoJob;
  }

  // Query finished: order its results, free its plan and footprint,
  // and let the admission controller top the active set back up.
  if (job.result.nodes.size() > 1) {
    const double n = static_cast<double>(job.result.nodes.size());
    db_->clock()->ChargeCpu(static_cast<SimTime>(
        n * std::max(1.0, std::log2(n)) *
        static_cast<double>(db_->costs().sort_op)));
    std::sort(job.result.nodes.begin(), job.result.nodes.end(),
              [](const LogicalNode& a, const LogicalNode& b) {
                return a.order < b.order;
              });
  }
  FinishJob(pick);
  return job_index;
}

WorkloadResult WorkloadExecutor::CollectResult() {
  // Drain speculative reads no query consumed (cross-query completion
  // stealing can leave a closed plan's prefetches in flight), so the
  // database is reusable and the device-busy tail is accounted for.
  while (db_->buffer()->HasPrefetchInFlight()) {
    (void)db_->buffer()->WaitAnyPrefetch();
  }

  WorkloadResult result;
  for (Job& job : jobs_) {
    result.queries.push_back(std::move(job.result));
  }
  jobs_.clear();
  result.total_time = db_->clock()->now() - window_t0_;
  result.cpu_time = db_->clock()->cpu_time() - window_cpu0_;
  result.metrics = db_->metrics()->Delta(window_start_);
  result.scheduler = sched_.Snapshot();
  return result;
}

Result<WorkloadResult> WorkloadExecutor::Run() {
  if (jobs_.empty()) {
    return Status::InvalidArgument("empty workload");
  }
  stepping_ = false;
  NAVPATH_RETURN_NOT_OK(BeginRun());

  // Sharing groups are planned after the prefetch caps settle, so the
  // producers inherit the effective per-query options and the members'
  // consumer footprints are not clobbered by the recomputation above.
  NAVPATH_RETURN_NOT_OK(PlanShareGroups());

  std::size_t next_admit = 0;

  auto admit = [&]() -> Status {
    while (next_admit < jobs_.size()) {
      Job& job = jobs_[next_admit];
      if (job.arrival > db_->clock()->now()) break;  // not yet in system
      const bool have_slot =
          options_.max_concurrent == 0 ||
          run_active_.size() < options_.max_concurrent;
      // A shared member's first admission also charges its group's
      // producer footprint (once per group).
      std::size_t charge = job.footprint;
      if (job.share_group != kNoGroup &&
          !groups_[job.share_group].charged) {
        charge += groups_[job.share_group].footprint;
      }
      const bool fits =
          run_active_.empty() || footprint_used_ + charge <= budget_;
      // Writer admission (head-of-line): a queued writer waits until the
      // active-writer count drops under the limit the cost model picks —
      // max_writers while optimistic retries price below serialized
      // queueing at the observed conflict rate, 1 otherwise.
      const bool writer_ok = !job.is_write || writers_active_ < WriterLimit();
      if (!have_slot || !fits || !writer_ok) break;
      job.activated = true;
      const Status started = StartNextPath(&job);
      job.result.admitted_at = db_->clock()->now();
      if (!started.ok()) {
        // A plan that fails to open fails its query alone; the workload
        // keeps serving (per-query status isolation).
        job.result.status = started;
        job.result.finished_at = db_->clock()->now();
        job.plan = PathPlan();
        job.snapshot.reset();
        if (job.share_group != kNoGroup) LeaveShareGroup(&job);
        job.done = true;
        ++completed_;
        ++next_admit;
        continue;
      }
      // StartNextPath may have fallen back to private (pre-start
      // detach), so the charge derives from the job's current state.
      footprint_used_ += job.footprint;
      if (job.share_group != kNoGroup) {
        ShareGroup& group = groups_[job.share_group];
        if (!group.charged) {
          group.charged = true;
          footprint_used_ += group.footprint;
        }
      }
      run_active_.push_back(next_admit);
      ++next_admit;
    }
    return Status::OK();
  };
  NAVPATH_RETURN_NOT_OK(admit());

  while (!run_active_.empty() || next_admit < jobs_.size()) {
    if (run_active_.empty()) {
      // Open system, idle gap: nothing to run until the next arrival.
      db_->clock()->WaitUntil(jobs_[next_admit].arrival);
      NAVPATH_RETURN_NOT_OK(admit());
      continue;
    }
    // Open-system arrivals join the active set mid-run; the gate keeps
    // closed workloads (every arrival == 0) on the exact admission
    // sequence they had before arrivals existed.
    if (next_admit < jobs_.size() && jobs_[next_admit].arrival != 0 &&
        jobs_[next_admit].arrival <= db_->clock()->now()) {
      NAVPATH_RETURN_NOT_OK(admit());
    }
    NAVPATH_ASSIGN_OR_RETURN(const std::size_t done, PullOnce());
    if (done != kNoJob) {
      NAVPATH_RETURN_NOT_OK(admit());
    }
  }

  return CollectResult();
}

Status WorkloadExecutor::BeginStepping(std::size_t expected_jobs) {
  if (options_.enable_sharing) {
    return Status::InvalidArgument(
        "cross-query sharing plans the whole workload up front and is "
        "not available under external admission");
  }
  stepping_ = true;
  n_total_ = expected_jobs;
  const Status begun = BeginRun();
  if (!begun.ok()) stepping_ = false;
  return begun;
}

Status WorkloadExecutor::ActivateJob(std::size_t index) {
  if (!stepping_) {
    return Status::InvalidArgument("not in stepping mode");
  }
  if (index >= jobs_.size()) {
    return Status::InvalidArgument("no such job");
  }
  Job& job = jobs_[index];
  if (job.activated || job.done) {
    return Status::InvalidArgument("job already activated");
  }
  if (job.arrival > db_->clock()->now()) {
    return Status::InvalidArgument("job has not arrived yet");
  }
  if (job.is_write && writers_active_ >= WriterLimit()) {
    return Status::InvalidArgument(
        "writer concurrency limit reached (admission runs writers "
        "serialized or optimistically up to max_writers)");
  }
  job.activated = true;
  const Status started = StartNextPath(&job);
  job.result.admitted_at = db_->clock()->now();
  if (!started.ok()) {
    // Per-query isolation, as in Run()'s admission: the driver's loop
    // survives one query's bad plan; the job reports the error itself.
    job.result.status = started;
    job.result.finished_at = db_->clock()->now();
    job.plan = PathPlan();
    job.snapshot.reset();
    job.done = true;
    ++completed_;
    return Status::OK();
  }
  footprint_used_ += job.footprint;
  // Keep the active set ascending by job id: the rotation picks
  // (kRoundRobin, hybrid I/O set) rely on that order for fairness.
  run_active_.insert(
      std::lower_bound(run_active_.begin(), run_active_.end(), index),
      index);
  return Status::OK();
}

Status WorkloadExecutor::RetierJob(std::size_t index,
                                   const PlanOptions& plan) {
  if (!stepping_) {
    return Status::InvalidArgument("not in stepping mode");
  }
  if (index >= jobs_.size()) {
    return Status::InvalidArgument("no such job");
  }
  Job& job = jobs_[index];
  // Writers are rejected before the lifecycle check: a write transaction
  // has no plan tier to degrade to in ANY state — in particular, one
  // that aborted optimistically and is retrying is still activated, and
  // overload control must get the write-specific error for it rather
  // than a message implying an inactive writer could be re-tiered.
  if (job.is_write) {
    return Status::InvalidArgument(
        "write transactions have no plan tier to degrade to");
  }
  if (job.activated || job.done) {
    return Status::InvalidArgument(
        "cannot re-tier a job that already started");
  }
  job.plan_options = plan;
  if (options_.explain) job.plan_options.profile = true;
  if (options_.prefetch_inflight_cap > 0 &&
      job.plan_options.kind == PlanKind::kXSchedule) {
    job.plan_options.prefetch_inflight_cap = options_.prefetch_inflight_cap;
  }
  ComputeEstimates(&job);
  job.footprint = FootprintFor(job);
  job.result.degraded = true;
  return Status::OK();
}

Result<std::size_t> WorkloadExecutor::StepOnce() {
  if (!stepping_) {
    return Status::InvalidArgument("not in stepping mode");
  }
  if (run_active_.empty()) {
    return Status::InvalidArgument("nothing active to pull");
  }
  return PullOnce();
}

Result<WorkloadResult> WorkloadExecutor::EndStepping() {
  if (!stepping_) {
    return Status::InvalidArgument("not in stepping mode");
  }
  stepping_ = false;
  return CollectResult();
}

bool WorkloadExecutor::CanAdmit(std::size_t index) const {
  NAVPATH_DCHECK(index < jobs_.size());
  const Job& job = jobs_[index];
  const bool have_slot = options_.max_concurrent == 0 ||
                         run_active_.size() < options_.max_concurrent;
  const bool fits =
      run_active_.empty() || footprint_used_ + job.footprint <= budget_;
  const bool writer_ok = !job.is_write || writers_active_ < WriterLimit();
  return have_slot && fits && writer_ok;
}

double WorkloadExecutor::EstimatedCost(std::size_t index) const {
  NAVPATH_DCHECK(index < jobs_.size());
  double total = 0.0;
  for (const double cost : jobs_[index].path_costs) total += cost;
  return total;
}

SimTime WorkloadExecutor::JobArrival(std::size_t index) const {
  NAVPATH_DCHECK(index < jobs_.size());
  return jobs_[index].arrival;
}

const WorkloadQueryResult& WorkloadExecutor::JobResult(
    std::size_t index) const {
  NAVPATH_DCHECK(index < jobs_.size());
  return jobs_[index].result;
}

bool WorkloadExecutor::DeadlineUrgent(const Job& job) const {
  if (job.deadline == 0) return false;
  const SimTime now = db_->clock()->now();
  if (now >= job.deadline) return true;
  const double slack = static_cast<double>(job.deadline - now);
  return slack < kDeadlineHeadroom * RemainingCost(job);
}

}  // namespace navpath
