// Physical plan construction for location paths.
//
// Three plan shapes, mirroring the paper's evaluation (Sec. 6.2):
//   kSimple    — ContextScan -> UnnestMap chain            (Sec. 5.1)
//   kXSchedule — ContextScan -> XSchedule -> XStep* -> XAssembly
//   kXScan     — ContextScan -> XScan     -> XStep* -> XAssembly
#ifndef NAVPATH_COMPILER_PLAN_H_
#define NAVPATH_COMPILER_PLAN_H_

#include <memory>
#include <vector>

#include "algebra/operator.h"
#include "algebra/xassembly.h"
#include "algebra/xschedule.h"
#include "algebra/xscan.h"
#include "store/cross_cursor.h"
#include "store/import.h"
#include "xpath/location_path.h"

namespace navpath {

enum class PlanKind { kSimple, kXSchedule, kXScan };

inline const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSimple:
      return "Simple";
    case PlanKind::kXSchedule:
      return "XSchedule";
    case PlanKind::kXScan:
      return "XScan";
  }
  return "?";
}

struct PlanOptions {
  PlanKind kind = PlanKind::kXSchedule;
  /// XSchedule only: generate speculative seeds per visited cluster
  /// (Sec. 5.4.4). The paper's experiments run XSchedule with
  /// speculative = false (Sec. 6.2); XScan always speculates.
  bool speculative = false;
  /// XSchedule's desired minimum queue size (paper default: 100).
  std::size_t queue_k = 100;
  /// XSchedule only: bound on outstanding asynchronous reads (0 =
  /// unbounded, the solo default). Set by the workload executor so N
  /// concurrent queries' aggregate install-ahead fits the buffer pool.
  std::size_t prefetch_inflight_cap = 0;
  /// Memory budget for XAssembly's S (instances; 0 = unlimited). Exceeding
  /// it reverts the plan to fallback mode (Sec. 5.4.6).
  std::size_t s_budget = 0;
  /// Attach a PlanProfiler: every pull is bracketed with simulated-clock
  /// readings (per-operator self/total time, actual per-step cardinalities)
  /// for EXPLAIN ANALYZE. Profiling reads the clock and never charges it,
  /// so simulated costs are unchanged. Ignored (and free) on builds
  /// configured with -DNAVPATH_OBSERVE=OFF.
  bool profile = false;
  /// Consult the document's path-summary synopsis (when the database has
  /// one): a path the summary proves empty collapses to an empty plan
  /// with zero cluster accesses, and an XScan sweep is restricted to the
  /// touched-extent union. Off reproduces pre-summary plans exactly.
  bool use_summary = true;
  /// MVCC page translation for every buffer access the plan makes
  /// (typically a Snapshot or WriterTxn). nullptr — the default — runs
  /// against the current page images with identity translation,
  /// byte-identical to pre-MVCC execution. The translator must outlive
  /// the plan.
  const PageTranslator* translator = nullptr;
  /// Summary to consult instead of the database's when `translator` is
  /// set: a snapshot must plan against its own version's synopsis, not
  /// the latest commit's. Ignored without a translator.
  const PathSummary* snapshot_summary = nullptr;
};

/// An executable operator tree. Movable; owns all operators and the shared
/// plan state.
class PathPlan {
 public:
  PathOperator* root() const { return root_; }
  PlanSharedState* shared() const { return shared_.get(); }
  const XAssembly* assembly() const { return assembly_; }
  /// Non-null iff built with PlanOptions.profile on an observe-enabled
  /// build; holds the per-operator measurements after execution.
  PlanProfiler* profiler() const { return profiler_.get(); }
  /// True when the path summary proved the path empty and BuildPlan
  /// collapsed it to an empty ContextScan (no cluster is ever touched).
  bool summary_pruned() const { return summary_pruned_; }

  /// Assembles a plan from pre-built operators. Used by the sharing
  /// subsystem, whose consumer plans read a shared stream instead of the
  /// shapes BuildPlan produces. `root` must be owned by `ops` (or by a
  /// longer-lived structure such as a FanOut's producer plan). No
  /// assembly or profiler is attached.
  static PathPlan Assemble(std::unique_ptr<PlanSharedState> shared,
                           std::vector<std::unique_ptr<PathOperator>> ops,
                           PathOperator* root);

 private:
  friend Result<PathPlan> BuildPlan(Database*, const ImportedDocument&,
                                    const LocationPath&,
                                    std::vector<LogicalNode>,
                                    const PlanOptions&);

  std::unique_ptr<PlanSharedState> shared_;
  std::vector<std::unique_ptr<PathOperator>> operators_;
  std::unique_ptr<PlanProfiler> profiler_;
  PathOperator* root_ = nullptr;
  XAssembly* assembly_ = nullptr;
  bool summary_pruned_ = false;
};

/// Builds a plan for `path` over `doc`. `contexts` seeds relative paths;
/// absolute paths use the document root (contexts may then be empty).
Result<PathPlan> BuildPlan(Database* db, const ImportedDocument& doc,
                           const LocationPath& path,
                           std::vector<LogicalNode> contexts,
                           const PlanOptions& options);

}  // namespace navpath

#endif  // NAVPATH_COMPILER_PLAN_H_
