// Plan execution: drives a plan to exhaustion and post-processes results
// (duplicate elimination, document-order sort, counting — Sec. 5.1, 5.5).
#ifndef NAVPATH_COMPILER_EXECUTOR_H_
#define NAVPATH_COMPILER_EXECUTOR_H_

#include <memory>
#include <vector>

#include "compiler/cost_model.h"
#include "compiler/plan.h"
#include "observe/explain.h"
#include "xpath/location_path.h"

namespace navpath {

struct QueryRunResult {
  /// Number of distinct result nodes (summed over count() operands).
  std::uint64_t count = 0;
  /// Node mode only: distinct result nodes in document order.
  std::vector<LogicalNode> nodes;

  // Simulated timing and metrics of this run's window: deltas from the
  // start of ExecuteQuery to its end, so back-to-back runs on a shared
  // Database report independent numbers. Cold starts reset the clock
  // first, making the window identical to absolute readings.
  SimTime total_time = 0;
  SimTime cpu_time = 0;
  Metrics metrics;

  /// EXPLAIN ANALYZE report; set when ExecuteOptions.explain is on (one
  /// PathExplain per predicate-free operand path).
  std::shared_ptr<QueryExplain> explain;

  double total_seconds() const { return SimClock::ToSeconds(total_time); }
  double cpu_seconds() const { return SimClock::ToSeconds(cpu_time); }
  double cpu_fraction() const {
    return total_time == 0
               ? 0.0
               : static_cast<double>(cpu_time) /
                     static_cast<double>(total_time);
  }
};

struct ExecuteOptions {
  PlanOptions plan;
  /// Context nodes for relative paths (ignored by absolute paths, which
  /// start at the document root).
  std::vector<LogicalNode> contexts;
  /// Collect result nodes (sorted, document order). count() queries skip
  /// the sort — the paper notes order is irrelevant under aggregation
  /// (Sec. 5.5).
  bool collect_nodes = false;
  /// Reset buffer/clock/metrics before running (cold start, the paper's
  /// measurement discipline from Sec. 6.1).
  bool cold_start = true;
  /// Produce an EXPLAIN ANALYZE report (forces PlanOptions.profile). Paths
  /// with predicates are executed but not reported in detail.
  bool explain = false;
  /// Document statistics for the estimate side of the report (estimated
  /// per-step cardinalities, clusters, cost). Null leaves the estimate
  /// columns zero.
  const DocumentStats* stats = nullptr;
};

/// Assembles the estimated-vs-actual report for one executed plan. The
/// actual side reads the plan's profiler (null-safe: without profiling
/// only the aggregate fields are filled); `window` carries the metrics
/// delta of the run. Exposed for the WorkloadExecutor, which drives plans
/// itself.
PathExplain BuildPathExplain(Database* db, const LocationPath& path,
                             const PathPlan& plan,
                             const PlanOptions& plan_options,
                             const DocumentStats* stats,
                             std::uint64_t result_count, SimTime total_time,
                             SimTime io_wait_time, const Metrics& window,
                             const PathSummary* summary = nullptr);

/// Runs one location path and returns its (distinct) result nodes/count.
Result<QueryRunResult> ExecutePath(Database* db, const ImportedDocument& doc,
                                   const LocationPath& path,
                                   const ExecuteOptions& options);

/// Runs a PathQuery: a single node-mode path or a sum of counts evaluated
/// sequentially (accumulating simulated time across the operand paths).
Result<QueryRunResult> ExecuteQuery(Database* db, const ImportedDocument& doc,
                                    const PathQuery& query,
                                    const ExecuteOptions& options);

}  // namespace navpath

#endif  // NAVPATH_COMPILER_EXECUTOR_H_
