// Plan execution: drives a plan to exhaustion and post-processes results
// (duplicate elimination, document-order sort, counting — Sec. 5.1, 5.5).
#ifndef NAVPATH_COMPILER_EXECUTOR_H_
#define NAVPATH_COMPILER_EXECUTOR_H_

#include <vector>

#include "compiler/plan.h"
#include "xpath/location_path.h"

namespace navpath {

struct QueryRunResult {
  /// Number of distinct result nodes (summed over count() operands).
  std::uint64_t count = 0;
  /// Node mode only: distinct result nodes in document order.
  std::vector<LogicalNode> nodes;

  // Simulated timing of this run (clock is reset at the start).
  SimTime total_time = 0;
  SimTime cpu_time = 0;
  Metrics metrics;

  double total_seconds() const { return SimClock::ToSeconds(total_time); }
  double cpu_seconds() const { return SimClock::ToSeconds(cpu_time); }
  double cpu_fraction() const {
    return total_time == 0
               ? 0.0
               : static_cast<double>(cpu_time) /
                     static_cast<double>(total_time);
  }
};

struct ExecuteOptions {
  PlanOptions plan;
  /// Context nodes for relative paths (ignored by absolute paths, which
  /// start at the document root).
  std::vector<LogicalNode> contexts;
  /// Collect result nodes (sorted, document order). count() queries skip
  /// the sort — the paper notes order is irrelevant under aggregation
  /// (Sec. 5.5).
  bool collect_nodes = false;
  /// Reset buffer/clock/metrics before running (cold start, the paper's
  /// measurement discipline from Sec. 6.1).
  bool cold_start = true;
};

/// Runs one location path and returns its (distinct) result nodes/count.
Result<QueryRunResult> ExecutePath(Database* db, const ImportedDocument& doc,
                                   const LocationPath& path,
                                   const ExecuteOptions& options);

/// Runs a PathQuery: a single node-mode path or a sum of counts evaluated
/// sequentially (accumulating simulated time across the operand paths).
Result<QueryRunResult> ExecuteQuery(Database* db, const ImportedDocument& doc,
                                    const PathQuery& query,
                                    const ExecuteOptions& options);

}  // namespace navpath

#endif  // NAVPATH_COMPILER_EXECUTOR_H_
