#include "compiler/plan.h"

#include <string>
#include <utility>

#include "algebra/context_scan.h"
#include "algebra/unnest_map.h"
#include "algebra/xstep.h"

namespace navpath {

PathPlan PathPlan::Assemble(std::unique_ptr<PlanSharedState> shared,
                            std::vector<std::unique_ptr<PathOperator>> ops,
                            PathOperator* root) {
  PathPlan plan;
  plan.shared_ = std::move(shared);
  plan.operators_ = std::move(ops);
  plan.root_ = root;
  return plan;
}

Result<PathPlan> BuildPlan(Database* db, const ImportedDocument& doc,
                           const LocationPath& path,
                           std::vector<LogicalNode> contexts,
                           const PlanOptions& options) {
  PathPlan plan;
  plan.shared_ = std::make_unique<PlanSharedState>(db);
  plan.shared_->cluster.SetTranslator(options.translator);

  if (path.absolute) {
    contexts.clear();
    contexts.push_back(LogicalNode{doc.root, 0, doc.root_order});
  } else if (contexts.empty()) {
    return Status::InvalidArgument("relative path without context nodes");
  }

  // Operator display names and path-step numbers, parallel to
  // plan.operators_ (consumed by the profiler wiring below).
  std::vector<std::pair<std::string, int>> labels;
  auto add = [&plan, &labels](std::unique_ptr<PathOperator> op,
                              std::string name, int step = -1) {
    plan.operators_.push_back(std::move(op));
    labels.emplace_back(std::move(name), step);
    return plan.operators_.back().get();
  };
  auto step_name = [&path](const char* op, int i) {
    return std::string(op) + "_" + std::to_string(i + 1) + "(" +
           path.steps[static_cast<std::size_t>(i)].ToString() + ")";
  };

  // Path-summary consultation: a provably empty path needs no operators
  // beyond an empty ContextScan (zero cluster accesses); a supported
  // XScan path confines the sweep to the touched-extent union.
  const PathSummary* summary =
      options.use_summary
          ? (options.translator != nullptr ? options.snapshot_summary
                                           : db->summary())
          : nullptr;
  std::vector<SummaryExtent> scan_extents;
  if (summary != nullptr && PathSummary::Supports(path)) {
    const SummaryMatch match = summary->Match(path);
    if (match.empty) {
      plan.summary_pruned_ = true;
      contexts.clear();
    } else if (options.kind == PlanKind::kXScan) {
      scan_extents = summary->ExtentUnion(match.touched);
    }
  }

  PathOperator* tip = add(std::make_unique<ContextScan>(std::move(contexts)),
                          "ContextScan", 0);
  const int length = static_cast<int>(path.length());

  if (plan.summary_pruned_) {
    // The summary proved the path empty: the context-less scan is the
    // whole plan, no step ever runs, no cluster is touched.
    plan.root_ = tip;
  } else switch (options.kind) {
    case PlanKind::kSimple: {
      for (int i = 0; i < length; ++i) {
        tip = add(std::make_unique<UnnestMap>(db, plan.shared_.get(), tip,
                                              i + 1, path.steps[i]),
                  step_name("UnnestMap", i), i + 1);
      }
      plan.root_ = tip;
      break;
    }
    case PlanKind::kXSchedule: {
      XScheduleOptions sched_options;
      sched_options.k = options.queue_k;
      sched_options.speculative = options.speculative;
      sched_options.path_length = length;
      sched_options.max_inflight = options.prefetch_inflight_cap;
      auto* schedule = static_cast<XSchedule*>(add(
          std::make_unique<XSchedule>(db, plan.shared_.get(), tip,
                                      sched_options),
          "XSchedule"));
      tip = schedule;
      for (int i = 0; i < length; ++i) {
        tip = add(std::make_unique<XStep>(db, plan.shared_.get(), tip, i + 1,
                                          path.steps[i]),
                  step_name("XStep", i), i + 1);
      }
      XAssemblyOptions asm_options;
      asm_options.path_length = length;
      asm_options.s_budget = options.s_budget;
      asm_options.speculative = options.speculative;
      asm_options.first_step_reaches_all = false;  // no full-visit guarantee
      auto* assembly = static_cast<XAssembly*>(
          add(std::make_unique<XAssembly>(db, plan.shared_.get(), tip,
                                          schedule, asm_options),
              "XAssembly"));
      plan.root_ = assembly;
      plan.assembly_ = assembly;
      break;
    }
    case PlanKind::kXScan: {
      XScanOptions scan_options;
      scan_options.first_page = doc.first_page;
      scan_options.last_page = doc.last_page;
      scan_options.path_length = length;
      scan_options.restrict_to = std::move(scan_extents);
      tip = add(std::make_unique<XScan>(db, plan.shared_.get(), tip,
                                        scan_options),
                "XScan");
      for (int i = 0; i < length; ++i) {
        tip = add(std::make_unique<XStep>(db, plan.shared_.get(), tip, i + 1,
                                          path.steps[i]),
                  step_name("XStep", i), i + 1);
      }
      XAssemblyOptions asm_options;
      asm_options.path_length = length;
      asm_options.s_budget = options.s_budget;
      asm_options.speculative = true;
      // Sec. 5.4.5.4: with a guaranteed full scan and a first step that
      // reaches every node from the root, step-0 right ends are implicit.
      asm_options.first_step_reaches_all =
          path.absolute && length > 0 &&
          (path.steps[0].axis == Axis::kDescendant ||
           path.steps[0].axis == Axis::kDescendantOrSelf);
      auto* assembly = static_cast<XAssembly*>(
          add(std::make_unique<XAssembly>(db, plan.shared_.get(), tip,
                                          /*schedule=*/nullptr,
                                          asm_options),
              "XAssembly"));
      plan.root_ = assembly;
      plan.assembly_ = assembly;
      break;
    }
  }
  if (plan.root_ == nullptr) {
    return Status::InvalidArgument("unknown plan kind");
  }

#if NAVPATH_OBSERVE_ENABLED
  if (options.profile) {
    plan.profiler_ = std::make_unique<PlanProfiler>();
    plan.profiler_->step_rows.resize(static_cast<std::size_t>(length) + 1, 0);
    plan.shared_->profiler = plan.profiler_.get();
    plan.shared_->cluster.set_visit_counter(&plan.profiler_->clusters_entered);
    for (std::size_t i = 0; i < plan.operators_.size(); ++i) {
      const std::size_t slot =
          plan.profiler_->Register(labels[i].first, labels[i].second);
      plan.operators_[i]->EnableProfiling(plan.profiler_.get(), db,
                                          &plan.shared_->owner_id, slot);
    }
  }
#endif
  return plan;
}

}  // namespace navpath
