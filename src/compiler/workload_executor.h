// Multi-query workload execution over one shared database.
//
// The paper closes with the prediction that "concurrent queries [will]
// strongly benefit from asynchronous I/O, as scheduling decisions can be
// made based on more pending requests" (Sec. 7). This module realizes it:
// N XPath queries are admitted against one Database (one buffer manager,
// one simulated disk) and their operator trees are pulled cooperatively,
// one instance at a time, so every query's pending asynchronous reads pool
// in the disk's elevator simultaneously. The storage layer merges
// duplicate reads across queries (one submission, many interested owners),
// and admission control keeps the aggregate prefetch footprint of the
// active queries within the buffer budget.
//
// Three interleaving policies are provided:
//   kRoundRobin          — one pull per active query in turn (fairness),
//   kFewestPendingIos    — pull the query with the fewest in-flight
//                          prefetches, nudging it to submit more and keep
//                          the elevator pool deep,
//   kShortestRemainingCost — shortest-expected-remaining-cost first, using
//                          the cost model's per-path estimates (SJF-style,
//                          minimizes mean turnaround).
//
// With max_concurrent == 1 the executor degenerates to back-to-back
// execution, which is the baseline the workload benchmarks compare
// against.
#ifndef NAVPATH_COMPILER_WORKLOAD_EXECUTOR_H_
#define NAVPATH_COMPILER_WORKLOAD_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "compiler/cost_model.h"
#include "compiler/executor.h"
#include "compiler/plan.h"
#include "xpath/location_path.h"

namespace navpath {

enum class WorkloadPolicy {
  kRoundRobin,
  kFewestPendingIos,
  kShortestRemainingCost,
};

const char* WorkloadPolicyName(WorkloadPolicy policy);

struct WorkloadOptions {
  WorkloadPolicy policy = WorkloadPolicy::kRoundRobin;

  /// Maximum number of concurrently active queries; 0 means "as many as
  /// the buffer budget admits". 1 yields back-to-back execution.
  std::size_t max_concurrent = 0;

  /// Fraction of the buffer pool the admission controller hands out to
  /// the active queries' aggregate prefetch/speculative footprint. The
  /// head of the admission queue is always admitted, even if its
  /// footprint alone exceeds the budget (a lone query must run).
  double buffer_budget_fraction = 0.75;

  /// Optional per-query bound on outstanding prefetches while
  /// interleaving; 0 (default) leaves submission unbounded — claimed-frame
  /// eviction protection keeps the aggregate in-flight set alive, and
  /// deeper pools only help the elevator.
  std::size_t prefetch_inflight_cap = 0;

  /// Collect result nodes (document order) for node-mode queries.
  bool collect_nodes = false;

  /// Reset buffer/clock/metrics before the run (cold start).
  bool cold_start = true;

  /// Document statistics for kShortestRemainingCost and for cost-derived
  /// admission footprints; without them the policy degrades to
  /// least-recently-pulled fairness and footprints fall back to the
  /// static queue_k-based bound.
  const DocumentStats* stats = nullptr;

  /// Tighten admission footprints with the cost model's clusters_touched
  /// estimate (needs `stats`): a query that can only ever hold few
  /// clusters in flight is charged that, not its full prefetch window.
  /// Benches that track longitudinal trajectories pin this off to keep
  /// admission sequences comparable across revisions.
  bool footprint_from_stats = true;

  /// Produce an EXPLAIN ANALYZE report per query (forces plan profiling).
  bool explain = false;
};

/// Outcome of one query of the workload.
struct WorkloadQueryResult {
  /// Distinct result nodes (summed over count() operands).
  std::uint64_t count = 0;
  /// Node mode with collect_nodes: distinct nodes in document order.
  std::vector<LogicalNode> nodes;

  /// Simulated arrival time (0 for closed-system workloads where every
  /// query is present at the start), when the admission controller
  /// activated the query, and when it completed. Turnaround is measured
  /// from arrival, so queueing delay before admission counts against the
  /// query.
  SimTime arrival = 0;
  SimTime admitted_at = 0;
  SimTime finished_at = 0;
  /// Operator-tree pulls the scheduler spent on this query.
  std::uint64_t pulls = 0;

  /// EXPLAIN ANALYZE report (WorkloadOptions.explain only).
  std::shared_ptr<QueryExplain> explain;

  SimTime turnaround() const { return finished_at - arrival; }
  double turnaround_seconds() const {
    return SimClock::ToSeconds(turnaround());
  }
};

struct WorkloadResult {
  /// Per-query outcomes, in Add() order.
  std::vector<WorkloadQueryResult> queries;

  /// Simulated makespan of the run window and its CPU portion: deltas
  /// from the start of Run() to its end, so repeated runs on a shared
  /// Database report independent numbers (cold starts make the window
  /// identical to absolute readings).
  SimTime total_time = 0;
  SimTime cpu_time = 0;
  /// Database metrics delta over the run window (includes
  /// requests_merged and the elevator depth counters).
  Metrics metrics;

  double total_seconds() const { return SimClock::ToSeconds(total_time); }
  double mean_elevator_depth() const { return metrics.MeanElevatorDepth(); }
};

class WorkloadExecutor {
 public:
  /// `db` and `doc` must outlive the executor; `doc` must be imported
  /// into `db`.
  WorkloadExecutor(Database* db, const ImportedDocument& doc,
                   const WorkloadOptions& options = {});

  WorkloadExecutor(const WorkloadExecutor&) = delete;
  WorkloadExecutor& operator=(const WorkloadExecutor&) = delete;

  /// Admits a parsed query. Paths must be predicate-free (predicated
  /// queries go through ExecuteQuery's segmented evaluation, which is not
  /// pull-interleavable). Relative paths need `contexts`. `arrival` is
  /// the simulated time the query enters the system (open-system
  /// workloads); arrivals must be nondecreasing in Add() order, and a
  /// query is not admitted before its arrival.
  Status Add(const PathQuery& query, const PlanOptions& plan,
             std::vector<LogicalNode> contexts = {}, SimTime arrival = 0);

  /// Parses `query` against the database's tag registry and admits it.
  Status Add(const std::string& query, const PlanOptions& plan,
             SimTime arrival = 0);

  std::size_t size() const { return jobs_.size(); }

  /// Runs every admitted query to completion and reports per-query and
  /// aggregate outcomes. Jobs are admitted in Add() order as budget and
  /// slots free up; active jobs are interleaved by the policy. The
  /// executor can be reused: Run() clears the job list afterwards.
  Result<WorkloadResult> Run();

 private:
  struct Job {
    PathQuery query;
    PlanOptions plan_options;
    std::vector<LogicalNode> contexts;
    std::uint32_t owner_id = 0;
    SimTime arrival = 0;
    /// Buffer pages the job's prefetch state may occupy (admission).
    std::size_t footprint = 0;

    // Cost-model estimates per path (kShortestRemainingCost and
    // cost-derived admission footprints).
    std::vector<double> path_costs;
    std::vector<double> path_cards;
    /// Max estimated clusters touched by any operand path (0 = no stats).
    double clusters_touched = 0.0;

    // Run state.
    std::size_t path_index = 0;
    PathPlan plan;
    std::unordered_set<std::uint64_t> seen;  // dedup within current path
    std::uint64_t produced_in_path = 0;
    std::uint64_t last_pull = 0;  // scheduler decision stamp (fair ties)
    // Per-path measurement window (WorkloadOptions.explain only). With
    // interleaving the window includes time spent pulled away to other
    // queries; wall-clock attribution per operator comes from the plan
    // profiler instead.
    Metrics path_metrics_start;
    SimTime path_t0 = 0;
    SimTime path_io0 = 0;
    std::uint64_t path_count_before = 0;
    WorkloadQueryResult result;
  };

  /// Admission footprint of `job`: the static prefetch-state bound,
  /// tightened by the cost model's clusters_touched estimate when
  /// document statistics are available.
  std::size_t FootprintFor(const Job& job) const;

  /// Builds and opens the plan for the job's next path.
  Status StartNextPath(Job* job);

  /// Appends the finished path's EXPLAIN ANALYZE report (explain mode
  /// only). Must run after Close() and before the plan is discarded.
  void FinishPath(Job* job);

  /// Expected remaining simulated cost of `job` under the cost model.
  double RemainingCost(const Job& job) const;

  /// Picks the next active job to pull, per policy. `active` holds
  /// indices into jobs_; returns an index into `active`.
  std::size_t PickNext(const std::vector<std::size_t>& active,
                       std::uint64_t decisions);

  Database* db_;
  const ImportedDocument* doc_;
  WorkloadOptions options_;
  std::vector<Job> jobs_;
};

}  // namespace navpath

#endif  // NAVPATH_COMPILER_WORKLOAD_EXECUTOR_H_
