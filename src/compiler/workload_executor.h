// Multi-query workload execution over one shared database.
//
// The paper closes with the prediction that "concurrent queries [will]
// strongly benefit from asynchronous I/O, as scheduling decisions can be
// made based on more pending requests" (Sec. 7). This module realizes it:
// N XPath queries are admitted against one Database (one buffer manager,
// one simulated disk) and their operator trees are pulled cooperatively,
// one instance at a time, so every query's pending asynchronous reads pool
// in the disk's elevator simultaneously. The storage layer merges
// duplicate reads across queries (one submission, many interested owners),
// and admission control keeps the aggregate prefetch footprint of the
// active queries within the buffer budget.
//
// Four interleaving policies are provided:
//   kRoundRobin          — one pull per active query in turn (fairness),
//   kFewestPendingIos    — pull the query with the fewest in-flight
//                          prefetches, nudging it to submit more and keep
//                          the elevator pool deep,
//   kShortestRemainingCost — shortest-expected-remaining-cost first, using
//                          the cost model's per-path estimates (SJF-style,
//                          minimizes mean turnaround but serializes the
//                          pull pool and starves the elevator at N ≥ 4),
//   kHybrid              — classifies every active query as I/O- or
//                          CPU-bound from live signals (in-flight
//                          prefetches, the recent yield/block ratio of its
//                          pulls, remaining-clusters estimate) and
//                          alternates between round-robining the I/O-bound
//                          set (pool depth ≈ round-robin's) and SJF over
//                          the CPU-bound set (turnaround ≈ SJF's).
//
// With max_concurrent == 1 the executor degenerates to back-to-back
// execution, which is the baseline the workload benchmarks compare
// against.
#ifndef NAVPATH_COMPILER_WORKLOAD_EXECUTOR_H_
#define NAVPATH_COMPILER_WORKLOAD_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/fanout.h"
#include "compiler/cost_model.h"
#include "compiler/executor.h"
#include "compiler/plan.h"
#include "observe/metrics_registry.h"
#include "share/prefix_trie.h"
#include "store/update.h"
#include "txn/txn.h"
#include "xpath/location_path.h"

namespace navpath {

class ShardedStore;  // src/shard — never dereferenced at this layer

enum class WorkloadPolicy {
  kRoundRobin,
  kFewestPendingIos,
  kShortestRemainingCost,
  kHybrid,
};

const char* WorkloadPolicyName(WorkloadPolicy policy);

struct WorkloadOptions {
  WorkloadPolicy policy = WorkloadPolicy::kRoundRobin;

  /// Maximum number of concurrently active queries; 0 means "as many as
  /// the buffer budget admits". 1 yields back-to-back execution.
  std::size_t max_concurrent = 0;

  /// Fraction of the buffer pool the admission controller hands out to
  /// the active queries' aggregate prefetch/speculative footprint. The
  /// head of the admission queue is always admitted, even if its
  /// footprint alone exceeds the budget (a lone query must run).
  double buffer_budget_fraction = 0.75;

  /// Optional per-query bound on outstanding prefetches while
  /// interleaving; 0 (default) leaves submission unbounded — claimed-frame
  /// eviction protection keeps the aggregate in-flight set alive, and
  /// deeper pools only help the elevator.
  std::size_t prefetch_inflight_cap = 0;

  /// Collect result nodes (document order) for node-mode queries.
  bool collect_nodes = false;

  /// Reset buffer/clock/metrics before the run (cold start).
  bool cold_start = true;

  /// Document statistics for kShortestRemainingCost and for cost-derived
  /// admission footprints; without them the policy degrades to
  /// least-recently-pulled fairness and footprints fall back to the
  /// static queue_k-based bound.
  const DocumentStats* stats = nullptr;

  /// Tighten admission footprints with the cost model's clusters_touched
  /// estimate (needs `stats`): a query that can only ever hold few
  /// clusters in flight is charged that, not its full prefetch window.
  /// Benches that track longitudinal trajectories pin this off to keep
  /// admission sequences comparable across revisions.
  bool footprint_from_stats = true;

  /// Let per-query cost/cardinality estimates (admission footprints, DRR
  /// cost charging, shortest-remaining-cost ordering) use the database's
  /// path-summary synopsis where a path is in its exactness domain; off
  /// reproduces pure DocumentStats estimates byte-for-byte. Summary use
  /// inside each query's own plan stays governed by its PlanOptions.
  bool summary = true;

  /// Produce an EXPLAIN ANALYZE report per query (forces plan profiling).
  bool explain = false;

  /// Cross-query prefix sharing (src/share): detect shared predicate-free
  /// path prefixes across the closed-system part of the workload (needs
  /// `stats`), evaluate each adopted prefix ONCE with an XSchedule
  /// producer, and stream the partial instances to the member queries,
  /// which extend them with their residual steps. A prefix is adopted
  /// only when EstimateSharedPrefix says the producer plus pooled
  /// residuals undercut the members' private plans; declined groups run
  /// exactly as without sharing (byte-identical scheduling). Opt-in.
  bool enable_sharing = false;

  /// Buffer pages reserved per adopted sharing group for its stream
  /// buffer (accounting via BufferManager::ReserveAux; translated into an
  /// instance budget for the FanOut). Exceeding the budget detaches the
  /// most-lagging member, which falls back to a private plan
  /// (spill-to-recompute).
  std::size_t share_buffer_pages = 64;

  /// Drive-side request priority (ReadPriority::kHigh): tag the I/O of
  /// the cheapest-remaining-cost quartile of the active set so its few
  /// pages jump the elevator sweep instead of queueing behind long
  /// queries' scans. Needs `stats`; counted by disk.priority_jumps.
  /// Opt-in.
  bool priority_io = false;

  /// Test/diagnostic hook: invoked before every scheduling decision's
  /// pull with the Add()-order index of the chosen job and the size of
  /// the active set at that moment. Null (the default) costs nothing;
  /// the hook runs outside the simulated clock.
  std::function<void(std::size_t job_index, std::size_t active_size)>
      on_pull;

  /// MVCC transaction manager (src/txn) for mixed read/write workloads.
  /// When set, every read query runs against a Snapshot opened at
  /// activation (snapshot isolation: the query sees exactly one committed
  /// version, no matter what commits mid-flight), and AddWrite() admits
  /// write transactions that copy-on-write their touched pages and
  /// publish at commit. Null — the default — reproduces pre-MVCC
  /// execution byte for byte. Must outlive the executor. Incompatible
  /// with enable_sharing (a shared producer stream cannot serve members
  /// pinned to different versions).
  TxnManager* txn = nullptr;

  /// Upper bound on concurrently active write transactions (requires
  /// `txn`; 0 is InvalidArgument). 1 — the default — serializes writers
  /// exactly as before. Above 1 the admission gate runs writers
  /// optimistically up to this bound while the cost model's
  /// EstimateWriterAdmission, fed the live conflict rate observed this
  /// run, says retries are cheaper than queueing; under high conflict it
  /// falls back to width 1 (guaranteed aborts become short waits).
  std::size_t max_writers = 1;

  /// Bounded retry of a write transaction whose commit loses the
  /// first-committer race (Status::Aborted): the job re-begins against
  /// the new head and re-applies its ops, up to this many times, after an
  /// exponential backoff in simulated time. A transaction that exhausts
  /// the budget fails with the final Aborted status. Retries only ever
  /// trigger with max_writers > 1 (a serialized writer has nothing to
  /// conflict with inside one executor).
  std::size_t writer_max_retries = 8;

  /// Base backoff before an aborted writer's first retry; doubles per
  /// retry (capped at 64x). Simulated time, charged via the clock, so
  /// backed-off writers yield the window to their conflictors.
  SimTime writer_retry_backoff = 100 * kSimMicrosecond;

  /// Group commit: WriteOps applied per scheduling pull of a writer. 1 —
  /// the default — keeps the historical one-op-per-pull interleaving;
  /// larger batches amortize the per-pull scheduling charge over the
  /// batch and commit after the pull that applies the last op, raising
  /// commit throughput at the price of coarser write/read interleaving.
  std::size_t writer_batch = 1;

  /// Sharded store (src/shard) this workload fans out over. The plain
  /// WorkloadExecutor never dereferences it: the knob lives here so every
  /// entry point (Run, BeginStepping, the serving layer) validates shard
  /// combinations with one rule — ValidateWorkloadOptions rejects
  /// shards+txn and shards+enable_sharing — and BeginRun rejects any
  /// non-null value, directing callers to ShardedWorkloadExecutor, which
  /// splits the workload into per-shard executors whose options carry
  /// shards == nullptr again.
  const ShardedStore* shards = nullptr;
};

/// One primitive of a write transaction submitted via AddWrite.
///
/// kInsert adds a new element under `parent` after sibling `after`
/// (kInvalidNodeID = as first child), carrying optional text and
/// attributes — the auction-bid shape of the mixed benchmark. kDelete
/// removes the *last* child of `parent` whose tag is `tag` (and its
/// whole subtree), resolved through the writer's own translator at apply
/// time so ops earlier in the same transaction are visible; a parent
/// with no such child fails the job with InvalidArgument. Deletes are
/// last-child-by-tag rather than NodeID-addressed because NodeIDs are
/// physical: a concurrent commit's page split may relocate the victim
/// between submission and the (possibly retried) application.
struct WriteOp {
  enum class Kind { kInsert, kDelete };

  NodeID parent;
  NodeID after = kInvalidNodeID;
  TagId tag = 0;
  std::string text;
  std::vector<DocumentUpdater::AttributeSpec> attrs;
  Kind kind = Kind::kInsert;
};

/// Entry validation for WorkloadOptions: a serving front-end feeds these
/// from per-tenant configuration, so malformed budgets must surface as
/// InvalidArgument instead of tripping asserts mid-run. Checked by Run()
/// and BeginStepping().
Status ValidateWorkloadOptions(const WorkloadOptions& options);

/// Outcome of one query of the workload.
struct WorkloadQueryResult {
  /// Distinct result nodes (summed over count() operands).
  std::uint64_t count = 0;
  /// Node mode with collect_nodes: distinct nodes in document order.
  std::vector<LogicalNode> nodes;

  /// Per-query execution status. A query whose pull surfaces an error
  /// (e.g. Status::Corruption from a permanently bad page) is failed
  /// individually: its status records the error, its neighbors and the
  /// serving loop keep running, and Run() still returns OK.
  Status status;
  /// The query ran on a cheaper tier than requested (serving-layer
  /// overload degradation via RetierJob).
  bool degraded = false;

  /// Simulated arrival time (0 for closed-system workloads where every
  /// query is present at the start), when the admission controller
  /// activated the query, and when it completed. Turnaround is measured
  /// from arrival, so queueing delay before admission counts against the
  /// query.
  SimTime arrival = 0;
  SimTime admitted_at = 0;
  SimTime finished_at = 0;
  /// Operator-tree pulls the scheduler spent on this query.
  std::uint64_t pulls = 0;

  /// Mixed-workload (WorkloadOptions.txn) bookkeeping. Readers record
  /// the version they ran against; writers record the version they
  /// published (0 when the transaction aborted or failed). For a retried
  /// writer, snapshot_seq is the base of the attempt that committed and
  /// `aborts` counts the optimistic attempts that lost the
  /// first-committer race before it (writes/deletes_applied report the
  /// committed attempt only — aborted work is rolled back).
  bool is_write = false;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t commit_seq = 0;
  std::uint64_t writes_applied = 0;
  std::uint64_t deletes_applied = 0;
  std::uint64_t aborts = 0;

  /// EXPLAIN ANALYZE report (WorkloadOptions.explain only).
  std::shared_ptr<QueryExplain> explain;

  SimTime turnaround() const { return finished_at - arrival; }
  double turnaround_seconds() const {
    return SimClock::ToSeconds(turnaround());
  }
};

struct WorkloadResult {
  /// Per-query outcomes, in Add() order.
  std::vector<WorkloadQueryResult> queries;

  /// Simulated makespan of the run window and its CPU portion: deltas
  /// from the start of Run() to its end, so repeated runs on a shared
  /// Database report independent numbers (cold starts make the window
  /// identical to absolute readings).
  SimTime total_time = 0;
  SimTime cpu_time = 0;
  /// Database metrics delta over the run window (includes
  /// requests_merged and the elevator depth counters).
  Metrics metrics;

  /// Scheduler-side observability for the run: counters
  /// "sched.decisions", "sched.classified.io_bound" /
  /// "sched.classified.cpu_bound" (jobs so classified, summed over
  /// hybrid decisions) and "sched.picks.io_rr" / "sched.picks.cpu_sjf"
  /// (which half of the hybrid served each decision), plus the
  /// "sched.pool_depth" histogram sampling the drive's pending pool at
  /// every decision. With sharing enabled, also the share.* metrics:
  /// counters "share.groups_adopted" / "share.groups_declined" /
  /// "share.members_shared" / "share.producer_pulls" /
  /// "share.consumer_pulls" / "share.instances_streamed" /
  /// "share.dedup_hits" / "share.spills" / "share.private_fallbacks",
  /// the "share.prefix_hit_depth" histogram (shared steps per member)
  /// and the "share.buffered_instances" histogram (stream-buffer
  /// occupancy sampled at every shared pull). Recording is
  /// measurement-side only — it never touches the simulated clock.
  RegistrySnapshot scheduler;

  double total_seconds() const { return SimClock::ToSeconds(total_time); }
  double mean_elevator_depth() const { return metrics.MeanElevatorDepth(); }
};

class WorkloadExecutor {
 public:
  /// `db` and `doc` must outlive the executor; `doc` must be imported
  /// into `db`.
  WorkloadExecutor(Database* db, const ImportedDocument& doc,
                   const WorkloadOptions& options = {});

  WorkloadExecutor(const WorkloadExecutor&) = delete;
  WorkloadExecutor& operator=(const WorkloadExecutor&) = delete;

  /// Admits a parsed query. Paths must be predicate-free (predicated
  /// queries go through ExecuteQuery's segmented evaluation, which is not
  /// pull-interleavable). Relative paths need `contexts`. `arrival` is
  /// the simulated time the query enters the system (open-system
  /// workloads); arrivals must be nondecreasing in Add() order, and a
  /// query is not admitted before its arrival. `deadline` (absolute
  /// simulated time; 0 = none) marks the query's turnaround target: with
  /// WorkloadOptions.priority_io, a job whose remaining slack is tight
  /// submits its reads at high drive priority and is always placed inside
  /// the hybrid scheduling window. A nonzero deadline at or before the
  /// arrival is rejected as InvalidArgument.
  Status Add(const PathQuery& query, const PlanOptions& plan,
             std::vector<LogicalNode> contexts = {}, SimTime arrival = 0,
             SimTime deadline = 0);

  /// Parses `query` against the database's tag registry and admits it.
  Status Add(const std::string& query, const PlanOptions& plan,
             SimTime arrival = 0, SimTime deadline = 0);

  /// Admits a write transaction (requires WorkloadOptions.txn): at
  /// activation it opens a WriterTxn, applies writer_batch WriteOps per
  /// scheduling pull (so writes interleave with reads at pull
  /// granularity; batches amortize the commit), and commits on the pull
  /// after the last op. A commit that loses the first-committer race
  /// (Status::Aborted) is retried up to writer_max_retries times against
  /// the new head after an exponential backoff; a transaction that
  /// exhausts the budget fails individually — its neighbors keep
  /// running. Arrivals share the nondecreasing rule with Add(). Up to
  /// max_writers writers are active at once when the cost model prices
  /// optimistic retries below serialization; queued writers wait,
  /// readers are unaffected.
  Status AddWrite(std::vector<WriteOp> ops, SimTime arrival = 0);

  std::size_t size() const { return jobs_.size(); }

  /// Runs every admitted query to completion and reports per-query and
  /// aggregate outcomes. Jobs are admitted in Add() order as budget and
  /// slots free up; active jobs are interleaved by the policy. The
  /// executor can be reused: Run() clears the job list afterwards.
  Result<WorkloadResult> Run();

  // --- Stepping interface (serving-layer driver) -----------------------
  //
  // Run() owns its admission policy (FIFO in Add() order). A serving
  // front-end (src/serve) instead drives the engine one scheduling
  // decision at a time and decides itself which job to activate when —
  // per-tenant queues, weighted fair sharing, overload degradation. The
  // pull loop (PullOnce) is the very same code Run() executes, so a
  // stepping driver that mirrors Run()'s admission policy reproduces its
  // schedule byte for byte.

  /// Enters stepping mode: validates options, performs the cold start and
  /// measurement-window setup Run() would, and leaves admission to the
  /// caller. Jobs may still be Add()ed while stepping (nondecreasing
  /// arrivals). `expected_jobs` declares the workload size the driver
  /// intends to feed in: scheduling rules that depend on the total count
  /// (the hybrid window-widening point) use it, so a driver that adds
  /// jobs lazily at arrival time still reproduces Run()'s decisions. Pass
  /// 0 when unknown (the live job count is used instead). Cross-query
  /// sharing is a whole-workload plan and is not available under external
  /// admission (InvalidArgument).
  Status BeginStepping(std::size_t expected_jobs = 0);

  /// Returned by StepOnce when no job completed on that decision.
  static constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

  /// Activates job `index` (opens its plan, charges its footprint). The
  /// job must have arrived and not yet have been activated. A plan that
  /// fails to open fails the job individually (its result carries the
  /// status) and still returns OK — the serving loop must survive one
  /// query's bad plan.
  Status ActivateJob(std::size_t index);

  /// Re-plans a not-yet-activated job onto different plan options (the
  /// overload controller's cheaper tier: Simple-method chain or reduced
  /// queue_k). Re-prices the job's cost estimates and admission
  /// footprint, and marks its result degraded.
  Status RetierJob(std::size_t index, const PlanOptions& plan);

  /// Executes one scheduling decision over the activated jobs: picks per
  /// policy, pulls once, and handles yields/completions exactly as
  /// Run()'s loop does. Returns the jobs_ index of the job that completed
  /// (or individually failed) on this decision, kNoJob otherwise.
  /// InvalidArgument when nothing is active.
  Result<std::size_t> StepOnce();

  /// Leaves stepping mode: drains orphaned prefetches and reports the run
  /// exactly as Run() does (per-query results in Add() order, window
  /// deltas, scheduler snapshot). Clears the job list.
  Result<WorkloadResult> EndStepping();

  // Driver-side introspection (valid while stepping).
  std::size_t active_count() const { return run_active_.size(); }
  std::size_t footprint_used() const { return footprint_used_; }
  std::size_t footprint_budget() const { return budget_; }
  /// Whether Run()'s admission gate would admit `index` right now: a free
  /// slot and either an empty active set or room in the buffer budget.
  bool CanAdmit(std::size_t index) const;
  /// The cost model's up-front estimate for the whole job (sum over its
  /// paths; 0 without stats). The DRR admission quantum currency.
  double EstimatedCost(std::size_t index) const;
  SimTime JobArrival(std::size_t index) const;
  const WorkloadQueryResult& JobResult(std::size_t index) const;

 private:
  struct Job {
    PathQuery query;
    PlanOptions plan_options;
    std::vector<LogicalNode> contexts;
    std::uint32_t owner_id = 0;
    SimTime arrival = 0;
    /// Absolute turnaround deadline (0 = none): maps onto drive read
    /// priority and hybrid-window placement, never onto correctness.
    SimTime deadline = 0;
    /// Buffer pages the job's prefetch state may occupy (admission).
    std::size_t footprint = 0;
    /// Lifecycle under external admission (BeginStepping drivers). Run()
    /// keeps its own next_admit_ cursor and leaves these in sync.
    bool activated = false;
    bool done = false;

    // Mixed-workload state (WorkloadOptions.txn). A read job pins the
    // snapshot its plans translate through; a write job owns the open
    // writer transaction and steps through write_ops one pull at a time.
    bool is_write = false;
    std::vector<WriteOp> write_ops;
    std::size_t ops_done = 0;
    std::shared_ptr<Snapshot> snapshot;
    std::unique_ptr<WriterTxn> writer;

    // Cost-model estimates per path (kShortestRemainingCost, kHybrid and
    // cost-derived admission footprints).
    std::vector<double> path_costs;
    std::vector<double> path_cards;
    std::vector<double> path_clusters;
    /// Max estimated clusters touched by any operand path (0 = no stats).
    double clusters_touched = 0.0;

    // Sharing state (WorkloadOptions.enable_sharing). A job in a group
    // consumes the group's shared stream for its first path; kNoGroup
    // means private execution (never grouped, group declined, or the job
    // was detached and fell back).
    std::size_t share_group = static_cast<std::size_t>(-1);
    std::size_t share_slot = 0;

    // Run state.
    std::size_t path_index = 0;
    PathPlan plan;
    std::unordered_set<std::uint64_t> seen;  // dedup within current path
    std::uint64_t produced_in_path = 0;
    std::uint64_t last_pull = 0;  // scheduler decision stamp (fair ties)
    // Classification window (kHybrid): snapshots of the job's pull count
    // and the plan's yield/block counters at the window start. Reset
    // every kClassifyWindow pulls and whenever a new path plan opens.
    std::uint64_t window_pulls0 = 0;
    std::uint64_t window_yields0 = 0;
    std::uint64_t window_blocks0 = 0;
    // Per-path measurement window (WorkloadOptions.explain only). With
    // interleaving the window includes time spent pulled away to other
    // queries; wall-clock attribution per operator comes from the plan
    // profiler instead.
    Metrics path_metrics_start;
    SimTime path_t0 = 0;
    SimTime path_io0 = 0;
    std::uint64_t path_count_before = 0;
    WorkloadQueryResult result;
  };

  /// One adopted sharing group: the producer plan evaluating the common
  /// prefix, the FanOut streaming its instances, and bookkeeping for
  /// admission/buffer accounting. Lives for the whole Run().
  struct ShareGroup {
    LocationPath prefix;
    std::vector<std::size_t> members;  // jobs_ indices, ascending
    PathPlan producer;
    std::unique_ptr<FanOut> fanout;
    /// Producer-side admission footprint, charged once when the first
    /// member is admitted and released when the group drains.
    std::size_t footprint = 0;
    bool charged = false;
    /// Members still attached to the stream (not finished / fallen back).
    std::size_t remaining = 0;
    /// Stream-buffer pages reserved against the buffer manager.
    std::size_t reserved_pages = 0;
  };

  static constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

  /// Computes the cost-model estimates (per-path costs, cardinalities,
  /// clusters) for the job's current plan options. Shared by Add and
  /// RetierJob.
  void ComputeEstimates(Job* job) const;

  /// Shared setup of Run() and BeginStepping(): option validation, cold
  /// start, measurement-window snapshots, per-query prefetch caps, the
  /// admission budget, and scheduler-state reset. `n_target` is the
  /// effective concurrency bound used for the prefetch-cap decision.
  Status BeginRun();

  /// One scheduling decision over run_active_: pick, pull, account.
  /// Handles yields, results, path transitions, sharing detach/fallback,
  /// and completion (including footprint release). A pull that surfaces
  /// an error fails that job alone: the error lands in the job's result
  /// status and the loop keeps serving its neighbors. Returns the jobs_
  /// index of the job that finished on this decision, kNoJob otherwise.
  Result<std::size_t> PullOnce();

  /// Completion bookkeeping shared by the success and failure exits of
  /// PullOnce: stamps finished_at, frees plan + footprint, leaves any
  /// share group, and removes the job from the active set.
  void FinishJob(std::size_t active_pos);

  /// Builds the final WorkloadResult from the measurement window (shared
  /// by Run and EndStepping).
  WorkloadResult CollectResult();

  /// Admission footprint of `job`: the static prefetch-state bound,
  /// tightened by the cost model's clusters_touched estimate when
  /// document statistics are available.
  std::size_t FootprintFor(const Job& job) const;

  /// Sharing front end, run once per Run(): inserts the eligible queries
  /// (single absolute path, arrival 0) into a PrefixTrie, prices every
  /// extracted group with EstimateSharedPrefix, and builds producer plan
  /// + FanOut for each adopted group. Makes no simulated-clock charges,
  /// so a run where every group is declined schedules byte-identically
  /// to one with sharing disabled.
  Status PlanShareGroups();

  /// Builds and opens the consumer plan for a shared member's first
  /// path: FanOutReader over the group's stream, extended by UnnestMap
  /// operators for the residual steps.
  Status StartSharedPath(Job* job);

  /// Detaches `job` from its group (finished or spilled); the last one
  /// out finalizes the group: transfers the FanOut's stream statistics
  /// into the share.* counters, releases the reserved buffer pages and
  /// the producer footprint, and destroys the producer plan.
  void LeaveShareGroup(Job* job);

  /// Spill-to-recompute: close `job`'s consumer plan, leave the group,
  /// and restart the path privately, preserving the result-level dedup
  /// set so instances already emitted are not double-counted.
  Status FallBackToPrivate(Job* job);

  /// Builds and opens the plan for the job's next path.
  Status StartNextPath(Job* job);

  /// Applies one WriteOp through the job's open writer transaction
  /// (insert or last-child-by-tag delete), bumping the result counters.
  Status ApplyWriteOp(Job* job, const WriteOp& op);

  /// How many writers the admission gate runs concurrently right now:
  /// max_writers while the cost model prices optimistic retries (at the
  /// conflict rate observed so far this run) below serialized queueing,
  /// 1 otherwise. Always 1 when max_writers == 1.
  std::size_t WriterLimit() const;

  /// Appends the finished path's EXPLAIN ANALYZE report (explain mode
  /// only). Must run after Close() and before the plan is discarded.
  void FinishPath(Job* job);

  /// Expected remaining simulated cost of `job` under the cost model.
  /// Completed paths contribute zero; the current path is discounted by
  /// result-cardinality progress (cardinality clamped to ≥ 1, so
  /// degenerate estimates still shrink as output is produced).
  double RemainingCost(const Job& job) const;

  /// Expected distinct clusters `job` still has to load, discounted like
  /// RemainingCost. 0 without document statistics.
  double RemainingClusters(const Job& job) const;

  /// kHybrid classification. A job is I/O-bound when it has prefetches
  /// in flight and either its recent pulls mostly ended waiting on the
  /// drive (yield/block ratio over the classification window) or the
  /// cost model says it must still load more clusters than it has on
  /// order — pulling it keeps the elevator pool deep. Everything else is
  /// CPU-bound and competes on shortest remaining cost.
  bool IoBound(const Job& job) const;

  /// Round-robin over `candidates` (positions into `active`) by stable
  /// job id: picks the smallest job index greater than *cursor, wrapping
  /// to the smallest overall, and advances *cursor. Stable ids make the
  /// rotation immune to active-set reshuffling — every candidate is
  /// served within one rotation even as jobs finish or join.
  std::size_t RotatePick(const std::vector<std::size_t>& active,
                         const std::vector<std::size_t>& candidates,
                         std::size_t* cursor) const;

  /// Shortest-remaining-cost over `candidates` (positions into
  /// `active`); ties go to the least recently pulled job.
  std::size_t SjfPick(const std::vector<std::size_t>& active,
                      const std::vector<std::size_t>& candidates) const;

  /// Picks the next active job to pull, per policy. `active` holds
  /// indices into jobs_; returns an index into `active`.
  std::size_t PickNext(const std::vector<std::size_t>& active,
                       std::uint64_t decisions);

  /// Deadline urgency: the job's remaining slack no longer covers its
  /// estimated remaining cost (with headroom). Urgent jobs submit reads
  /// at high drive priority and stay inside the hybrid window.
  bool DeadlineUrgent(const Job& job) const;

  Database* db_;
  const ImportedDocument* doc_;
  WorkloadOptions options_;
  std::vector<Job> jobs_;
  std::vector<ShareGroup> groups_;
  /// Run/stepping state: the active set (jobs_ indices), the decision
  /// stamp, the yield streak, and the measurement-window bases.
  std::vector<std::size_t> run_active_;
  std::uint64_t run_decisions_ = 0;
  std::size_t consecutive_yields_ = 0;
  std::size_t budget_ = 0;
  bool stepping_ = false;
  /// Workload size the count-relative scheduling rules divide by: the
  /// Add()ed job count under Run(), the driver-declared expected total
  /// under stepping (where jobs may not all exist yet).
  std::size_t n_total_ = 0;
  Metrics window_start_;
  SimTime window_t0_ = 0;
  SimTime window_cpu0_ = 0;
  PathInstance step_inst_;
  /// Aggregate admission footprint of the active set (plus charged
  /// producer footprints); a member so FallBackToPrivate can re-charge a
  /// spilled job's private footprint mid-run.
  std::size_t footprint_used_ = 0;
  /// Stable-id rotation cursors (jobs_ index of the last pick; SIZE_MAX
  /// before the first): one for kRoundRobin, one for kHybrid's I/O set.
  std::size_t rr_cursor_ = static_cast<std::size_t>(-1);
  std::size_t hybrid_io_cursor_ = static_cast<std::size_t>(-1);
  /// Jobs finished in the current Run() (widens kHybrid's window).
  std::size_t completed_ = 0;
  /// Write transactions currently active (WorkloadOptions.txn). The
  /// admission gate holds this at WriterLimit(): width max_writers while
  /// optimistic retries price below serialized queueing under the live
  /// conflict rate, width 1 once conflicts make aborts the likely
  /// outcome (queueing converts guaranteed aborts into short waits).
  std::size_t writers_active_ = 0;
  /// Live conflict statistics feeding WriterLimit(): commit attempts and
  /// first-committer-race losses this run, plus an EWMA of the simulated
  /// time one commit attempt takes (activation-to-attempt, divided by
  /// the attempt count).
  std::uint64_t writer_commit_attempts_ = 0;
  std::uint64_t writer_conflict_aborts_ = 0;
  double writer_cost_ewma_ = 0.0;
  /// Scheduler observability for the current Run() (reset at its start);
  /// snapshotted into WorkloadResult::scheduler.
  MetricsRegistry sched_;
};

}  // namespace navpath

#endif  // NAVPATH_COMPILER_WORKLOAD_EXECUTOR_H_
