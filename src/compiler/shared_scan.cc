#include "compiler/shared_scan.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "algebra/xstep.h"

namespace navpath {
namespace {

/// One path's private operator stack over the shared cluster context.
struct PathLane {
  FeedOperator* feed = nullptr;
  XAssembly* assembly = nullptr;
  std::vector<std::unique_ptr<PathOperator>> operators;
  int length = 0;
  bool context_fed = false;
  std::uint64_t count = 0;
};

}  // namespace

Result<SharedScanResult> ExecuteQuerySharedScan(
    Database* db, const ImportedDocument& doc, const PathQuery& query,
    bool cold_start) {
  SharedScanOptions options;
  options.cold_start = cold_start;
  return ExecuteQuerySharedScan(db, doc, query, options);
}

Result<SharedScanResult> ExecuteQuerySharedScan(
    Database* db, const ImportedDocument& doc, const PathQuery& query,
    const SharedScanOptions& options) {
  const bool cold_start = options.cold_start;
  if (options.s_budget != 0) {
    return Status::InvalidArgument(
        "shared scan cannot honor an s_budget: fallback mode would make "
        "one lane navigate across borders mid-scan; use ExecuteQuery");
  }
  if (query.paths.empty()) {
    return Status::InvalidArgument("query without paths");
  }
  for (const LocationPath& path : query.paths) {
    if (!path.absolute) {
      return Status::InvalidArgument(
          "shared scan supports absolute paths only");
    }
    if (path.HasPredicates()) {
      return Status::NotImplemented(
          "shared scan does not evaluate predicates; use ExecuteQuery");
    }
  }
  if (cold_start) {
    NAVPATH_RETURN_NOT_OK(db->ResetMeasurement());
  }

  PlanSharedState shared(db);
  std::vector<PathLane> lanes(query.paths.size());
  int max_length = 0;
  for (std::size_t i = 0; i < query.paths.size(); ++i) {
    const LocationPath& path = query.paths[i];
    PathLane& lane = lanes[i];
    lane.length = static_cast<int>(path.length());
    max_length = std::max(max_length, lane.length);
    auto feed = std::make_unique<FeedOperator>();
    lane.feed = feed.get();
    PathOperator* tip = feed.get();
    lane.operators.push_back(std::move(feed));
    for (int s = 0; s < lane.length; ++s) {
      lane.operators.push_back(std::make_unique<XStep>(
          db, &shared, tip, s + 1, path.steps[static_cast<std::size_t>(s)]));
      tip = lane.operators.back().get();
    }
    XAssemblyOptions asm_options;
    asm_options.path_length = lane.length;
    asm_options.speculative = true;
    asm_options.s_budget = 0;  // no fallback in shared-scan mode
    asm_options.first_step_reaches_all =
        lane.length > 0 &&
        (path.steps[0].axis == Axis::kDescendant ||
         path.steps[0].axis == Axis::kDescendantOrSelf);
    lane.operators.push_back(std::make_unique<XAssembly>(
        db, &shared, tip, /*schedule=*/nullptr, asm_options));
    lane.assembly =
        static_cast<XAssembly*>(lane.operators.back().get());
    NAVPATH_RETURN_NOT_OK(lane.assembly->Open());
  }

  SharedScanResult result;
  result.path_counts.assign(lanes.size(), 0);

  // One sequential pass; every lane sees every cluster.
  for (PageId page = doc.first_page; page <= doc.last_page; ++page) {
    NAVPATH_RETURN_NOT_OK(shared.cluster.Switch(page));
    shared.visited_clusters.insert(page);
    const ClusterView& view = shared.cluster.view();

    for (PathLane& lane : lanes) {
      if (!lane.context_fed && doc.root.page == page) {
        lane.feed->Push(PathInstance::Context(doc.root, doc.root_order));
        db->clock()->ChargeCpu(db->costs().instance_op);
        lane.context_fed = true;
      }
    }
    // Speculative seeds: the slot scan is shared across lanes; each lane
    // receives one seed per (border, step of its own path).
    for (SlotId slot = 0; slot < view.slot_count(); ++slot) {
      view.ChargeHop();
      if (!view.IsLive(slot) || !view.IsBorder(slot)) continue;
      const NodeID border = view.IdOf(slot);
      for (PathLane& lane : lanes) {
        for (int step = 0; step < lane.length; ++step) {
          lane.feed->Push(PathInstance::Seed(border, step));
          db->clock()->ChargeCpu(db->costs().instance_op);
          ++db->metrics()->speculative_instances;
          ++db->metrics()->instances_created;
        }
      }
    }
    // Drain every lane while this cluster is pinned.
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      PathInstance inst;
      for (;;) {
        NAVPATH_ASSIGN_OR_RETURN(const bool have,
                                 lanes[i].assembly->Next(&inst));
        if (!have) break;
        ++result.path_counts[i];
        if (query.mode == PathQuery::Mode::kNodes) {
          result.combined.nodes.push_back(
              LogicalNode{inst.right.node, 0, inst.right.order});
        }
      }
    }
  }
  shared.cluster.Clear();
  for (PathLane& lane : lanes) {
    NAVPATH_RETURN_NOT_OK(lane.assembly->Close());
  }
  for (const std::uint64_t c : result.path_counts) {
    result.combined.count += c;
  }

  if (query.mode == PathQuery::Mode::kNodes &&
      result.combined.nodes.size() > 1) {
    const double n = static_cast<double>(result.combined.nodes.size());
    db->clock()->ChargeCpu(static_cast<SimTime>(
        n * std::max(1.0, std::log2(n)) *
        static_cast<double>(db->costs().sort_op)));
    std::sort(result.combined.nodes.begin(), result.combined.nodes.end(),
              [](const LogicalNode& a, const LogicalNode& b) {
                return a.order < b.order;
              });
  }
  result.combined.total_time = db->clock()->now();
  result.combined.cpu_time = db->clock()->cpu_time();
  result.combined.metrics = *db->metrics();
  return result;
}

}  // namespace navpath
