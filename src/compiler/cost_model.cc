#include "compiler/cost_model.h"

#include <algorithm>
#include <cmath>

namespace navpath {

DocumentStats DocumentStats::Build(const DomTree& tree,
                                   const ImportedDocument& doc,
                                   std::size_t page_size) {
  (void)page_size;
  DocumentStats stats;
  stats.node_count_ = tree.size();
  stats.page_count_ = doc.page_count();
  stats.border_records_ = doc.border_pairs * 2;
  stats.root_tag_ = tree.empty() ? 0 : tree.node(tree.root()).tag;
  if (tree.size() > 1) {
    stats.crossing_probability_ =
        static_cast<double>(doc.border_pairs) /
        static_cast<double>(tree.size() - 1);  // crossings per logical edge
  }

  // One depth-first pass; every node contributes one increment per
  // ancestor (descendant-pair stats) and one per parent (child-pair).
  std::vector<DomNodeId> stack;
  std::vector<TagId> tag_path;
  std::vector<std::pair<DomNodeId, bool>> events;
  events.emplace_back(tree.root(), false);
  while (!events.empty()) {
    const auto [v, post] = events.back();
    events.pop_back();
    if (post) {
      tag_path.pop_back();
      continue;
    }
    const TagId tag = tree.node(v).tag;
    ++stats.tag_counts_[tag];
    for (DomNodeId a = tree.node(v).first_attr; a != kNilDomNode;
         a = tree.node(a).next_sibling) {
      ++stats.attr_pair_[PairKey(tag, tree.node(a).tag)];
      ++stats.attr_any_[tag];
      // Attribute names join the tag universe (used as cardinality caps).
      ++stats.tag_counts_[tree.node(a).tag];
    }
    if (!tag_path.empty()) {
      const TagId parent_tag = tag_path.back();
      ++stats.child_pair_[PairKey(parent_tag, tag)];
      ++stats.child_any_[parent_tag];
    }
    for (const TagId ancestor_tag : tag_path) {
      ++stats.desc_pair_[PairKey(ancestor_tag, tag)];
      ++stats.desc_any_[ancestor_tag];
    }
    tag_path.push_back(tag);
    events.emplace_back(v, true);
    for (DomNodeId c = tree.node(v).last_child; c != kNilDomNode;
         c = tree.node(c).prev_sibling) {
      events.emplace_back(c, false);
    }
  }
  return stats;
}

std::uint64_t DocumentStats::CountOfTag(TagId tag) const {
  auto it = tag_counts_.find(tag);
  return it == tag_counts_.end() ? 0 : it->second;
}

std::uint64_t DocumentStats::AttributeCount(TagId parent, TagId attr) const {
  auto it = attr_pair_.find(PairKey(parent, attr));
  return it == attr_pair_.end() ? 0 : it->second;
}

std::uint64_t DocumentStats::AttributeCountAny(TagId parent) const {
  auto it = attr_any_.find(parent);
  return it == attr_any_.end() ? 0 : it->second;
}

std::uint64_t DocumentStats::ChildCount(TagId parent, TagId child) const {
  auto it = child_pair_.find(PairKey(parent, child));
  return it == child_pair_.end() ? 0 : it->second;
}

std::uint64_t DocumentStats::ChildCountAny(TagId parent) const {
  auto it = child_any_.find(parent);
  return it == child_any_.end() ? 0 : it->second;
}

std::uint64_t DocumentStats::DescendantCount(TagId parent, TagId desc) const {
  auto it = desc_pair_.find(PairKey(parent, desc));
  return it == desc_pair_.end() ? 0 : it->second;
}

std::uint64_t DocumentStats::DescendantCountAny(TagId parent) const {
  auto it = desc_any_.find(parent);
  return it == desc_any_.end() ? 0 : it->second;
}

namespace {

/// Expected node counts per tag at the current step frontier.
using TagDistribution = std::unordered_map<TagId, double>;

double Total(const TagDistribution& dist) {
  double total = 0;
  for (const auto& [tag, n] : dist) total += n;
  return total;
}

/// All tags the document contains (the estimation universe).
std::vector<TagId> UniverseOf(const DocumentStats& stats,
                              const LocationPath& path) {
  // The distribution only ever contains tags reachable through steps, and
  // wildcard steps need the whole alphabet. Collect from path + stats by
  // probing tag ids 0..max seen in the path plus all counted tags. The
  // stats keep exact per-tag counts, so iterate those.
  std::vector<TagId> tags;
  for (TagId t = 0; t < 4096; ++t) {
    if (stats.CountOfTag(t) > 0) tags.push_back(t);
  }
  (void)path;
  return tags;
}

}  // namespace

PathEstimate EstimatePath(const DocumentStats& stats,
                          const LocationPath& path,
                          const PathSummary* summary) {
  return EstimatePathDetailed(stats, path, nullptr, summary);
}

namespace {

/// Exact estimate from the path-summary synopsis; only called when the
/// path lies in the summary's exactness domain.
PathEstimate EstimateFromSummary(const DocumentStats& stats,
                                 const PathSummary& summary,
                                 const LocationPath& path,
                                 std::vector<double>* per_step) {
  const SummaryMatch match = summary.Match(path);
  NAVPATH_DCHECK(match.applicable);
  PathEstimate estimate;
  estimate.summary_exact = true;
  estimate.result_cardinality = static_cast<double>(match.result_count);
  estimate.nodes_examined = static_cast<double>(match.nodes_examined);
  // Crossings stay an estimate: the synopsis counts instances, not which
  // logical edges became border pairs at import.
  estimate.crossings = estimate.nodes_examined * stats.crossing_probability();
  // The touched-extent union is the page set any navigational plan can
  // be confined to — a hard bound, unlike balls-into-bins.
  const std::uint64_t extent_pages =
      PathSummary::ExtentPages(summary.ExtentUnion(match.touched));
  estimate.scan_pages = static_cast<double>(std::max<std::uint64_t>(
      1, extent_pages));
  // Same balls-into-bins shape as the stats path, but the candidate page
  // set is the exact extent union instead of an examined-nodes guess.
  const double candidate_pages = std::min(
      estimate.scan_pages,
      std::max(1.0, estimate.nodes_examined / stats.nodes_per_page()));
  estimate.clusters_touched = std::min(
      estimate.scan_pages,
      1.0 + candidate_pages *
                (1.0 - std::exp(-estimate.crossings / candidate_pages)));
  if (per_step != nullptr) {
    per_step->clear();
    per_step->reserve(match.steps.size());
    for (const SummaryMatch::Step& step : match.steps) {
      per_step->push_back(static_cast<double>(step.selected));
    }
  }
  return estimate;
}

}  // namespace

PathEstimate EstimatePathDetailed(const DocumentStats& stats,
                                  const LocationPath& path,
                                  std::vector<double>* per_step,
                                  const PathSummary* summary) {
  if (summary != nullptr && PathSummary::Supports(path)) {
    return EstimateFromSummary(stats, *summary, path, per_step);
  }
  PathEstimate estimate;
  if (per_step != nullptr) {
    per_step->clear();
    per_step->reserve(path.steps.size());
  }
  const std::vector<TagId> universe = UniverseOf(stats, path);
  TagDistribution dist;
  dist[stats.root_tag()] = 1.0;

  auto per_node = [&](TagId t, std::uint64_t pair_count) {
    const std::uint64_t c = stats.CountOfTag(t);
    return c == 0 ? 0.0
                  : static_cast<double>(pair_count) / static_cast<double>(c);
  };

  for (const LocationStep& step : path.steps) {
    TagDistribution next;
    double examined = 0;
    const bool name_test = step.test.kind == NodeTest::Kind::kName;
    auto admit = [&](TagId result_tag, double n) {
      if (n <= 0) return;
      if (name_test && result_tag != step.test.tag) return;
      double& slot = next[result_tag];
      slot = std::min(slot + n,
                      static_cast<double>(stats.CountOfTag(result_tag)));
    };

    for (const auto& [t, n] : dist) {
      switch (step.axis) {
        case Axis::kSelf:
          examined += n;
          admit(t, n);
          break;
        case Axis::kAttribute:
          examined += n * per_node(t, stats.AttributeCountAny(t));
          for (const TagId x : universe) {
            admit(x, n * per_node(t, stats.AttributeCount(t, x)));
          }
          break;
        case Axis::kChild:
          examined += n * per_node(t, stats.ChildCountAny(t));
          for (const TagId x : universe) {
            admit(x, n * per_node(t, stats.ChildCount(t, x)));
          }
          break;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          examined += n * per_node(t, stats.DescendantCountAny(t));
          for (const TagId x : universe) {
            admit(x, n * per_node(t, stats.DescendantCount(t, x)));
          }
          if (step.axis == Axis::kDescendantOrSelf) admit(t, n);
          break;
        case Axis::kParent:
          examined += n;
          for (const TagId x : universe) {
            // #t-nodes whose parent is an x-node, averaged per t-node.
            admit(x, n * per_node(t, stats.ChildCount(x, t)));
          }
          break;
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf:
          for (const TagId x : universe) {
            // E[#x-ancestors of a t-node] = (x,t) descendant pairs / #t.
            const double anc = n * per_node(t, stats.DescendantCount(x, t));
            examined += anc;
            admit(x, anc);
          }
          if (step.axis == Axis::kAncestorOrSelf) admit(t, n);
          break;
        case Axis::kFollowingSibling:
        case Axis::kPrecedingSibling: {
          // Approximate: half of the parent's other children, weighted by
          // the parent-tag distribution of t-nodes.
          for (const TagId p : universe) {
            const double parent_share = per_node(t, stats.ChildCount(p, t));
            if (parent_share <= 0) continue;
            for (const TagId x : universe) {
              const double sib =
                  0.5 * n * parent_share * per_node(p, stats.ChildCount(p, x));
              examined += sib;
              admit(x, sib);
            }
          }
          break;
        }
      }
    }
    estimate.nodes_examined += examined;
    estimate.crossings += examined * stats.crossing_probability();
    dist = std::move(next);
    if (per_step != nullptr) per_step->push_back(Total(dist));
  }
  estimate.result_cardinality = Total(dist);
  // Distinct clusters: the crossings land on the pages that hold the
  // examined nodes; balls-into-bins gives the expected distinct count.
  const double candidate_pages = std::min(
      static_cast<double>(stats.page_count()),
      std::max(1.0, estimate.nodes_examined / stats.nodes_per_page()));
  estimate.clusters_touched =
      1.0 + candidate_pages *
                (1.0 - std::exp(-estimate.crossings / candidate_pages));
  // Without a summary nothing restricts a sweep: XScan visits every page.
  estimate.scan_pages = std::max(1.0, static_cast<double>(stats.page_count()));
  return estimate;
}

double EstimatedProgress(std::uint64_t produced,
                         double estimated_cardinality) {
  const double card = std::max(1.0, estimated_cardinality);
  return std::min(1.0, static_cast<double>(produced) / card);
}

namespace {

// Physical access costs (nanoseconds). The two factors below are
// calibrated against the measured simulator behaviour on fragmented
// layouts: navigational (Simple) access streams retain some locality,
// paying roughly half of a worst-case random read per page; the
// bounded-window C-SCAN elevator of the async path improves on random
// access by about a factor of six, independent of request density.
struct PhysicalReads {
  double sequential_read = 0;
  double random_read = 0;
  double elevator_read = 0;
};

PhysicalReads EstimatePhysicalReads(const DocumentStats& stats,
                                    const DiskModel& disk) {
  constexpr double kSimpleLocality = 0.55;
  constexpr double kElevatorGain = 8.0;
  PhysicalReads reads;
  reads.sequential_read = static_cast<double>(disk.transfer_time);
  const double worst_random = static_cast<double>(
      disk.AccessCost(0, std::max<PageId>(1, stats.page_count() / 3)));
  reads.random_read = reads.sequential_read +
                      kSimpleLocality * (worst_random - reads.sequential_read);
  reads.elevator_read = reads.sequential_read +
                        (worst_random - reads.sequential_read) / kElevatorGain;
  return reads;
}

}  // namespace

PlanCosts EstimatePlanCosts(const DocumentStats& stats,
                            const LocationPath& path, const DiskModel& disk,
                            const CpuCostModel& cpu,
                            const PathSummary* summary) {
  const PathEstimate est = EstimatePath(stats, path, summary);
  const double pages = static_cast<double>(stats.page_count());
  // Pages an XScan sweep visits: the whole document, or — with a summary
  // — only the touched-extent union (the sweep skips over the rest).
  const double swept = std::min(std::max(1.0, est.scan_pages), pages);
  const double swept_fraction = pages == 0 ? 1.0 : swept / pages;
  const double touched = std::max(1.0, est.clusters_touched);

  const PhysicalReads reads = EstimatePhysicalReads(stats, disk);
  const double sequential_read = reads.sequential_read;
  const double random_read = reads.random_read;
  const double elevator_read = reads.elevator_read;

  const double hop = static_cast<double>(cpu.record_hop + cpu.node_test);
  const double nav_cpu = est.nodes_examined * hop;
  const double crossing_cpu =
      est.crossings *
      static_cast<double>(cpu.swizzle + cpu.buffer_probe + cpu.set_op);

  PlanCosts costs;
  costs.simple = touched * random_read + nav_cpu +
                 est.crossings * static_cast<double>(cpu.swizzle +
                                                     cpu.buffer_probe);
  // XSchedule overlaps CPU with I/O: total ~ max of the two streams.
  const double xs_io = touched * elevator_read;
  const double xs_cpu = nav_cpu + crossing_cpu;
  costs.xschedule = std::max(xs_io, xs_cpu) + 0.2 * std::min(xs_io, xs_cpu);
  // XScan examines every cluster and speculates on every border; each
  // seed additionally spawns a short intra-cluster enumeration
  // (empirically ~12 hops on XMark-like pages).
  constexpr double kHopsPerSeed = 12.0;
  // Seeds and record enumeration scale with the pages actually swept
  // (borders and records are uniform across the layout, so a restricted
  // sweep meets the swept fraction of both).
  const double seed_count = static_cast<double>(stats.border_records()) *
                            static_cast<double>(path.length()) *
                            swept_fraction;
  const double scan_cpu =
      nav_cpu +
      seed_count * (static_cast<double>(cpu.instance_op + cpu.set_op) +
                    kHopsPerSeed * hop) +
      static_cast<double>(stats.node_count()) * swept_fraction * 0.3 *
          static_cast<double>(cpu.record_hop);
  costs.xscan = swept * sequential_read +
                swept * static_cast<double>(cpu.buffer_probe +
                                            cpu.page_install) +
                scan_cpu;
  return costs;
}

SharedPrefixEstimate EstimateSharedPrefix(const DocumentStats& stats,
                                          const LocationPath& prefix,
                                          const std::vector<LocationPath>& members,
                                          const DiskModel& disk,
                                          const CpuCostModel& cpu) {
  SharedPrefixEstimate est;
  const PhysicalReads reads = EstimatePhysicalReads(stats, disk);
  const double hop = static_cast<double>(cpu.record_hop + cpu.node_test);
  const double crossing_unit =
      static_cast<double>(cpu.swizzle + cpu.buffer_probe + cpu.set_op);

  const PathEstimate prefix_est = EstimatePath(stats, prefix);
  est.producer_cost = EstimatePlanCosts(stats, prefix, disk, cpu).xschedule;

  double max_residual_clusters = 0;
  for (const LocationPath& full : members) {
    const PathEstimate full_est = EstimatePath(stats, full);
    // Residual navigation CPU is paid per member: every member walks its
    // own suffix over the streamed prefix instances.
    est.suffix_cost_total +=
        std::max(0.0, full_est.nodes_examined - prefix_est.nodes_examined) *
            hop +
        std::max(0.0, full_est.crossings - prefix_est.crossings) *
            crossing_unit;
    max_residual_clusters = std::max(
        max_residual_clusters,
        std::max(0.0,
                 full_est.clusters_touched - prefix_est.clusters_touched));
    const PlanCosts priv = EstimatePlanCosts(stats, full, disk, cpu);
    est.private_cost_total +=
        std::min(priv.simple, std::min(priv.xschedule, priv.xscan));
  }
  // Residual I/O is pooled, not per member: the members extend the same
  // prefix instances through overlapping document regions, and the buffer
  // pool keeps residual clusters resident across consumers, so the union
  // of residual clusters — approximated by the largest member residual —
  // is read once for the whole group.
  est.suffix_cost_total += max_residual_clusters * reads.random_read;
  est.beneficial = est.shared_cost() < est.private_cost_total;
  return est;
}

PlanKind ChoosePlanKind(const DocumentStats& stats, const PathQuery& query,
                        const DiskModel& disk, const CpuCostModel& cpu,
                        const PathSummary* summary) {
  PlanCosts total;
  for (const LocationPath& path : query.paths) {
    const PlanCosts costs = EstimatePlanCosts(stats, path, disk, cpu, summary);
    total.simple += costs.simple;
    total.xschedule += costs.xschedule;
    total.xscan += costs.xscan;
  }
  return total.Best();
}

DegradedTier ChooseDegradedTier(const DocumentStats& stats,
                                const PathQuery& query,
                                const PlanOptions& requested,
                                const DiskModel& disk,
                                const CpuCostModel& cpu,
                                const PathSummary* summary) {
  // Never shrink the elevator window below this: a pool this shallow
  // still merges overlapping reads but frees most of the admission
  // footprint (queue_k + 2 pages).
  constexpr std::size_t kDegradedQueueFloor = 8;

  DegradedTier tier;
  tier.plan = requested;
  if (requested.kind != PlanKind::kXSchedule || requested.queue_k == 0) {
    return tier;  // nothing with a footprint worth shrinking
  }

  PlanOptions reduced = requested;
  reduced.queue_k =
      std::max(kDegradedQueueFloor, requested.queue_k / 4);
  PlanOptions simple = requested;
  simple.kind = PlanKind::kSimple;
  if (reduced.queue_k >= requested.queue_k) {
    // Already at or below the floor: Simple is the only cheaper tier.
    reduced = simple;
  }

  double reduced_cost = 0;
  double simple_cost = 0;
  // A shallower window weakens SSTF reordering; interpolate the per-path
  // elevator advantage toward the synchronous cost by pool depth.
  const double shrink = static_cast<double>(reduced.queue_k) /
                        static_cast<double>(requested.queue_k);
  for (const LocationPath& path : query.paths) {
    const PlanCosts costs = EstimatePlanCosts(stats, path, disk, cpu, summary);
    tier.requested_cost += costs.xschedule;
    simple_cost += costs.simple;
    const double lost = std::max(costs.simple, costs.xschedule) -
                        costs.xschedule;
    reduced_cost += costs.xschedule + lost * (1.0 - std::sqrt(shrink));
  }
  if (reduced.kind != PlanKind::kSimple && reduced_cost <= simple_cost) {
    tier.plan = reduced;
    tier.degraded_cost = reduced_cost;
  } else {
    tier.plan = simple;
    tier.degraded_cost = simple_cost;
  }
  tier.viable = true;
  return tier;
}

WriterAdmission EstimateWriterAdmission(std::size_t writers,
                                        double conflict_probability,
                                        double txn_cost,
                                        double retry_backoff,
                                        std::size_t max_retries) {
  WriterAdmission est;
  // Clamp away the pole at p = 1: even a fully conflicting workload is
  // bounded by the retry budget, and an estimate of exactly 1.0 is noise
  // from a tiny sample, not a physical rate.
  const double p =
      std::min(0.95, std::max(0.0, conflict_probability));
  // Geometric attempt count: each attempt independently survives with
  // probability (1 - p), so the expectation is 1/(1-p) — truncated at the
  // retry budget, past which the transaction fails rather than retries.
  est.attempts =
      std::min(1.0 / (1.0 - p), 1.0 + static_cast<double>(max_retries));
  // Every attempt redoes the transaction's work; every retry additionally
  // waits out its backoff (the exponential growth is ignored here — by
  // the time it matters, serialization has long since won).
  est.optimistic_cost =
      est.attempts * txn_cost + (est.attempts - 1.0) * retry_backoff;
  // A serialized writer conflicts with nobody but queues behind, on
  // average, half of its peers.
  const double peers =
      writers > 0 ? static_cast<double>(writers - 1) : 0.0;
  est.serialized_cost = txn_cost * (1.0 + 0.5 * peers);
  est.prefer_optimistic = est.optimistic_cost <= est.serialized_cost;
  return est;
}

ShardFanoutEstimate EstimateShardFanout(
    const std::vector<double>& per_shard_costs, double result_cardinality,
    double merge_op_cost) {
  ShardFanoutEstimate est;
  est.participants = per_shard_costs.size();
  for (const double cost : per_shard_costs) {
    est.serial_cost += cost;
    est.parallel_cost = std::max(est.parallel_cost, cost);
  }
  // Width-1 routes skip the merge entirely: the owner's result is final.
  if (est.participants > 1 && result_cardinality > 0) {
    est.merge_cost = result_cardinality * merge_op_cost;
  }
  const double fanned = est.parallel_cost + est.merge_cost;
  if (fanned > 0) est.speedup = est.serial_cost / fanned;
  return est;
}

}  // namespace navpath
