// Reusable experiment drivers for the paper's figures and ablations.
#ifndef NAVPATH_BENCHLIB_EXPERIMENTS_H_
#define NAVPATH_BENCHLIB_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "benchlib/harness.h"

namespace navpath {

/// The paper's scale-factor sweep (Sec. 6.2).
std::vector<double> PaperScaleFactors();

/// Reduced sweep for quick smoke runs (honors NAVPATH_BENCH_FAST=1).
std::vector<double> ActiveScaleFactors();

/// True when the environment asks for a reduced benchmark run.
bool FastBenchMode();

/// Runs `query` at every scale factor with the three paper plans and
/// prints one row per scale factor:
///   SF  pages  |result|  Simple[s]  XSchedule[s]  XScan[s]
/// Returns the per-plan times for further analysis, indexed [sf][plan].
Result<std::vector<std::vector<double>>> RunScalingExperiment(
    const std::string& title, const std::string& query,
    const std::vector<double>& scale_factors,
    const FixtureOptions& options = {});

}  // namespace navpath

#endif  // NAVPATH_BENCHLIB_EXPERIMENTS_H_
