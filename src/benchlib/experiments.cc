#include "benchlib/experiments.h"

#include <cstdio>
#include <cstdlib>

namespace navpath {

std::vector<double> PaperScaleFactors() {
  return {0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0};
}

bool FastBenchMode() {
  const char* env = std::getenv("NAVPATH_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

std::vector<double> ActiveScaleFactors() {
  if (FastBenchMode()) return {0.1, 0.25, 0.5};
  return PaperScaleFactors();
}

Result<std::vector<std::vector<double>>> RunScalingExperiment(
    const std::string& title, const std::string& query,
    const std::vector<double>& scale_factors,
    const FixtureOptions& options) {
  PrintTableHeader(title, {"scale", "pages", "results", "Simple[s]",
                           "XSchedule[s]", "XScan[s]"});
  std::vector<std::vector<double>> times;
  for (const double sf : scale_factors) {
    NAVPATH_ASSIGN_OR_RETURN(auto fixture, XMarkFixture::Create(sf, options));
    std::vector<double> row;
    std::uint64_t result_count = 0;
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      const bool tracing = EnableTraceCapture(fixture->db());
      // Tracing implies profiling so traces carry operator pull spans;
      // both only read the simulated clock, so timings are unchanged.
      NAVPATH_ASSIGN_OR_RETURN(
          const QueryRunResult result,
          tracing ? fixture->RunExplain(query, PaperPlan(kind))
                  : fixture->Run(query, PaperPlan(kind)));
      if (tracing) {
        char trace_name[64];
        std::snprintf(trace_name, sizeof(trace_name),
                      "scaling_%s_sf%.2f.trace.json", PlanKindName(kind),
                      sf);
        NAVPATH_RETURN_NOT_OK(
            WriteTraceCapture(fixture->db(), trace_name));
      }
      row.push_back(result.total_seconds());
      result_count = result.count;
    }
    char sf_buf[16];
    std::snprintf(sf_buf, sizeof(sf_buf), "%.2f", sf);
    PrintTableRow({sf_buf, std::to_string(fixture->doc().page_count()),
                   std::to_string(result_count), FormatSeconds(row[0]),
                   FormatSeconds(row[1]), FormatSeconds(row[2])});
    times.push_back(row);
  }
  return times;
}

}  // namespace navpath
