#include "benchlib/harness.h"

#include <cstdio>
#include <cstdlib>

#include "xpath/parser.h"

namespace navpath {

namespace {

/// The fixture's clustering policies, as a per-import factory (the
/// sharded fixture builds one policy per shard import). Returns a null
/// factory for unknown names.
std::function<std::unique_ptr<ClusteringPolicy>()> ClusteringFactory(
    const std::string& name, std::size_t page_size) {
  const std::size_t budget = page_size - page_size / 8;  // keep slack
  if (name == "subtree") {
    return [budget] {
      return std::unique_ptr<ClusteringPolicy>(
          std::make_unique<SubtreeClusteringPolicy>(budget));
    };
  }
  if (name == "doc-order") {
    return [budget] {
      return std::unique_ptr<ClusteringPolicy>(
          std::make_unique<DocOrderClusteringPolicy>(budget));
    };
  }
  if (name == "round-robin") {
    return [budget] {
      return std::unique_ptr<ClusteringPolicy>(
          std::make_unique<RoundRobinClusteringPolicy>(budget));
    };
  }
  if (name == "random") {
    return [budget] {
      return std::unique_ptr<ClusteringPolicy>(
          std::make_unique<RandomClusteringPolicy>(budget, 7));
    };
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<XMarkFixture>> XMarkFixture::Create(
    double scale, FixtureOptions options) {
  options.xmark.scale = scale;
  auto fixture = std::unique_ptr<XMarkFixture>(new XMarkFixture(options));
  const DomTree tree = GenerateXMark(options.xmark, fixture->db_.tags());

  const auto factory =
      ClusteringFactory(options.clustering, options.db.page_size);
  if (!factory) {
    return Status::InvalidArgument("unknown clustering policy: " +
                                   options.clustering);
  }
  const std::unique_ptr<ClusteringPolicy> policy = factory();
  NAVPATH_ASSIGN_OR_RETURN(fixture->doc_,
                           fixture->db_.Import(tree, policy.get()));
  fixture->stats_ =
      DocumentStats::Build(tree, fixture->doc_, options.db.page_size);
  return fixture;
}

Result<std::unique_ptr<ShardedStore>> CreateShardedXMark(
    double scale, std::size_t shards, FixtureOptions options) {
  options.xmark.scale = scale;
  ShardOptions shard_options;
  shard_options.shards = shards;
  shard_options.db = options.db;
  shard_options.source = [xmark = options.xmark](TagRegistry* tags) {
    return GenerateXMark(xmark, tags);
  };
  shard_options.clustering =
      ClusteringFactory(options.clustering, options.db.page_size);
  if (!shard_options.clustering) {
    return Status::InvalidArgument("unknown clustering policy: " +
                                   options.clustering);
  }
  return ShardedStore::Build(shard_options);
}

Result<QueryRunResult> XMarkFixture::RunOptimized(const std::string& query,
                                                  PlanKind* chosen) {
  NAVPATH_ASSIGN_OR_RETURN(const PathQuery parsed,
                           ParseQuery(query, db_.tags()));
  const PlanKind kind = ChoosePlanKind(stats_, parsed,
                                       db_.options().disk_model, db_.costs());
  if (chosen != nullptr) *chosen = kind;
  return Run(query, PaperPlan(kind));
}

Result<QueryRunResult> XMarkFixture::Run(const std::string& query,
                                         const PlanOptions& plan) {
  NAVPATH_ASSIGN_OR_RETURN(const PathQuery parsed,
                           ParseQuery(query, db_.tags()));
  ExecuteOptions exec;
  exec.plan = plan;
  exec.collect_nodes = parsed.mode == PathQuery::Mode::kNodes;
  exec.cold_start = true;
  return ExecuteQuery(&db_, doc_, parsed, exec);
}

Result<QueryRunResult> XMarkFixture::RunExplain(const std::string& query,
                                                const PlanOptions& plan) {
  NAVPATH_ASSIGN_OR_RETURN(const PathQuery parsed,
                           ParseQuery(query, db_.tags()));
  ExecuteOptions exec;
  exec.plan = plan;
  exec.collect_nodes = parsed.mode == PathQuery::Mode::kNodes;
  exec.cold_start = true;
  exec.explain = true;
  exec.stats = &stats_;
  return ExecuteQuery(&db_, doc_, parsed, exec);
}

PlanOptions PaperPlan(PlanKind kind) {
  PlanOptions options;
  options.kind = kind;
  options.speculative = false;  // Sec. 6.2: XSchedule, speculative off
  options.queue_k = 100;        // Sec. 5.3.4 default
  options.s_budget = 0;
  // The paper's experiments measure the navigational primitives; the
  // path-summary synopsis (post-paper extension) would answer its count
  // queries without navigating. Keep paper-series benches byte-identical.
  options.use_summary = false;
  return options;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%16s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
  return buf;
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  first_in_scope_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  first_in_scope_.pop_back();
  out_ += ']';
  return *this;
}

namespace {

void AppendJsonString(std::string* out, const std::string& v) {
  *out += '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
  *out += '"';
}

}  // namespace

JsonWriter& JsonWriter::Key(const std::string& name) {
  Separate();
  AppendJsonString(&out_, name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  Separate();
  AppendJsonString(&out_, v);
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) {
  return Value(std::string(v));
}

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  Separate();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  return *this;
}

std::string BenchTrajectoryPath(const std::string& name) {
  const char* dir = std::getenv("NAVPATH_BENCH_DIR");
  if (dir == nullptr || dir[0] == '\0') return name;
  std::string path(dir);
  if (path.back() != '/') path += '/';
  return path + name;
}

std::string TraceCaptureDir() {
  const char* dir = std::getenv("NAVPATH_TRACE_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

bool EnableTraceCapture(Database* db) {
  if (TraceCaptureDir().empty()) return false;
  return db->EnableTracing() != nullptr;
}

Status WriteTraceCapture(Database* db, const std::string& name) {
  const std::string dir = TraceCaptureDir();
  if (dir.empty() || db->tracer() == nullptr) return Status::OK();
  std::string path = dir;
  if (path.back() != '/') path += '/';
  path += name;
  return WriteTextFile(path, db->tracer()->ToJson());
}

void WriteHistogramJson(JsonWriter* json, const Histogram& histogram) {
  json->BeginObject();
  json->Key("count").Value(histogram.count());
  json->Key("min").Value(histogram.min());
  json->Key("max").Value(histogram.max());
  json->Key("mean").Value(histogram.Mean());
  json->Key("p50").Value(histogram.ValueAtQuantile(0.50));
  json->Key("p95").Value(histogram.ValueAtQuantile(0.95));
  json->Key("p99").Value(histogram.ValueAtQuantile(0.99));
  json->EndObject();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  std::string content;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  const bool error = std::ferror(f) != 0;
  std::fclose(f);
  if (error) return Status::IOError("read error on " + path);
  return content;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace navpath
