// Shared benchmark harness: XMark fixtures and paper-style table output.
#ifndef NAVPATH_BENCHLIB_HARNESS_H_
#define NAVPATH_BENCHLIB_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/cost_model.h"
#include "compiler/executor.h"
#include "observe/metrics_registry.h"
#include "shard/sharded_store.h"
#include "store/database.h"
#include "xmark/generator.h"

namespace navpath {

// The paper's evaluated queries (Tab. 2).
inline constexpr const char* kQ6Prime = "count(/site/regions//item)";
inline constexpr const char* kQ7 =
    "count(/site//description)+count(/site//annotation)+"
    "count(/site//email)";
inline constexpr const char* kQ15 =
    "/site/closed_auctions/closed_auction/annotation/description/parlist/"
    "listitem/parlist/listitem/text/emph/keyword/bold";

struct FixtureOptions {
  FixtureOptions() {
    // Benchmarks run on a moderately aged physical layout (see
    // ImportOptions::fragmentation); tests use pristine layouts.
    db.import.fragmentation = 0.35;
  }

  DatabaseOptions db;
  XMarkOptions xmark;
  /// Clustering policy: "subtree" (default), "doc-order", "round-robin",
  /// "random".
  std::string clustering = "subtree";
};

/// A database with one imported XMark document at a given scale factor.
class XMarkFixture {
 public:
  static Result<std::unique_ptr<XMarkFixture>> Create(
      double scale, FixtureOptions options = {});

  Database* db() { return &db_; }
  const ImportedDocument& doc() const { return doc_; }
  /// Mutable catalog handle for benches that run write transactions
  /// (TxnManager keeps the canonical document in sync with commits).
  ImportedDocument* mutable_doc() { return &doc_; }
  /// Cardinality statistics for cost-based plan choice.
  const DocumentStats& stats() const { return stats_; }

  /// Parses and runs `query` with `plan` (cold buffer).
  Result<QueryRunResult> Run(const std::string& query,
                             const PlanOptions& plan);

  /// Like Run, but with EXPLAIN ANALYZE enabled: the result carries a
  /// QueryExplain with estimated (cost model) vs. actual cardinalities.
  Result<QueryRunResult> RunExplain(const std::string& query,
                                    const PlanOptions& plan);

  /// Lets the cost model pick the I/O operator, then runs the query.
  Result<QueryRunResult> RunOptimized(const std::string& query,
                                      PlanKind* chosen = nullptr);

 private:
  explicit XMarkFixture(const FixtureOptions& options) : db_(options.db) {}

  Database db_;
  ImportedDocument doc_;
  DocumentStats stats_;
};

/// Makes a PlanOptions for one of the three paper plans. XSchedule runs
/// with speculative=false, matching Sec. 6.2.
PlanOptions PaperPlan(PlanKind kind);

/// Sharded variant of XMarkFixture: the same deterministic XMark document
/// (same scale, same generator seed) path-partitioned across `shards`
/// drives. Per-shard DatabaseOptions come from `options.db` verbatim —
/// every shard gets its own `buffer_pages`-page pool, so callers wanting
/// constant aggregate memory divide the total by K. At shards == 1 the
/// single shard is byte-identical to XMarkFixture::Create with the same
/// options (same import, same fault seed, same summary).
Result<std::unique_ptr<ShardedStore>> CreateShardedXMark(
    double scale, std::size_t shards, FixtureOptions options = {});

// --- Output helpers (aligned fixed-width tables) -------------------------

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string FormatSeconds(double seconds);
std::string FormatPercent(double fraction);

// --- Machine-readable benchmark trajectories ------------------------------
//
// Benchmarks that feed the perf trajectory emit a BENCH_<name>.json file
// next to their table output, so later PRs can diff against a recorded
// baseline. The file layout is documented in DESIGN.md ("Workload layer");
// every file carries a top-level "bench" name and "schema_version".

/// Minimal streaming JSON emitter (objects, arrays, strings, numbers,
/// booleans). The caller is responsible for well-formed nesting; keys are
/// escaped for the characters benchmarks actually use.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(double v);
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(bool v);

  const std::string& str() const { return out_; }

 private:
  void Separate();

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool after_key_ = false;
};

/// Destination for a trajectory file `name` (e.g. "BENCH_workload.json"):
/// $NAVPATH_BENCH_DIR/name when the variable is set, ./name otherwise.
std::string BenchTrajectoryPath(const std::string& name);

/// Writes `content` to `path` (overwriting).
Status WriteTextFile(const std::string& path, const std::string& content);

/// Reads `path` fully; NotFound when it does not exist. Lets benches
/// splice their section into a trajectory file another bench wrote.
Result<std::string> ReadTextFile(const std::string& path);

// --- Trace capture --------------------------------------------------------
//
// Benches and examples opt into Chrome-trace capture via the environment:
// when $NAVPATH_TRACE_DIR is set, EnableTraceCapture turns the database's
// tracer on and WriteTraceCapture drops $NAVPATH_TRACE_DIR/<name> after
// the run. Both are no-ops otherwise (and under -DNAVPATH_OBSERVE=OFF,
// where EnableTracing compiles to a stub), so default bench output is
// untouched.

/// $NAVPATH_TRACE_DIR, or empty when trace capture is off.
std::string TraceCaptureDir();

/// Enables tracing on `db` if $NAVPATH_TRACE_DIR is set. Returns whether
/// tracing is now active.
bool EnableTraceCapture(Database* db);

/// Writes the accumulated trace to $NAVPATH_TRACE_DIR/`name` (e.g.
/// "q7.trace.json"). No-op without an active capture.
Status WriteTraceCapture(Database* db, const std::string& name);

/// Appends a histogram summary as a JSON object value:
/// {"count":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..}.
/// Values are raw recorded units (callers pick the unit; simulated
/// nanoseconds for time histograms).
void WriteHistogramJson(JsonWriter* json, const Histogram& histogram);

}  // namespace navpath

#endif  // NAVPATH_BENCHLIB_HARNESS_H_
