// Shared benchmark harness: XMark fixtures and paper-style table output.
#ifndef NAVPATH_BENCHLIB_HARNESS_H_
#define NAVPATH_BENCHLIB_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/cost_model.h"
#include "compiler/executor.h"
#include "store/database.h"
#include "xmark/generator.h"

namespace navpath {

// The paper's evaluated queries (Tab. 2).
inline constexpr const char* kQ6Prime = "count(/site/regions//item)";
inline constexpr const char* kQ7 =
    "count(/site//description)+count(/site//annotation)+"
    "count(/site//email)";
inline constexpr const char* kQ15 =
    "/site/closed_auctions/closed_auction/annotation/description/parlist/"
    "listitem/parlist/listitem/text/emph/keyword/bold";

struct FixtureOptions {
  FixtureOptions() {
    // Benchmarks run on a moderately aged physical layout (see
    // ImportOptions::fragmentation); tests use pristine layouts.
    db.import.fragmentation = 0.35;
  }

  DatabaseOptions db;
  XMarkOptions xmark;
  /// Clustering policy: "subtree" (default), "doc-order", "round-robin",
  /// "random".
  std::string clustering = "subtree";
};

/// A database with one imported XMark document at a given scale factor.
class XMarkFixture {
 public:
  static Result<std::unique_ptr<XMarkFixture>> Create(
      double scale, FixtureOptions options = {});

  Database* db() { return &db_; }
  const ImportedDocument& doc() const { return doc_; }
  /// Cardinality statistics for cost-based plan choice.
  const DocumentStats& stats() const { return stats_; }

  /// Parses and runs `query` with `plan` (cold buffer).
  Result<QueryRunResult> Run(const std::string& query,
                             const PlanOptions& plan);

  /// Lets the cost model pick the I/O operator, then runs the query.
  Result<QueryRunResult> RunOptimized(const std::string& query,
                                      PlanKind* chosen = nullptr);

 private:
  explicit XMarkFixture(const FixtureOptions& options) : db_(options.db) {}

  Database db_;
  ImportedDocument doc_;
  DocumentStats stats_;
};

/// Makes a PlanOptions for one of the three paper plans. XSchedule runs
/// with speculative=false, matching Sec. 6.2.
PlanOptions PaperPlan(PlanKind kind);

// --- Output helpers (aligned fixed-width tables) -------------------------

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string FormatSeconds(double seconds);
std::string FormatPercent(double fraction);

}  // namespace navpath

#endif  // NAVPATH_BENCHLIB_HARNESS_H_
