// Buffer manager: fixed-size page cache over the simulated disk.
//
// Supports the operations the paper's operators rely on:
//   * Fix/unfix with pin counting (PageGuard is the RAII handle),
//   * LRU replacement with write-back of dirty pages,
//   * asynchronous prefetch (XSchedule: submit many, consume any),
//   * swizzle accounting (every NodeID -> frame translation is charged).
#ifndef NAVPATH_STORAGE_BUFFER_MANAGER_H_
#define NAVPATH_STORAGE_BUFFER_MANAGER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/cpu_cost_model.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace navpath {

class BufferManager;

/// Bounded retry with exponential backoff in *simulated* time, applied by
/// the buffer manager to transient I/O failures (injected or real). A
/// failed attempt waits `initial_backoff * multiplier^attempt` before the
/// next try; after `max_attempts` the last error is surfaced — IOError for
/// persistent transient faults, Corruption for checksum mismatches that
/// no re-read fixes.
struct RetryPolicy {
  int max_attempts = 4;
  SimTime initial_backoff = 200 * kSimMicrosecond;
  double multiplier = 2.0;
};

/// RAII pin on a buffer frame. While alive, the page cannot be evicted and
/// `data()` stays valid. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* bm, std::size_t frame_idx);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return bm_ != nullptr; }
  PageId page_id() const;
  std::byte* data();
  const std::byte* data() const;

  /// Marks the page dirty so eviction writes it back.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferManager* bm_ = nullptr;
  std::size_t frame_idx_ = 0;
};

class BufferManager {
 public:
  BufferManager(SimulatedDisk* disk, std::size_t capacity_pages,
                const CpuCostModel& costs, SimClock* clock, Metrics* metrics,
                const RetryPolicy& retry = {});
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t pages_resident() const { return page_table_.size(); }

  /// Fixes `id` in the buffer, reading it synchronously on a miss.
  Result<PageGuard> Fix(PageId id);

  /// Fix that charges swizzle cost on top of the probe: used when an
  /// operator translates a stored NodeID back into a main-memory pointer.
  Result<PageGuard> FixSwizzle(PageId id);

  /// Allocates a fresh zeroed page on disk and fixes it (used at import).
  Result<PageGuard> NewPage();

  // --- Version-aware frame identity (MVCC shadow pages) -----------------
  //
  // Two versions of one logical page coexist in the pool as two distinct
  // physical page ids; the txn layer owns the logical->physical mapping.
  // These hooks let it install a shadow image without a disk round-trip
  // and drop reclaimed versions without a write-back.

  /// Installs `content` (page_size bytes) as page `id`, pinned and dirty.
  /// If `id` is already resident — e.g. a stale prefetch of a recycled
  /// shadow id completed first — its frame is overwritten in place, so
  /// there is never more than one frame per physical id.
  Result<PageGuard> AdoptPage(PageId id, const std::byte* content);

  /// Drops `id`'s frame without write-back (reclaimed page versions are
  /// dead; their disk image no longer matters). No-op if not resident;
  /// InvalidArgument if pinned.
  Status Discard(PageId id);

  // --- Asynchronous prefetch (XSchedule's I/O interface) ----------------

  enum class PrefetchOutcome {
    kResident,   // already buffered; no I/O needed
    kSubmitted,  // async read queued now
    kInFlight,   // an earlier prefetch of this page is still pending
  };

  /// Submits an async read unless the page is resident or already in
  /// flight. Never blocks. `owner` identifies the requesting query in a
  /// multi-query workload (0 = standalone): a prefetch of a page another
  /// owner already has in flight registers interest on the existing
  /// request instead of double-submitting, and counts a request merge.
  /// Repeated prefetches by the same owner are neither merges nor
  /// resubmissions, so single-query plans report requests_merged == 0.
  /// `priority` is the drive-side service class; a high-priority interest
  /// in a page already in flight promotes the pending request.
  Result<PrefetchOutcome> Prefetch(PageId id, std::uint32_t owner = 0,
                                   ReadPriority priority =
                                       ReadPriority::kNormal);

  bool IsResident(PageId id) const { return page_table_.count(id) > 0; }

  /// True if any prefetch has been submitted and not yet consumed.
  bool HasPrefetchInFlight() const { return !in_flight_.empty(); }

  /// Number of in-flight prefetched pages `owner` registered interest in
  /// (workload scheduling policies pick queries by this).
  std::size_t PendingFor(std::uint32_t owner) const;

  /// True if any non-standalone owner (!= 0) has interest in the
  /// in-flight page `id` (such pages are eviction-protected after
  /// installation until first fixed).
  bool ClaimedByQuery(PageId id) const;

  /// Blocks until some prefetch completes, installs the page in a frame,
  /// and returns its id. The page is NOT pinned; callers Fix() it next
  /// (which will hit). A completion that failed or arrived corrupted is
  /// recovered by a synchronous re-read with retries; only an
  /// unrecoverable page surfaces an error (Corruption for permanently bad
  /// media, IOError if transient faults outlast the retry budget).
  Result<PageId> WaitAnyPrefetch();

  /// Non-blocking variant; returns kInvalidPageId if none completed yet.
  Result<PageId> PollAnyPrefetch();

#if NAVPATH_OBSERVE_ENABLED
  /// Attaches (or detaches, with nullptr) a span tracer: fix misses,
  /// evictions, and prefetch waits then appear on the buffer track.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
#endif

  /// Registers `fn` to be called with the page id whenever a frame's pin
  /// count drops to zero (pass {} to unregister). The MVCC layer uses
  /// this to drain retired page versions that were skipped while pinned,
  /// instead of leaking them until the next commit or snapshot release.
  /// The listener must not pin or unpin pages itself (Discard is fine).
  void SetUnpinListener(std::function<void(PageId)> fn) {
    unpin_listener_ = std::move(fn);
  }

  /// Writes back all dirty pages (used after import).
  Status FlushAll();

  /// Drops every unpinned page (used to cold-start each measured query).
  Status InvalidateAll();

  // --- Auxiliary memory reservations ------------------------------------
  //
  // Components that hold page-sized memory outside the frame table (e.g.
  // the workload executor's shared-prefix stream buffers) register it
  // here, in page equivalents, so admission controllers can subtract it
  // from the pool they hand out. Accounting only: reservations do not
  // remove frames or change eviction.

  void ReserveAux(std::size_t pages) { aux_reserved_ += pages; }
  void ReleaseAux(std::size_t pages) {
    NAVPATH_DCHECK(aux_reserved_ >= pages);
    aux_reserved_ -= std::min(pages, aux_reserved_);
  }
  std::size_t aux_reserved_pages() const { return aux_reserved_; }

  // Internal accessors used by PageGuard.
  void Unpin(std::size_t frame_idx);
  PageId FramePage(std::size_t frame_idx) const {
    return frames_[frame_idx].page_id;
  }
  std::byte* FrameData(std::size_t frame_idx) {
    return frames_[frame_idx].data.get();
  }
  void FrameMarkDirty(std::size_t frame_idx) {
    frames_[frame_idx].dirty = true;
  }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    std::unique_ptr<std::byte[]> data;
    std::uint32_t pin_count = 0;
    bool dirty = false;
    /// Installed for a concurrent query (owner != 0) that has not fixed
    /// it yet. Claimed frames are evicted only when every unpinned frame
    /// is claimed; the first Fix consumes the claim. Standalone execution
    /// (owner 0) never claims, so its eviction order is untouched.
    bool claimed = false;
    std::uint64_t last_use = 0;  // LRU stamp
  };

  /// Finds a frame to (re)use, evicting the LRU unpinned page if needed.
  /// Unclaimed frames are preferred victims (see Frame::claimed).
  Result<std::size_t> GetFreeFrame();

  /// Installs disk data already placed in scratch_ as page `id`.
  Result<std::size_t> InstallFromScratch(PageId id);

  Result<std::size_t> FixInternal(PageId id, bool charge_swizzle);

  /// True if `payload` matches the trailer checksum stored with `id`.
  bool VerifyChecksum(PageId id, const std::byte* payload) const;

  /// Synchronous read of `id` into `out` with checksum verification and
  /// bounded retry/backoff for transient errors and transient corruption.
  Status ReadPageWithRetry(PageId id, std::byte* out);

  /// Write-back of `data` as page `id` (checksum computed here, end to
  /// end) with bounded retry/backoff for transient write errors.
  Status WritePageWithRetry(PageId id, const std::byte* data);

  SimulatedDisk* disk_;
  std::size_t capacity_;
  CpuCostModel costs_;
  SimClock* clock_;
  Metrics* metrics_;
  RetryPolicy retry_;
#if NAVPATH_OBSERVE_ENABLED
  Tracer* tracer_ = nullptr;
#endif

  std::vector<Frame> frames_;
  std::vector<std::size_t> free_frames_;
  std::unordered_map<PageId, std::size_t> page_table_;
  // In-flight prefetches, each with the owners interested in the page
  // (small vectors: a handful of concurrent queries at most).
  std::unordered_map<PageId, std::vector<std::uint32_t>> in_flight_;
  std::size_t aux_reserved_ = 0;  // page-equivalents held outside frames
  std::function<void(PageId)> unpin_listener_;
  std::uint64_t use_counter_ = 0;
  std::unique_ptr<std::byte[]> scratch_;  // staging buffer for disk I/O
};

}  // namespace navpath

#endif  // NAVPATH_STORAGE_BUFFER_MANAGER_H_
