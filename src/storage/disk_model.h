// Disk latency model for the simulated disk.
#ifndef NAVPATH_STORAGE_DISK_MODEL_H_
#define NAVPATH_STORAGE_DISK_MODEL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/sim_clock.h"
#include "storage/page.h"

namespace navpath {

/// Latency model of a mid-2000s server disk (the class of hardware the
/// paper's Natix experiments ran on). Seek time grows with the square root
/// of the distance in pages, which approximates constant-acceleration
/// actuator movement; rotational latency is charged whenever the head had
/// to move; transfers at sequential positions cost media bandwidth only.
struct DiskModel {
  /// Fixed cost of any non-sequential access (actuator settle time).
  SimTime seek_base = 1 * kSimMillisecond;
  /// Seek cost per sqrt(distance in pages).
  double seek_ns_per_sqrt_page = 55.0 * 1000.0;
  /// Average rotational delay after a seek (half a revolution at 7200rpm).
  SimTime rotational_latency = 2 * kSimMillisecond;
  /// Media transfer time for one page (8 KiB at roughly 60 MB/s).
  SimTime transfer_time = 135 * kSimMicrosecond;

  /// How many queued requests the I/O subsystem considers when picking
  /// the next one to serve (tagged-command-queueing depth of mid-2000s
  /// hardware). Requests are admitted in submission order; the elevator
  /// reorders only within this window.
  std::size_t queue_window = 16;

  /// Latency of reading page `to` when the head sits after page `from`
  /// (kInvalidPageId == unknown head position, always pays a full seek).
  ///
  /// Short *forward* skips do not seek at all: the platter simply rotates
  /// past the skipped pages (cost: one transfer time per skipped page),
  /// until an actual seek (settle + sqrt-distance + rotational re-sync)
  /// becomes cheaper. This is what makes elevator-ordered request streams
  /// (SSTF sweeps, mostly-ascending scans with gaps) efficient, the
  /// physical effect the paper's XSchedule operator exploits.
  SimTime AccessCost(PageId from, PageId to) const {
    const AccessCostParts parts = AccessCostDecomposed(from, to);
    return parts.seek + parts.transfer;
  }

  /// AccessCost split into head movement (seek/rotate-past) and media
  /// transfer; the parts always sum to AccessCost exactly. Tracing uses
  /// the split to draw seek and transfer as separate spans.
  struct AccessCostParts {
    SimTime seek;
    SimTime transfer;
  };

  AccessCostParts AccessCostDecomposed(PageId from, PageId to) const {
    if (from != kInvalidPageId && (to == from + 1 || to == from)) {
      return {0, transfer_time};  // sequential: head is already there
    }
    std::uint64_t distance;
    if (from == kInvalidPageId) {
      distance = 1;
    } else {
      distance = from < to ? to - from : from - to;
    }
    const auto seek =
        seek_base +
        static_cast<SimTime>(seek_ns_per_sqrt_page *
                             std::sqrt(static_cast<double>(distance))) +
        rotational_latency;
    if (from != kInvalidPageId && to > from) {
      const SimTime rotate_past = (distance - 1) * transfer_time;
      return {std::min(rotate_past, seek), transfer_time};
    }
    return {seek, transfer_time};
  }
};

}  // namespace navpath

#endif  // NAVPATH_STORAGE_DISK_MODEL_H_
