// CRC32C (Castagnoli) page checksums.
//
// Every page image carries a CRC32C trailer maintained out of band by the
// simulated disk (the way T10 DIF keeps 8 protection bytes per sector
// outside the logical payload), so the full page_size stays available to
// records and simulated costs are unaffected. The buffer manager computes
// the checksum over the payload it hands down on write-back and verifies
// it on every miss read, turning silently corrupted page images into
// Status::Corruption instead of undefined navigation behaviour.
//
// Software table-driven implementation (no SSE4.2 dependency) so results
// are identical on every build.
#ifndef NAVPATH_STORAGE_CHECKSUM_H_
#define NAVPATH_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace navpath {

/// CRC32C of `n` bytes, seeded with `init` (chainable: pass a previous
/// result to continue a running checksum).
std::uint32_t Crc32c(const std::byte* data, std::size_t n,
                     std::uint32_t init = 0);

/// The per-page trailer: checksum plus a reserved word kept for future
/// integrity metadata (epoch / media-error flags). 8 bytes, like a DIF
/// protection-information field.
struct PageTrailer {
  std::uint32_t crc32c = 0;
  std::uint32_t reserved = 0;
};

constexpr std::size_t kPageTrailerBytes = 8;

}  // namespace navpath

#endif  // NAVPATH_STORAGE_CHECKSUM_H_
