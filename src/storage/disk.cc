#include "storage/disk.h"

#include <algorithm>
#include <cstring>

namespace navpath {

SimulatedDisk::SimulatedDisk(const DiskModel& model, std::size_t page_size,
                             SimClock* clock, Metrics* metrics)
    : model_(model), page_size_(page_size), clock_(clock), metrics_(metrics) {
  NAVPATH_CHECK(clock != nullptr);
  NAVPATH_CHECK(metrics != nullptr);
  NAVPATH_CHECK(page_size > 0);
}

PageId SimulatedDisk::AllocatePage() {
  auto buf = std::make_unique<std::byte[]>(page_size_);
  std::memset(buf.get(), 0, page_size_);
  // All-zero pages share one checksum; compute it once per page size.
  static thread_local std::size_t cached_size = 0;
  static thread_local std::uint32_t cached_crc = 0;
  if (cached_size != page_size_) {
    cached_size = page_size_;
    cached_crc = Crc32c(buf.get(), page_size_);
  }
  pages_.push_back(std::move(buf));
  trailers_.push_back(PageTrailer{cached_crc, 0});
  return static_cast<PageId>(pages_.size() - 1);
}

SimTime SimulatedDisk::ChargeAccess(PageId target) {
  if (trace_ != nullptr) trace_->push_back(target);
  const SimTime start = std::max(clock_->now(), drive_free_at_);
  const DiskModel::AccessCostParts cost =
      model_.AccessCostDecomposed(head_, target);
  if (head_ != kInvalidPageId && (target == head_ || target == head_ + 1)) {
    ++metrics_->disk_seq_reads;
  } else if (head_ != kInvalidPageId) {
    metrics_->disk_seek_pages +=
        head_ < target ? target - head_ : head_ - target;
  }
  drive_free_at_ = start + cost.seek + cost.transfer;
  busy_time_ += cost.seek + cost.transfer;
  if (cost.seek > 0) {
    NAVPATH_TRACE(tracer_, Span(TraceCategory::kDisk, kTrackDisk, "seek",
                                start, start + cost.seek,
                                {{"page", target}}));
  }
  NAVPATH_TRACE(tracer_, Span(TraceCategory::kDisk, kTrackDisk, "transfer",
                              start + cost.seek, drive_free_at_,
                              {{"page", target}}));
  head_ = target;
  return drive_free_at_;
}

Status SimulatedDisk::ReadSync(PageId id, std::byte* out) {
  if (id >= pages_.size()) {
    return Status::IOError("read past end of segment: page " +
                           std::to_string(id));
  }
  SimTime done = ChargeAccess(id);
  ++metrics_->disk_reads;
  FaultInjector::ReadFault fault;
  if (faults_ != nullptr) {
    fault = faults_->NextReadFault(id);
    if (fault.Any()) ++metrics_->faults_injected;
    if (fault.extra_latency > 0) {
      done += fault.extra_latency;
      drive_free_at_ = done;
      busy_time_ += fault.extra_latency;
    }
  }
  clock_->WaitUntil(done);
  if (fault.transient_error) {
    return Status::IOError("injected transient read fault on page " +
                           std::to_string(id));
  }
  std::memcpy(out, pages_[id].get(), page_size_);
  if (fault.corrupt) faults_->CorruptPayload(out, page_size_);
  return Status::OK();
}

Status SimulatedDisk::WriteSync(PageId id, const std::byte* data,
                                std::optional<std::uint32_t> crc) {
  if (id >= pages_.size()) {
    return Status::IOError("write past end of segment: page " +
                           std::to_string(id));
  }
  SimTime done = ChargeAccess(id);
  ++metrics_->disk_writes;
  FaultInjector::WriteFault fault;
  if (faults_ != nullptr) {
    fault = faults_->NextWriteFault(id);
    if (fault.Any()) ++metrics_->faults_injected;
    if (fault.extra_latency > 0) {
      done += fault.extra_latency;
      drive_free_at_ = done;
      busy_time_ += fault.extra_latency;
    }
  }
  clock_->WaitUntil(done);
  if (fault.transient_error) {
    return Status::IOError("injected transient write fault on page " +
                           std::to_string(id));
  }
  std::memcpy(pages_[id].get(), data, page_size_);
  trailers_[id].crc32c = crc.has_value() ? *crc : Crc32c(data, page_size_);
  return Status::OK();
}

Status SimulatedDisk::SubmitRead(PageId id, ReadPriority priority) {
  if (id >= pages_.size()) {
    return Status::IOError("async read past end of segment: page " +
                           std::to_string(id));
  }
  for (PendingRequest& p : pending_) {
    if (p.page == id) {
      // Coalesce with the queued request (which keeps its earlier submit
      // time, so the merge never delays the elevator's visibility of it).
      // The merged request serves every interested party, so it inherits
      // the most urgent of the two service classes.
      if (priority == ReadPriority::kHigh) p.priority = ReadPriority::kHigh;
      ++metrics_->requests_merged;
      NAVPATH_TRACE(tracer_,
                    Instant(TraceCategory::kDisk, kTrackElevator,
                            "submit_merged", clock_->now(), {{"page", id}}));
      return Status::OK();
    }
  }
  pending_.push_back(PendingRequest{id, clock_->now(), priority});
  ++metrics_->async_requests;
  NAVPATH_TRACE(tracer_, Instant(TraceCategory::kDisk, kTrackElevator,
                                 "submit", clock_->now(), {{"page", id}}));
  return Status::OK();
}

void SimulatedDisk::PromoteRead(PageId id, ReadPriority priority) {
  if (priority != ReadPriority::kHigh) return;
  for (PendingRequest& p : pending_) {
    if (p.page == id) {
      p.priority = ReadPriority::kHigh;
      return;
    }
  }
}

void SimulatedDisk::ServeOnePending() {
  NAVPATH_DCHECK(!pending_.empty());
  // The drive becomes idle at drive_free_at_; if no request had been
  // submitted by then it idles until the earliest submission.
  SimTime earliest_submit = pending_.front().submit_time;
  std::size_t earliest_idx = 0;
  for (std::size_t i = 1; i < pending_.size(); ++i) {
    if (pending_[i].submit_time < earliest_submit) {
      earliest_submit = pending_[i].submit_time;
      earliest_idx = i;
    }
  }
  const SimTime t_start = std::max(drive_free_at_, earliest_submit);

  // Sample the pending pool visible to the drive at this decision: the
  // paper predicts concurrent queries deepen it (Sec. 7), which is what
  // gives the elevator its reordering freedom.
  std::uint64_t visible = 0;
  for (const auto& p : pending_) {
    if (p.submit_time <= t_start) ++visible;
  }
  ++metrics_->elevator_batches;
  metrics_->elevator_depth_sum += visible;
  metrics_->elevator_depth_max =
      std::max(metrics_->elevator_depth_max, visible);

  // Elevator (C-SCAN) among the requests visible to the drive at t_start:
  // serve the lowest page at or above the head; when the sweep passes the
  // last queued page, wrap around to the lowest one. This is the
  // scheduling the paper attributes to the OS / on-disk controller.
  // Only the `queue_window` earliest-submitted visible requests compete
  // (the command-queue depth of the hardware); pending_ is kept in
  // submission order, so the first qualifying entries form the window.
  // A high-priority request in the window preempts the sweep: the C-SCAN
  // pick is then restricted to the high-priority subset, so a short
  // query's page is served next instead of waiting for the sweep to reach
  // it behind a long query's reads. Within one service class the sweep
  // order is unchanged.
  const PageId sweep_from = head_ == kInvalidPageId ? 0 : head_;
  const std::size_t none = pending_.size();
  std::size_t best = none;        // C-SCAN pick over the whole window
  std::size_t lowest = none;
  std::size_t best_high = none;   // same, restricted to high priority
  std::size_t lowest_high = none;
  bool any_high = false;
  std::size_t admitted = 0;
  for (std::size_t i = 0;
       i < pending_.size() && admitted < model_.queue_window; ++i) {
    if (pending_[i].submit_time > t_start) continue;
    ++admitted;
    const PageId p = pending_[i].page;
    if (lowest == none || p < pending_[lowest].page) lowest = i;
    if (p >= sweep_from && (best == none || p < pending_[best].page)) {
      best = i;
    }
    if (pending_[i].priority == ReadPriority::kHigh) {
      any_high = true;
      if (lowest_high == none || p < pending_[lowest_high].page) {
        lowest_high = i;
      }
      if (p >= sweep_from &&
          (best_high == none || p < pending_[best_high].page)) {
        best_high = i;
      }
    }
  }
  if (best == none) best = lowest;  // wrap the sweep
  if (any_high) {
    const std::size_t pick_high = best_high == none ? lowest_high : best_high;
    // Only count a jump when the restriction actually changed the drive's
    // decision (a high request the sweep would have served anyway is not
    // a bypass).
    if (pick_high != best) ++metrics_->priority_jumps;
    best = pick_high;
  }
  NAVPATH_DCHECK(best < pending_.size());
  if (best != earliest_idx) ++metrics_->async_reorderings;

  const PendingRequest chosen = pending_[best];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));

  // ChargeAccess starts at max(now, drive_free_at_); for background serving
  // the start time is t_start regardless of the CPU clock, so adjust
  // drive_free_at_ first.
  if (trace_ != nullptr) trace_->push_back(chosen.page);
  drive_free_at_ = std::max(drive_free_at_, t_start);
  const SimTime start = drive_free_at_;
  const DiskModel::AccessCostParts cost =
      model_.AccessCostDecomposed(head_, chosen.page);
  if (head_ != kInvalidPageId &&
      (chosen.page == head_ || chosen.page == head_ + 1)) {
    ++metrics_->disk_seq_reads;
  } else if (head_ != kInvalidPageId) {
    metrics_->disk_seek_pages += head_ < chosen.page ? chosen.page - head_
                                                     : head_ - chosen.page;
  }
  drive_free_at_ = start + cost.seek + cost.transfer;
  busy_time_ += cost.seek + cost.transfer;
  NAVPATH_TRACE(tracer_,
                Span(TraceCategory::kDisk, kTrackElevator, "queued",
                     chosen.submit_time, start,
                     {{"page", chosen.page}, {"depth", visible}}));
  if (cost.seek > 0) {
    NAVPATH_TRACE(tracer_, Span(TraceCategory::kDisk, kTrackDisk, "seek",
                                start, start + cost.seek,
                                {{"page", chosen.page}}));
  }
  NAVPATH_TRACE(tracer_, Span(TraceCategory::kDisk, kTrackDisk, "transfer",
                              start + cost.seek, drive_free_at_,
                              {{"page", chosen.page}}));
  head_ = chosen.page;
  ++metrics_->disk_reads;
  CompletedRequest done{chosen.page, drive_free_at_};
  if (faults_ != nullptr) {
    const FaultInjector::ReadFault fault =
        faults_->NextReadFault(chosen.page);
    if (fault.Any()) ++metrics_->faults_injected;
    if (fault.extra_latency > 0) {
      drive_free_at_ += fault.extra_latency;
      busy_time_ += fault.extra_latency;
      done.complete_time = drive_free_at_;
    }
    done.failed = fault.transient_error;
    done.corrupt = fault.corrupt;
  }
  completed_.push(done);
}

SimulatedDisk::AsyncCompletion SimulatedDisk::Deliver(
    const CompletedRequest& req, std::byte* out) {
  AsyncCompletion completion;
  completion.page = req.page;
  if (req.failed) {
    completion.io =
        Status::IOError("injected transient fault on async read of page " +
                        std::to_string(req.page));
    return completion;
  }
  std::memcpy(out, pages_[req.page].get(), page_size_);
  if (req.corrupt) faults_->CorruptPayload(out, page_size_);
  return completion;
}

Result<SimulatedDisk::AsyncCompletion> SimulatedDisk::WaitForCompletion(
    std::byte* out) {
  if (completed_.empty()) {
    if (pending_.empty()) {
      return Status::NotFound("no asynchronous request in flight");
    }
    ServeOnePending();
  }
  const CompletedRequest req = completed_.top();
  completed_.pop();
  clock_->WaitUntil(req.complete_time);
  return Deliver(req, out);
}

std::optional<SimulatedDisk::AsyncCompletion> SimulatedDisk::PollCompletion(
    std::byte* out) {
  const SimTime now = clock_->now();
  for (;;) {
    if (!completed_.empty()) {
      if (completed_.top().complete_time <= now) {
        const CompletedRequest req = completed_.top();
        completed_.pop();
        return Deliver(req, out);
      }
      return std::nullopt;  // in progress but not done yet
    }
    if (pending_.empty()) return std::nullopt;
    // Only commit the drive's next scheduling decision if the drive would
    // have made it by now; otherwise later submissions could still change
    // the SSTF choice.
    SimTime earliest_submit = pending_.front().submit_time;
    for (const auto& p : pending_) {
      earliest_submit = std::min(earliest_submit, p.submit_time);
    }
    if (std::max(drive_free_at_, earliest_submit) > now) return std::nullopt;
    ServeOnePending();
  }
}

}  // namespace navpath
