// Deterministic, seedable fault injection for the simulated disk.
//
// The paper's experiments assume a drive that always succeeds; real pagers
// do not get that luxury. The injector models the failure modes a storage
// stack must survive:
//   * transient I/O errors   — a read or write attempt fails outright and
//                              may succeed when retried,
//   * silent corruption      — the payload is delivered (or kept) with
//                              flipped bits and no error indication; only
//                              the page checksum can catch it,
//   * permanent bad pages    — every read of the page delivers corrupt
//                              data (unrecoverable media damage),
//   * latency spikes         — the access completes but takes far longer
//                              than the disk model predicts.
//
// All decisions are drawn from one seeded xoshiro256** stream in service
// order, so a given (seed, workload) pair reproduces the exact same fault
// schedule: tests can assert on recovery behaviour bit-for-bit.
//
// The injector is consulted by SimulatedDisk on every sync read, async
// completion, and write. When no injector is attached the disk behaves
// exactly as before — zero overhead, identical simulated costs.
#ifndef NAVPATH_STORAGE_FAULT_INJECTOR_H_
#define NAVPATH_STORAGE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "storage/page.h"

namespace navpath {

struct FaultInjectorOptions {
  /// Seed of the fault schedule; same seed + same workload => same faults.
  std::uint64_t seed = 0;

  /// Probability that a read attempt fails with a transient IOError
  /// (data not delivered; a retry redraws).
  double transient_read_error_rate = 0.0;

  /// Probability that a write attempt fails with a transient IOError
  /// (page image unchanged; a retry redraws).
  double transient_write_error_rate = 0.0;

  /// Probability that a read silently delivers a corrupted payload
  /// (bit flips, no error indication). A retry re-reads intact media.
  double corruption_rate = 0.0;

  /// Probability of a latency spike on any access, and its size.
  double latency_spike_rate = 0.0;
  SimTime latency_spike = 20 * kSimMillisecond;

  /// Pages whose media is damaged: every read delivers corrupt data, no
  /// matter how often it is retried.
  std::vector<PageId> permanent_bad_pages;

  bool AnyEnabled() const {
    return transient_read_error_rate > 0.0 ||
           transient_write_error_rate > 0.0 || corruption_rate > 0.0 ||
           latency_spike_rate > 0.0 || !permanent_bad_pages.empty();
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorOptions& options);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The disk's verdict for one read service attempt of `page`.
  struct ReadFault {
    bool transient_error = false;  // fail the attempt with IOError
    bool corrupt = false;          // deliver the payload with flipped bits
    SimTime extra_latency = 0;     // added to the access's service time
    bool Any() const {
      return transient_error || corrupt || extra_latency > 0;
    }
  };

  /// The verdict for one write attempt of `page`.
  struct WriteFault {
    bool transient_error = false;
    SimTime extra_latency = 0;
    bool Any() const { return transient_error || extra_latency > 0; }
  };

  /// Draws the next fault decision. Must be called once per service
  /// attempt, in service order, so the schedule is reproducible.
  ReadFault NextReadFault(PageId page);
  WriteFault NextWriteFault(PageId page);

  /// Deterministically flips 1-4 bits of `payload`. Same seed and same
  /// decision index flip the same bits.
  void CorruptPayload(std::byte* payload, std::size_t n);

  bool IsPermanentlyBad(PageId page) const {
    return permanent_.count(page) > 0;
  }

  /// Number of decisions drawn so far (for determinism assertions).
  std::uint64_t decisions() const { return decisions_; }

 private:
  FaultInjectorOptions options_;
  Random rng_;
  std::unordered_set<PageId> permanent_;
  std::uint64_t decisions_ = 0;
};

}  // namespace navpath

#endif  // NAVPATH_STORAGE_FAULT_INJECTOR_H_
