#include "storage/fault_injector.h"

namespace navpath {

FaultInjector::FaultInjector(const FaultInjectorOptions& options)
    : options_(options),
      rng_(options.seed),
      permanent_(options.permanent_bad_pages.begin(),
                 options.permanent_bad_pages.end()) {}

FaultInjector::ReadFault FaultInjector::NextReadFault(PageId page) {
  ++decisions_;
  ReadFault fault;
  // Draw every category unconditionally so the stream position depends
  // only on how many attempts were served, not on which faults fired.
  const bool transient = rng_.NextBool(options_.transient_read_error_rate);
  const bool corrupt = rng_.NextBool(options_.corruption_rate);
  const bool spike = rng_.NextBool(options_.latency_spike_rate);
  fault.transient_error = transient;
  fault.corrupt = !transient && (corrupt || IsPermanentlyBad(page));
  if (spike) fault.extra_latency = options_.latency_spike;
  return fault;
}

FaultInjector::WriteFault FaultInjector::NextWriteFault(PageId) {
  ++decisions_;
  WriteFault fault;
  const bool transient = rng_.NextBool(options_.transient_write_error_rate);
  const bool spike = rng_.NextBool(options_.latency_spike_rate);
  fault.transient_error = transient;
  if (spike) fault.extra_latency = options_.latency_spike;
  return fault;
}

void FaultInjector::CorruptPayload(std::byte* payload, std::size_t n) {
  if (n == 0) return;
  const int flips = 1 + static_cast<int>(rng_.NextBounded(4));
  for (int i = 0; i < flips; ++i) {
    const std::size_t bit = rng_.NextBounded(n * 8);
    payload[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
  }
}

}  // namespace navpath
