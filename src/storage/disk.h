// Discrete-event simulated disk with synchronous and asynchronous reads.
//
// The paper's experiments depend on three physical access regimes:
//   1. random synchronous reads       (the Simple plan),
//   2. asynchronously scheduled reads (XSchedule; the drive may serve
//      pending requests in an order that minimises head movement), and
//   3. sequential scans               (XScan).
// This class reproduces all three against a deterministic simulated clock.
// Page data lives in main memory; only *latency* is simulated.
//
// Asynchronous requests are served shortest-seek-time-first (SSTF) among
// the requests that had been submitted by the time the drive becomes idle,
// which models the reordering freedom the paper attributes to OS schedulers
// and on-disk tagged command queueing (Sec. 3.7).
#ifndef NAVPATH_STORAGE_DISK_H_
#define NAVPATH_STORAGE_DISK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "observe/trace.h"
#include "storage/checksum.h"
#include "storage/disk_model.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace navpath {

/// Two-level service class for asynchronous reads. High-priority requests
/// jump the elevator sweep: while any high-priority request is visible to
/// the drive, the C-SCAN pick is restricted to the high-priority subset.
/// Workload schedulers tag the reads of short/cheap queries high so their
/// few pages are not queued behind a long query's deep scan.
enum class ReadPriority { kNormal, kHigh };

class SimulatedDisk {
 public:
  /// `clock` and `metrics` must outlive the disk.
  SimulatedDisk(const DiskModel& model, std::size_t page_size,
                SimClock* clock, Metrics* metrics);

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  std::size_t page_size() const { return page_size_; }
  PageId num_pages() const { return static_cast<PageId>(pages_.size()); }

  /// Extends the segment by one zeroed page and returns its id.
  PageId AllocatePage();

  /// Attaches (or detaches, with nullptr) a fault injector consulted on
  /// every read service, async completion, and write. Without one the
  /// disk never fails and simulated costs are exactly the fault-free ones.
  void SetFaultInjector(FaultInjector* injector) { faults_ = injector; }

  /// Synchronous read: blocks the simulation until the transfer completes,
  /// then copies the page image into `out` (page_size bytes). An injected
  /// transient fault charges the attempt's service time and returns
  /// IOError without delivering data.
  Status ReadSync(PageId id, std::byte* out);

  /// Synchronous write of `data` (page_size bytes). `crc` is the page
  /// trailer checksum to store out of band; when omitted the disk computes
  /// it itself (callers that cannot vouch for the payload end to end).
  Status WriteSync(PageId id, const std::byte* data,
                   std::optional<std::uint32_t> crc = std::nullopt);

  /// The out-of-band trailer checksum stored with page `id`. Reading it
  /// costs nothing: the trailer travels with the sector it protects.
  std::uint32_t PageCrc(PageId id) const {
    NAVPATH_CHECK(id < trailers_.size());
    return trailers_[id].crc32c;
  }

  // --- Asynchronous interface (Sec. 3.7) -------------------------------

  /// Queues an asynchronous read of `id` at the current simulated time.
  /// A read of a page that is already pending is *merged* into the queued
  /// request instead of occupying a second elevator slot: the pair costs
  /// one disk service and produces one completion (requests_merged counts
  /// the coalesced submissions). Concurrent queries interested in the same
  /// page therefore share a single physical read. Merging keeps the
  /// higher of the two priorities, so a high-priority interest upgrades a
  /// queued normal request (never the reverse).
  Status SubmitRead(PageId id, ReadPriority priority = ReadPriority::kNormal);

  /// Raises the priority of an already-pending read of `id` (no-op when
  /// the page is not pending, already served, or already high). Used when
  /// a high-priority consumer registers interest in a request that was
  /// submitted at normal priority.
  void PromoteRead(PageId id, ReadPriority priority);

  /// Number of submitted reads whose completion has not been consumed.
  std::size_t pending_requests() const {
    return pending_.size() + completed_.size();
  }

  /// Number of not-yet-served reads currently queued at high priority.
  /// A serving layer reads this as a live backlog signal for its
  /// deadline class (alongside queue depth and turnaround EWMA).
  std::size_t pending_high_requests() const {
    std::size_t n = 0;
    for (const PendingRequest& req : pending_) {
      if (req.priority == ReadPriority::kHigh) ++n;
    }
    return n;
  }

  /// One finished asynchronous read. `io` is OK when the payload was
  /// delivered into the caller's buffer; an injected transient fault
  /// completes the request with IOError and no data (the page can be
  /// re-read synchronously).
  struct AsyncCompletion {
    PageId page = kInvalidPageId;
    Status io;
  };

  /// Blocks (advances the clock) until some queued read completes, then
  /// copies its data into `out` and returns the completion.
  /// Fails with NotFound if nothing is queued.
  Result<AsyncCompletion> WaitForCompletion(std::byte* out);

  /// Returns a read that has already completed at the current simulated
  /// time, or nullopt. Never advances the clock.
  std::optional<AsyncCompletion> PollCompletion(std::byte* out);

  /// Position of the head after the last access (for tests/inspection).
  PageId head_position() const { return head_; }

  /// Accumulated time this drive spent servicing requests — seek plus
  /// transfer plus injected fault latency — since construction or the
  /// last ResetTimeline(). With K drives on independent clocks,
  /// busy_time() over the measurement window is that drive's utilization.
  SimTime busy_time() const { return busy_time_; }

  // --- Persistence backdoor (no simulation cost) ------------------------

  /// Direct read-only access to a page image (for saving to a file).
  const std::byte* RawPage(PageId id) const {
    NAVPATH_CHECK(id < pages_.size());
    return pages_[id].get();
  }

  /// Appends a page image without charging time (for loading from a file).
  /// The trailer checksum is recomputed from the payload; persistence
  /// verifies the file's stored trailer against the payload before calling.
  PageId LoadRawPage(const std::byte* data) {
    const PageId id = AllocatePage();
    std::memcpy(pages_[id].get(), data, page_size_);
    trailers_[id].crc32c = Crc32c(data, page_size_);
    return id;
  }

  /// Records every page access (reads and writes, in service order) into
  /// `trace` until called again with nullptr. For experiments that show
  /// physical access orders (Example 1).
  void SetTrace(std::vector<PageId>* trace) { trace_ = trace; }

#if NAVPATH_OBSERVE_ENABLED
  /// Attaches (or detaches, with nullptr) a span tracer: every access is
  /// then drawn as seek + transfer spans on the disk track, and async
  /// submissions/queue waits on the elevator track. Tracing reads the
  /// simulated timeline but never charges it.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
#endif

  /// Re-anchors the drive's timeline after the simulated clock was reset
  /// (no request may be in flight). The head position is kept: the first
  /// access of a fresh measurement still pays a real seek.
  void ResetTimeline() {
    NAVPATH_CHECK(pending_.empty() && completed_.empty());
    drive_free_at_ = 0;
    busy_time_ = 0;
  }

 private:
  struct PendingRequest {
    PageId page;
    SimTime submit_time;
    ReadPriority priority = ReadPriority::kNormal;
  };
  struct CompletedRequest {
    PageId page;
    SimTime complete_time;
    bool failed = false;   // injected transient fault: no data delivered
    bool corrupt = false;  // injected corruption: deliver flipped bits
    bool operator>(const CompletedRequest& other) const {
      return complete_time > other.complete_time;
    }
  };

  /// Serves exactly one pending request (SSTF among those submitted by the
  /// time the drive is idle) and moves it to the completed queue.
  void ServeOnePending();

  /// Copies a completed request's payload into `out` (unless its injected
  /// fault suppressed delivery) and builds the caller-facing completion.
  AsyncCompletion Deliver(const CompletedRequest& req, std::byte* out);

  SimTime ChargeAccess(PageId target);

  DiskModel model_;
  std::size_t page_size_;
  SimClock* clock_;
  Metrics* metrics_;
  FaultInjector* faults_ = nullptr;

  std::vector<std::unique_ptr<std::byte[]>> pages_;
  std::vector<PageTrailer> trailers_;  // out-of-band, parallel to pages_

  PageId head_ = kInvalidPageId;
  SimTime drive_free_at_ = 0;
  SimTime busy_time_ = 0;
  std::uint64_t served_order_ = 0;  // requests served so far (for metrics)

  std::vector<PageId>* trace_ = nullptr;
#if NAVPATH_OBSERVE_ENABLED
  Tracer* tracer_ = nullptr;
#endif
  std::vector<PendingRequest> pending_;
  std::priority_queue<CompletedRequest, std::vector<CompletedRequest>,
                      std::greater<CompletedRequest>>
      completed_;
};

}  // namespace navpath

#endif  // NAVPATH_STORAGE_DISK_H_
