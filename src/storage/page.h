// Page primitives: page ids and the fixed page geometry.
#ifndef NAVPATH_STORAGE_PAGE_H_
#define NAVPATH_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace navpath {

/// Physical page number within the (single) database segment. Page numbers
/// double as physical positions: the simulated disk lays page i at track
/// position i, so |a - b| is the seek distance between pages a and b.
using PageId = std::uint32_t;

constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default page size. The unit of I/O and the unit of clustering
/// (Sec. 3.3 of the paper: one cluster == one disk page).
constexpr std::size_t kDefaultPageSize = 8192;

}  // namespace navpath

#endif  // NAVPATH_STORAGE_PAGE_H_
