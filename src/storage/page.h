// Page primitives: page ids and the fixed page geometry.
#ifndef NAVPATH_STORAGE_PAGE_H_
#define NAVPATH_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace navpath {

/// Physical page number within the (single) database segment. Page numbers
/// double as physical positions: the simulated disk lays page i at track
/// position i, so |a - b| is the seek distance between pages a and b.
using PageId = std::uint32_t;

constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default page size. The unit of I/O and the unit of clustering
/// (Sec. 3.3 of the paper: one cluster == one disk page).
constexpr std::size_t kDefaultPageSize = 8192;

/// Maps the logical page ids embedded in stored NodeIDs onto the physical
/// page that holds the version a transaction snapshot should see. Stored
/// page bytes (border partner pointers, context NodeIDs, summary extents)
/// always speak logical ids; translation to a physical id happens exactly
/// once, at buffer Fix/Prefetch time. The null translator is the identity
/// map — the read-only, pre-MVCC behaviour.
class PageTranslator {
 public:
  virtual ~PageTranslator() = default;

  /// Physical page holding `logical`'s image in this snapshot.
  virtual PageId ToPhysical(PageId logical) const = 0;

  /// Logical id a physical page serves in this snapshot (inverse of
  /// ToPhysical for mapped pages; identity otherwise). Needed when an
  /// async completion reports the physical id that was submitted.
  virtual PageId ToLogical(PageId physical) const = 0;

  /// True if `page` is a shadow (version-copy) page that must never be
  /// interpreted as a logical cluster during range sweeps.
  virtual bool IsShadow(PageId page) const = 0;
};

inline PageId TranslateToPhysical(const PageTranslator* t, PageId logical) {
  return t == nullptr ? logical : t->ToPhysical(logical);
}

inline PageId TranslateToLogical(const PageTranslator* t, PageId physical) {
  return t == nullptr ? physical : t->ToLogical(physical);
}

}  // namespace navpath

#endif  // NAVPATH_STORAGE_PAGE_H_
