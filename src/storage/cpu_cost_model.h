// CPU cost constants charged against the simulated clock.
//
// The paper's cost argument is not only about I/O: navigation between
// clusters also pays representation changes (swizzling) and buffer-manager
// hash probes with latch acquisition, while intra-cluster navigation on
// swizzled pointers is nearly free (Sec. 1 Example 1, Sec. 3.6). These
// constants encode that asymmetry. Values approximate a mid-2000s CPU.
#ifndef NAVPATH_STORAGE_CPU_COST_MODEL_H_
#define NAVPATH_STORAGE_CPU_COST_MODEL_H_

#include "common/sim_clock.h"

namespace navpath {

// Values model the paper's mid-2000s evaluation platform, where record
// decoding, latching and hash maintenance dominate: Table 3 reports CPU
// fractions of 8-23% (Simple), 12-33% (XSchedule) and 62-77% (XScan),
// which these constants reproduce together with the DiskModel defaults.
struct CpuCostModel {
  /// Buffer-manager page fix: hash-table probe + latch handshake.
  SimTime buffer_probe = 2600;
  /// Follow one intra-page link (record header decode + pointer chase).
  SimTime record_hop = 450;
  /// Evaluate a node test against a record's tag.
  SimTime node_test = 120;
  /// Create/copy/forward one partial path instance.
  SimTime instance_op = 500;
  /// One insert/lookup on an operator hash structure (R, S, Q, dedup).
  SimTime set_op = 1100;
  /// NodeID -> buffer pointer translation (Sec. 3.6: synchronization +
  /// translation-table lookup).
  SimTime swizzle = 2200;
  /// Buffer pointer -> NodeID translation (cheap).
  SimTime unswizzle = 150;
  /// Post-I/O bookkeeping per page load (frame setup, LRU update).
  SimTime page_install = 4500;
  /// Comparison + move during result sorting, per element and level.
  SimTime sort_op = 300;
};

}  // namespace navpath

#endif  // NAVPATH_STORAGE_CPU_COST_MODEL_H_
