#include "storage/buffer_manager.h"

#include <algorithm>
#include <cstring>

namespace navpath {

PageGuard::PageGuard(BufferManager* bm, std::size_t frame_idx)
    : bm_(bm), frame_idx_(frame_idx) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : bm_(other.bm_), frame_idx_(other.frame_idx_) {
  other.bm_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    bm_ = other.bm_;
    frame_idx_ = other.frame_idx_;
    other.bm_ = nullptr;
  }
  return *this;
}

PageId PageGuard::page_id() const {
  NAVPATH_DCHECK(valid());
  return bm_->FramePage(frame_idx_);
}

std::byte* PageGuard::data() {
  NAVPATH_DCHECK(valid());
  return bm_->FrameData(frame_idx_);
}

const std::byte* PageGuard::data() const {
  NAVPATH_DCHECK(valid());
  return bm_->FrameData(frame_idx_);
}

void PageGuard::MarkDirty() {
  NAVPATH_DCHECK(valid());
  bm_->FrameMarkDirty(frame_idx_);
}

void PageGuard::Release() {
  if (bm_ != nullptr) {
    bm_->Unpin(frame_idx_);
    bm_ = nullptr;
  }
}

BufferManager::BufferManager(SimulatedDisk* disk, std::size_t capacity_pages,
                             const CpuCostModel& costs, SimClock* clock,
                             Metrics* metrics, const RetryPolicy& retry)
    : disk_(disk),
      capacity_(capacity_pages),
      costs_(costs),
      clock_(clock),
      metrics_(metrics),
      retry_(retry),
      scratch_(std::make_unique<std::byte[]>(disk->page_size())) {
  NAVPATH_CHECK(capacity_pages > 0);
  NAVPATH_CHECK(retry.max_attempts >= 1);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    free_frames_.push_back(capacity_ - 1 - i);  // hand out frame 0 first
  }
}

BufferManager::~BufferManager() {
  // Teardown must not abort on an injected (or real) write failure that
  // survived its retries; callers who need durability call FlushAll()
  // themselves and observe the Status.
  (void)FlushAll();
}

bool BufferManager::VerifyChecksum(PageId id, const std::byte* payload) const {
  return Crc32c(payload, disk_->page_size()) == disk_->PageCrc(id);
}

Status BufferManager::ReadPageWithRetry(PageId id, std::byte* out) {
  SimTime backoff = retry_.initial_backoff;
  Status last;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->WaitUntil(clock_->now() + backoff);
      backoff = static_cast<SimTime>(static_cast<double>(backoff) *
                                     retry_.multiplier);
      ++metrics_->fault_retries;
    }
    Status s = disk_->ReadSync(id, out);
    if (!s.ok()) {
      last = std::move(s);
      continue;
    }
    if (VerifyChecksum(id, out)) return Status::OK();
    ++metrics_->corruptions_detected;
    last = Status::Corruption("page " + std::to_string(id) +
                              " failed checksum verification");
  }
  return last;
}

Status BufferManager::WritePageWithRetry(PageId id, const std::byte* data) {
  const std::uint32_t crc = Crc32c(data, disk_->page_size());
  SimTime backoff = retry_.initial_backoff;
  Status last;
  for (int attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->WaitUntil(clock_->now() + backoff);
      backoff = static_cast<SimTime>(static_cast<double>(backoff) *
                                     retry_.multiplier);
      ++metrics_->fault_retries;
    }
    Status s = disk_->WriteSync(id, data, crc);
    if (s.ok()) return s;
    last = std::move(s);
  }
  return last;
}

void BufferManager::Unpin(std::size_t frame_idx) {
  Frame& f = frames_[frame_idx];
  NAVPATH_DCHECK(f.pin_count > 0);
  --f.pin_count;
  if (f.pin_count == 0 && unpin_listener_) {
    unpin_listener_(f.page_id);
  }
}

Result<std::size_t> BufferManager::GetFreeFrame() {
  if (!free_frames_.empty()) {
    const std::size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Evict the least-recently-used unpinned frame. Frames claimed by a
  // concurrent query (prefetched, not yet consumed) are spared unless
  // every unpinned frame is claimed — evicting one forces its owner into
  // a synchronous re-read later, the costliest outcome.
  std::size_t victim = capacity_;
  std::uint64_t oldest = ~0ull;
  std::size_t claimed_victim = capacity_;
  std::uint64_t claimed_oldest = ~0ull;
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pin_count != 0) continue;
    if (f.claimed) {
      if (f.last_use < claimed_oldest) {
        claimed_oldest = f.last_use;
        claimed_victim = i;
      }
    } else if (f.last_use < oldest) {
      oldest = f.last_use;
      victim = i;
    }
  }
  if (victim == capacity_) victim = claimed_victim;
  if (victim == capacity_) {
    return Status::ResourceExhausted("all buffer frames are pinned");
  }
  Frame& f = frames_[victim];
  f.claimed = false;
  if (f.dirty) {
    NAVPATH_RETURN_NOT_OK(WritePageWithRetry(f.page_id, f.data.get()));
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  ++metrics_->buffer_evictions;
  NAVPATH_TRACE(tracer_, Instant(TraceCategory::kBuffer, kTrackBuffer,
                                 "evict", clock_->now(),
                                 {{"page", f.page_id}}));
  f.page_id = kInvalidPageId;
  return victim;
}

Result<std::size_t> BufferManager::InstallFromScratch(PageId id) {
  NAVPATH_ASSIGN_OR_RETURN(const std::size_t idx, GetFreeFrame());
  Frame& f = frames_[idx];
  if (f.data == nullptr) {
    f.data = std::make_unique<std::byte[]>(disk_->page_size());
  }
  std::memcpy(f.data.get(), scratch_.get(), disk_->page_size());
  f.page_id = id;
  f.pin_count = 0;
  f.dirty = false;
  f.claimed = false;
  f.last_use = ++use_counter_;
  page_table_[id] = idx;
  clock_->ChargeCpu(costs_.page_install);
  return idx;
}

Result<std::size_t> BufferManager::FixInternal(PageId id, bool charge_swizzle) {
  clock_->ChargeCpu(costs_.buffer_probe);
  if (charge_swizzle) {
    clock_->ChargeCpu(costs_.swizzle);
    ++metrics_->swizzle_ops;
  }
  auto it = page_table_.find(id);
  std::size_t idx;
  if (it != page_table_.end()) {
    ++metrics_->buffer_hits;
    idx = it->second;
  } else {
    ++metrics_->buffer_misses;
    [[maybe_unused]] const SimTime miss_begin = clock_->now();
    NAVPATH_RETURN_NOT_OK(ReadPageWithRetry(id, scratch_.get()));
    NAVPATH_ASSIGN_OR_RETURN(idx, InstallFromScratch(id));
    NAVPATH_TRACE(tracer_, Span(TraceCategory::kBuffer, kTrackBuffer,
                                "fix_miss", miss_begin, clock_->now(),
                                {{"page", id}}));
  }
  Frame& f = frames_[idx];
  ++f.pin_count;
  f.claimed = false;  // first fix consumes a concurrent query's claim
  f.last_use = ++use_counter_;
  return idx;
}

Result<PageGuard> BufferManager::Fix(PageId id) {
  NAVPATH_ASSIGN_OR_RETURN(const std::size_t idx,
                           FixInternal(id, /*charge_swizzle=*/false));
  return PageGuard(this, idx);
}

Result<PageGuard> BufferManager::FixSwizzle(PageId id) {
  NAVPATH_ASSIGN_OR_RETURN(const std::size_t idx,
                           FixInternal(id, /*charge_swizzle=*/true));
  return PageGuard(this, idx);
}

Result<PageGuard> BufferManager::NewPage() {
  const PageId id = disk_->AllocatePage();
  std::memset(scratch_.get(), 0, disk_->page_size());
  NAVPATH_ASSIGN_OR_RETURN(const std::size_t idx, InstallFromScratch(id));
  Frame& f = frames_[idx];
  ++f.pin_count;
  f.dirty = true;
  return PageGuard(this, idx);
}

Result<PageGuard> BufferManager::AdoptPage(PageId id,
                                           const std::byte* content) {
  auto it = page_table_.find(id);
  std::size_t idx;
  if (it != page_table_.end()) {
    idx = it->second;
  } else {
    std::memcpy(scratch_.get(), content, disk_->page_size());
    NAVPATH_ASSIGN_OR_RETURN(idx, InstallFromScratch(id));
  }
  Frame& f = frames_[idx];
  if (it != page_table_.end()) {
    std::memcpy(f.data.get(), content, disk_->page_size());
    clock_->ChargeCpu(costs_.page_install);
  }
  ++f.pin_count;
  f.dirty = true;
  f.claimed = false;
  f.last_use = ++use_counter_;
  return PageGuard(this, idx);
}

Status BufferManager::Discard(PageId id) {
  const auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.pin_count > 0) {
    return Status::InvalidArgument("cannot discard a pinned page");
  }
  page_table_.erase(it);
  const std::size_t idx = &f - frames_.data();
  f.page_id = kInvalidPageId;
  f.dirty = false;
  f.claimed = false;
  free_frames_.push_back(idx);
  return Status::OK();
}

Result<BufferManager::PrefetchOutcome> BufferManager::Prefetch(
    PageId id, std::uint32_t owner, ReadPriority priority) {
  const auto resident = page_table_.find(id);
  if (resident != page_table_.end()) {
    // A concurrent query will come back for this page once its scheduler
    // pulls the corresponding cluster; shield it from eviction until
    // then, exactly like a prefetch it had paid I/O for.
    if (owner != 0) frames_[resident->second].claimed = true;
    return PrefetchOutcome::kResident;
  }
  const auto it = in_flight_.find(id);
  if (it != in_flight_.end()) {
    std::vector<std::uint32_t>& owners = it->second;
    if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
      // A different query already has this page on order: register
      // interest on the existing request instead of double-submitting.
      owners.push_back(owner);
      ++metrics_->requests_merged;
    }
    // An urgent interest makes the whole merged request urgent.
    if (priority == ReadPriority::kHigh) disk_->PromoteRead(id, priority);
    return PrefetchOutcome::kInFlight;
  }
  NAVPATH_RETURN_NOT_OK(disk_->SubmitRead(id, priority));
  in_flight_.emplace(id, std::vector<std::uint32_t>{owner});
  return PrefetchOutcome::kSubmitted;
}

bool BufferManager::ClaimedByQuery(PageId id) const {
  const auto it = in_flight_.find(id);
  if (it == in_flight_.end()) return false;
  for (const std::uint32_t owner : it->second) {
    if (owner != 0) return true;
  }
  return false;
}

std::size_t BufferManager::PendingFor(std::uint32_t owner) const {
  std::size_t n = 0;
  for (const auto& [page, owners] : in_flight_) {
    (void)page;
    if (std::find(owners.begin(), owners.end(), owner) != owners.end()) ++n;
  }
  return n;
}

Result<PageId> BufferManager::WaitAnyPrefetch() {
  if (in_flight_.empty()) {
    return Status::NotFound("no prefetch in flight");
  }
  [[maybe_unused]] const SimTime wait_begin = clock_->now();
  NAVPATH_ASSIGN_OR_RETURN(const SimulatedDisk::AsyncCompletion completion,
                           disk_->WaitForCompletion(scratch_.get()));
  NAVPATH_TRACE(tracer_, Span(TraceCategory::kBuffer, kTrackBuffer,
                              "prefetch_wait", wait_begin, clock_->now(),
                              {{"page", completion.page}}));
  const PageId id = completion.page;
  const bool claim = ClaimedByQuery(id);
  in_flight_.erase(id);
  if (!completion.io.ok() || !VerifyChecksum(id, scratch_.get())) {
    // The asynchronous read failed or delivered a bad image: degrade to a
    // synchronous re-read (with retries) so one lost completion does not
    // fail the whole plan.
    if (completion.io.ok()) ++metrics_->corruptions_detected;
    ++metrics_->fault_fallbacks;
    NAVPATH_RETURN_NOT_OK(ReadPageWithRetry(id, scratch_.get()));
  }
  if (page_table_.count(id) == 0) {
    NAVPATH_ASSIGN_OR_RETURN(const std::size_t idx, InstallFromScratch(id));
    frames_[idx].claimed = claim;
  }
  return id;
}

Result<PageId> BufferManager::PollAnyPrefetch() {
  if (in_flight_.empty()) return kInvalidPageId;
  const std::optional<SimulatedDisk::AsyncCompletion> completion =
      disk_->PollCompletion(scratch_.get());
  if (!completion.has_value()) return kInvalidPageId;
  const PageId id = completion->page;
  const bool claim = ClaimedByQuery(id);
  in_flight_.erase(id);
  if (!completion->io.ok() || !VerifyChecksum(id, scratch_.get())) {
    if (completion->io.ok()) ++metrics_->corruptions_detected;
    ++metrics_->fault_fallbacks;
    NAVPATH_RETURN_NOT_OK(ReadPageWithRetry(id, scratch_.get()));
  }
  if (page_table_.count(id) == 0) {
    NAVPATH_ASSIGN_OR_RETURN(const std::size_t idx, InstallFromScratch(id));
    frames_[idx].claimed = claim;
  }
  return id;
}

Status BufferManager::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      NAVPATH_RETURN_NOT_OK(WritePageWithRetry(f.page_id, f.data.get()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferManager::InvalidateAll() {
  NAVPATH_RETURN_NOT_OK(FlushAll());
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId) continue;
    if (f.pin_count > 0) {
      return Status::InvalidArgument("cannot invalidate a pinned page");
    }
    page_table_.erase(f.page_id);
    f.page_id = kInvalidPageId;
    f.claimed = false;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

}  // namespace navpath
