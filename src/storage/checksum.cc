#include "storage/checksum.h"

#include <array>

namespace navpath {
namespace {

// Castagnoli polynomial, reflected.
constexpr std::uint32_t kPoly = 0x82F63B78u;

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(const std::byte* data, std::size_t n,
                     std::uint32_t init) {
  static const std::array<std::uint32_t, 256> kTable = BuildTable();
  std::uint32_t crc = ~init;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^
          kTable[(crc ^ static_cast<std::uint32_t>(data[i])) & 0xFF];
  }
  return ~crc;
}

}  // namespace navpath
