// Deterministic XMark-shaped document generator.
//
// Reproduces the structural element distribution of the XMark benchmark
// documents [Schmidt et al., VLDB 2002] that the paper's evaluation
// queries touch: the region/item hierarchy (Q6'), description/annotation/
// email prose (Q7), and the recursive parlist/listitem/text markup under
// closed-auction annotations (Q15). xmlgen itself is not available
// offline; this generator substitutes deterministic synthetic text while
// keeping element counts proportional to xmlgen's per-scale-factor counts
// (21750 items, 25500 persons, 12000 open / 9750 closed auctions at
// scale 1). Character data is shorter than xmlgen's so experiments stay
// laptop-sized; the queries only count/navigate elements, so this is a
// pure constant factor on document bytes.
//
// One deliberate naming deviation: persons carry an <email> element (the
// paper's Q7 queries /site//email; real XMark calls it emailaddress).
#ifndef NAVPATH_XMARK_GENERATOR_H_
#define NAVPATH_XMARK_GENERATOR_H_

#include <cstdint>

#include "xml/dom.h"

namespace navpath {

struct XMarkOptions {
  /// Scale factor (the paper sweeps 0.1 .. 2.0).
  double scale = 1.0;
  std::uint64_t seed = 42;

  // Element counts at scale 1 (XMark's published proportions).
  std::uint32_t items = 21750;
  std::uint32_t persons = 25500;
  std::uint32_t open_auctions = 12000;
  std::uint32_t closed_auctions = 9750;
  std::uint32_t categories = 1000;

  // Structure probabilities (chosen to reproduce XMark's query
  // selectivities: Q7 touches a large fraction of the document, Q15 a
  // tiny one).
  double description_is_parlist = 0.6;
  double nested_parlist = 0.35;
  double text_has_emph = 0.35;
  double emph_has_keyword = 0.35;
  double keyword_has_bold = 0.35;
};

/// Generates a document. The tree uses `tags` for interning and has order
/// keys assigned.
DomTree GenerateXMark(const XMarkOptions& options, TagRegistry* tags);

}  // namespace navpath

#endif  // NAVPATH_XMARK_GENERATOR_H_
