#include "xmark/generator.h"

#include <algorithm>
#include <array>
#include <string>

#include "common/random.h"

namespace navpath {
namespace {

// Word pool in the spirit of xmlgen's Shakespeare-derived vocabulary.
constexpr std::array<const char*, 48> kWords = {
    "gold",     "market",  "duteous", "cunning", "honour",  "ladder",
    "vantage",  "gentle",  "mortal",  "fortune", "summer",  "winter",
    "promise",  "silver",  "castle",  "voyage",  "garden",  "shadow",
    "whisper",  "counsel", "herald",  "sonnet",  "tempest", "crown",
    "feather",  "lantern", "harbour", "meadow",  "ribbon",  "saddle",
    "scepter",  "tavern",  "minstrel","falcon",  "orchard", "quarrel",
    "banner",   "goblet",  "hamlet",  "ivory",   "jester",  "knight",
    "lattice",  "mirror",  "needle",  "oracle",  "pennant", "quiver"};

constexpr std::array<const char*, 6> kRegions = {
    "africa", "asia", "australia", "europe", "namerica", "samerica"};

// XMark's per-region item shares at scale 1 (sums to 21750/21750).
constexpr std::array<double, 6> kRegionShare = {550.0 / 21750,  2000.0 / 21750,
                                                2200.0 / 21750, 6000.0 / 21750,
                                                10000.0 / 21750,
                                                1000.0 / 21750};

class Generator {
 public:
  Generator(const XMarkOptions& options, TagRegistry* tags)
      : options_(options), tags_(tags), tree_(tags), rng_(options.seed) {}

  DomTree Run() {
    const DomNodeId site = tree_.CreateRoot(Tag("site"));
    GenRegions(site);
    GenCategories(site);
    GenPeople(site);
    GenOpenAuctions(site);
    GenClosedAuctions(site);
    tree_.AssignOrderKeys();
    return std::move(tree_);
  }

 private:
  TagId Tag(const char* name) { return tags_->Intern(name); }

  std::uint32_t Scaled(std::uint32_t base) {
    const double scaled = static_cast<double>(base) * options_.scale;
    return static_cast<std::uint32_t>(std::max(1.0, scaled));
  }

  std::string Words(int min_words, int max_words) {
    const int n = static_cast<int>(rng_.NextInRange(min_words, max_words));
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += kWords[rng_.NextBounded(kWords.size())];
    }
    return out;
  }

  DomNodeId Leaf(DomNodeId parent, const char* tag, int min_w, int max_w) {
    const DomNodeId n = tree_.AppendChild(parent, Tag(tag));
    tree_.AppendText(n, Words(min_w, max_w));
    return n;
  }

  /// <text> with optional nested inline markup (emph/keyword/bold chains —
  /// the tail of Q15).
  void GenText(DomNodeId parent) {
    const DomNodeId text = tree_.AppendChild(parent, Tag("text"));
    tree_.AppendText(text, Words(4, 14));
    if (rng_.NextBool(options_.text_has_emph)) {
      const DomNodeId emph = Leaf(text, "emph", 1, 3);
      if (rng_.NextBool(options_.emph_has_keyword)) {
        const DomNodeId keyword = Leaf(emph, "keyword", 1, 3);
        if (rng_.NextBool(options_.keyword_has_bold)) {
          Leaf(keyword, "bold", 1, 2);
        }
      }
    }
    if (rng_.NextBool(0.15)) Leaf(text, "keyword", 1, 3);
  }

  void GenParlist(DomNodeId parent, int depth) {
    const DomNodeId parlist = tree_.AppendChild(parent, Tag("parlist"));
    const int items = static_cast<int>(rng_.NextInRange(2, 4));
    for (int i = 0; i < items; ++i) {
      const DomNodeId listitem = tree_.AppendChild(parlist, Tag("listitem"));
      if (depth < 2 && rng_.NextBool(options_.nested_parlist)) {
        GenParlist(listitem, depth + 1);
      } else {
        GenText(listitem);
      }
    }
  }

  /// <description>: either flat text or a recursive parlist (Q7 counts
  /// these; Q15 digs through the parlist variant).
  void GenDescription(DomNodeId parent) {
    const DomNodeId description =
        tree_.AppendChild(parent, Tag("description"));
    if (rng_.NextBool(options_.description_is_parlist)) {
      GenParlist(description, 0);
    } else {
      GenText(description);
    }
  }

  void GenItem(DomNodeId region, std::uint32_t categories) {
    const DomNodeId item = tree_.AppendChild(region, Tag("item"));
    tree_.AddAttribute(item, Tag("id"),
                       "item" + std::to_string(item_counter_++));
    tree_.AddAttribute(item, Tag("featured"),
                       rng_.NextBool(0.1) ? "yes" : "no");
    Leaf(item, "location", 1, 2);
    Leaf(item, "quantity", 1, 1);
    Leaf(item, "name", 2, 3);
    Leaf(item, "payment", 2, 4);
    GenDescription(item);
    Leaf(item, "shipping", 3, 6);
    const int cats = static_cast<int>(rng_.NextInRange(1, 3));
    for (int i = 0; i < cats; ++i) {
      const DomNodeId inc = tree_.AppendChild(item, Tag("incategory"));
      tree_.AddAttribute(inc, Tag("category"),
                         "category" +
                             std::to_string(rng_.NextBounded(
                                 std::max<std::uint32_t>(1, categories))));
    }
    const DomNodeId mailbox = tree_.AppendChild(item, Tag("mailbox"));
    const int mails = static_cast<int>(rng_.NextInRange(0, 2));
    for (int i = 0; i < mails; ++i) {
      const DomNodeId mail = tree_.AppendChild(mailbox, Tag("mail"));
      Leaf(mail, "from", 2, 2);
      Leaf(mail, "to", 2, 2);
      Leaf(mail, "date", 1, 1);
      GenText(mail);
    }
  }

  void GenRegions(DomNodeId site) {
    const DomNodeId regions = tree_.AppendChild(site, Tag("regions"));
    const std::uint32_t total_items = Scaled(options_.items);
    const std::uint32_t categories = Scaled(options_.categories);
    for (std::size_t r = 0; r < kRegions.size(); ++r) {
      const DomNodeId region = tree_.AppendChild(regions, Tag(kRegions[r]));
      const auto count = static_cast<std::uint32_t>(std::max(
          1.0, kRegionShare[r] * static_cast<double>(total_items)));
      for (std::uint32_t i = 0; i < count; ++i) GenItem(region, categories);
    }
  }

  void GenCategories(DomNodeId site) {
    const DomNodeId categories = tree_.AppendChild(site, Tag("categories"));
    const std::uint32_t count = Scaled(options_.categories);
    for (std::uint32_t i = 0; i < count; ++i) {
      const DomNodeId category = tree_.AppendChild(categories, Tag("category"));
      tree_.AddAttribute(category, Tag("id"),
                         "category" + std::to_string(i));
      Leaf(category, "name", 1, 2);
      GenDescription(category);
    }
    const DomNodeId catgraph = tree_.AppendChild(site, Tag("catgraph"));
    for (std::uint32_t i = 0; i < count; ++i) {
      if (rng_.NextBool(0.5)) {
        const DomNodeId edge = tree_.AppendChild(catgraph, Tag("edge"));
        tree_.AddAttribute(edge, Tag("from"),
                           "category" + std::to_string(rng_.NextBounded(
                                            std::max(1u, count))));
        tree_.AddAttribute(edge, Tag("to"),
                           "category" + std::to_string(rng_.NextBounded(
                                            std::max(1u, count))));
      }
    }
  }

  void GenPeople(DomNodeId site) {
    const DomNodeId people = tree_.AppendChild(site, Tag("people"));
    const std::uint32_t count = Scaled(options_.persons);
    for (std::uint32_t i = 0; i < count; ++i) {
      const DomNodeId person = tree_.AppendChild(people, Tag("person"));
      tree_.AddAttribute(person, Tag("id"), "person" + std::to_string(i));
      Leaf(person, "name", 2, 2);
      // The paper's Q7 counts /site//email.
      Leaf(person, "email", 1, 1);
      if (rng_.NextBool(0.5)) Leaf(person, "phone", 1, 1);
      if (rng_.NextBool(0.4)) {
        const DomNodeId address = tree_.AppendChild(person, Tag("address"));
        Leaf(address, "street", 2, 3);
        Leaf(address, "city", 1, 1);
        Leaf(address, "country", 1, 1);
        Leaf(address, "zipcode", 1, 1);
      }
      if (rng_.NextBool(0.3)) Leaf(person, "homepage", 1, 1);
      if (rng_.NextBool(0.25)) Leaf(person, "creditcard", 1, 1);
      if (rng_.NextBool(0.5)) {
        const DomNodeId profile = tree_.AppendChild(person, Tag("profile"));
        const int interests = static_cast<int>(rng_.NextInRange(0, 3));
        for (int j = 0; j < interests; ++j) {
          Leaf(profile, "interest", 1, 1);
        }
        if (rng_.NextBool(0.6)) Leaf(profile, "education", 1, 2);
        if (rng_.NextBool(0.8)) Leaf(profile, "gender", 1, 1);
        Leaf(profile, "business", 1, 1);
        if (rng_.NextBool(0.6)) Leaf(profile, "age", 1, 1);
      }
      if (rng_.NextBool(0.3)) {
        const DomNodeId watches = tree_.AppendChild(person, Tag("watches"));
        const int n = static_cast<int>(rng_.NextInRange(1, 3));
        for (int j = 0; j < n; ++j) Leaf(watches, "watch", 1, 1);
      }
    }
  }

  void GenAnnotation(DomNodeId parent) {
    const DomNodeId annotation = tree_.AppendChild(parent, Tag("annotation"));
    Leaf(annotation, "author", 2, 2);
    GenDescription(annotation);
    Leaf(annotation, "happiness", 1, 1);
  }

  void GenOpenAuctions(DomNodeId site) {
    const DomNodeId auctions = tree_.AppendChild(site, Tag("open_auctions"));
    const std::uint32_t count = Scaled(options_.open_auctions);
    for (std::uint32_t i = 0; i < count; ++i) {
      const DomNodeId auction =
          tree_.AppendChild(auctions, Tag("open_auction"));
      tree_.AddAttribute(auction, Tag("id"),
                         "open_auction" + std::to_string(i));
      Leaf(auction, "initial", 1, 1);
      const int bidders = static_cast<int>(rng_.NextInRange(0, 4));
      for (int j = 0; j < bidders; ++j) {
        const DomNodeId bidder = tree_.AppendChild(auction, Tag("bidder"));
        Leaf(bidder, "date", 1, 1);
        Leaf(bidder, "time", 1, 1);
        const DomNodeId personref =
            tree_.AppendChild(bidder, Tag("personref"));
        tree_.AddAttribute(
            personref, Tag("person"),
            "person" + std::to_string(rng_.NextBounded(
                           std::max(1u, Scaled(options_.persons)))));
        Leaf(bidder, "increase", 1, 1);
      }
      Leaf(auction, "current", 1, 1);
      if (rng_.NextBool(0.4)) Leaf(auction, "privacy", 1, 1);
      Leaf(auction, "itemref", 1, 1);
      Leaf(auction, "seller", 1, 1);
      GenAnnotation(auction);
      Leaf(auction, "quantity", 1, 1);
      Leaf(auction, "type", 1, 2);
      const DomNodeId interval = tree_.AppendChild(auction, Tag("interval"));
      Leaf(interval, "start", 1, 1);
      Leaf(interval, "end", 1, 1);
    }
  }

  void GenClosedAuctions(DomNodeId site) {
    const DomNodeId auctions =
        tree_.AppendChild(site, Tag("closed_auctions"));
    const std::uint32_t count = Scaled(options_.closed_auctions);
    for (std::uint32_t i = 0; i < count; ++i) {
      const DomNodeId auction =
          tree_.AppendChild(auctions, Tag("closed_auction"));
      const DomNodeId seller = tree_.AppendChild(auction, Tag("seller"));
      tree_.AddAttribute(
          seller, Tag("person"),
          "person" + std::to_string(rng_.NextBounded(
                         std::max(1u, Scaled(options_.persons)))));
      const DomNodeId buyer = tree_.AppendChild(auction, Tag("buyer"));
      tree_.AddAttribute(
          buyer, Tag("person"),
          "person" + std::to_string(rng_.NextBounded(
                         std::max(1u, Scaled(options_.persons)))));
      const DomNodeId itemref = tree_.AppendChild(auction, Tag("itemref"));
      tree_.AddAttribute(
          itemref, Tag("item"),
          "item" + std::to_string(rng_.NextBounded(
                       std::max(1u, Scaled(options_.items)))));
      Leaf(auction, "price", 1, 1);
      Leaf(auction, "date", 1, 1);
      Leaf(auction, "quantity", 1, 1);
      Leaf(auction, "type", 1, 2);
      GenAnnotation(auction);
    }
  }

  XMarkOptions options_;
  TagRegistry* tags_;
  DomTree tree_;
  Random rng_;
  std::uint32_t item_counter_ = 0;
};

}  // namespace

DomTree GenerateXMark(const XMarkOptions& options, TagRegistry* tags) {
  NAVPATH_CHECK(tags != nullptr);
  Generator gen(options, tags);
  return gen.Run();
}

}  // namespace navpath
