// Workload scheduling smoke check, sized for CI: N=4 mixed XMark queries
// on a tiny document, run under round-robin, shortest-remaining-cost, and
// the hybrid policy. Exits nonzero when any policy changes a query's
// result (scheduling must be invisible in the output) or when the hybrid
// policy stops blending its parents — p50 turnaround anchored near
// shortest-remaining-cost, makespan anchored near round-robin. The
// thresholds are loose (the tiny document is noisy); the committed
// BENCH_workload.json trajectory carries the tight N=8 numbers.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/workload_executor.h"

namespace {

using namespace navpath;

constexpr const char* kQueries[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site//keyword",
    "/site/regions//name",
};
constexpr std::size_t kN = std::size(kQueries);

Result<WorkloadResult> RunPolicy(XMarkFixture* fixture,
                                 WorkloadPolicy policy) {
  WorkloadOptions options;
  options.policy = policy;
  options.stats = &fixture->stats();
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const char* q : kQueries) {
    NAVPATH_RETURN_NOT_OK(executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
  }
  return executor.Run();
}

double MedianTurnaroundSeconds(const WorkloadResult& result) {
  std::vector<double> turnarounds;
  for (const WorkloadQueryResult& q : result.queries) {
    turnarounds.push_back(q.turnaround_seconds());
  }
  std::sort(turnarounds.begin(), turnarounds.end());
  return turnarounds[turnarounds.size() / 2];
}

}  // namespace

int main() {
  auto fixture = XMarkFixture::Create(0.02);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture: %s\n", fixture.status().ToString().c_str());
    return 1;
  }

  constexpr WorkloadPolicy kPolicies[] = {
      WorkloadPolicy::kRoundRobin, WorkloadPolicy::kShortestRemainingCost,
      WorkloadPolicy::kHybrid};

  std::vector<WorkloadResult> runs;
  for (const WorkloadPolicy policy : kPolicies) {
    auto run = RunPolicy(fixture->get(), policy);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", WorkloadPolicyName(policy),
                   run.status().ToString().c_str());
      return 1;
    }
    runs.push_back(*std::move(run));
  }

  bool ok = true;

  // Scheduling must be invisible in the results.
  for (std::size_t p = 1; p < runs.size(); ++p) {
    for (std::size_t i = 0; i < kN; ++i) {
      if (runs[p].queries[i].count != runs[0].queries[i].count ||
          runs[p].queries[i].count == 0) {
        std::fprintf(stderr, "count mismatch: %s %s: %llu vs %llu\n",
                     WorkloadPolicyName(kPolicies[p]), kQueries[i],
                     static_cast<unsigned long long>(runs[p].queries[i].count),
                     static_cast<unsigned long long>(runs[0].queries[i].count));
        ok = false;
      }
    }
  }

  const double rr_makespan = runs[0].total_seconds();
  const double sjf_p50 = MedianTurnaroundSeconds(runs[1]);
  const double hyb_makespan = runs[2].total_seconds();
  const double hyb_p50 = MedianTurnaroundSeconds(runs[2]);

  std::printf("workload smoke (N=%zu, scale 0.02)\n", kN);
  std::printf("  round-robin             makespan %.3fs\n", rr_makespan);
  std::printf("  shortest-remaining-cost p50 %.3fs\n", sjf_p50);
  std::printf("  hybrid                  makespan %.3fs (%.2fx rr), p50 %.3fs"
              " (%.2fx sjf)\n",
              hyb_makespan, hyb_makespan / rr_makespan, hyb_p50,
              hyb_p50 / sjf_p50);

  if (hyb_p50 > 1.25 * sjf_p50) {
    std::fprintf(stderr, "hybrid p50 drifted above 1.25x of SJF\n");
    ok = false;
  }
  if (hyb_makespan > 1.25 * rr_makespan) {
    std::fprintf(stderr, "hybrid makespan drifted above 1.25x of rr\n");
    ok = false;
  }

  std::printf("workload smoke: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
