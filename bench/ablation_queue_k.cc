// Ablation: XSchedule's desired minimum queue size k (Sec. 5.3.4).
//
// k controls how many right ends are queued before serving, i.e. how many
// scheduling alternatives the asynchronous I/O subsystem sees up front.
// The paper argues the choice matters little for single-context location
// paths (crossings, not contexts, fill the queue); this experiment
// verifies that claim.
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.5;
  std::printf("Ablation — XSchedule queue size k, Q6' at scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  PrintTableHeader("XSchedule total time vs k",
                   {"k", "total[s]", "CPU[s]", "async_reord"});
  for (const std::size_t k : {1, 2, 5, 10, 25, 100, 400, 1000}) {
    PlanOptions plan = PaperPlan(PlanKind::kXSchedule);
    plan.queue_k = k;
    auto result = (*fixture)->Run(kQ6Prime, plan);
    if (!result.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintTableRow({std::to_string(k), FormatSeconds(result->total_seconds()),
                   FormatSeconds(result->cpu_seconds()),
                   std::to_string(result->metrics.async_reorderings)});
  }
  return 0;
}
