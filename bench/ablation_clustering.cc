// Ablation: clustering quality (Sec. 3.3).
//
// The method never *requires* a particular clustering, but cluster
// quality determines how much navigation is intra-cluster (cheap) versus
// inter-cluster (scheduled I/O). Subtree clustering maximizes locality;
// document-order segmentation loses some subtree cohesion; round-robin is
// the adversarial worst case where nearly every edge crosses clusters.
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.05 : 0.25;
  std::printf("Ablation — clustering policy, Q6' at scale %.2f\n", sf);
  PrintTableHeader("Q6' total time vs clustering policy",
                   {"policy", "pages", "borders", "Simple[s]",
                    "XSchedule[s]", "XScan[s]"});
  for (const char* policy : {"subtree", "doc-order", "random"}) {
    FixtureOptions options;
    options.clustering = policy;
    auto fixture = XMarkFixture::Create(sf, options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   fixture.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row{
        policy, std::to_string((*fixture)->doc().page_count()),
        std::to_string((*fixture)->doc().border_pairs)};
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(kQ6Prime, PaperPlan(kind));
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatSeconds(result->total_seconds()));
    }
    PrintTableRow(row);
  }
  return 0;
}
