// Figure 9: XMark Q6' = count(/site/regions//item), total execution time
// against the document scale factor for the Simple, XSchedule and XScan
// plans. Expected shape (paper Sec. 6.3): XSchedule clearly beats Simple
// at every scale; XScan is linear in document size and lands between the
// two for this medium-selectivity query.
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  std::printf("Figure 9 reproduction — Q6': %s\n", kQ6Prime);
  auto result = RunScalingExperiment("Fig. 9: Q6' total time vs scale",
                                     kQ6Prime, ActiveScaleFactors());
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", result.status().ToString().c_str());
    return 1;
  }
  // Shape check mirroring the paper's claims.
  bool xschedule_always_beats_simple = true;
  for (const auto& row : *result) {
    if (row[1] >= row[0]) xschedule_always_beats_simple = false;
  }
  std::printf("\nshape: XSchedule beats Simple at every scale factor: %s\n",
              xschedule_always_beats_simple ? "yes" : "NO (unexpected)");
  return 0;
}
