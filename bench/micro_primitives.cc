// Microbenchmarks (google-benchmark, real wall time) for the navigational
// primitives and buffer operations: the cost asymmetry between
// intra-cluster navigation, buffer probes and cross-cluster swizzling is
// the paper's Sec. 3.5/3.6 premise.
#include <benchmark/benchmark.h>

#include "algebra/path_instance.h"
#include "store/cross_cursor.h"
#include "tests/test_util.h"

namespace navpath {
namespace {

struct MicroFixture {
  Database db;
  ImportedDocument doc;

  static DatabaseOptions Options() {
    DatabaseOptions options;
    options.page_size = 8192;
    options.buffer_pages = 512;
    return options;
  }

  explicit MicroFixture(bool scattered) : db(Options()) {
    RandomTreeOptions tree_options;
    tree_options.node_count = 20000;
    tree_options.max_fanout = 8;
    const DomTree tree = MakeRandomTree(tree_options, 7, db.tags());
    if (scattered) {
      RandomClusteringPolicy policy(7168, 3);
      doc = *db.Import(tree, &policy);
    } else {
      SubtreeClusteringPolicy policy(7168);
      doc = *db.Import(tree, &policy);
    }
  }
};

void BM_BufferFixHit(benchmark::State& state) {
  MicroFixture f(/*scattered=*/false);
  (void)f.db.buffer()->Fix(f.doc.root.page);  // warm
  for (auto _ : state) {
    auto guard = f.db.buffer()->Fix(f.doc.root.page);
    benchmark::DoNotOptimize(guard->data());
  }
}
BENCHMARK(BM_BufferFixHit);

void BM_FixSwizzle(benchmark::State& state) {
  MicroFixture f(/*scattered=*/false);
  for (auto _ : state) {
    auto guard = f.db.buffer()->FixSwizzle(f.doc.root.page);
    benchmark::DoNotOptimize(guard->data());
  }
}
BENCHMARK(BM_FixSwizzle);

void BM_IntraClusterDfs(benchmark::State& state) {
  MicroFixture f(/*scattered=*/false);
  auto guard = f.db.buffer()->Fix(f.doc.root.page);
  const ClusterView view = f.db.MakeView(*guard);
  for (auto _ : state) {
    AxisCursor cursor(view, Axis::kDescendant, f.doc.root.slot);
    NavEntry entry;
    std::uint64_t seen = 0;
    while (cursor.Next(&entry)) ++seen;
    benchmark::DoNotOptimize(seen);
  }
}
BENCHMARK(BM_IntraClusterDfs);

void BM_CrossClusterDescendant(benchmark::State& state) {
  const bool scattered = state.range(0) == 1;
  MicroFixture f(scattered);
  CrossClusterCursor cursor(&f.db);
  for (auto _ : state) {
    cursor.Start(Axis::kDescendant, f.doc.root).AbortIfNotOk();
    LogicalNode node;
    std::uint64_t seen = 0;
    for (;;) {
      auto more = cursor.Next(&node);
      more.status().AbortIfNotOk();
      if (!*more) break;
      ++seen;
    }
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_CrossClusterDescendant)->Arg(0)->Arg(1);

void BM_PathInstanceHandling(benchmark::State& state) {
  PathInstance inst = PathInstance::Context(NodeID{1, 2}, 3);
  for (auto _ : state) {
    PathInstance copy = inst;
    copy.right.step += 1;
    benchmark::DoNotOptimize(copy.right.Key());
    benchmark::DoNotOptimize(copy.full(4));
  }
}
BENCHMARK(BM_PathInstanceHandling);

}  // namespace
}  // namespace navpath

BENCHMARK_MAIN();
