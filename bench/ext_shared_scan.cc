// Extension: multiple location paths over a single I/O-performing
// operator (paper Sec. 7 outlook). Q7's three count() paths — and then
// all three evaluation queries at once — are evaluated in ONE sequential
// scan, against the baseline of one scan per path.
#include <cstdio>

#include "benchlib/experiments.h"
#include "compiler/shared_scan.h"
#include "xpath/parser.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.5;
  std::printf("Extension — shared-scan multi-path evaluation at scale %.2f\n",
              sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  Database* db = (*fixture)->db();

  PrintTableHeader("one scan per path vs one scan for all",
                   {"workload", "mode", "total[s]", "CPU[s]", "reads"});

  // Workload 1: Q7 (three paths).
  {
    auto result = (*fixture)->Run(kQ7, PaperPlan(PlanKind::kXScan));
    result.status().AbortIfNotOk();
    PrintTableRow({"Q7", "3 scans", FormatSeconds(result->total_seconds()),
                   FormatSeconds(result->cpu_seconds()),
                   std::to_string(result->metrics.disk_reads)});

    auto query = ParseQuery(kQ7, db->tags());
    query.status().AbortIfNotOk();
    auto shared = ExecuteQuerySharedScan(db, (*fixture)->doc(), *query);
    shared.status().AbortIfNotOk();
    PrintTableRow({"Q7", "shared",
                   FormatSeconds(shared->combined.total_seconds()),
                   FormatSeconds(shared->combined.cpu_seconds()),
                   std::to_string(shared->combined.metrics.disk_reads)});
    if (shared->combined.count != result->count) {
      std::fprintf(stderr, "MISMATCH: shared=%llu separate=%llu\n",
                   static_cast<unsigned long long>(shared->combined.count),
                   static_cast<unsigned long long>(result->count));
      return 1;
    }
  }

  // Workload 2: Q6' + Q7 + Q15 as one five-path batch.
  {
    const std::string batch = std::string("count(/site/regions//item)") +
                              "+count(/site//description)" +
                              "+count(/site//annotation)" +
                              "+count(/site//email)";
    double separate_total = 0;
    std::uint64_t separate_count = 0;
    for (const char* q : {kQ6Prime, kQ7}) {
      auto result = (*fixture)->Run(q, PaperPlan(PlanKind::kXScan));
      result.status().AbortIfNotOk();
      separate_total += result->total_seconds();
      separate_count += result->count;
    }
    PrintTableRow({"Q6'+Q7", "2 runs", FormatSeconds(separate_total), "-",
                   "-"});
    auto query = ParseQuery(batch, db->tags());
    query.status().AbortIfNotOk();
    auto shared = ExecuteQuerySharedScan(db, (*fixture)->doc(), *query);
    shared.status().AbortIfNotOk();
    PrintTableRow({"Q6'+Q7", "shared",
                   FormatSeconds(shared->combined.total_seconds()),
                   FormatSeconds(shared->combined.cpu_seconds()),
                   std::to_string(shared->combined.metrics.disk_reads)});
    if (shared->combined.count != separate_count) {
      std::fprintf(stderr, "MISMATCH: shared=%llu separate=%llu\n",
                   static_cast<unsigned long long>(shared->combined.count),
                   static_cast<unsigned long long>(separate_count));
      return 1;
    }
  }
  return 0;
}
