// Extension: a point query (XMark Q1) via predicate support.
//
//   /site/people/person[@id="personN"]/name
//
// The predicate machinery (segmented plans + store-side existence checks)
// sits around the paper's algebra. Point lookups are the extreme end of
// the selectivity spectrum: navigational plans touch a handful of
// clusters, the scan still reads everything — the strongest version of
// the Q15 shape.
#include <cstdio>

#include "benchlib/experiments.h"
#include "xpath/parser.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.5;
  std::printf("Extension — XMark Q1 point query at scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  const std::string query =
      "/site/people/person[@id=\"person42\"]/name";
  std::printf("query: %s\n", query.c_str());
  PrintTableHeader("Q1 across plans",
                   {"plan", "results", "total[s]", "reads"});
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    auto result = (*fixture)->Run(query, PaperPlan(kind));
    if (!result.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintTableRow({PlanKindName(kind), std::to_string(result->count),
                   FormatSeconds(result->total_seconds()),
                   std::to_string(result->metrics.disk_reads)});
  }
  return 0;
}
