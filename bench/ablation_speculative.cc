// Ablation: speculative XSchedule (Sec. 5.4.4).
//
// With `speculative` set, XSchedule emits the same left-incomplete seeds
// XScan produces on every cluster visit, guaranteeing that no cluster is
// visited twice. Paths that bounce between clusters (down, up, down
// again) revisit clusters in plain XSchedule^R mode; the flag trades
// speculation CPU against repeated visits.
#include <cstdio>

#include "benchlib/experiments.h"
#include "xpath/parser.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.05 : 0.25;
  std::printf("Ablation — speculative XSchedule at scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  // The revisit-inducing query walks down into items, back up to the
  // region, and down again: clusters are needed at several steps.
  const char* queries[] = {
      kQ6Prime,
      "/site/regions//item/parent::*/item/name",
  };
  PrintTableHeader("XSchedule: speculative off vs on",
                   {"query", "spec", "total[s]", "CPU[s]", "visits",
                    "spec.inst"});
  for (const char* query : queries) {
    for (const bool speculative : {false, true}) {
      PlanOptions plan = PaperPlan(PlanKind::kXSchedule);
      plan.speculative = speculative;
      auto result = (*fixture)->Run(query, plan);
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      PrintTableRow({std::string(query).substr(0, 13), speculative ? "on" : "off",
                     FormatSeconds(result->total_seconds()),
                     FormatSeconds(result->cpu_seconds()),
                     std::to_string(result->metrics.clusters_visited),
                     std::to_string(result->metrics.speculative_instances)});
    }
  }
  return 0;
}
