// Extension: query performance on an organically aged document.
//
// The paper motivates cost-sensitive reordering with layouts degraded by
// "incremental updates [that] fragment the physical layout" (Sec. 1).
// Here the degradation is produced by the update subsystem itself rather
// than the synthetic permutation knob: a pristine import is aged with
// thousands of random element insertions (which spill into fresh
// fragments and split pages), then the paper's Q6' is measured before and
// after. The navigational plans degrade; the scan stays flat.
#include <cstdio>
#include <vector>

#include "benchlib/experiments.h"
#include "common/random.h"
#include "store/update.h"
#include "store/verify.h"
#include "xpath/parser.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.02 : 0.05;
  const int kInsertions = FastBenchMode() ? 500 : 2000;
  std::printf("Extension — aging by updates, Q6' at scale %.2f\n", sf);

  FixtureOptions options;
  options.db.import.fragmentation = 0.0;  // pristine import
  auto fixture = XMarkFixture::Create(sf, options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  Database* db = (*fixture)->db();
  ImportedDocument doc = (*fixture)->doc();

  PrintTableHeader("Q6' before/after aging",
                   {"state", "pages", "Simple[s]", "XSchedule[s]",
                    "XScan[s]"});

  auto measure = [&](const char* label) -> int {
    std::vector<std::string> row{label, std::to_string(doc.page_count())};
    auto query = ParseQuery(kQ6Prime, db->tags());
    query.status().AbortIfNotOk();
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      ExecuteOptions exec;
      exec.plan = PaperPlan(kind);
      auto result = ExecuteQuery(db, doc, *query, exec);
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatSeconds(result->total_seconds()));
    }
    PrintTableRow(row);
    return 0;
  };

  if (measure("pristine") != 0) return 1;

  // Age the document: insert mailbox mails under random items. Collect
  // item NodeIDs via one scan-backed query first.
  auto item_path = ParsePath("/site/regions//item", db->tags());
  item_path.status().AbortIfNotOk();
  ExecuteOptions exec;
  exec.plan = PaperPlan(PlanKind::kXScan);
  exec.collect_nodes = true;
  auto items = ExecutePath(db, doc, *item_path, exec);
  items.status().AbortIfNotOk();

  DocumentUpdater updater(db, &doc);
  const TagId mail_tag = db->tags()->Intern("mail");
  Random rng(77);
  int inserted = 0;
  for (int i = 0; i < kInsertions; ++i) {
    const LogicalNode& item =
        items->nodes[rng.NextBounded(items->nodes.size())];
    auto result = updater.InsertElement(
        item.id, kInvalidNodeID, mail_tag,
        "late breaking correspondence about this item");
    if (result.ok()) ++inserted;
  }
  std::printf("\ninserted %d elements (%llu border pairs now)\n", inserted,
              static_cast<unsigned long long>(doc.border_pairs));
  auto report = VerifyStore(db, doc);
  if (!report.ok()) {
    std::fprintf(stderr, "fsck FAILED after aging: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  if (measure("aged") != 0) return 1;
  std::printf(
      "\nshape: navigational plans degrade with update-driven scatter; the\n"
      "sequential scan's cost tracks only the page count.\n");
  return 0;
}
