// Ablation: buffer pool capacity (the paper fixes 1000 pages, Sec. 6.1).
//
// Q7 issues three full-document location paths in one query, so plans
// whose second and third paths can reuse buffered pages benefit from a
// larger pool. XScan's sequential cost is insensitive until the whole
// document fits.
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.5;
  std::printf("Ablation — buffer capacity, Q7 at scale %.2f\n", sf);
  PrintTableHeader("Q7 total time vs buffer pages",
                   {"buffer", "Simple[s]", "XSchedule[s]", "XScan[s]"});
  // The last entries exceed the document size so repeated sweeps (Q7 has
  // three paths) start hitting the buffer.
  for (const std::size_t pages : {50, 250, 1000, 2000, 4000, 6000, 12000}) {
    FixtureOptions options;
    options.db.buffer_pages = pages;
    auto fixture = XMarkFixture::Create(sf, options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   fixture.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row{std::to_string(pages)};
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(kQ7, PaperPlan(kind));
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatSeconds(result->total_seconds()));
    }
    PrintTableRow(row);
  }
  return 0;
}
