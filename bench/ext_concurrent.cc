// Extension: concurrent queries sharing the I/O subsystem (paper Sec. 7:
// "We also expect concurrent queries to strongly benefit from
// asynchronous I/O, as scheduling decisions can be made based on more
// pending requests.")
//
// Two XSchedule plans are executed (a) back-to-back and (b) interleaved
// pull-by-pull on the same database: interleaving deepens the pending
// request pool the elevator chooses from and overlaps one query's CPU
// with the other's I/O.
#include <cstdio>

#include "benchlib/experiments.h"
#include "xpath/parser.h"

namespace {

using namespace navpath;

Result<SimTime> RunPair(XMarkFixture* fixture, const LocationPath& a,
                        const LocationPath& b, bool interleaved) {
  Database* db = fixture->db();
  NAVPATH_RETURN_NOT_OK(db->ResetMeasurement());
  PlanOptions options = PaperPlan(PlanKind::kXSchedule);
  NAVPATH_ASSIGN_OR_RETURN(PathPlan plan_a,
                           BuildPlan(db, fixture->doc(), a, {}, options));
  NAVPATH_ASSIGN_OR_RETURN(PathPlan plan_b,
                           BuildPlan(db, fixture->doc(), b, {}, options));
  NAVPATH_RETURN_NOT_OK(plan_a.root()->Open());
  NAVPATH_RETURN_NOT_OK(plan_b.root()->Open());
  PathInstance inst;
  if (interleaved) {
    bool a_live = true, b_live = true;
    while (a_live || b_live) {
      if (a_live) {
        NAVPATH_ASSIGN_OR_RETURN(a_live, plan_a.root()->Next(&inst));
      }
      if (b_live) {
        NAVPATH_ASSIGN_OR_RETURN(b_live, plan_b.root()->Next(&inst));
      }
    }
  } else {
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, plan_a.root()->Next(&inst));
      if (!more) break;
    }
    for (;;) {
      NAVPATH_ASSIGN_OR_RETURN(const bool more, plan_b.root()->Next(&inst));
      if (!more) break;
    }
  }
  NAVPATH_RETURN_NOT_OK(plan_a.root()->Close());
  NAVPATH_RETURN_NOT_OK(plan_b.root()->Close());
  return db->clock()->now();
}

}  // namespace

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.25;
  std::printf("Extension — concurrent queries on one I/O subsystem, "
              "scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  TagRegistry* tags = (*fixture)->db()->tags();
  const struct {
    const char* label;
    const char* a;
    const char* b;
  } pairs[] = {
      // Same document region: pending requests from both queries merge
      // into one dense elevator sweep.
      {"same region", "/site/regions//item", "/site/regions//name"},
      // Disjoint regions: the head ping-pongs between the two areas —
      // the interference the paper warns about for scan-based plans
      // appears (attenuated) for navigation too.
      {"disjoint", "/site/regions//item", "/site/people/person/email"},
  };

  PrintTableHeader("two XSchedule queries",
                   {"pair", "back-to-back[s]", "interleaved[s]", "speedup"});
  for (const auto& pair : pairs) {
    auto path_a = ParsePath(pair.a, tags);
    auto path_b = ParsePath(pair.b, tags);
    path_a.status().AbortIfNotOk();
    path_b.status().AbortIfNotOk();
    auto sequential = RunPair(fixture->get(), *path_a, *path_b, false);
    sequential.status().AbortIfNotOk();
    auto interleaved = RunPair(fixture->get(), *path_a, *path_b, true);
    interleaved.status().AbortIfNotOk();
    char speedup[16];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  static_cast<double>(*sequential) /
                      static_cast<double>(*interleaved));
    PrintTableRow({pair.label,
                   FormatSeconds(SimClock::ToSeconds(*sequential)),
                   FormatSeconds(SimClock::ToSeconds(*interleaved)),
                   speedup});
  }
  return 0;
}
