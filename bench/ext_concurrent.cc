// Extension: concurrent queries sharing the I/O subsystem (paper Sec. 7:
// "We also expect concurrent queries to strongly benefit from
// asynchronous I/O, as scheduling decisions can be made based on more
// pending requests.")
//
// Two XSchedule plans are executed (a) back-to-back and (b) interleaved
// pull-by-pull on the same database, both through the WorkloadExecutor:
// interleaving deepens the pending request pool the elevator chooses from
// and overlaps one query's CPU with the other's I/O. The wider N-query
// sweep with policies and a JSON trajectory lives in workload_throughput.
#include <cstdio>

#include "benchlib/experiments.h"
#include "compiler/workload_executor.h"

namespace {

using namespace navpath;

Result<WorkloadResult> RunPair(XMarkFixture* fixture, const char* a,
                               const char* b, bool interleaved) {
  WorkloadOptions options;
  options.policy = WorkloadPolicy::kRoundRobin;
  options.max_concurrent = interleaved ? 2 : 1;
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  const PlanOptions plan = PaperPlan(PlanKind::kXSchedule);
  NAVPATH_RETURN_NOT_OK(executor.Add(a, plan));
  NAVPATH_RETURN_NOT_OK(executor.Add(b, plan));
  return executor.Run();
}

}  // namespace

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.25;
  std::printf("Extension — concurrent queries on one I/O subsystem, "
              "scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  const struct {
    const char* label;
    const char* a;
    const char* b;
  } pairs[] = {
      // Same document region: pending requests from both queries merge
      // into one dense elevator sweep.
      {"same region", "/site/regions//item", "/site/regions//name"},
      // Disjoint regions: the head ping-pongs between the two areas —
      // the interference the paper warns about for scan-based plans
      // appears (attenuated) for navigation too.
      {"disjoint", "/site/regions//item", "/site/people/person/email"},
  };

  PrintTableHeader("two XSchedule queries",
                   {"pair", "back-to-back[s]", "interleaved[s]", "speedup",
                    "merged", "depth"});
  for (const auto& pair : pairs) {
    auto sequential = RunPair(fixture->get(), pair.a, pair.b, false);
    sequential.status().AbortIfNotOk();
    auto interleaved = RunPair(fixture->get(), pair.a, pair.b, true);
    interleaved.status().AbortIfNotOk();
    char speedup[16], merged[24], depth[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  sequential->total_seconds() /
                      interleaved->total_seconds());
    std::snprintf(merged, sizeof(merged), "%llu",
                  static_cast<unsigned long long>(
                      interleaved->metrics.requests_merged));
    std::snprintf(depth, sizeof(depth), "%.1f->%.1f",
                  sequential->mean_elevator_depth(),
                  interleaved->mean_elevator_depth());
    PrintTableRow({pair.label,
                   FormatSeconds(sequential->total_seconds()),
                   FormatSeconds(interleaved->total_seconds()), speedup,
                   merged, depth});
  }
  return 0;
}
