// Cross-query prefix sharing: N concurrent XSchedule queries whose
// compiled step sequences overlap in a predicate-free prefix. The
// workload executor's sharing subsystem materializes each adopted prefix
// once (one producer plan into a bounded stream buffer) and lets the
// member queries extend partial instances with their private residual
// steps.
//
// Sweeps N in {2, 4, 8} x prefix overlap in {0, 0.5, 1.0} under the
// hybrid policy, sharing off vs. on. Exits nonzero when:
//   - any point changes a query's result (sharing must be invisible),
//   - overlap 0 adopts a group, deviates from the sharing-off pull
//     schedule, or regresses makespan by more than 1% (a declined
//     estimate must leave scheduling byte-identical),
//   - N=8 at overlap 1.0 fails to cut cluster accesses by >= 25%.
//
// Appends a "shared" section to the BENCH_workload.json trajectory
// (written by workload_throughput; schema note in DESIGN.md).
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/workload_executor.h"

namespace {

using namespace navpath;

// Eight queries fanning out of the shared prefix /site/regions//item
// (steps 1-3 coincide, the final step differs). The prefix carries the
// expensive traversal — the whole regions subtree — while each member's
// residual is a one-hop child extension, so one producer pass replaces
// eight full scans.
constexpr const char* kSharedMix[] = {
    "/site/regions//item/name",        "/site/regions//item/location",
    "/site/regions//item/quantity",    "/site/regions//item/payment",
    "/site/regions//item/description", "/site/regions//item/shipping",
    "/site/regions//item/incategory",  "/site/regions//item/mailbox",
};

// Eight queries that pairwise differ at step 2 (axis or tag), so they
// share only /site — below the minimum sharing depth. The regions query
// sits last so mixed points draw disjoint queries first.
constexpr const char* kDisjointMix[] = {
    "/site/people/person/email",
    "/site/open_auctions//bidder",
    "/site/closed_auctions//price",
    "/site/categories//description",
    "/site/catgraph//edge",
    "/site//keyword",
    "/site//mail",
    "/site/regions//item",
};

/// Query mix for one sweep point: `n` queries of which round(overlap*n)
/// come from the shared-prefix mix.
std::vector<std::string> MixFor(std::size_t n, double overlap) {
  const std::size_t shared =
      static_cast<std::size_t>(overlap * static_cast<double>(n) + 0.5);
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < shared; ++i) queries.push_back(kSharedMix[i]);
  for (std::size_t i = 0; queries.size() < n; ++i) {
    queries.push_back(kDisjointMix[i]);
  }
  return queries;
}

Result<WorkloadResult> RunPoint(XMarkFixture* fixture,
                                const std::vector<std::string>& queries,
                                bool enable_sharing,
                                std::vector<std::size_t>* schedule) {
  WorkloadOptions options;
  options.policy = WorkloadPolicy::kHybrid;
  options.stats = &fixture->stats();
  // Longitudinal trajectory: keep estimates on DocumentStats so the
  // shared-scan schedule stays comparable across revisions.
  options.summary = false;
  options.enable_sharing = enable_sharing;
  if (schedule != nullptr) {
    options.on_pull = [schedule](std::size_t job, std::size_t) {
      schedule->push_back(job);
    };
  }
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const std::string& q : queries) {
    NAVPATH_RETURN_NOT_OK(executor.Add(q, PaperPlan(PlanKind::kXSchedule)));
  }
  return executor.Run();
}

}  // namespace

int main() {
  using namespace navpath;
  constexpr double kScale = 0.10;
  std::printf("Cross-query prefix sharing — hybrid policy, scale %.2f\n",
              kScale);
  auto fixture = XMarkFixture::Create(kScale);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("scale_factor").Value(kScale);
  json.Key("policy").Value("hybrid");
  json.Key("points").BeginArray();

  PrintTableHeader(
      "private vs shared (cluster accesses and makespan)",
      {"N", "overlap", "priv[s]", "shared[s]", "priv clus", "shared clus",
       "saved", "adopted", "spills"});

  bool ok = true;
  for (const std::size_t n : {2u, 4u, 8u}) {
    for (const double overlap : {0.0, 0.5, 1.0}) {
      const std::vector<std::string> queries = MixFor(n, overlap);

      std::vector<std::size_t> private_schedule;
      auto private_run =
          RunPoint(fixture->get(), queries, false, &private_schedule);
      private_run.status().AbortIfNotOk();

      std::vector<std::size_t> shared_schedule;
      auto shared_run =
          RunPoint(fixture->get(), queries, true, &shared_schedule);
      shared_run.status().AbortIfNotOk();

      // Sharing must be invisible in the results, adopted or not.
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (shared_run->queries[i].count != private_run->queries[i].count ||
            private_run->queries[i].count == 0) {
          std::fprintf(
              stderr, "count mismatch at N=%zu overlap %.1f: %s\n", n,
              overlap, queries[i].c_str());
          ok = false;
        }
      }

      const std::uint64_t adopted =
          shared_run->scheduler.CounterOr("share.groups_adopted");
      const std::uint64_t spills =
          shared_run->scheduler.CounterOr("share.spills");
      const double private_seconds = private_run->total_seconds();
      const double shared_seconds = shared_run->total_seconds();
      const std::uint64_t private_clusters =
          private_run->metrics.clusters_visited;
      const std::uint64_t shared_clusters =
          shared_run->metrics.clusters_visited;
      const double saved =
          private_clusters == 0
              ? 0.0
              : 1.0 - static_cast<double>(shared_clusters) /
                          static_cast<double>(private_clusters);

      if (overlap == 0.0) {
        // No shareable prefix: the estimator must keep its hands off.
        if (adopted != 0) {
          std::fprintf(stderr,
                       "N=%zu overlap 0 adopted %llu groups (want 0)\n", n,
                       static_cast<unsigned long long>(adopted));
          ok = false;
        }
        if (shared_schedule != private_schedule) {
          std::fprintf(stderr,
                       "N=%zu overlap 0: pull schedule deviates from the "
                       "sharing-off run\n", n);
          ok = false;
        }
        if (shared_seconds > 1.01 * private_seconds) {
          std::fprintf(stderr,
                       "N=%zu overlap 0: makespan %.3fs vs %.3fs private "
                       "(> 1%% regression)\n", n, shared_seconds,
                       private_seconds);
          ok = false;
        }
      }
      if (n == 8 && overlap == 1.0) {
        if (adopted == 0) {
          std::fprintf(stderr, "N=8 overlap 1.0: sharing not adopted\n");
          ok = false;
        }
        if (saved < 0.25) {
          std::fprintf(stderr,
                       "N=8 overlap 1.0: cluster accesses only %.1f%% "
                       "down (want >= 25%%)\n", 100.0 * saved);
          ok = false;
        }
      }

      char overlap_s[8], saved_s[16], adopted_s[8], spills_s[8];
      std::snprintf(overlap_s, sizeof(overlap_s), "%.1f", overlap);
      std::snprintf(saved_s, sizeof(saved_s), "%.1f%%", 100.0 * saved);
      std::snprintf(adopted_s, sizeof(adopted_s), "%llu",
                    static_cast<unsigned long long>(adopted));
      std::snprintf(spills_s, sizeof(spills_s), "%llu",
                    static_cast<unsigned long long>(spills));
      PrintTableRow({std::to_string(n), overlap_s,
                     FormatSeconds(private_seconds),
                     FormatSeconds(shared_seconds),
                     std::to_string(private_clusters),
                     std::to_string(shared_clusters), saved_s, adopted_s,
                     spills_s});

      json.BeginObject();
      json.Key("n").Value(static_cast<std::uint64_t>(n));
      json.Key("overlap").Value(overlap);
      json.Key("private_seconds").Value(private_seconds);
      json.Key("shared_seconds").Value(shared_seconds);
      json.Key("private_clusters").Value(private_clusters);
      json.Key("shared_clusters").Value(shared_clusters);
      json.Key("private_disk_reads").Value(private_run->metrics.disk_reads);
      json.Key("shared_disk_reads").Value(shared_run->metrics.disk_reads);
      json.Key("groups_adopted").Value(adopted);
      json.Key("groups_declined")
          .Value(shared_run->scheduler.CounterOr("share.groups_declined"));
      json.Key("members_shared")
          .Value(shared_run->scheduler.CounterOr("share.members_shared"));
      json.Key("instances_streamed")
          .Value(
              shared_run->scheduler.CounterOr("share.instances_streamed"));
      json.Key("spills").Value(spills);
      json.Key("private_fallbacks")
          .Value(
              shared_run->scheduler.CounterOr("share.private_fallbacks"));
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();

  // Splice the section into the trajectory workload_throughput writes;
  // stand alone when it has not run yet.
  const std::string path = BenchTrajectoryPath("BENCH_workload.json");
  std::string doc;
  if (auto existing = ReadTextFile(path); existing.ok()) {
    doc = *std::move(existing);
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    // Re-running replaces any previously spliced section.
    if (const std::size_t at = doc.find(",\"shared\":");
        at != std::string::npos) {
      doc.resize(at);
      doc += "}";
    }
  }
  if (!doc.empty() && doc.back() == '}') {
    doc.pop_back();
    doc += ",\"shared\":" + json.str() + "}\n";
  } else {
    doc = "{\"bench\":\"workload_shared\",\"schema_version\":1,\"shared\":" +
          json.str() + "}\n";
  }
  const Status wrote = WriteTextFile(path, doc);
  if (!wrote.ok()) {
    std::fprintf(stderr, "trajectory: %s\n", wrote.ToString().c_str());
    ok = false;
  } else {
    std::printf("wrote %s (shared section)\n", path.c_str());
  }

  std::printf("workload shared: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
