// Multi-drive scale-out: one XMark document path-partitioned across K
// shards (ROADMAP scale-out item), each shard a full Database with its
// own simulated drive, elevator, and buffer pool, driven shard-parallel
// by ShardedWorkloadExecutor under the hybrid scheduling policy.
//
// Sweeps K in {1, 2, 4, 8} ({1, 2} under NAVPATH_BENCH_FAST=1) at
// constant aggregate buffer memory — the total pool is divided across
// the shards, so the document stays much larger than any single drive's
// buffer — and reports aggregate throughput, per-shard disk utilization,
// and the fan-out merge overhead.
//
// Two gates (nonzero exit when violated):
//   - K=1 is byte-identical to a plain WorkloadExecutor over an
//     identically configured unsharded database: same per-query counts,
//     same page reads, same simulated makespan.
//   - Sharding pays: aggregate throughput at the sweep's widest K beats
//     K=1 by the expected parallel speedup (>= 1.5x at K=4 full mode,
//     >= 1.1x at K=2 fast mode).
//
// Appends a "shard" section to the BENCH_workload.json trajectory
// (written by workload_throughput; schema note in DESIGN.md).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/experiments.h"
#include "compiler/workload_executor.h"
#include "shard/shard_executor.h"
#include "shard/sharded_store.h"

namespace {

using namespace navpath;

// Descendant-heavy mix: most queries fan out across partition units,
// with a few single-owner paths so routing sees both shapes.
constexpr const char* kShardMix[] = {
    "/site//description",
    "/site//keyword",
    "/site//name",
    "/site//date",
    "/site/regions//item",
    "/site//annotation",
    "/site//emph",
    "/site/people/person/email",
    "/site/open_auctions/open_auction/bidder",
    "/site//text",
};

struct SweepPoint {
  std::size_t shards = 0;
  double seconds = 0;
  double throughput = 0;   // queries per simulated second
  double speedup = 1.0;    // vs the K=1 makespan
  double estimated_speedup = 1.0;  // cost-model fan-out estimate
  std::uint64_t disk_reads = 0;
  std::uint64_t fanout_queries = 0;
  std::uint64_t merge_duplicates = 0;
  std::uint64_t merged_nodes = 0;
  std::vector<double> utilization;
  std::vector<std::uint64_t> per_query_counts;
};

WorkloadOptions ShardWorkloadOptions() {
  WorkloadOptions options;
  options.policy = WorkloadPolicy::kHybrid;
  options.collect_nodes = true;
  // Pinned like the other longitudinal workload benches, so admission
  // sequences stay comparable across revisions.
  options.footprint_from_stats = false;
  options.summary = false;
  return options;
}

Result<SweepPoint> RunSharded(double sf, std::size_t shards,
                              std::size_t total_buffer_pages) {
  FixtureOptions fixture_options;
  fixture_options.db.buffer_pages = std::max<std::size_t>(
      total_buffer_pages / shards, 16);
  NAVPATH_ASSIGN_OR_RETURN(const std::unique_ptr<ShardedStore> store,
                           CreateShardedXMark(sf, shards, fixture_options));

  ShardedWorkloadExecutor executor(store.get(), ShardWorkloadOptions());
  for (const char* query : kShardMix) {
    NAVPATH_RETURN_NOT_OK(executor.Add(query,
                                       PaperPlan(PlanKind::kXSchedule)));
  }
  NAVPATH_ASSIGN_OR_RETURN(const ShardWorkloadResult result,
                           executor.Run());

  SweepPoint point;
  point.shards = shards;
  point.seconds = SimClock::ToSeconds(result.total_time);
  point.throughput = point.seconds > 0
                         ? static_cast<double>(std::size(kShardMix)) /
                               point.seconds
                         : 0.0;
  point.disk_reads = result.metrics.disk_reads;
  point.fanout_queries = result.scheduler.CounterOr("shard.fanout");
  point.merge_duplicates =
      result.scheduler.CounterOr("shard.merge.duplicates");
  point.utilization = result.utilization;
  // The cost model's view of the same fan-out: per-shard makespans as
  // the sub-plan costs, the merged node volume as the merge input.
  std::vector<double> per_shard_costs;
  for (const WorkloadResult& shard : result.shards) {
    if (shard.total_time > 0) {
      per_shard_costs.push_back(SimClock::ToSeconds(shard.total_time));
    }
  }
  for (const WorkloadQueryResult& q : result.queries) {
    point.per_query_counts.push_back(q.count);
    point.merged_nodes += q.nodes.size();
    if (!q.status.ok()) {
      return Status::Aborted("query failed: " + q.status.ToString());
    }
  }
  const ShardFanoutEstimate estimate = EstimateShardFanout(
      per_shard_costs, static_cast<double>(point.merged_nodes), 1e-9);
  point.estimated_speedup = estimate.speedup;
  return point;
}

/// The unsharded oracle for the K=1 identity gate, with the full buffer.
Result<SweepPoint> RunUnsharded(double sf, std::size_t total_buffer_pages) {
  FixtureOptions fixture_options;
  fixture_options.db.buffer_pages = std::max<std::size_t>(
      total_buffer_pages, 16);
  NAVPATH_ASSIGN_OR_RETURN(const std::unique_ptr<XMarkFixture> fixture,
                           XMarkFixture::Create(sf, fixture_options));
  WorkloadOptions options = ShardWorkloadOptions();
  options.stats = &fixture->stats();
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (const char* query : kShardMix) {
    NAVPATH_RETURN_NOT_OK(executor.Add(query,
                                       PaperPlan(PlanKind::kXSchedule)));
  }
  NAVPATH_ASSIGN_OR_RETURN(const WorkloadResult result, executor.Run());

  SweepPoint point;
  point.shards = 1;
  point.seconds = SimClock::ToSeconds(result.total_time);
  point.disk_reads = result.metrics.disk_reads;
  for (const WorkloadQueryResult& q : result.queries) {
    point.per_query_counts.push_back(q.count);
    point.merged_nodes += q.nodes.size();
  }
  return point;
}

void WriteSweepPoint(JsonWriter* json, const SweepPoint& point) {
  json->BeginObject();
  json->Key("shards").Value(static_cast<std::uint64_t>(point.shards));
  json->Key("makespan_seconds").Value(point.seconds);
  json->Key("throughput_qps").Value(point.throughput);
  json->Key("speedup").Value(point.speedup);
  json->Key("estimated_speedup").Value(point.estimated_speedup);
  json->Key("disk_reads").Value(point.disk_reads);
  json->Key("fanout_queries").Value(point.fanout_queries);
  json->Key("merge_duplicates").Value(point.merge_duplicates);
  json->Key("merged_nodes").Value(point.merged_nodes);
  json->Key("utilization").BeginArray();
  for (const double u : point.utilization) json->Value(u);
  json->EndArray();
  json->EndObject();
}

}  // namespace

int main() {
  const bool fast = FastBenchMode();
  const double sf = fast ? 0.1 : 0.25;
  // Constant aggregate memory across the sweep: the pool an unsharded
  // database would own, divided among the shards. Small enough that the
  // document dwarfs every per-shard buffer at the widest K.
  const std::size_t total_buffer_pages = fast ? 192 : 384;
  const std::vector<std::size_t> sweep =
      fast ? std::vector<std::size_t>{1, 2}
           : std::vector<std::size_t>{1, 2, 4, 8};

  std::printf("Path-partitioned scale-out — %zu queries, scale %.2f, "
              "%zu total buffer pages\n",
              std::size(kShardMix), sf, total_buffer_pages);

  bool ok = true;

  // --- Gate 1: K=1 is the unsharded executor, byte for byte. ------------
  auto unsharded = RunUnsharded(sf, total_buffer_pages);
  unsharded.status().AbortIfNotOk();
  auto one = RunSharded(sf, 1, total_buffer_pages);
  one.status().AbortIfNotOk();
  const bool identical =
      one->per_query_counts == unsharded->per_query_counts &&
      one->disk_reads == unsharded->disk_reads &&
      one->seconds == unsharded->seconds &&
      one->merged_nodes == unsharded->merged_nodes;
  if (!identical) {
    std::fprintf(stderr,
                 "K=1 diverges from the unsharded executor: "
                 "reads %llu vs %llu, makespan %.6f vs %.6f\n",
                 static_cast<unsigned long long>(one->disk_reads),
                 static_cast<unsigned long long>(unsharded->disk_reads),
                 one->seconds, unsharded->seconds);
    ok = false;
  }

  // --- Sweep. ------------------------------------------------------------
  PrintTableHeader("shard sweep",
                   {"K", "makespan", "qps", "speedup", "est", "reads",
                    "fanout", "dups", "util:min", "util:max"});
  std::vector<SweepPoint> points;
  for (const std::size_t shards : sweep) {
    auto point = shards == 1 ? std::move(one)
                             : RunSharded(sf, shards, total_buffer_pages);
    point.status().AbortIfNotOk();
    point->speedup = points.empty()
                         ? 1.0
                         : points.front().seconds / point->seconds;
    const auto [util_min, util_max] = std::minmax_element(
        point->utilization.begin(), point->utilization.end());
    PrintTableRow({std::to_string(shards), FormatSeconds(point->seconds),
                   FormatSeconds(point->throughput),
                   FormatSeconds(point->speedup),
                   FormatSeconds(point->estimated_speedup),
                   std::to_string(point->disk_reads),
                   std::to_string(point->fanout_queries),
                   std::to_string(point->merge_duplicates),
                   FormatPercent(*util_min), FormatPercent(*util_max)});
    for (const double u : point->utilization) {
      if (u < 0.0 || u > 1.0) {
        std::fprintf(stderr, "K=%zu: utilization %.3f outside [0, 1]\n",
                     shards, u);
        ok = false;
      }
    }
    // Results must not drift with K (the merge hides the partitioning).
    if (!points.empty() &&
        point->per_query_counts != points.front().per_query_counts) {
      std::fprintf(stderr, "K=%zu: per-query counts diverge from K=1\n",
                   shards);
      ok = false;
    }
    points.push_back(*std::move(point));
  }

  // --- Gate 2: the widest K actually buys parallel speedup. -------------
  const double required = fast ? 1.1 : 1.5;
  const SweepPoint& widest =
      *std::max_element(points.begin(), points.end(),
                        [](const SweepPoint& a, const SweepPoint& b) {
                          return a.speedup < b.speedup;
                        });
  if (widest.speedup < required) {
    std::fprintf(stderr,
                 "best speedup %.2fx (K=%zu) below the %.2fx gate\n",
                 widest.speedup, widest.shards, required);
    ok = false;
  }

  // --- Trajectory. --------------------------------------------------------
  JsonWriter json;
  json.BeginObject();
  json.Key("scale_factor").Value(sf);
  json.Key("total_buffer_pages")
      .Value(static_cast<std::uint64_t>(total_buffer_pages));
  json.Key("queries").Value(static_cast<std::uint64_t>(
      std::size(kShardMix)));
  json.Key("k1_identical_to_unsharded").Value(identical);
  json.Key("speedup_gate").Value(required);
  json.Key("sweep").BeginArray();
  for (const SweepPoint& point : points) WriteSweepPoint(&json, point);
  json.EndArray();
  json.EndObject();

  const std::string path = BenchTrajectoryPath("BENCH_workload.json");
  std::string doc;
  if (auto existing = ReadTextFile(path); existing.ok()) {
    doc = *std::move(existing);
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    if (const std::size_t at = doc.find(",\"shard\":");
        at != std::string::npos) {
      doc.resize(at);
      doc += "}";
    }
  }
  if (!doc.empty() && doc.back() == '}') {
    doc.pop_back();
    doc += ",\"shard\":" + json.str() + "}\n";
  } else {
    doc = "{\"bench\":\"workload_shard\",\"schema_version\":1,"
          "\"shard\":" + json.str() + "}\n";
  }
  const Status wrote = WriteTextFile(path, doc);
  if (!wrote.ok()) {
    std::fprintf(stderr, "trajectory: %s\n", wrote.ToString().c_str());
    ok = false;
  } else {
    std::printf("wrote %s (shard section)\n", path.c_str());
  }

  std::printf("workload shard: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
