// Workload throughput: N concurrent XPath queries over one shared I/O
// subsystem (paper Sec. 7: "We also expect concurrent queries to strongly
// benefit from asynchronous I/O, as scheduling decisions can be made based
// on more pending requests.")
//
// Sweeps N in {1, 2, 4, 8} mixed XMark queries, all as XSchedule plans,
// and compares back-to-back execution (WorkloadExecutor with one active
// slot) against cooperative interleaving under each scheduling policy.
// Interleaving pools every query's pending asynchronous reads in the
// disk's elevator: the pending pool deepens, seeks shorten, duplicate
// reads across queries merge into single submissions.
//
// Emits the machine-readable trajectory BENCH_workload.json (schema note
// in DESIGN.md, "The workload layer") for later PRs to diff against.
#include <cmath>
#include <cstdio>

#include "benchlib/experiments.h"
#include "common/random.h"
#include "compiler/workload_executor.h"
#include "observe/metrics_registry.h"

namespace {

using namespace navpath;

constexpr const char* kWorkloadQueries[] = {
    "/site/regions//item",
    "/site/regions//name",
    "/site/people/person/email",
    "/site//description",
    "/site/open_auctions/open_auction/bidder",
    "/site/closed_auctions/closed_auction/annotation/description",
    "/site//keyword",
    "/site/people/person/address/city",
};

Result<WorkloadResult> RunWorkload(XMarkFixture* fixture, std::size_t n,
                                   std::size_t max_concurrent,
                                   WorkloadPolicy policy) {
  WorkloadOptions options;
  options.policy = policy;
  options.max_concurrent = max_concurrent;
  options.stats = &fixture->stats();
  // Pinned so the closed-system trajectory stays comparable across
  // revisions; the Poisson section below exercises the cost-derived
  // admission footprint.
  options.footprint_from_stats = false;
  // Same reason: summary-exact estimates are benched by workload_summary.
  options.summary = false;
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  for (std::size_t i = 0; i < n; ++i) {
    NAVPATH_RETURN_NOT_OK(executor.Add(kWorkloadQueries[i],
                                       PaperPlan(PlanKind::kXSchedule)));
  }
  return executor.Run();
}

/// Open system: `jobs` queries drawn round-robin from the mix arrive with
/// exponential (Poisson-process) inter-arrival times in simulated time,
/// seeded for reproducibility.
Result<WorkloadResult> RunPoisson(XMarkFixture* fixture, std::size_t jobs,
                                  SimTime mean_interarrival,
                                  std::uint64_t seed,
                                  WorkloadPolicy policy) {
  WorkloadOptions options;
  options.policy = policy;
  options.stats = &fixture->stats();
  options.summary = false;  // longitudinal trajectory; see RunWorkload
  WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
  Random rng(seed);
  SimTime arrival = 0;
  constexpr std::size_t kMixSize = std::size(kWorkloadQueries);
  for (std::size_t i = 0; i < jobs; ++i) {
    arrival += static_cast<SimTime>(
        -static_cast<double>(mean_interarrival) *
        std::log1p(-rng.NextDouble()));
    NAVPATH_RETURN_NOT_OK(executor.Add(kWorkloadQueries[i % kMixSize],
                                       PaperPlan(PlanKind::kXSchedule),
                                       arrival));
  }
  return executor.Run();
}

void RecordRun(JsonWriter* json, std::size_t n, const char* mode,
               WorkloadPolicy policy, const WorkloadResult& result) {
  json->BeginObject();
  json->Key("n").Value(static_cast<std::uint64_t>(n));
  json->Key("mode").Value(mode);
  json->Key("policy").Value(WorkloadPolicyName(policy));
  json->Key("total_seconds").Value(result.total_seconds());
  json->Key("cpu_seconds").Value(SimClock::ToSeconds(result.cpu_time));
  json->Key("disk_reads").Value(result.metrics.disk_reads);
  json->Key("async_requests").Value(result.metrics.async_requests);
  json->Key("requests_merged").Value(result.metrics.requests_merged);
  json->Key("elevator_depth_mean").Value(result.mean_elevator_depth());
  json->Key("elevator_depth_max")
      .Value(result.metrics.elevator_depth_max);
  json->Key("seek_pages").Value(result.metrics.disk_seek_pages);
  // Scheduler-side observability: how the policy saw the drive's pending
  // pool, and (hybrid) how it classified the active set.
  if (const HistogramSummary* depth =
          result.scheduler.FindHistogram("sched.pool_depth")) {
    json->Key("sched_pool_depth_p50").Value(depth->p50);
    json->Key("sched_pool_depth_mean").Value(depth->mean);
  }
  json->Key("sched_classified_io_bound")
      .Value(result.scheduler.CounterOr("sched.classified.io_bound"));
  json->Key("sched_classified_cpu_bound")
      .Value(result.scheduler.CounterOr("sched.classified.cpu_bound"));
  json->Key("turnaround_seconds").BeginArray();
  for (const WorkloadQueryResult& q : result.queries) {
    json->Value(q.turnaround_seconds());
  }
  json->EndArray();
  json->Key("counts").BeginArray();
  for (const WorkloadQueryResult& q : result.queries) {
    json->Value(q.count);
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.25;
  std::printf("Workload throughput — N concurrent XSchedule queries, "
              "scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  // The hybrid policy's tight 1.05x bounds are a claim about the
  // page-resident regime: its cheap phase must still be (mostly) cached
  // when the expensive phase starts. With the document well past the
  // buffer pool the re-reads are forced by capacity, not scheduling, and
  // the bench instead asserts strict dominance between the parents.
  const bool page_resident =
      (*fixture)->doc().pages <= 2 * (*fixture)->db()->options().buffer_pages;

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("workload_throughput");
  json.Key("schema_version").Value(static_cast<std::uint64_t>(1));
  json.Key("scale_factor").Value(sf);
  json.Key("plan").Value("XSchedule");
  json.Key("queries").BeginArray();
  for (const char* q : kWorkloadQueries) json.Value(q);
  json.EndArray();
  json.Key("runs").BeginArray();

  PrintTableHeader(
      "sequential vs interleaved (round-robin / fewest-I/O / SJF / hybrid)",
      {"N", "seq[s]", "rr[s]", "fewest[s]", "sjf[s]", "hyb[s]", "speedup",
       "merged", "depth"});

  bool n4_ok = false;
  bool hybrid_ok = true;
  double rr8_seconds = 0.0;
  for (const std::size_t n : {1u, 2u, 4u, 8u}) {
    auto sequential =
        RunWorkload(fixture->get(), n, 1, WorkloadPolicy::kRoundRobin);
    sequential.status().AbortIfNotOk();
    RecordRun(&json, n, "sequential", WorkloadPolicy::kRoundRobin,
              *sequential);

    const WorkloadPolicy policies[] = {
        WorkloadPolicy::kRoundRobin,
        WorkloadPolicy::kFewestPendingIos,
        WorkloadPolicy::kShortestRemainingCost,
        WorkloadPolicy::kHybrid,
    };
    constexpr int kPolicies = 4;
    double seconds[kPolicies] = {};
    double p50[kPolicies] = {};
    WorkloadResult rr;
    for (int p = 0; p < kPolicies; ++p) {
      auto interleaved = RunWorkload(fixture->get(), n, 0, policies[p]);
      interleaved.status().AbortIfNotOk();
      RecordRun(&json, n, "interleaved", policies[p], *interleaved);
      seconds[p] = interleaved->total_seconds();
      Histogram turnaround;
      for (const WorkloadQueryResult& q : interleaved->queries) {
        turnaround.Record(static_cast<std::uint64_t>(q.turnaround()));
      }
      p50[p] = SimClock::ToSeconds(
          static_cast<SimTime>(turnaround.ValueAtQuantile(0.50)));
      if (p == 0) rr = std::move(*interleaved);
    }

    char speedup[16], merged[24], depth[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  sequential->total_seconds() / seconds[0]);
    std::snprintf(merged, sizeof(merged), "%llu",
                  static_cast<unsigned long long>(
                      rr.metrics.requests_merged));
    std::snprintf(depth, sizeof(depth), "%.1f->%.1f",
                  sequential->mean_elevator_depth(),
                  rr.mean_elevator_depth());
    PrintTableRow({std::to_string(n),
                   FormatSeconds(sequential->total_seconds()),
                   FormatSeconds(seconds[0]), FormatSeconds(seconds[1]),
                   FormatSeconds(seconds[2]), FormatSeconds(seconds[3]),
                   speedup, merged, depth});

    if (n == 4) {
      n4_ok = seconds[0] < sequential->total_seconds() &&
              rr.mean_elevator_depth() >
                  sequential->mean_elevator_depth();
    }
    if (n >= 4) {
      // The hybrid's contract: SJF-class median turnaround without
      // SJF's makespan collapse (a few percent of round-robin's).
      const double p50_ratio = p50[3] / p50[2];
      const double makespan_ratio = seconds[3] / seconds[0];
      std::printf("    hybrid at N=%zu: p50 %.2fx of SJF, makespan %.2fx "
                  "of round-robin\n", n, p50_ratio, makespan_ratio);
      if (n == 8) {
        hybrid_ok = page_resident
                        ? p50_ratio <= 1.05 && makespan_ratio <= 1.05
                        : p50[3] < p50[0] && seconds[3] < seconds[2];
      }
    }
    if (n == 8) rr8_seconds = seconds[0];
  }

  json.EndArray();

  // Open-system section: Poisson arrivals at ~70% of the round-robin
  // service rate measured above, so queues form but drain. Latency is
  // reported as turnaround percentiles (arrival to completion), the
  // number the closed-system makespan sweep cannot see.
  const std::size_t poisson_jobs = FastBenchMode() ? 16 : 32;
  const SimTime mean_interarrival = static_cast<SimTime>(
      rr8_seconds / 8.0 / 0.7 * static_cast<double>(kSimSecond));
  constexpr std::uint64_t kPoissonSeed = 4242;
  std::printf("\n== Poisson arrivals (open system, %zu jobs, mean "
              "inter-arrival %.3f s, seed %llu) ==\n",
              poisson_jobs, SimClock::ToSeconds(mean_interarrival),
              static_cast<unsigned long long>(kPoissonSeed));
  PrintTableHeader("turnaround percentiles (arrival -> completion)",
                   {"policy", "makespan[s]", "p50[s]", "p95[s]", "p99[s]",
                    "merged"});

  json.Key("poisson").BeginObject();
  json.Key("seed").Value(kPoissonSeed);
  json.Key("jobs").Value(static_cast<std::uint64_t>(poisson_jobs));
  json.Key("mean_interarrival_seconds")
      .Value(SimClock::ToSeconds(mean_interarrival));
  json.Key("runs").BeginArray();
  for (const WorkloadPolicy policy :
       {WorkloadPolicy::kRoundRobin, WorkloadPolicy::kFewestPendingIos,
        WorkloadPolicy::kShortestRemainingCost, WorkloadPolicy::kHybrid}) {
    auto open = RunPoisson(fixture->get(), poisson_jobs, mean_interarrival,
                           kPoissonSeed, policy);
    open.status().AbortIfNotOk();
    Histogram turnaround;
    for (const WorkloadQueryResult& q : open->queries) {
      turnaround.Record(static_cast<std::uint64_t>(q.turnaround()));
    }
    const double p50 =
        SimClock::ToSeconds(static_cast<SimTime>(
            turnaround.ValueAtQuantile(0.50)));
    const double p95 =
        SimClock::ToSeconds(static_cast<SimTime>(
            turnaround.ValueAtQuantile(0.95)));
    const double p99 =
        SimClock::ToSeconds(static_cast<SimTime>(
            turnaround.ValueAtQuantile(0.99)));
    char merged[24];
    std::snprintf(merged, sizeof(merged), "%llu",
                  static_cast<unsigned long long>(
                      open->metrics.requests_merged));
    PrintTableRow({WorkloadPolicyName(policy),
                   FormatSeconds(open->total_seconds()),
                   FormatSeconds(p50), FormatSeconds(p95),
                   FormatSeconds(p99), merged});

    json.BeginObject();
    json.Key("policy").Value(WorkloadPolicyName(policy));
    json.Key("makespan_seconds").Value(open->total_seconds());
    json.Key("mean_turnaround_seconds")
        .Value(SimClock::ToSeconds(
            static_cast<SimTime>(turnaround.Mean())));
    json.Key("p50_seconds").Value(p50);
    json.Key("p95_seconds").Value(p95);
    json.Key("p99_seconds").Value(p99);
    json.Key("requests_merged").Value(open->metrics.requests_merged);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  json.EndObject();
  const std::string path = BenchTrajectoryPath("BENCH_workload.json");
  const Status wrote = WriteTextFile(path, json.str() + "\n");
  if (!wrote.ok()) {
    std::fprintf(stderr, "FAILED writing %s: %s\n", path.c_str(),
                 wrote.ToString().c_str());
    return 1;
  }
  std::printf("\ntrajectory written to %s\n", path.c_str());
  std::printf("N=4 interleaved beats sequential with deeper elevator "
              "pool: %s\n", n4_ok ? "yes" : "NO");
  if (page_resident) {
    std::printf("N=8 hybrid holds SJF p50 and round-robin makespan within "
                "5%%: %s\n", hybrid_ok ? "yes" : "NO");
  } else {
    std::printf("N=8 hybrid dominates its parents (p50 below round-robin's, "
                "makespan below SJF's; document exceeds the buffer pool, "
                "see DESIGN.md Sec. 7): %s\n", hybrid_ok ? "yes" : "NO");
  }
  return n4_ok && hybrid_ok ? 0 : 1;
}
