// Figure 11: XMark Q15, a long and very selective child path. The
// full-document XScan plan is far slower here (paper: the scan loads far
// more pages than needed and pays heavy speculative bookkeeping), while
// XSchedule still beats Simple.
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  std::printf("Figure 11 reproduction — Q15: %s\n", kQ15);
  auto result = RunScalingExperiment("Fig. 11: Q15 total time vs scale",
                                     kQ15, ActiveScaleFactors());
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& last = result->back();
  std::printf("\nshape at largest scale: XScan/XSchedule = %.1fx slower "
              "(paper: ~8x), XSchedule <= Simple: %s\n",
              last[2] / last[1], last[1] <= last[0] ? "yes" : "NO");
  return 0;
}
