// Table 3: total execution time and CPU usage (absolute and as a fraction
// of total time) for Q6', Q7 and Q15 at XMark scale factor 1.
//
// Paper's profile: the Simple plan is I/O bound (CPU 8-23%), XSchedule
// overlaps I/O with work (12-33%), XScan is CPU heavy because of the
// speculative instance processing (62-77%).
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.25 : 1.0;
  std::printf("Table 3 reproduction — CPU usage at XMark scale factor %.2f\n",
              sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  PrintTableHeader("Tab. 3: total[s] / CPU[s] / CPU fraction",
                   {"query", "plan", "total[s]", "CPU[s]", "CPU%"});
  const struct {
    const char* name;
    const char* text;
  } queries[] = {{"Q6'", kQ6Prime}, {"Q7", kQ7}, {"Q15", kQ15}};
  for (const auto& query : queries) {
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(query.text, PaperPlan(kind));
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      PrintTableRow({query.name, PlanKindName(kind),
                     FormatSeconds(result->total_seconds()),
                     FormatSeconds(result->cpu_seconds()),
                     FormatPercent(result->cpu_fraction())});
    }
  }
  return 0;
}
