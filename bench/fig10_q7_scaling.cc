// Figure 10: XMark Q7 = count(/site//description) + count(/site//annotation)
// + count(/site//email). The query touches a large part of the document,
// so the sequential XScan plan wins (paper: up to 4x over Simple, up to 3x
// over XSchedule).
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  std::printf("Figure 10 reproduction — Q7: %s\n", kQ7);
  auto result = RunScalingExperiment("Fig. 10: Q7 total time vs scale", kQ7,
                                     ActiveScaleFactors());
  if (!result.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& last = result->back();
  std::printf("\nshape at largest scale: Simple/XScan = %.1fx, "
              "XSchedule/XScan = %.1fx (paper: ~4x and ~3x)\n",
              last[0] / last[2], last[1] / last[2]);
  return 0;
}
