// Extension: cost-based choice of the I/O-performing operator — the
// future-work item of Sec. 7. For each evaluation query, prints the cost
// model's per-plan estimates, its choice, and the measured times of all
// three plans so the choice can be judged.
#include <cstdio>

#include "benchlib/experiments.h"
#include "xpath/parser.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.5;
  std::printf("Extension — cost-model plan choice at scale %.2f\n", sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  Database* db = (*fixture)->db();

  PrintTableHeader("estimated vs measured totals [s]",
                   {"query", "est.Simple", "est.XSched", "est.XScan",
                    "chosen", "meas.Simple", "meas.XSched", "meas.XScan"});
  const struct {
    const char* name;
    const char* text;
  } queries[] = {{"Q6'", kQ6Prime}, {"Q7", kQ7}, {"Q15", kQ15}};

  int good_choices = 0;
  for (const auto& query : queries) {
    auto parsed = ParseQuery(query.text, db->tags());
    parsed.status().AbortIfNotOk();
    PlanCosts est;
    for (const LocationPath& path : parsed->paths) {
      const PlanCosts c = EstimatePlanCosts((*fixture)->stats(), path,
                                            db->options().disk_model,
                                            db->costs());
      est.simple += c.simple;
      est.xschedule += c.xschedule;
      est.xscan += c.xscan;
    }
    const PlanKind chosen = est.Best();

    double measured[3];
    int i = 0;
    double best_measured = 1e300;
    PlanKind best_kind = PlanKind::kSimple;
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(query.text, PaperPlan(kind));
      result.status().AbortIfNotOk();
      measured[i] = result->total_seconds();
      if (measured[i] < best_measured) {
        best_measured = measured[i];
        best_kind = kind;
      }
      ++i;
    }
    if (best_kind == chosen) ++good_choices;
    PrintTableRow({query.name, FormatSeconds(est.simple * 1e-9),
                   FormatSeconds(est.xschedule * 1e-9),
                   FormatSeconds(est.xscan * 1e-9), PlanKindName(chosen),
                   FormatSeconds(measured[0]), FormatSeconds(measured[1]),
                   FormatSeconds(measured[2])});
  }
  std::printf("\noptimizer picked the measured-best plan for %d/3 queries\n",
              good_choices);
  return 0;
}
