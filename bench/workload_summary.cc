// Path-summary synopsis benchmark: cluster-access reduction on the
// paper's queries at scale 0.25 (NAVPATH_BENCH_FAST=1 drops to 0.1).
//
// Three claims, each a gate (nonzero exit when violated):
//   - Q7 (count-mode) and a provably-empty path are answered from the
//     synopsis with ZERO cluster entries and zero page reads,
//   - Q15 (node-mode, 13 steps deep) under XScan reads measurably fewer
//     pages when the sweep is restricted to the touched summary extents,
//   - the summary-off arm is byte-identical (counts, simulated time,
//     reads) to a database that never built a synopsis.
//
// Appends a "summary" section to the BENCH_workload.json trajectory
// (written by workload_throughput; schema note in DESIGN.md).
#include <cstdio>
#include <string>
#include <tuple>

#include "benchlib/experiments.h"
#include "compiler/executor.h"

namespace {

using namespace navpath;

struct Arm {
  std::uint64_t count = 0;
  std::uint64_t clusters = 0;
  std::uint64_t disk_reads = 0;
  double seconds = 0;
};

Result<Arm> RunArm(XMarkFixture* fixture, const std::string& query,
                   PlanKind kind, bool use_summary) {
  PlanOptions plan = PaperPlan(kind);
  plan.use_summary = use_summary;
  NAVPATH_ASSIGN_OR_RETURN(const QueryRunResult result,
                           fixture->Run(query, plan));
  Arm arm;
  arm.count = result.count;
  arm.clusters = result.metrics.clusters_visited;
  arm.disk_reads = result.metrics.disk_reads;
  arm.seconds = result.total_seconds();
  return arm;
}

void RecordArm(JsonWriter* json, const char* key, const Arm& arm) {
  json->Key(key).BeginObject();
  json->Key("count").Value(arm.count);
  json->Key("clusters_visited").Value(arm.clusters);
  json->Key("disk_reads").Value(arm.disk_reads);
  json->Key("seconds").Value(arm.seconds);
  json->EndObject();
}

}  // namespace

int main() {
  const double sf = FastBenchMode() ? 0.1 : 0.25;
  std::printf("Path-summary synopsis — cluster accesses on/off, scale %.2f\n",
              sf);
  auto fixture = XMarkFixture::Create(sf);
  if (!fixture.ok()) {
    std::fprintf(stderr, "fixture: %s\n", fixture.status().ToString().c_str());
    return 1;
  }

  struct Case {
    const char* name;
    const char* query;
    PlanKind kind;
    bool answerable;  // synopsis answers without navigating
  };
  const Case cases[] = {
      {"q6", kQ6Prime, PlanKind::kXSchedule, true},
      {"q7", kQ7, PlanKind::kXSchedule, true},
      {"q15", kQ15, PlanKind::kXScan, false},
      {"empty", "count(/site/regions/item)", PlanKind::kXSchedule, true},
  };

  JsonWriter json;
  json.BeginObject();
  json.Key("scale_factor").Value(sf);
  json.Key("cases").BeginArray();

  PrintTableHeader("summary on vs off",
                   {"query", "plan", "on:clus", "off:clus", "on:reads",
                    "off:reads", "count"});
  bool ok = true;
  for (const Case& c : cases) {
    auto on = RunArm(fixture->get(), c.query, c.kind, true);
    auto off = RunArm(fixture->get(), c.query, c.kind, false);
    on.status().AbortIfNotOk();
    off.status().AbortIfNotOk();
    PrintTableRow({c.name, PlanKindName(c.kind),
                   std::to_string(on->clusters), std::to_string(off->clusters),
                   std::to_string(on->disk_reads),
                   std::to_string(off->disk_reads),
                   std::to_string(on->count)});
    json.BeginObject();
    json.Key("name").Value(c.name);
    json.Key("query").Value(c.query);
    json.Key("plan").Value(PlanKindName(c.kind));
    RecordArm(&json, "on", *on);
    RecordArm(&json, "off", *off);
    json.EndObject();

    if (on->count != off->count) {
      std::fprintf(stderr, "%s: summary changed the answer (%llu vs %llu)\n",
                   c.name, static_cast<unsigned long long>(on->count),
                   static_cast<unsigned long long>(off->count));
      ok = false;
    }
    if (c.answerable) {
      // Navigation-free: the synopsis must answer without entering a
      // single cluster or reading a page.
      if (on->clusters != 0 || on->disk_reads != 0) {
        std::fprintf(stderr, "%s: expected zero cluster accesses, got "
                     "%llu clusters / %llu reads\n", c.name,
                     static_cast<unsigned long long>(on->clusters),
                     static_cast<unsigned long long>(on->disk_reads));
        ok = false;
      }
      if (std::string(c.name) != "empty" && off->clusters == 0) {
        std::fprintf(stderr, "%s: off arm entered no cluster — the drop "
                     "gate is vacuous\n", c.name);
        ok = false;
      }
    } else {
      // Navigational, restricted sweep: a measurable drop, not parity.
      if (on->disk_reads >= off->disk_reads) {
        std::fprintf(stderr, "%s: restricted sweep read %llu pages, "
                     "unrestricted %llu — no drop\n", c.name,
                     static_cast<unsigned long long>(on->disk_reads),
                     static_cast<unsigned long long>(off->disk_reads));
        ok = false;
      }
    }
  }
  json.EndArray();

  // Off-arm byte-identity: use_summary=false on a synopsis-carrying
  // database behaves exactly like a database that never built one. Both
  // fixtures are fresh (cold starts keep the disk-head position, so the
  // two sides must see identical run histories).
  FixtureOptions no_summary;
  no_summary.db.import.build_summary = false;
  auto with = XMarkFixture::Create(sf);
  auto bare = XMarkFixture::Create(sf, no_summary);
  with.status().AbortIfNotOk();
  bare.status().AbortIfNotOk();
  bool identical = true;
  for (const Case& c : cases) {
    auto off = RunArm(with->get(), c.query, c.kind, false);
    auto none = RunArm(bare->get(), c.query, c.kind, true);
    off.status().AbortIfNotOk();
    none.status().AbortIfNotOk();
    identical &= std::tie(off->count, off->clusters, off->disk_reads,
                          off->seconds) ==
                 std::tie(none->count, none->clusters, none->disk_reads,
                          none->seconds);
  }
  json.Key("off_arm_identical").Value(identical);
  json.EndObject();
  if (!identical) {
    std::fprintf(stderr, "summary-off arm diverges from a synopsis-free "
                 "database\n");
    ok = false;
  }

  // Splice the section into the trajectory workload_throughput writes;
  // stand alone when it has not run yet.
  const std::string path = BenchTrajectoryPath("BENCH_workload.json");
  std::string doc;
  if (auto existing = ReadTextFile(path); existing.ok()) {
    doc = *std::move(existing);
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    if (const std::size_t at = doc.find(",\"summary\":");
        at != std::string::npos) {
      doc.resize(at);
      doc += "}";
    }
  }
  if (!doc.empty() && doc.back() == '}') {
    doc.pop_back();
    doc += ",\"summary\":" + json.str() + "}\n";
  } else {
    doc = "{\"bench\":\"workload_summary\",\"schema_version\":1,"
          "\"summary\":" + json.str() + "}\n";
  }
  const Status wrote = WriteTextFile(path, doc);
  if (!wrote.ok()) {
    std::fprintf(stderr, "trajectory: %s\n", wrote.ToString().c_str());
    ok = false;
  } else {
    std::printf("wrote %s (summary section)\n", path.c_str());
  }

  std::printf("workload summary: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
