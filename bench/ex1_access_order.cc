// Example 1 (Fig. 1): the motivating observation. A naive navigational
// evaluation touches disk pages in logical (document) order, which on a
// fragmented layout means random head movement, while the reordering
// I/O operator turns the same page set into (mostly) ascending sweeps.
//
// Prints the first page accesses of Simple vs XSchedule for Q6' and the
// resulting seek totals.
#include <cstdio>
#include <vector>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  std::printf("Example 1 reproduction — physical access order, query %s\n",
              kQ6Prime);
  FixtureOptions options;
  options.db.import.fragmentation = 0.5;  // an aged layout
  auto fixture = XMarkFixture::Create(0.1, options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  for (const PlanKind kind : {PlanKind::kSimple, PlanKind::kXSchedule}) {
    std::vector<PageId> trace;
    (*fixture)->db()->disk()->SetTrace(&trace);
    auto result = (*fixture)->Run(kQ6Prime, PaperPlan(kind));
    (*fixture)->db()->disk()->SetTrace(nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::uint64_t backward = 0, jumps = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      if (trace[i] < trace[i - 1]) {
        ++backward;
      } else if (trace[i] > trace[i - 1] + 1) {
        ++jumps;
      }
    }
    std::printf("\n%s: %zu page accesses, first 24:\n  ", PlanKindName(kind),
                trace.size());
    for (std::size_t i = 0; i < trace.size() && i < 24; ++i) {
      std::printf("%u ", trace[i]);
    }
    std::printf(
        "\n  backward moves: %llu, forward jumps: %llu, total seek "
        "distance: %llu pages, total time %.2fs\n",
        static_cast<unsigned long long>(backward),
        static_cast<unsigned long long>(jumps),
        static_cast<unsigned long long>(result->metrics.disk_seek_pages),
        result->total_seconds());
  }
  return 0;
}
