// Extension: document export (paper Sec. 7 outlook). Compares the
// navigational exporter (logical-order traversal, random I/O on a
// fragmented layout) against the scan-based exporter, whose partial
// document instances are assembled from one sequential pass.
#include <cstdio>

#include "benchlib/experiments.h"
#include "store/export.h"
#include "store/scan_export.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.05 : 0.25;
  std::printf("Extension — document export at scale %.2f\n", sf);
  FixtureOptions options;
  options.db.import.fragmentation = 0.5;  // aged layout
  auto fixture = XMarkFixture::Create(sf, options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  Database* db = (*fixture)->db();

  PrintTableHeader("full-document export",
                   {"exporter", "total[s]", "CPU[s]", "reads", "seq",
                    "bytes"});

  if (!db->ResetMeasurement().ok()) return 1;
  auto navigational = ExportDocument(db, (*fixture)->doc());
  navigational.status().AbortIfNotOk();
  PrintTableRow({"navigational",
                 FormatSeconds(SimClock::ToSeconds(db->clock()->now())),
                 FormatSeconds(SimClock::ToSeconds(db->clock()->cpu_time())),
                 std::to_string(db->metrics()->disk_reads),
                 std::to_string(db->metrics()->disk_seq_reads),
                 std::to_string(navigational->size())});

  if (!db->ResetMeasurement().ok()) return 1;
  auto scanned = ScanExportDocument(db, (*fixture)->doc());
  scanned.status().AbortIfNotOk();
  PrintTableRow({"scan+stitch",
                 FormatSeconds(SimClock::ToSeconds(db->clock()->now())),
                 FormatSeconds(SimClock::ToSeconds(db->clock()->cpu_time())),
                 std::to_string(db->metrics()->disk_reads),
                 std::to_string(db->metrics()->disk_seq_reads),
                 std::to_string(scanned->size())});

  if (*navigational != *scanned) {
    std::fprintf(stderr, "MISMATCH between exporters\n");
    return 1;
  }
  std::printf("\noutputs byte-identical: yes\n");
  return 0;
}
