// Mixed read/write workload under MVCC snapshots: scan queries keep
// running while auction-bid style insert transactions arrive at a fixed
// seeded rate, each reader pinned to the version current at its
// activation.
//
// Three arms over one XMark fixture (scale 0.10):
//   baseline    — the pre-MVCC executor (WorkloadOptions.txn unset),
//   zero-writer — the same reader stream with the transaction layer on
//                 but no writers submitted,
//   mixed       — the same readers plus writer transactions inserting
//                 <xbid> elements under the document root.
//
// Reports reader p50/p95/p99 turnaround per arm, writer commit
// throughput, and version-reclamation counters. Exits nonzero when:
//   - the zero-writer arm is not byte-identical to the baseline (pull
//     schedule, makespan, per-query counts and finish times) — an idle
//     transaction layer must be free,
//   - the mixed arm's reader p95 turnaround exceeds 1.5x the read-only
//     baseline,
//   - any reader observes a partially committed mutation: every <xbid>
//     probe must count exactly ops_per_writer nodes per commit at or
//     below its snapshot sequence,
//   - any writer fails to commit, or retired versions remain
//     unreclaimed after the workload drains.
//
// A fourth section sweeps writer concurrency: W ∈ {1, 2, 4}
// group-committing writers, each touching its own widely-separated run
// of parents (page-disjoint write sets — low conflict), head the
// reader stream, admitted optimistically (max_writers = W)
// and, for W = 4, once more fully serialized (max_writers = 1). Commit
// throughput is commits over the arm's makespan; the bench exits
// nonzero when serialized admission matches or beats optimistic at
// W = 4 — at low conflict, optimistic concurrency must win, because
// writer admission is head-of-line: a serialized writer queue holds
// every job behind it out of the system, so the whole mixed workload
// runs writer phase then reader phase back to back, while optimistic
// admission overlaps the readers' pooled I/O with the writers'
// synchronous copy-on-write fixes.
//
// Appends a "mixed" section to the BENCH_workload.json trajectory
// (written by workload_throughput; schema note in DESIGN.md).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "common/random.h"
#include "compiler/workload_executor.h"
#include "store/cross_cursor.h"
#include "txn/txn.h"

namespace {

using namespace navpath;

constexpr double kScale = 0.10;
constexpr std::size_t kReaders = 24;
constexpr std::size_t kWriters = 6;
constexpr std::size_t kOpsPerWriter = 2;
constexpr std::uint64_t kSeed = 20260808;

// Writer-concurrency sweep: writer count, ops per transaction (applied
// in group-commit batches, each op under a different cold parent page so
// writer service time is real I/O), the batch size, and the reader
// stream the writers head.
constexpr std::size_t kSweepOps = 24;
constexpr std::size_t kSweepBatch = 6;
constexpr std::size_t kSweepReaders = 10;

// Scan queries running while the writers commit; the //xbid probes are
// the consistency oracle (they count exactly what the writers insert).
constexpr const char* kMix[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site//keyword",
    "/site/open_auctions//bidder",
    "//xbid",
};
constexpr std::size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  auto index = static_cast<std::size_t>(q * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

WorkloadOptions MixedConfig(const DocumentStats* stats) {
  WorkloadOptions options;
  options.policy = WorkloadPolicy::kHybrid;
  options.stats = stats;
  options.summary = false;
  options.priority_io = true;
  options.max_concurrent = 4;
  return options;
}

struct ReaderArm {
  std::vector<std::size_t> schedule;   // on_pull trace (job ids)
  std::vector<WorkloadQueryResult> queries;
  SimTime total_time = 0;
  std::vector<double> reader_turnarounds;  // seconds, readers only
};

void CollectReaderStats(const WorkloadResult& run, ReaderArm* arm) {
  arm->queries = run.queries;
  arm->total_time = run.total_time;
  for (const WorkloadQueryResult& q : run.queries) {
    if (q.is_write || !q.status.ok()) continue;
    arm->reader_turnarounds.push_back(q.turnaround_seconds());
  }
}

}  // namespace

int main() {
  std::printf(
      "Mixed read/write workload — scale %.2f, %zu readers, %zu writers "
      "x %zu inserts\n",
      kScale, kReaders, kWriters, kOpsPerWriter);
  // Every arm (and the capacity probe) runs on its own freshly created
  // fixture: the simulated drive's head position survives a run, so two
  // runs on one database start from different device states and their
  // schedules drift apart even when logically identical. XMark
  // generation and import are seeded, so fresh fixtures are identical.
  const auto fresh_fixture = [&] {
    auto fixture = XMarkFixture::Create(kScale);
    fixture.status().AbortIfNotOk();
    return std::move(*fixture);
  };

  // One seeded exponential arrival stream for the readers; writers land
  // evenly spaced across the same span. Measure the sustainable
  // completion interval first so the arrival rate tracks capacity.
  SimTime mean_service = 0;
  {
    auto fixture = fresh_fixture();
    WorkloadExecutor closed(fixture->db(), fixture->doc(),
                            MixedConfig(&fixture->stats()));
    for (std::size_t i = 0; i < 2 * kMixSize; ++i) {
      closed.Add(kMix[i % kMixSize], PaperPlan(PlanKind::kXSchedule))
          .AbortIfNotOk();
    }
    auto run = closed.Run();
    run.status().AbortIfNotOk();
    mean_service = run->total_time / (2 * kMixSize);
  }
  std::vector<SimTime> reader_at(kReaders);
  {
    Random rng(kSeed);
    const double mean_gap = static_cast<double>(mean_service) / 0.6;
    double at = 0.0;
    for (std::size_t i = 0; i < kReaders; ++i) {
      double u = rng.NextDouble();
      if (u <= 0.0) u = 1e-12;
      at += -mean_gap * std::log(u);
      reader_at[i] = static_cast<SimTime>(at);
    }
  }
  const SimTime span = reader_at.back();
  std::vector<SimTime> writer_at(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writer_at[w] = span * (w + 1) / (kWriters + 1);
  }

  const auto add_readers = [&](WorkloadExecutor* executor) {
    for (std::size_t i = 0; i < kReaders; ++i) {
      executor
          ->Add(kMix[i % kMixSize], PaperPlan(PlanKind::kXSchedule),
                reader_at[i])
          .AbortIfNotOk();
    }
  };

  bool ok = true;

  // --- Arm 1: read-only baseline (no transaction layer). -----------------
  ReaderArm baseline;
  {
    auto fixture = fresh_fixture();
    WorkloadOptions options = MixedConfig(&fixture->stats());
    options.on_pull = [&](std::size_t job, std::size_t) {
      baseline.schedule.push_back(job);
    };
    WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
    add_readers(&executor);
    auto run = executor.Run();
    run.status().AbortIfNotOk();
    CollectReaderStats(*run, &baseline);
  }

  // --- Arm 2: transaction layer on, zero writers. -------------------------
  // Must be byte-identical: the genesis snapshot translates nothing and
  // snapshot acquisition is host-side bookkeeping.
  ReaderArm zero_writer;
  {
    auto fixture = fresh_fixture();
    TxnManager mgr(fixture->db(), fixture->mutable_doc());
    WorkloadOptions options = MixedConfig(&fixture->stats());
    options.txn = &mgr;
    options.on_pull = [&](std::size_t job, std::size_t) {
      zero_writer.schedule.push_back(job);
    };
    WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
    add_readers(&executor);
    auto run = executor.Run();
    run.status().AbortIfNotOk();
    CollectReaderStats(*run, &zero_writer);
  }
  bool identical = baseline.schedule == zero_writer.schedule &&
                   baseline.total_time == zero_writer.total_time &&
                   baseline.queries.size() == zero_writer.queries.size();
  if (identical) {
    for (std::size_t i = 0; i < baseline.queries.size(); ++i) {
      if (baseline.queries[i].count != zero_writer.queries[i].count ||
          baseline.queries[i].finished_at !=
              zero_writer.queries[i].finished_at) {
        identical = false;
        break;
      }
    }
  }
  if (!identical) {
    std::fprintf(stderr,
                 "zero-writer arm deviates from the read-only baseline: "
                 "pulls %zu vs %zu, makespan %llu vs %llu\n",
                 baseline.schedule.size(), zero_writer.schedule.size(),
                 static_cast<unsigned long long>(baseline.total_time),
                 static_cast<unsigned long long>(zero_writer.total_time));
    for (std::size_t i = 0;
         i < std::min(baseline.schedule.size(), zero_writer.schedule.size());
         ++i) {
      if (baseline.schedule[i] != zero_writer.schedule[i]) {
        std::fprintf(stderr, "  first pull divergence at %zu: job %zu vs %zu\n",
                     i, baseline.schedule[i], zero_writer.schedule[i]);
        break;
      }
    }
    for (std::size_t i = 0; i < std::min(baseline.queries.size(),
                                         zero_writer.queries.size());
         ++i) {
      const WorkloadQueryResult& a = baseline.queries[i];
      const WorkloadQueryResult& b = zero_writer.queries[i];
      if (a.count != b.count || a.finished_at != b.finished_at ||
          a.pulls != b.pulls) {
        std::fprintf(stderr,
                     "  query %zu: count %llu vs %llu, pulls %llu vs %llu, "
                     "finished %llu vs %llu\n",
                     i, static_cast<unsigned long long>(a.count),
                     static_cast<unsigned long long>(b.count),
                     static_cast<unsigned long long>(a.pulls),
                     static_cast<unsigned long long>(b.pulls),
                     static_cast<unsigned long long>(a.finished_at),
                     static_cast<unsigned long long>(b.finished_at));
      }
    }
    ok = false;
  }

  // --- Arm 3: readers plus writer transactions. ---------------------------
  ReaderArm mixed;
  std::uint64_t writer_commits = 0;
  std::uint64_t versions_retired = 0;
  std::uint64_t versions_reclaimed = 0;
  std::size_t retired_pending = 0;
  bool consistent = true;
  {
    auto fixture = fresh_fixture();
    const TagId xbid = fixture->db()->tags()->Intern("xbid");
    TxnManager mgr(fixture->db(), fixture->mutable_doc());
    WorkloadOptions options = MixedConfig(&fixture->stats());
    options.txn = &mgr;
    options.on_pull = [&](std::size_t job, std::size_t) {
      mixed.schedule.push_back(job);
    };
    WorkloadExecutor executor(fixture->db(), fixture->doc(), options);
    const auto make_ops = [&] {
      std::vector<WriteOp> ops(kOpsPerWriter);
      for (WriteOp& op : ops) {
        op.parent = fixture->doc().root;
        op.tag = xbid;
        op.text = "mixed";
      }
      return ops;
    };
    // Merge readers and writers into one nondecreasing arrival stream.
    std::size_t r = 0;
    std::size_t w = 0;
    while (r < kReaders || w < kWriters) {
      if (w >= kWriters || (r < kReaders && reader_at[r] <= writer_at[w])) {
        executor
            .Add(kMix[r % kMixSize], PaperPlan(PlanKind::kXSchedule),
                 reader_at[r])
            .AbortIfNotOk();
        ++r;
      } else {
        executor.AddWrite(make_ops(), writer_at[w]).AbortIfNotOk();
        ++w;
      }
    }
    auto run = executor.Run();
    run.status().AbortIfNotOk();
    CollectReaderStats(*run, &mixed);
    writer_commits = mgr.commits();
    versions_retired = mgr.versions_retired();
    versions_reclaimed = mgr.versions_reclaimed();
    retired_pending = mgr.retired_pending();

    std::size_t reader_index = 0;
    for (const WorkloadQueryResult& q : run->queries) {
      if (q.is_write) {
        if (q.commit_seq == 0) {
          std::fprintf(stderr, "writer failed to commit: %s\n",
                       q.status.ToString().c_str());
          ok = false;
        }
        continue;
      }
      // Each commit at or below the reader's snapshot adds exactly
      // kOpsPerWriter <xbid> nodes; a partially applied transaction or a
      // reader drifting off its snapshot breaks this equality.
      if (std::string(kMix[reader_index % kMixSize]) == "//xbid") {
        const std::uint64_t expected = q.snapshot_seq * kOpsPerWriter;
        if (q.count != expected) {
          std::fprintf(stderr,
                       "//xbid probe at snapshot %llu counted %llu, "
                       "expected %llu\n",
                       static_cast<unsigned long long>(q.snapshot_seq),
                       static_cast<unsigned long long>(q.count),
                       static_cast<unsigned long long>(expected));
          consistent = false;
        }
      }
      ++reader_index;
    }
  }
  if (!consistent) ok = false;
  if (writer_commits != kWriters) {
    std::fprintf(stderr, "committed %llu of %zu writers\n",
                 static_cast<unsigned long long>(writer_commits), kWriters);
    ok = false;
  }
  if (retired_pending != 0 || versions_reclaimed != versions_retired) {
    std::fprintf(stderr,
                 "reclamation did not drain: %zu pending, %llu/%llu "
                 "reclaimed\n",
                 retired_pending,
                 static_cast<unsigned long long>(versions_reclaimed),
                 static_cast<unsigned long long>(versions_retired));
    ok = false;
  }

  // --- Writer-concurrency sweep: optimistic vs serialized admission. ------
  struct SweepArm {
    std::size_t writers = 0;
    bool serialized = false;
    std::uint64_t commits = 0;
    std::uint64_t conflict_aborts = 0;
    double abort_rate = 0.0;
    double last_commit_seconds = 0.0;
    double makespan_seconds = 0.0;
    double commit_throughput = 0.0;  // commits per simulated second
  };
  const auto sweep_arm = [&](std::size_t writers, bool serialized) {
    SweepArm arm;
    arm.writers = writers;
    arm.serialized = serialized;
    auto fixture = fresh_fixture();
    const TagId xbid = fixture->db()->tags()->Intern("xbid");

    // Parent pool: the root's non-leaf grandchildren (persons, items,
    // auctions, ...) in document order. Writer w draws its kSweepOps
    // parents from the w-th quarter of the pool with a stride, so each
    // transaction touches many distinct cold pages (real service time)
    // while the writers' page sets stay pairwise disjoint (low
    // conflict). Leaf grandchildren are excluded: prepending under a
    // leaf walks forward to the next document-order key, a read
    // dependency that can cross into a neighboring writer's quarter and
    // manufacture conflicts the workload does not intend.
    std::vector<NodeID> pool;
    {
      CrossClusterCursor outer(fixture->db());
      outer.Start(Axis::kChild, fixture->doc().root).AbortIfNotOk();
      LogicalNode child;
      for (;;) {
        auto more = outer.Next(&child);
        more.status().AbortIfNotOk();
        if (!*more) break;
        CrossClusterCursor inner(fixture->db());
        inner.Start(Axis::kChild, child.id).AbortIfNotOk();
        LogicalNode grandchild;
        for (;;) {
          auto deeper = inner.Next(&grandchild);
          deeper.status().AbortIfNotOk();
          if (!*deeper) break;
          CrossClusterCursor probe(fixture->db());
          probe.Start(Axis::kChild, grandchild.id).AbortIfNotOk();
          LogicalNode great;
          auto has_child = probe.Next(&great);
          has_child.status().AbortIfNotOk();
          if (*has_child) pool.push_back(grandchild.id);
        }
      }
    }
    if (pool.empty()) pool.push_back(fixture->doc().root);

    TxnManager mgr(fixture->db(), fixture->mutable_doc());
    WorkloadOptions options = MixedConfig(&fixture->stats());
    options.txn = &mgr;
    options.max_concurrent = 0;  // admission limited by writer policy only
    options.max_writers = serialized ? 1 : writers;
    options.writer_batch = kSweepBatch;  // group commit: kSweepOps/kSweepBatch
                                         // apply pulls plus one commit pull
    WorkloadExecutor executor(fixture->db(), fixture->doc(), options);

    // The writers head the closed workload, the reader stream queues
    // behind them. Admission is in-order and head-of-line: under
    // serialized admission writer w+1 — and every reader behind it —
    // stays out of the system until writer w commits, so the arm
    // degenerates into a solo writer phase followed by the reader phase.
    // Optimistic admission admits writers and readers together, and the
    // readers' pooled asynchronous reads complete during the clock time
    // the writers' synchronous fixes were paying for anyway.
    const std::size_t quarter = std::max<std::size_t>(1, pool.size() / 4);
    const std::size_t stride = std::max<std::size_t>(1, quarter / kSweepOps);
    for (std::size_t w = 0; w < writers; ++w) {
      std::vector<WriteOp> ops(kSweepOps);
      for (std::size_t j = 0; j < kSweepOps; ++j) {
        ops[j].parent =
            pool[((w % 4) * quarter + j * stride) % pool.size()];
        ops[j].tag = xbid;
        ops[j].text = "sweep";
      }
      executor.AddWrite(std::move(ops), 0).AbortIfNotOk();
    }
    for (std::size_t i = 0; i < kSweepReaders; ++i) {
      executor.Add(kMix[i % kMixSize], PaperPlan(PlanKind::kXSchedule), 0)
          .AbortIfNotOk();
    }
    auto run = executor.Run();
    run.status().AbortIfNotOk();

    SimTime last_commit = 0;
    for (const WorkloadQueryResult& q : run->queries) {
      if (!q.is_write) continue;
      if (!q.status.ok() || q.commit_seq == 0) {
        std::fprintf(stderr, "sweep W=%zu %s: writer failed: %s\n", writers,
                     serialized ? "serialized" : "optimistic",
                     q.status.ToString().c_str());
        ok = false;
        continue;
      }
      arm.conflict_aborts += q.aborts;
      last_commit = std::max(last_commit, q.finished_at);
    }
    arm.commits = mgr.commits();
    if (arm.commits != writers) ok = false;
    const std::uint64_t attempts = arm.commits + arm.conflict_aborts;
    arm.abort_rate = attempts > 0 ? static_cast<double>(arm.conflict_aborts) /
                                        static_cast<double>(attempts)
                                  : 0.0;
    arm.last_commit_seconds = SimClock::ToSeconds(last_commit);
    arm.makespan_seconds = SimClock::ToSeconds(run->total_time);
    // System commit throughput: commits delivered per second of total
    // serving time for the whole mixed workload. Serialized admission
    // runs the writer queue and the blocked reader stream back to back,
    // stretching the makespan by the writers' solo service time;
    // optimistic admission overlaps the two, same commits over a
    // shorter span.
    arm.commit_throughput =
        arm.makespan_seconds > 0.0
            ? static_cast<double>(arm.commits) / arm.makespan_seconds
            : 0.0;
    return arm;
  };
  std::vector<SweepArm> sweep;
  sweep.push_back(sweep_arm(1, false));
  sweep.push_back(sweep_arm(2, false));
  sweep.push_back(sweep_arm(4, false));
  sweep.push_back(sweep_arm(4, true));
  const SweepArm& opt4 = sweep[2];
  const SweepArm& ser4 = sweep[3];
  if (opt4.commit_throughput <= ser4.commit_throughput) {
    std::fprintf(stderr,
                 "optimistic W=4 commit throughput %.3f/s does not beat "
                 "serialized %.3f/s (abort rates %.2f vs %.2f)\n",
                 opt4.commit_throughput, ser4.commit_throughput,
                 opt4.abort_rate, ser4.abort_rate);
    ok = false;
  }

  const double base_p50 = Percentile(baseline.reader_turnarounds, 0.50);
  const double base_p95 = Percentile(baseline.reader_turnarounds, 0.95);
  const double base_p99 = Percentile(baseline.reader_turnarounds, 0.99);
  const double mixed_p50 = Percentile(mixed.reader_turnarounds, 0.50);
  const double mixed_p95 = Percentile(mixed.reader_turnarounds, 0.95);
  const double mixed_p99 = Percentile(mixed.reader_turnarounds, 0.99);
  const double p95_ratio = base_p95 > 0.0 ? mixed_p95 / base_p95 : 0.0;
  const double mixed_seconds = SimClock::ToSeconds(mixed.total_time);
  const double commit_throughput =
      mixed_seconds > 0.0 ? static_cast<double>(writer_commits) / mixed_seconds
                          : 0.0;
  if (p95_ratio > 1.5) {
    std::fprintf(stderr,
                 "mixed reader p95 %.3fs is %.2fx the baseline %.3fs "
                 "(bound 1.5x)\n",
                 mixed_p95, p95_ratio, base_p95);
    ok = false;
  }

  PrintTableHeader("Reader turnaround by arm (writers riding along)",
                   {"arm", "readers", "p50[s]", "p95[s]", "p99[s]"});
  PrintTableRow({"baseline", std::to_string(baseline.reader_turnarounds.size()),
                 FormatSeconds(base_p50), FormatSeconds(base_p95),
                 FormatSeconds(base_p99)});
  PrintTableRow({"zero-writer",
                 std::to_string(zero_writer.reader_turnarounds.size()),
                 FormatSeconds(Percentile(zero_writer.reader_turnarounds, 0.50)),
                 FormatSeconds(Percentile(zero_writer.reader_turnarounds, 0.95)),
                 FormatSeconds(
                     Percentile(zero_writer.reader_turnarounds, 0.99))});
  PrintTableRow({"mixed", std::to_string(mixed.reader_turnarounds.size()),
                 FormatSeconds(mixed_p50), FormatSeconds(mixed_p95),
                 FormatSeconds(mixed_p99)});
  PrintTableHeader("Writer-concurrency sweep (group commit, low conflict)",
                   {"arm", "commits", "tp[1/s]", "abort%", "last[s]",
                    "makespan[s]"});
  for (const SweepArm& arm : sweep) {
    char tp[32], rate[32];
    std::snprintf(tp, sizeof tp, "%.3f", arm.commit_throughput);
    std::snprintf(rate, sizeof rate, "%.1f", 100.0 * arm.abort_rate);
    PrintTableRow({"W=" + std::to_string(arm.writers) +
                       (arm.serialized ? " serial" : " optim"),
                   std::to_string(arm.commits), tp, rate,
                   FormatSeconds(static_cast<double>(
                       arm.last_commit_seconds)),
                   FormatSeconds(arm.makespan_seconds)});
  }
  std::printf(
      "zero-writer arm byte-identical: %s; reader p95 ratio %.2fx; "
      "%llu commits (%.2f/s); versions retired %llu, reclaimed %llu\n",
      identical ? "yes" : "NO", p95_ratio,
      static_cast<unsigned long long>(writer_commits), commit_throughput,
      static_cast<unsigned long long>(versions_retired),
      static_cast<unsigned long long>(versions_reclaimed));

  JsonWriter json;
  json.BeginObject();
  json.Key("scale_factor").Value(kScale);
  json.Key("seed").Value(kSeed);
  json.Key("readers").Value(static_cast<std::uint64_t>(kReaders));
  json.Key("writers").Value(static_cast<std::uint64_t>(kWriters));
  json.Key("ops_per_writer").Value(static_cast<std::uint64_t>(kOpsPerWriter));
  json.Key("zero_writer_identical").Value(identical);
  json.Key("consistency_ok").Value(consistent);
  json.Key("baseline").BeginObject();
  json.Key("p50_seconds").Value(base_p50);
  json.Key("p95_seconds").Value(base_p95);
  json.Key("p99_seconds").Value(base_p99);
  json.Key("makespan_seconds").Value(SimClock::ToSeconds(baseline.total_time));
  json.EndObject();
  json.Key("mixed").BeginObject();
  json.Key("p50_seconds").Value(mixed_p50);
  json.Key("p95_seconds").Value(mixed_p95);
  json.Key("p99_seconds").Value(mixed_p99);
  json.Key("p95_ratio").Value(p95_ratio);
  json.Key("makespan_seconds").Value(mixed_seconds);
  json.Key("writer_commits").Value(writer_commits);
  json.Key("commit_throughput_per_second").Value(commit_throughput);
  json.Key("versions_retired").Value(versions_retired);
  json.Key("versions_reclaimed").Value(versions_reclaimed);
  json.Key("writer_sweep").BeginArray();
  for (const SweepArm& arm : sweep) {
    json.BeginObject();
    json.Key("writers").Value(static_cast<std::uint64_t>(arm.writers));
    json.Key("admission").Value(arm.serialized ? "serialized" : "optimistic");
    json.Key("ops_per_writer").Value(static_cast<std::uint64_t>(kSweepOps));
    json.Key("commits").Value(arm.commits);
    json.Key("conflict_aborts").Value(arm.conflict_aborts);
    json.Key("abort_rate").Value(arm.abort_rate);
    json.Key("commit_throughput_per_second").Value(arm.commit_throughput);
    json.Key("last_commit_seconds").Value(arm.last_commit_seconds);
    json.Key("makespan_seconds").Value(arm.makespan_seconds);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.EndObject();

  // Splice the section into the trajectory workload_throughput writes;
  // stand alone when it has not run yet.
  const std::string path = BenchTrajectoryPath("BENCH_workload.json");
  std::string doc;
  if (auto existing = ReadTextFile(path); existing.ok()) {
    doc = *std::move(existing);
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    if (const std::size_t at = doc.find(",\"mixed\":");
        at != std::string::npos) {
      doc.resize(at);
      doc += "}";
    }
  }
  if (!doc.empty() && doc.back() == '}') {
    doc.pop_back();
    doc += ",\"mixed\":" + json.str() + "}\n";
  } else {
    doc = "{\"bench\":\"workload_mixed\",\"schema_version\":1,\"mixed\":" +
          json.str() + "}\n";
  }
  const Status wrote = WriteTextFile(path, doc);
  if (!wrote.ok()) {
    std::fprintf(stderr, "trajectory: %s\n", wrote.ToString().c_str());
    ok = false;
  } else {
    std::printf("wrote %s (mixed section)\n", path.c_str());
  }

  std::printf("workload mixed: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
