// Ablation: physical layout fragmentation (paper Sec. 1: "a document
// import algorithm might regroup nodes ... and incremental updates may
// fragment the physical layout").
//
// The Simple plan's cost tracks fragmentation almost linearly (its access
// order is the logical order); XSchedule's elevator absorbs most of it;
// XScan is immune (a physical scan is sequential whatever the logical
// placement).
#include <cstdio>

#include "benchlib/experiments.h"

int main() {
  using namespace navpath;
  const double sf = FastBenchMode() ? 0.1 : 0.25;
  std::printf("Ablation — layout fragmentation, Q6' at scale %.2f\n", sf);
  PrintTableHeader("Q6' total time vs fragmentation",
                   {"fragmentation", "Simple[s]", "XSchedule[s]",
                    "XScan[s]"});
  for (const double frag : {0.0, 0.15, 0.35, 0.6, 1.0}) {
    FixtureOptions options;
    options.db.import.fragmentation = frag;
    auto fixture = XMarkFixture::Create(sf, options);
    if (!fixture.ok()) {
      std::fprintf(stderr, "FAILED: %s\n",
                   fixture.status().ToString().c_str());
      return 1;
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f", frag);
    std::vector<std::string> row{buf};
    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      auto result = (*fixture)->Run(kQ6Prime, PaperPlan(kind));
      if (!result.ok()) {
        std::fprintf(stderr, "FAILED: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      row.push_back(FormatSeconds(result->total_seconds()));
    }
    PrintTableRow(row);
  }
  return 0;
}
