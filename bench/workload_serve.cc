// Always-on serving layer under a Poisson open system: two tenant
// classes (gold, weight 4, with a turnaround deadline; bronze, weight 1)
// submit the paper's query mix through the admission front-end at
// {0.5x, 1x, 2x} of the measured service capacity.
//
// Reports p50/p95/p99 turnaround, shed rate, and degrade rate per tenant
// class at each load point. Exits nonzero when:
//   - the 0.5x run sheds or degrades anything, or its pull schedule and
//     makespan deviate from a serving-layer-off executor run given the
//     same arrivals (the underloaded serving layer must be transparent),
//   - the 2x run fails to shed or degrade (overload must trigger explicit
//     responses, not unbounded queueing),
//   - the 2x run's gold p99 turnaround exceeds the structural bound from
//     its bounded queue: (queue capacity + concurrency + 1) admitted
//     queries ahead, each at most twice the slowest solo service time.
//
// Appends a "serve" section to the BENCH_workload.json trajectory
// (written by workload_throughput; schema note in DESIGN.md).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "common/random.h"
#include "serve/server.h"

namespace {

using namespace navpath;

constexpr double kScale = 0.05;
constexpr std::size_t kArrivals = 36;
constexpr std::uint64_t kSeed = 20260808;

constexpr const char* kMix[] = {
    "/site/regions//item",
    "/site/people/person/email",
    "/site//keyword",
    "/site/open_auctions//bidder",
};
constexpr std::size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);

struct TenantStats {
  std::size_t submitted = 0;
  std::size_t shed = 0;
  std::size_t degraded = 0;
  std::vector<double> turnaround_seconds;  // completed queries only
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  auto index = static_cast<std::size_t>(q * n);
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

ServeOptions ServeConfig(const DocumentStats* stats, SimTime gold_slack) {
  ServeOptions options;
  options.tenants.resize(2);
  options.tenants[0].name = "gold";
  options.tenants[0].queue_capacity = 12;
  options.tenants[0].weight = 4.0;
  options.tenants[0].deadline_slack = gold_slack;
  options.tenants[1].name = "bronze";
  options.tenants[1].queue_capacity = 6;
  options.tenants[1].weight = 1.0;
  options.workload.policy = WorkloadPolicy::kHybrid;
  options.workload.stats = stats;
  // Longitudinal trajectory: DRR charging from DocumentStats estimates.
  options.workload.summary = false;
  options.workload.priority_io = true;
  options.workload.max_concurrent = 4;
  options.degrade_queue_depth = 4;
  options.shed_queue_depth = 10;
  options.recover_below = 1;
  options.recover_hold = 3;
  return options;
}

struct ArrivalPlan {
  std::size_t tenant;
  std::string query;
  SimTime at;
};

/// A merged Poisson arrival stream at `load` times capacity: exponential
/// interarrivals with mean service_time / load, tenants alternating.
std::vector<ArrivalPlan> PoissonArrivals(double load, SimTime mean_service) {
  Random rng(kSeed);
  std::vector<ArrivalPlan> plan;
  const double mean_gap = static_cast<double>(mean_service) / load;
  double at = 0.0;
  for (std::size_t i = 0; i < kArrivals; ++i) {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-12;
    at += -mean_gap * std::log(u);
    plan.push_back({i % 2, kMix[i % kMixSize], static_cast<SimTime>(at)});
  }
  return plan;
}

}  // namespace

int main() {
  std::printf("Serving layer — Poisson sweep at scale %.2f, %zu arrivals\n",
              kScale, kArrivals);
  auto fixture = XMarkFixture::Create(kScale);
  if (!fixture.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  XMarkFixture* fx = fixture->get();

  // Capacity measurement. max_service (slowest solo query, cold buffer)
  // feeds the structural p99 bound; the sustainable completion interval
  // comes from a closed concurrent run of the mix under the serving
  // configuration, since the executor overlaps I/O across
  // max_concurrent queries and its capacity is far above one stream's.
  SimTime max_service = 0;
  for (const char* q : kMix) {
    auto solo = fx->Run(q, PaperPlan(PlanKind::kXSchedule));
    solo.status().AbortIfNotOk();
    max_service = std::max(max_service, solo->total_time);
  }
  SimTime mean_service = 0;
  {
    constexpr std::size_t kClosedQueries = 2 * kMixSize;
    WorkloadExecutor closed(fx->db(), fx->doc(),
                            ServeConfig(&fx->stats(), 0).workload);
    for (std::size_t i = 0; i < kClosedQueries; ++i) {
      closed.Add(kMix[i % kMixSize], PaperPlan(PlanKind::kXSchedule))
          .AbortIfNotOk();
    }
    auto run = closed.Run();
    run.status().AbortIfNotOk();
    mean_service = run->total_time / kClosedQueries;
  }
  std::printf(
      "measured capacity: one completion per %.3fs sustained, slowest "
      "solo query %.3fs\n",
      static_cast<double>(mean_service) / 1e9,
      static_cast<double>(max_service) / 1e9);

  JsonWriter json;
  json.BeginObject();
  json.Key("scale_factor").Value(kScale);
  json.Key("arrivals").Value(static_cast<std::uint64_t>(kArrivals));
  json.Key("seed").Value(kSeed);
  json.Key("mean_service_seconds")
      .Value(static_cast<double>(mean_service) / 1e9);
  json.Key("points").BeginArray();

  PrintTableHeader("Poisson sweep (per-tenant turnaround and responses)",
                   {"load", "tenant", "done", "shed", "degr", "p50[s]",
                    "p95[s]", "p99[s]"});

  bool ok = true;
  for (const double load : {0.5, 1.0, 2.0}) {
    ServeOptions options = ServeConfig(&fx->stats(), 20 * mean_service);
    const std::vector<ArrivalPlan> arrivals =
        PoissonArrivals(load, mean_service);

    std::vector<std::size_t> serve_schedule;
    options.workload.on_pull = [&](std::size_t job, std::size_t) {
      serve_schedule.push_back(job);
    };
    Server server(fx->db(), fx->doc(), options);
    for (const ArrivalPlan& a : arrivals) {
      server.Submit(a.tenant, a.query, PaperPlan(PlanKind::kXSchedule),
                    a.at)
          .AbortIfNotOk();
    }
    auto served = server.Run();
    served.status().AbortIfNotOk();

    TenantStats per_tenant[2];
    for (const ServeOutcome& out : served->outcomes) {
      TenantStats& t = per_tenant[out.tenant];
      ++t.submitted;
      if (out.shed) {
        ++t.shed;
        continue;
      }
      if (out.degraded) ++t.degraded;
      if (out.status.ok()) {
        t.turnaround_seconds.push_back(
            static_cast<double>(out.turnaround()) / 1e9);
      }
    }
    const std::size_t total_shed = per_tenant[0].shed + per_tenant[1].shed;
    const std::size_t total_degraded =
        per_tenant[0].degraded + per_tenant[1].degraded;

    char load_s[8];
    std::snprintf(load_s, sizeof(load_s), "%.1fx", load);
    json.BeginObject();
    json.Key("load").Value(load);
    json.Key("shed").Value(static_cast<std::uint64_t>(total_shed));
    json.Key("degraded").Value(static_cast<std::uint64_t>(total_degraded));
    json.Key("makespan_seconds").Value(served->workload.total_seconds());
    json.Key("priority_jumps")
        .Value(served->workload.metrics.priority_jumps);
    json.Key("tenants").BeginArray();
    for (std::size_t t = 0; t < 2; ++t) {
      const TenantStats& stats = per_tenant[t];
      const double p50 = Percentile(stats.turnaround_seconds, 0.50);
      const double p95 = Percentile(stats.turnaround_seconds, 0.95);
      const double p99 = Percentile(stats.turnaround_seconds, 0.99);
      PrintTableRow({load_s, options.tenants[t].name,
                     std::to_string(stats.turnaround_seconds.size()),
                     std::to_string(stats.shed),
                     std::to_string(stats.degraded), FormatSeconds(p50),
                     FormatSeconds(p95), FormatSeconds(p99)});
      json.BeginObject();
      json.Key("name").Value(options.tenants[t].name);
      json.Key("submitted")
          .Value(static_cast<std::uint64_t>(stats.submitted));
      json.Key("completed")
          .Value(
              static_cast<std::uint64_t>(stats.turnaround_seconds.size()));
      json.Key("shed").Value(static_cast<std::uint64_t>(stats.shed));
      json.Key("degraded")
          .Value(static_cast<std::uint64_t>(stats.degraded));
      json.Key("shed_rate")
          .Value(stats.submitted == 0
                     ? 0.0
                     : static_cast<double>(stats.shed) /
                           static_cast<double>(stats.submitted));
      json.Key("degrade_rate")
          .Value(stats.submitted == 0
                     ? 0.0
                     : static_cast<double>(stats.degraded) /
                           static_cast<double>(stats.submitted));
      json.Key("p50_seconds").Value(p50);
      json.Key("p95_seconds").Value(p95);
      json.Key("p99_seconds").Value(p99);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();

    if (load == 0.5) {
      // Underload gate: nothing shed or degraded, and the serving layer
      // is transparent — byte-identical to a serving-layer-off run.
      if (total_shed != 0 || total_degraded != 0) {
        std::fprintf(stderr,
                     "0.5x: shed %zu degraded %zu (want 0/0)\n",
                     total_shed, total_degraded);
        ok = false;
      }
      std::vector<std::size_t> off_schedule;
      WorkloadOptions off = ServeConfig(&fx->stats(), 0).workload;
      off.on_pull = [&](std::size_t job, std::size_t) {
        off_schedule.push_back(job);
      };
      WorkloadExecutor executor(fx->db(), fx->doc(), off);
      for (const ArrivalPlan& a : arrivals) {
        const SimTime slack = a.tenant == 0 ? 20 * mean_service : 0;
        executor
            .Add(a.query, PaperPlan(PlanKind::kXSchedule), a.at,
                 slack == 0 ? 0 : a.at + slack)
            .AbortIfNotOk();
      }
      auto off_run = executor.Run();
      off_run.status().AbortIfNotOk();
      if (serve_schedule != off_schedule) {
        std::fprintf(stderr,
                     "0.5x: pull schedule deviates from the "
                     "serving-layer-off run\n");
        ok = false;
      }
      if (served->workload.total_time != off_run->total_time) {
        std::fprintf(stderr,
                     "0.5x: makespan %.3fs vs %.3fs serving-layer-off\n",
                     served->workload.total_seconds(),
                     off_run->total_seconds());
        ok = false;
      }
    }
    if (load == 2.0) {
      // Overload gate: explicit responses fired and the gold tenant's
      // p99 stays under the structural bound its bounded queue implies.
      if (total_shed == 0) {
        std::fprintf(stderr, "2x: nothing shed under 2x overload\n");
        ok = false;
      }
      if (total_degraded == 0) {
        std::fprintf(stderr, "2x: nothing degraded under 2x overload\n");
        ok = false;
      }
      const double gold_p99 = Percentile(
          per_tenant[0].turnaround_seconds, 0.99);
      const double bound =
          static_cast<double>(options.tenants[0].queue_capacity +
                              options.workload.max_concurrent + 1) *
          2.0 * static_cast<double>(max_service) / 1e9;
      if (gold_p99 > bound) {
        std::fprintf(stderr,
                     "2x: gold p99 %.3fs exceeds the bounded-queue "
                     "ceiling %.3fs\n",
                     gold_p99, bound);
        ok = false;
      }
    }
  }
  json.EndArray();
  json.EndObject();

  // Splice the section into the trajectory workload_throughput writes;
  // stand alone when it has not run yet.
  const std::string path = BenchTrajectoryPath("BENCH_workload.json");
  std::string doc;
  if (auto existing = ReadTextFile(path); existing.ok()) {
    doc = *std::move(existing);
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == ' ')) {
      doc.pop_back();
    }
    if (const std::size_t at = doc.find(",\"serve\":");
        at != std::string::npos) {
      doc.resize(at);
      doc += "}";
    }
  }
  if (!doc.empty() && doc.back() == '}') {
    doc.pop_back();
    doc += ",\"serve\":" + json.str() + "}\n";
  } else {
    doc = "{\"bench\":\"workload_serve\",\"schema_version\":1,\"serve\":" +
          json.str() + "}\n";
  }
  const Status wrote = WriteTextFile(path, doc);
  if (!wrote.ok()) {
    std::fprintf(stderr, "trajectory: %s\n", wrote.ToString().c_str());
    ok = false;
  } else {
    std::printf("wrote %s (serve section)\n", path.c_str());
  }

  std::printf("workload serve: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
