#!/bin/sh
# Configures and runs the full test suite under ASan+UBSan so the storage
# error/recovery paths (fault injection, retries, corruption handling) are
# exercised with memory and UB checking enabled.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${repo_root}/build-sanitize"

cmake -B "${build_dir}" -S "${repo_root}" -DNAVPATH_SANITIZE=ON
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
