file(REMOVE_RECURSE
  "CMakeFiles/storage_inspector.dir/storage_inspector.cc.o"
  "CMakeFiles/storage_inspector.dir/storage_inspector.cc.o.d"
  "storage_inspector"
  "storage_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
