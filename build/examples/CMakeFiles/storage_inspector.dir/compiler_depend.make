# Empty compiler generated dependencies file for storage_inspector.
# This may be replaced when dependencies are built.
