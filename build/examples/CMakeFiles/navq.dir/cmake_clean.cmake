file(REMOVE_RECURSE
  "CMakeFiles/navq.dir/navq.cc.o"
  "CMakeFiles/navq.dir/navq.cc.o.d"
  "navq"
  "navq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
