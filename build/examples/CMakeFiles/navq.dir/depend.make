# Empty dependencies file for navq.
# This may be replaced when dependencies are built.
