# Empty compiler generated dependencies file for xmark_tour.
# This may be replaced when dependencies are built.
