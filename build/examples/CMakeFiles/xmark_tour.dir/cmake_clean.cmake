file(REMOVE_RECURSE
  "CMakeFiles/xmark_tour.dir/xmark_tour.cc.o"
  "CMakeFiles/xmark_tour.dir/xmark_tour.cc.o.d"
  "xmark_tour"
  "xmark_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
