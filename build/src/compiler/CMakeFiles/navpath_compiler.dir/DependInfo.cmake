
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/cost_model.cc" "src/compiler/CMakeFiles/navpath_compiler.dir/cost_model.cc.o" "gcc" "src/compiler/CMakeFiles/navpath_compiler.dir/cost_model.cc.o.d"
  "/root/repo/src/compiler/executor.cc" "src/compiler/CMakeFiles/navpath_compiler.dir/executor.cc.o" "gcc" "src/compiler/CMakeFiles/navpath_compiler.dir/executor.cc.o.d"
  "/root/repo/src/compiler/plan.cc" "src/compiler/CMakeFiles/navpath_compiler.dir/plan.cc.o" "gcc" "src/compiler/CMakeFiles/navpath_compiler.dir/plan.cc.o.d"
  "/root/repo/src/compiler/shared_scan.cc" "src/compiler/CMakeFiles/navpath_compiler.dir/shared_scan.cc.o" "gcc" "src/compiler/CMakeFiles/navpath_compiler.dir/shared_scan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/navpath_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/navpath_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/navpath_store.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/navpath_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/navpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/navpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
