file(REMOVE_RECURSE
  "libnavpath_compiler.a"
)
