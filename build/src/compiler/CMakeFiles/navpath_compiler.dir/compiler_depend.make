# Empty compiler generated dependencies file for navpath_compiler.
# This may be replaced when dependencies are built.
