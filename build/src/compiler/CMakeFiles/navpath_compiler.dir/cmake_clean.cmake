file(REMOVE_RECURSE
  "CMakeFiles/navpath_compiler.dir/cost_model.cc.o"
  "CMakeFiles/navpath_compiler.dir/cost_model.cc.o.d"
  "CMakeFiles/navpath_compiler.dir/executor.cc.o"
  "CMakeFiles/navpath_compiler.dir/executor.cc.o.d"
  "CMakeFiles/navpath_compiler.dir/plan.cc.o"
  "CMakeFiles/navpath_compiler.dir/plan.cc.o.d"
  "CMakeFiles/navpath_compiler.dir/shared_scan.cc.o"
  "CMakeFiles/navpath_compiler.dir/shared_scan.cc.o.d"
  "libnavpath_compiler.a"
  "libnavpath_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
