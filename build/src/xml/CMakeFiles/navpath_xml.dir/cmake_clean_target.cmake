file(REMOVE_RECURSE
  "libnavpath_xml.a"
)
