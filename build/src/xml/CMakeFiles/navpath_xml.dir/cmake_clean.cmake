file(REMOVE_RECURSE
  "CMakeFiles/navpath_xml.dir/dom.cc.o"
  "CMakeFiles/navpath_xml.dir/dom.cc.o.d"
  "CMakeFiles/navpath_xml.dir/parser.cc.o"
  "CMakeFiles/navpath_xml.dir/parser.cc.o.d"
  "CMakeFiles/navpath_xml.dir/serializer.cc.o"
  "CMakeFiles/navpath_xml.dir/serializer.cc.o.d"
  "libnavpath_xml.a"
  "libnavpath_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
