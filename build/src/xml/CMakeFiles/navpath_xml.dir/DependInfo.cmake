
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/dom.cc" "src/xml/CMakeFiles/navpath_xml.dir/dom.cc.o" "gcc" "src/xml/CMakeFiles/navpath_xml.dir/dom.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/xml/CMakeFiles/navpath_xml.dir/parser.cc.o" "gcc" "src/xml/CMakeFiles/navpath_xml.dir/parser.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/xml/CMakeFiles/navpath_xml.dir/serializer.cc.o" "gcc" "src/xml/CMakeFiles/navpath_xml.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/navpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
