# Empty compiler generated dependencies file for navpath_xml.
# This may be replaced when dependencies are built.
