file(REMOVE_RECURSE
  "libnavpath_store.a"
)
