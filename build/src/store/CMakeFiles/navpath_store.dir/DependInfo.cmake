
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/cluster_view.cc" "src/store/CMakeFiles/navpath_store.dir/cluster_view.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/cluster_view.cc.o.d"
  "/root/repo/src/store/clustering.cc" "src/store/CMakeFiles/navpath_store.dir/clustering.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/clustering.cc.o.d"
  "/root/repo/src/store/cross_cursor.cc" "src/store/CMakeFiles/navpath_store.dir/cross_cursor.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/cross_cursor.cc.o.d"
  "/root/repo/src/store/database.cc" "src/store/CMakeFiles/navpath_store.dir/database.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/database.cc.o.d"
  "/root/repo/src/store/export.cc" "src/store/CMakeFiles/navpath_store.dir/export.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/export.cc.o.d"
  "/root/repo/src/store/import.cc" "src/store/CMakeFiles/navpath_store.dir/import.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/import.cc.o.d"
  "/root/repo/src/store/persistence.cc" "src/store/CMakeFiles/navpath_store.dir/persistence.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/persistence.cc.o.d"
  "/root/repo/src/store/scan_export.cc" "src/store/CMakeFiles/navpath_store.dir/scan_export.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/scan_export.cc.o.d"
  "/root/repo/src/store/tree_page.cc" "src/store/CMakeFiles/navpath_store.dir/tree_page.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/tree_page.cc.o.d"
  "/root/repo/src/store/update.cc" "src/store/CMakeFiles/navpath_store.dir/update.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/update.cc.o.d"
  "/root/repo/src/store/verify.cc" "src/store/CMakeFiles/navpath_store.dir/verify.cc.o" "gcc" "src/store/CMakeFiles/navpath_store.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/navpath_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/navpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/navpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
