file(REMOVE_RECURSE
  "CMakeFiles/navpath_store.dir/cluster_view.cc.o"
  "CMakeFiles/navpath_store.dir/cluster_view.cc.o.d"
  "CMakeFiles/navpath_store.dir/clustering.cc.o"
  "CMakeFiles/navpath_store.dir/clustering.cc.o.d"
  "CMakeFiles/navpath_store.dir/cross_cursor.cc.o"
  "CMakeFiles/navpath_store.dir/cross_cursor.cc.o.d"
  "CMakeFiles/navpath_store.dir/database.cc.o"
  "CMakeFiles/navpath_store.dir/database.cc.o.d"
  "CMakeFiles/navpath_store.dir/export.cc.o"
  "CMakeFiles/navpath_store.dir/export.cc.o.d"
  "CMakeFiles/navpath_store.dir/import.cc.o"
  "CMakeFiles/navpath_store.dir/import.cc.o.d"
  "CMakeFiles/navpath_store.dir/persistence.cc.o"
  "CMakeFiles/navpath_store.dir/persistence.cc.o.d"
  "CMakeFiles/navpath_store.dir/scan_export.cc.o"
  "CMakeFiles/navpath_store.dir/scan_export.cc.o.d"
  "CMakeFiles/navpath_store.dir/tree_page.cc.o"
  "CMakeFiles/navpath_store.dir/tree_page.cc.o.d"
  "CMakeFiles/navpath_store.dir/update.cc.o"
  "CMakeFiles/navpath_store.dir/update.cc.o.d"
  "CMakeFiles/navpath_store.dir/verify.cc.o"
  "CMakeFiles/navpath_store.dir/verify.cc.o.d"
  "libnavpath_store.a"
  "libnavpath_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
