# Empty compiler generated dependencies file for navpath_store.
# This may be replaced when dependencies are built.
