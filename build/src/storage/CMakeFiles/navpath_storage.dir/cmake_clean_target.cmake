file(REMOVE_RECURSE
  "libnavpath_storage.a"
)
