# Empty dependencies file for navpath_storage.
# This may be replaced when dependencies are built.
