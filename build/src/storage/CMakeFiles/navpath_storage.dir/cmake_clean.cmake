file(REMOVE_RECURSE
  "CMakeFiles/navpath_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/navpath_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/navpath_storage.dir/disk.cc.o"
  "CMakeFiles/navpath_storage.dir/disk.cc.o.d"
  "libnavpath_storage.a"
  "libnavpath_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
