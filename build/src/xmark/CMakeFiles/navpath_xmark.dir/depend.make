# Empty dependencies file for navpath_xmark.
# This may be replaced when dependencies are built.
