file(REMOVE_RECURSE
  "libnavpath_xmark.a"
)
