file(REMOVE_RECURSE
  "CMakeFiles/navpath_xmark.dir/generator.cc.o"
  "CMakeFiles/navpath_xmark.dir/generator.cc.o.d"
  "libnavpath_xmark.a"
  "libnavpath_xmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_xmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
