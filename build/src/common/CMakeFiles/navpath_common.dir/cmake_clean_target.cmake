file(REMOVE_RECURSE
  "libnavpath_common.a"
)
