# Empty compiler generated dependencies file for navpath_common.
# This may be replaced when dependencies are built.
