file(REMOVE_RECURSE
  "CMakeFiles/navpath_common.dir/metrics.cc.o"
  "CMakeFiles/navpath_common.dir/metrics.cc.o.d"
  "CMakeFiles/navpath_common.dir/status.cc.o"
  "CMakeFiles/navpath_common.dir/status.cc.o.d"
  "libnavpath_common.a"
  "libnavpath_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
