# Empty compiler generated dependencies file for navpath_xpath.
# This may be replaced when dependencies are built.
