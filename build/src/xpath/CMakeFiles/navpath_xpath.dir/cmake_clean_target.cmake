file(REMOVE_RECURSE
  "libnavpath_xpath.a"
)
