file(REMOVE_RECURSE
  "CMakeFiles/navpath_xpath.dir/oracle.cc.o"
  "CMakeFiles/navpath_xpath.dir/oracle.cc.o.d"
  "CMakeFiles/navpath_xpath.dir/parser.cc.o"
  "CMakeFiles/navpath_xpath.dir/parser.cc.o.d"
  "libnavpath_xpath.a"
  "libnavpath_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
