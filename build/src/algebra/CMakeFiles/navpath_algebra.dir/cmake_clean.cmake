file(REMOVE_RECURSE
  "CMakeFiles/navpath_algebra.dir/path_instance.cc.o"
  "CMakeFiles/navpath_algebra.dir/path_instance.cc.o.d"
  "CMakeFiles/navpath_algebra.dir/unnest_map.cc.o"
  "CMakeFiles/navpath_algebra.dir/unnest_map.cc.o.d"
  "CMakeFiles/navpath_algebra.dir/xassembly.cc.o"
  "CMakeFiles/navpath_algebra.dir/xassembly.cc.o.d"
  "CMakeFiles/navpath_algebra.dir/xscan.cc.o"
  "CMakeFiles/navpath_algebra.dir/xscan.cc.o.d"
  "CMakeFiles/navpath_algebra.dir/xschedule.cc.o"
  "CMakeFiles/navpath_algebra.dir/xschedule.cc.o.d"
  "CMakeFiles/navpath_algebra.dir/xstep.cc.o"
  "CMakeFiles/navpath_algebra.dir/xstep.cc.o.d"
  "libnavpath_algebra.a"
  "libnavpath_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
