# Empty dependencies file for navpath_algebra.
# This may be replaced when dependencies are built.
