
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/path_instance.cc" "src/algebra/CMakeFiles/navpath_algebra.dir/path_instance.cc.o" "gcc" "src/algebra/CMakeFiles/navpath_algebra.dir/path_instance.cc.o.d"
  "/root/repo/src/algebra/unnest_map.cc" "src/algebra/CMakeFiles/navpath_algebra.dir/unnest_map.cc.o" "gcc" "src/algebra/CMakeFiles/navpath_algebra.dir/unnest_map.cc.o.d"
  "/root/repo/src/algebra/xassembly.cc" "src/algebra/CMakeFiles/navpath_algebra.dir/xassembly.cc.o" "gcc" "src/algebra/CMakeFiles/navpath_algebra.dir/xassembly.cc.o.d"
  "/root/repo/src/algebra/xscan.cc" "src/algebra/CMakeFiles/navpath_algebra.dir/xscan.cc.o" "gcc" "src/algebra/CMakeFiles/navpath_algebra.dir/xscan.cc.o.d"
  "/root/repo/src/algebra/xschedule.cc" "src/algebra/CMakeFiles/navpath_algebra.dir/xschedule.cc.o" "gcc" "src/algebra/CMakeFiles/navpath_algebra.dir/xschedule.cc.o.d"
  "/root/repo/src/algebra/xstep.cc" "src/algebra/CMakeFiles/navpath_algebra.dir/xstep.cc.o" "gcc" "src/algebra/CMakeFiles/navpath_algebra.dir/xstep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/navpath_store.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/navpath_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/navpath_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/navpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/navpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
