file(REMOVE_RECURSE
  "libnavpath_algebra.a"
)
