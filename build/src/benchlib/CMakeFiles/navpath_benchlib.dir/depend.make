# Empty dependencies file for navpath_benchlib.
# This may be replaced when dependencies are built.
