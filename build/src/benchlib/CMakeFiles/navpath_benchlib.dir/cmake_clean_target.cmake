file(REMOVE_RECURSE
  "libnavpath_benchlib.a"
)
