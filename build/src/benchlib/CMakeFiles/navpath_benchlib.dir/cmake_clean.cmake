file(REMOVE_RECURSE
  "CMakeFiles/navpath_benchlib.dir/experiments.cc.o"
  "CMakeFiles/navpath_benchlib.dir/experiments.cc.o.d"
  "CMakeFiles/navpath_benchlib.dir/harness.cc.o"
  "CMakeFiles/navpath_benchlib.dir/harness.cc.o.d"
  "libnavpath_benchlib.a"
  "libnavpath_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navpath_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
