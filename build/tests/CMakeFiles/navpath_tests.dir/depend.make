# Empty dependencies file for navpath_tests.
# This may be replaced when dependencies are built.
