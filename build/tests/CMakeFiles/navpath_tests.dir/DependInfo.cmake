
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algebra_test.cc" "tests/CMakeFiles/navpath_tests.dir/algebra_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/algebra_test.cc.o.d"
  "/root/repo/tests/buffer_manager_test.cc" "tests/CMakeFiles/navpath_tests.dir/buffer_manager_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/buffer_manager_test.cc.o.d"
  "/root/repo/tests/cluster_view_test.cc" "tests/CMakeFiles/navpath_tests.dir/cluster_view_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/cluster_view_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/navpath_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/navpath_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/disk_scheduling_test.cc" "tests/CMakeFiles/navpath_tests.dir/disk_scheduling_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/disk_scheduling_test.cc.o.d"
  "/root/repo/tests/disk_test.cc" "tests/CMakeFiles/navpath_tests.dir/disk_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/disk_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/navpath_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/export_verify_test.cc" "tests/CMakeFiles/navpath_tests.dir/export_verify_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/export_verify_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/navpath_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/navigation_test.cc" "tests/CMakeFiles/navpath_tests.dir/navigation_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/navigation_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/navpath_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/paper_example_test.cc" "tests/CMakeFiles/navpath_tests.dir/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/paper_example_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/navpath_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/navpath_tests.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/predicate_test.cc.o.d"
  "/root/repo/tests/shared_scan_test.cc" "tests/CMakeFiles/navpath_tests.dir/shared_scan_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/shared_scan_test.cc.o.d"
  "/root/repo/tests/store_test.cc" "tests/CMakeFiles/navpath_tests.dir/store_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/store_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/navpath_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/tree_page_test.cc" "tests/CMakeFiles/navpath_tests.dir/tree_page_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/tree_page_test.cc.o.d"
  "/root/repo/tests/update_test.cc" "tests/CMakeFiles/navpath_tests.dir/update_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/update_test.cc.o.d"
  "/root/repo/tests/xmark_test.cc" "tests/CMakeFiles/navpath_tests.dir/xmark_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/xmark_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/navpath_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/xml_test.cc.o.d"
  "/root/repo/tests/xpath_test.cc" "tests/CMakeFiles/navpath_tests.dir/xpath_test.cc.o" "gcc" "tests/CMakeFiles/navpath_tests.dir/xpath_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/navpath_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/benchlib/CMakeFiles/navpath_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/navpath_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/navpath_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/navpath_store.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/navpath_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xmark/CMakeFiles/navpath_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/navpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/navpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
