# Empty compiler generated dependencies file for ablation_fragmentation.
# This may be replaced when dependencies are built.
