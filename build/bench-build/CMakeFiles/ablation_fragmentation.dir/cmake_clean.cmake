file(REMOVE_RECURSE
  "../bench/ablation_fragmentation"
  "../bench/ablation_fragmentation.pdb"
  "CMakeFiles/ablation_fragmentation.dir/ablation_fragmentation.cc.o"
  "CMakeFiles/ablation_fragmentation.dir/ablation_fragmentation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
