file(REMOVE_RECURSE
  "../bench/ext_updates"
  "../bench/ext_updates.pdb"
  "CMakeFiles/ext_updates.dir/ext_updates.cc.o"
  "CMakeFiles/ext_updates.dir/ext_updates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
