# Empty dependencies file for ext_updates.
# This may be replaced when dependencies are built.
