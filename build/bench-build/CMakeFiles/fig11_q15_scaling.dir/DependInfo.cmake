
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_q15_scaling.cc" "bench-build/CMakeFiles/fig11_q15_scaling.dir/fig11_q15_scaling.cc.o" "gcc" "bench-build/CMakeFiles/fig11_q15_scaling.dir/fig11_q15_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/navpath_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/navpath_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/navpath_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/navpath_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/navpath_store.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/navpath_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xmark/CMakeFiles/navpath_xmark.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/navpath_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/navpath_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
