file(REMOVE_RECURSE
  "../bench/fig11_q15_scaling"
  "../bench/fig11_q15_scaling.pdb"
  "CMakeFiles/fig11_q15_scaling.dir/fig11_q15_scaling.cc.o"
  "CMakeFiles/fig11_q15_scaling.dir/fig11_q15_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_q15_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
