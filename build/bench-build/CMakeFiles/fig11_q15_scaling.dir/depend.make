# Empty dependencies file for fig11_q15_scaling.
# This may be replaced when dependencies are built.
