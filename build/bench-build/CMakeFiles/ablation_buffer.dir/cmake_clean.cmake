file(REMOVE_RECURSE
  "../bench/ablation_buffer"
  "../bench/ablation_buffer.pdb"
  "CMakeFiles/ablation_buffer.dir/ablation_buffer.cc.o"
  "CMakeFiles/ablation_buffer.dir/ablation_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
