# Empty dependencies file for ext_export.
# This may be replaced when dependencies are built.
