file(REMOVE_RECURSE
  "../bench/ext_export"
  "../bench/ext_export.pdb"
  "CMakeFiles/ext_export.dir/ext_export.cc.o"
  "CMakeFiles/ext_export.dir/ext_export.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
