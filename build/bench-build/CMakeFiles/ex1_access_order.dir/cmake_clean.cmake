file(REMOVE_RECURSE
  "../bench/ex1_access_order"
  "../bench/ex1_access_order.pdb"
  "CMakeFiles/ex1_access_order.dir/ex1_access_order.cc.o"
  "CMakeFiles/ex1_access_order.dir/ex1_access_order.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex1_access_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
