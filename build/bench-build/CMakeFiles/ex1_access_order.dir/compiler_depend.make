# Empty compiler generated dependencies file for ex1_access_order.
# This may be replaced when dependencies are built.
