# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ex1_access_order.
