# Empty compiler generated dependencies file for ext_shared_scan.
# This may be replaced when dependencies are built.
