file(REMOVE_RECURSE
  "../bench/ext_shared_scan"
  "../bench/ext_shared_scan.pdb"
  "CMakeFiles/ext_shared_scan.dir/ext_shared_scan.cc.o"
  "CMakeFiles/ext_shared_scan.dir/ext_shared_scan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shared_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
