file(REMOVE_RECURSE
  "../bench/ablation_costmodel"
  "../bench/ablation_costmodel.pdb"
  "CMakeFiles/ablation_costmodel.dir/ablation_costmodel.cc.o"
  "CMakeFiles/ablation_costmodel.dir/ablation_costmodel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
