# Empty dependencies file for ablation_costmodel.
# This may be replaced when dependencies are built.
