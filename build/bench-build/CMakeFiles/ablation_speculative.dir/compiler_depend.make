# Empty compiler generated dependencies file for ablation_speculative.
# This may be replaced when dependencies are built.
