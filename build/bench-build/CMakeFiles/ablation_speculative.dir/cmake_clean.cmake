file(REMOVE_RECURSE
  "../bench/ablation_speculative"
  "../bench/ablation_speculative.pdb"
  "CMakeFiles/ablation_speculative.dir/ablation_speculative.cc.o"
  "CMakeFiles/ablation_speculative.dir/ablation_speculative.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
