# Empty dependencies file for ext_concurrent.
# This may be replaced when dependencies are built.
