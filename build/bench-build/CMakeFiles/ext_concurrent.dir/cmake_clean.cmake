file(REMOVE_RECURSE
  "../bench/ext_concurrent"
  "../bench/ext_concurrent.pdb"
  "CMakeFiles/ext_concurrent.dir/ext_concurrent.cc.o"
  "CMakeFiles/ext_concurrent.dir/ext_concurrent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
