# Empty compiler generated dependencies file for table3_cpu_usage.
# This may be replaced when dependencies are built.
