file(REMOVE_RECURSE
  "../bench/table3_cpu_usage"
  "../bench/table3_cpu_usage.pdb"
  "CMakeFiles/table3_cpu_usage.dir/table3_cpu_usage.cc.o"
  "CMakeFiles/table3_cpu_usage.dir/table3_cpu_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cpu_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
