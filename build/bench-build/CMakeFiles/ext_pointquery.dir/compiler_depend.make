# Empty compiler generated dependencies file for ext_pointquery.
# This may be replaced when dependencies are built.
