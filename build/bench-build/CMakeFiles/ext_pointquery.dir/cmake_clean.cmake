file(REMOVE_RECURSE
  "../bench/ext_pointquery"
  "../bench/ext_pointquery.pdb"
  "CMakeFiles/ext_pointquery.dir/ext_pointquery.cc.o"
  "CMakeFiles/ext_pointquery.dir/ext_pointquery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pointquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
