file(REMOVE_RECURSE
  "../bench/ablation_clustering"
  "../bench/ablation_clustering.pdb"
  "CMakeFiles/ablation_clustering.dir/ablation_clustering.cc.o"
  "CMakeFiles/ablation_clustering.dir/ablation_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
