# Empty dependencies file for fig10_q7_scaling.
# This may be replaced when dependencies are built.
