file(REMOVE_RECURSE
  "../bench/micro_primitives"
  "../bench/micro_primitives.pdb"
  "CMakeFiles/micro_primitives.dir/__/tests/test_util.cc.o"
  "CMakeFiles/micro_primitives.dir/__/tests/test_util.cc.o.d"
  "CMakeFiles/micro_primitives.dir/micro_primitives.cc.o"
  "CMakeFiles/micro_primitives.dir/micro_primitives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
