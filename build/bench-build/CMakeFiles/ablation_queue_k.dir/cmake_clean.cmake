file(REMOVE_RECURSE
  "../bench/ablation_queue_k"
  "../bench/ablation_queue_k.pdb"
  "CMakeFiles/ablation_queue_k.dir/ablation_queue_k.cc.o"
  "CMakeFiles/ablation_queue_k.dir/ablation_queue_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queue_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
