# Empty compiler generated dependencies file for ablation_queue_k.
# This may be replaced when dependencies are built.
