# Empty dependencies file for fig09_q6_scaling.
# This may be replaced when dependencies are built.
