file(REMOVE_RECURSE
  "../bench/fig09_q6_scaling"
  "../bench/fig09_q6_scaling.pdb"
  "CMakeFiles/fig09_q6_scaling.dir/fig09_q6_scaling.cc.o"
  "CMakeFiles/fig09_q6_scaling.dir/fig09_q6_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_q6_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
