// Tests for the benchmark support library (fixtures, formatting) and the
// Metrics report.
#include <gtest/gtest.h>

#include "benchlib/experiments.h"
#include "benchlib/harness.h"

namespace navpath {
namespace {

TEST(HarnessTest, FixtureBuildsAndRunsPaperQueries) {
  FixtureOptions options;
  options.db.page_size = 1024;
  options.db.buffer_pages = 128;
  auto fixture = XMarkFixture::Create(0.005, options);
  ASSERT_TRUE(fixture.ok()) << fixture.status().ToString();
  EXPECT_GT((*fixture)->doc().page_count(), 1u);
  auto result = (*fixture)->Run(kQ6Prime, PaperPlan(PlanKind::kXSchedule));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->count, 0u);
}

TEST(HarnessTest, RejectsUnknownClusteringPolicy) {
  FixtureOptions options;
  options.clustering = "fancy";
  EXPECT_FALSE(XMarkFixture::Create(0.005, options).ok());
}

TEST(HarnessTest, AllClusteringNamesWork) {
  for (const char* name :
       {"subtree", "doc-order", "round-robin", "random"}) {
    FixtureOptions options;
    options.db.page_size = 1024;
    options.clustering = name;
    auto fixture = XMarkFixture::Create(0.002, options);
    ASSERT_TRUE(fixture.ok()) << name;
  }
}

TEST(HarnessTest, PaperPlanMatchesEvaluationSetup) {
  const PlanOptions options = PaperPlan(PlanKind::kXSchedule);
  EXPECT_EQ(options.kind, PlanKind::kXSchedule);
  EXPECT_FALSE(options.speculative);  // Sec. 6.2
  EXPECT_EQ(options.queue_k, 100u);   // Sec. 5.3.4
}

TEST(HarnessTest, RunOptimizedPicksAPlanAndAgrees) {
  FixtureOptions options;
  options.db.page_size = 1024;
  auto fixture = XMarkFixture::Create(0.005, options);
  ASSERT_TRUE(fixture.ok());
  PlanKind chosen = PlanKind::kSimple;
  auto optimized = (*fixture)->RunOptimized(kQ7, &chosen);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto reference = (*fixture)->Run(kQ7, PaperPlan(PlanKind::kSimple));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(optimized->count, reference->count);
}

TEST(HarnessTest, Formatting) {
  EXPECT_EQ(FormatSeconds(1.234), "1.23");
  EXPECT_EQ(FormatSeconds(0.0), "0.00");
  EXPECT_EQ(FormatPercent(0.131), "13%");
  EXPECT_EQ(FormatPercent(1.0), "100%");
}

TEST(HarnessTest, ScaleFactorLists) {
  EXPECT_EQ(PaperScaleFactors().size(), 9u);  // Sec. 6.2
  EXPECT_DOUBLE_EQ(PaperScaleFactors().front(), 0.1);
  EXPECT_DOUBLE_EQ(PaperScaleFactors().back(), 2.0);
}

TEST(MetricsTest, ToStringMentionsEveryGroup) {
  Metrics metrics;
  metrics.disk_reads = 7;
  metrics.buffer_hits = 3;
  metrics.intra_cluster_hops = 11;
  metrics.instances_created = 5;
  const std::string report = metrics.ToString();
  EXPECT_NE(report.find("disk:"), std::string::npos);
  EXPECT_NE(report.find("buffer:"), std::string::npos);
  EXPECT_NE(report.find("nav:"), std::string::npos);
  EXPECT_NE(report.find("algebra:"), std::string::npos);
  EXPECT_NE(report.find("reads=7"), std::string::npos);
}

TEST(MetricsTest, ResetClearsEverything) {
  Metrics metrics;
  metrics.disk_reads = 1;
  metrics.swizzle_ops = 2;
  metrics.fallback_activations = 3;
  metrics.Reset();
  EXPECT_EQ(metrics.disk_reads, 0u);
  EXPECT_EQ(metrics.swizzle_ops, 0u);
  EXPECT_EQ(metrics.fallback_activations, 0u);
}

}  // namespace
}  // namespace navpath
