// Tests for the path-summary synopsis: exact counts and pruning against
// the oracle, deterministic encoding, decode round-trips and corruption
// rejection, navigation-free count()/exists() answers, and the XScan
// sweep restriction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "compiler/executor.h"
#include "store/path_summary.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

/// A database + the DOM it was imported from, so tests can compare the
/// summary's answers against the oracle's.
struct SummaryFixture {
  Database db;
  DomTree tree;
  ImportedDocument doc;

  explicit SummaryFixture(std::uint64_t seed, const char* clustering = "random")
      : db(SmallDb()), tree(db.tags()) {
    RandomTreeOptions tree_options;
    tree_options.node_count = 400;
    tree_options.tag_alphabet = 3;
    tree = MakeRandomTree(tree_options, seed, db.tags());
    const std::size_t budget = 448;
    if (std::string(clustering) == "subtree") {
      SubtreeClusteringPolicy policy(budget);
      doc = *db.Import(tree, &policy);
    } else {
      RandomClusteringPolicy policy(budget, 3);
      doc = *db.Import(tree, &policy);
    }
  }
};

// Paths inside the exactness domain over the t0..t2 / a0..a2 alphabet.
const char* const kSupportedPaths[] = {
    "/t0", "/t1", "/t2",
    "//t0", "//t1", "//t2",
    "/t0/t1", "/t2/t0", "//t0//t1", "//t1//t2//t0",
    "//t0/t1/t2", "/t2//t1",
    "//t0/@a0", "//t1/@a2", "/t2/t0/@a1",
};

TEST(PathSummaryTest, CountsMatchOracleAcrossSeedsAndClusterings) {
  for (const std::uint64_t seed : {11u, 29u, 73u}) {
    for (const char* clustering : {"random", "subtree"}) {
      SummaryFixture f(seed, clustering);
      const PathSummary* summary = f.db.summary();
      ASSERT_NE(summary, nullptr);
      for (const char* text : kSupportedPaths) {
        auto path = ParsePath(text, f.db.tags());
        ASSERT_TRUE(path.ok()) << text;
        ASSERT_TRUE(PathSummary::Supports(*path)) << text;
        const SummaryMatch match = summary->Match(*path);
        ASSERT_TRUE(match.applicable) << text;
        const auto expected =
            OracleEvaluate(f.tree, *path, f.tree.root()).size();
        EXPECT_EQ(match.result_count, expected)
            << text << " seed=" << seed << " clustering=" << clustering;
        EXPECT_EQ(match.empty, expected == 0) << text;
      }
    }
  }
}

TEST(PathSummaryTest, TotalInstancesCoverEveryNode) {
  SummaryFixture f(5);
  const PathSummary* summary = f.db.summary();
  ASSERT_NE(summary, nullptr);
  // Every element and attribute instance belongs to exactly one path.
  EXPECT_EQ(summary->total_instances(),
            f.tree.element_count() + f.tree.attribute_count());
  std::uint64_t by_node = 0;
  for (std::uint32_t i = 0; i < summary->size(); ++i) {
    by_node += summary->node(i).count;
    if (summary->node(i).parent != PathSummary::kNoParent) {
      EXPECT_LT(summary->node(i).parent, i) << "parent must precede child";
    }
  }
  EXPECT_EQ(by_node, summary->total_instances());
}

TEST(PathSummaryTest, OutsideDomainIsNotSupported) {
  TagRegistry tags;
  for (const char* text :
       {"t0", "t0/t1",               // relative start
        "//t0[@a0=\"v\"]",           // predicate
        "/t0/..", "//t1/parent::t0", // upward axis
        "//t0/following-sibling::t1"}) {
    auto path = ParsePath(text, &tags);
    if (!path.ok()) continue;  // dialect may reject some of these outright
    EXPECT_FALSE(PathSummary::Supports(*path)) << text;
  }
  SummaryFixture f(7);
  auto relative = ParsePath("t0/t1", f.db.tags());
  ASSERT_TRUE(relative.ok());
  EXPECT_FALSE(f.db.summary()->Match(*relative).applicable);
}

TEST(PathSummaryTest, EncodingIsDeterministic) {
  // Two independent databases over the same document: byte-identical
  // synopses, regardless of the physical layout differences introduced
  // by import order (same clustering => same layout here).
  auto encode = [](std::uint64_t seed) {
    SummaryFixture f(seed);
    std::string bytes;
    f.db.summary()->Encode(&bytes);
    return bytes;
  };
  const std::string first = encode(17);
  const std::string second = encode(17);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first, encode(18));  // different document, different synopsis
}

TEST(PathSummaryTest, EncodeDecodeRoundTrip) {
  SummaryFixture f(23);
  const PathSummary* summary = f.db.summary();
  std::string bytes;
  summary->Encode(&bytes);

  auto decoded = PathSummary::Decode(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ((*decoded)->size(), summary->size());
  EXPECT_EQ((*decoded)->total_instances(), summary->total_instances());
  for (std::uint32_t i = 0; i < summary->size(); ++i) {
    const PathSummary::Node& a = summary->node(i);
    const PathSummary::Node& b = (*decoded)->node(i);
    EXPECT_EQ(a.tag, b.tag);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.children, b.children);
    EXPECT_EQ(a.extents, b.extents);
  }
  // Re-encoding the decoded summary reproduces the bytes exactly.
  std::string again;
  (*decoded)->Encode(&again);
  EXPECT_EQ(bytes, again);
}

TEST(PathSummaryTest, DecodeRejectsCorruption) {
  SummaryFixture f(31);
  std::string bytes;
  f.db.summary()->Encode(&bytes);

  EXPECT_FALSE(PathSummary::Decode(bytes.data(), bytes.size() / 2).ok());
  EXPECT_FALSE(PathSummary::Decode(bytes.data(), 0).ok());
  std::string garbage(bytes.size(), '\x5a');
  EXPECT_FALSE(PathSummary::Decode(garbage.data(), garbage.size()).ok());
}

// --- End-to-end: navigation-free answers and pruning ---------------------

TEST(PathSummaryTest, CountAndExistsAnswerWithoutClusterAccess) {
  SummaryFixture f(41);
  for (const char* text :
       {"count(//t0//t1)", "count(/t2/t0)+count(//t1/@a0)",
        "exists(//t2)", "exists(//t0//t1//t2)",
        "exists(//nosuchtag)", "count(//nosuchtag)"}) {
    auto query = ParseQuery(text, f.db.tags());
    ASSERT_TRUE(query.ok()) << text;
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kXSchedule;
    auto result = ExecuteQuery(&f.db, f.doc, *query, exec);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_EQ(result->count, OracleCount(f.tree, *query, f.tree.root()))
        << text;
    // The synopsis answered: no cluster was entered, no page read.
    EXPECT_EQ(result->metrics.clusters_visited, 0u) << text;
    EXPECT_EQ(result->metrics.disk_reads, 0u) << text;
  }
}

TEST(PathSummaryTest, SummaryOffMatchesSummaryFreeDatabase) {
  // plan.use_summary=false must reproduce, byte for byte, the behavior of
  // a database that never built a synopsis.
  auto run = [](bool build_summary) {
    DatabaseOptions options = SmallDb();
    options.import.build_summary = build_summary;
    Database db(options);
    RandomTreeOptions tree_options;
    tree_options.node_count = 400;
    tree_options.tag_alphabet = 3;
    const DomTree tree = MakeRandomTree(tree_options, 41, db.tags());
    RandomClusteringPolicy policy(448, 3);
    const ImportedDocument doc = *db.Import(tree, &policy);
    auto query = ParseQuery("count(//t0//t1)", db.tags());
    query.status().AbortIfNotOk();
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kXSchedule;
    exec.plan.use_summary = !build_summary;
    auto result = ExecuteQuery(&db, doc, *query, exec);
    result.status().AbortIfNotOk();
    return std::make_tuple(result->count, result->total_time,
                           result->cpu_time, result->metrics.disk_reads,
                           result->metrics.clusters_visited);
  };
  // Left: summary built but disabled. Right: no summary at all.
  EXPECT_EQ(run(true), run(false));
}

TEST(PathSummaryTest, ProvablyEmptyPathsSkipNavigation) {
  // XMark structural facts: regions' children are continents, never
  // items; people have no descendant keyword.
  Database db(SmallDb());
  XMarkOptions xmark;
  xmark.scale = 0.01;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(448);
  const ImportedDocument doc = *db.Import(tree, &policy);
  ASSERT_NE(db.summary(), nullptr);

  for (const char* text :
       {"count(/site/regions/item)", "count(/site/people//bidder)",
        "exists(/site/regions/keyword)"}) {
    auto query = ParseQuery(text, db.tags());
    ASSERT_TRUE(query.ok()) << text;
    ASSERT_EQ(OracleCount(tree, *query, tree.root()), 0u) << text;
    const SummaryMatch match = db.summary()->Match(query->paths[0]);
    ASSERT_TRUE(match.applicable) << text;
    EXPECT_TRUE(match.empty) << text;
    EXPECT_GE(match.empty_at, 0) << text;

    for (const PlanKind kind :
         {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
      ExecuteOptions exec;
      exec.plan.kind = kind;
      auto result = ExecuteQuery(&db, doc, *query, exec);
      ASSERT_TRUE(result.ok()) << text;
      EXPECT_EQ(result->count, 0u) << text;
      EXPECT_EQ(result->metrics.clusters_visited, 0u)
          << text << " " << PlanKindName(kind);
    }
  }
}

TEST(PathSummaryTest, XMarkCountsAreExactForPaperQueries) {
  Database db(SmallDb());
  XMarkOptions xmark;
  xmark.scale = 0.01;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(448);
  const ImportedDocument doc = *db.Import(tree, &policy);

  const char* queries[] = {
      kQ6Prime, kQ7,
      "count(/site/closed_auctions/closed_auction/annotation/description/"
      "parlist/listitem/parlist/listitem/text/emph/keyword/bold)",  // Q15
      "count(/site/regions//item)", "count(/site/people/person/email)",
      "count(/site//keyword)", "count(/site/open_auctions//bidder)",
      "exists(/site/regions//item)", "exists(/site/regions/item)",
  };
  for (const char* text : queries) {
    auto query = ParseQuery(text, db.tags());
    ASSERT_TRUE(query.ok()) << text;
    for (const LocationPath& path : query->paths) {
      ASSERT_TRUE(PathSummary::Supports(path)) << text;
    }
    ExecuteOptions exec;
    exec.plan.kind = PlanKind::kXSchedule;
    auto result = ExecuteQuery(&db, doc, *query, exec);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_EQ(result->count, OracleCount(tree, *query, tree.root())) << text;
    EXPECT_EQ(result->metrics.clusters_visited, 0u) << text;
  }
}

TEST(PathSummaryTest, XScanRestrictionNeverReadsMorePages) {
  // The restricted sweep visits a subset of the full sweep's pages and
  // returns the same node set (correctness across all clusterings is
  // covered by operators_test's PlanEquivalence suite).
  for (const char* clustering : {"random", "subtree"}) {
    for (const char* text : {"/t2/t0", "//t0//t1", "//t1//t2//t0"}) {
      auto run = [&](bool use_summary) {
        SummaryFixture f(53, clustering);
        auto path = ParsePath(text, f.db.tags());
        path.status().AbortIfNotOk();
        ExecuteOptions exec;
        exec.plan.kind = PlanKind::kXScan;
        exec.plan.use_summary = use_summary;
        auto result = ExecutePath(&f.db, f.doc, *path, exec);
        result.status().AbortIfNotOk();
        return std::make_pair(result->count, result->metrics.disk_reads);
      };
      const auto with = run(true);
      const auto without = run(false);
      EXPECT_EQ(with.first, without.first) << text << " " << clustering;
      EXPECT_LE(with.second, without.second) << text << " " << clustering;
    }
  }
}

TEST(PathSummaryTest, UpdatesInvalidateTheSummary) {
  SummaryFixture f(61);
  ASSERT_NE(f.db.summary(), nullptr);
  f.db.InvalidateSummary();
  EXPECT_EQ(f.db.summary(), nullptr);
  // Queries still run (navigationally) without a synopsis.
  auto query = ParseQuery("count(//t0)", f.db.tags());
  ASSERT_TRUE(query.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  auto result = ExecuteQuery(&f.db, f.doc, *query, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, OracleCount(f.tree, *query, f.tree.root()));
  EXPECT_GT(result->metrics.clusters_visited, 0u);
}

}  // namespace
}  // namespace navpath
