// Tests for database save/load.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>

#include "compiler/executor.h"
#include "store/export.h"
#include "store/persistence.h"
#include "store/update.h"
#include "store/verify.h"
#include "xml/parser.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(PersistenceTest, RoundTripPreservesDocument) {
  DatabaseOptions options;
  options.page_size = 1024;
  options.buffer_pages = 128;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.005;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(896);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto original = ExportDocument(&db, *doc);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("roundtrip.nvph");
  ASSERT_TRUE(SaveDatabase(&db, *doc, path).ok());

  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->doc.core_records, doc->core_records);
  EXPECT_EQ(loaded->doc.attribute_records, doc->attribute_records);
  EXPECT_EQ(loaded->doc.border_pairs, doc->border_pairs);

  // fsck + byte-identical export from the reloaded database.
  auto report = VerifyStore(loaded->db.get(), loaded->doc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto reloaded = ExportDocument(loaded->db.get(), loaded->doc);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, *original);

  // Queries behave identically on the reloaded database.
  auto query = ParseQuery("count(/site/regions//item/@id)",
                          loaded->db->tags());
  ASSERT_TRUE(query.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  auto before = ExecuteQuery(&db, *doc, *query, exec);
  auto after = ExecuteQuery(loaded->db.get(), loaded->doc, *query, exec);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->count, after->count);
  EXPECT_EQ(before->metrics.disk_reads, after->metrics.disk_reads);
  // Timing matches up to the initial head position (the fresh database's
  // head starts parked; the original's sits wherever import left it).
  EXPECT_NEAR(static_cast<double>(before->total_time),
              static_cast<double>(after->total_time), 20e6 /* 20ms */);

  std::remove(path.c_str());
}

TEST(PersistenceTest, SurvivesUpdatesBeforeSave) {
  DatabaseOptions options;
  options.page_size = 512;
  Database db(options);
  auto tree = ParseXml("<r><a/><b/></r>", db.tags());
  ASSERT_TRUE(tree.ok());
  SubtreeClusteringPolicy policy(448);
  ImportedDocument doc = *db.Import(*tree, &policy);
  DocumentUpdater updater(&db, &doc);
  auto inserted = updater.InsertElement(doc.root, kInvalidNodeID,
                                        db.tags()->Intern("n"), "x",
                                        {{db.tags()->Intern("k"), "v"}});
  ASSERT_TRUE(inserted.ok());

  const std::string path = TempPath("updated.nvph");
  ASSERT_TRUE(SaveDatabase(&db, doc, path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  auto exported = ExportDocument(loaded->db.get(), loaded->doc);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, "<r><n k=\"v\">x</n><a/><b/></r>");
  std::remove(path.c_str());
}

TEST(PersistenceTest, RoundTripPreservesSummary) {
  DatabaseOptions options;
  options.page_size = 1024;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.005;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(896);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(db.summary(), nullptr);
  std::string original_bytes;
  db.summary()->Encode(&original_bytes);

  const std::string path = TempPath("summary_roundtrip.nvph");
  ASSERT_TRUE(SaveDatabase(&db, *doc, path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->summary_status.ok())
      << loaded->summary_status.ToString();
  ASSERT_NE(loaded->db->summary(), nullptr);
  std::string reloaded_bytes;
  loaded->db->summary()->Encode(&reloaded_bytes);
  EXPECT_EQ(reloaded_bytes, original_bytes);

  // The reloaded synopsis answers count queries without navigating.
  auto query = ParseQuery("count(/site/regions//item)", loaded->db->tags());
  ASSERT_TRUE(query.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  auto result = ExecuteQuery(loaded->db.get(), loaded->doc, *query, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, OracleCount(tree, *query, tree.root()));
  EXPECT_EQ(result->metrics.clusters_visited, 0u);
  EXPECT_EQ(result->metrics.disk_reads, 0u);
  std::remove(path.c_str());
}

TEST(PersistenceTest, CorruptSummaryBlockDegradesToSummaryFreeLoad) {
  DatabaseOptions options;
  options.page_size = 1024;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.005;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(896);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto original = ExportDocument(&db, *doc);
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("summary_corrupt.nvph");
  ASSERT_TRUE(SaveDatabase(&db, *doc, path).ok());

  // Flip one byte inside the summary block. The block's bytes are the
  // summary's own encoding, so locate them by searching the file.
  std::string encoded;
  db.summary()->Encode(&encoded);
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string file;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      file.append(buf, got);
    }
    std::fclose(f);
    const std::size_t at = file.find(encoded);
    ASSERT_NE(at, std::string::npos);
    f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(at + encoded.size() / 2),
                         SEEK_SET),
              0);
    std::fputc(file[at + encoded.size() / 2] ^ 0x40, f);
    std::fclose(f);
  }

  // The summary is derived data: the load succeeds, records the damage,
  // and the database works — navigationally — without a synopsis.
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->summary_status.ok());
  EXPECT_EQ(loaded->db->summary(), nullptr);
  auto exported = ExportDocument(loaded->db.get(), loaded->doc);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, *original);
  auto query = ParseQuery("count(/site/regions//item)", loaded->db->tags());
  ASSERT_TRUE(query.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  auto result = ExecuteQuery(loaded->db.get(), loaded->doc, *query, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, OracleCount(tree, *query, tree.root()));
  EXPECT_GT(result->metrics.clusters_visited, 0u);
  std::remove(path.c_str());
}

TEST(PersistenceTest, RejectsGarbageFiles) {
  const std::string path = TempPath("garbage.nvph");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a database", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadDatabase(path).ok());
  EXPECT_FALSE(LoadDatabase(TempPath("missing.nvph")).ok());
  std::remove(path.c_str());
}

TEST(PersistenceTest, TruncatedFileDetected) {
  DatabaseOptions options;
  options.page_size = 512;
  Database db(options);
  auto tree = ParseXml("<r><a/></r>", db.tags());
  ASSERT_TRUE(tree.ok());
  SubtreeClusteringPolicy policy(448);
  auto doc = db.Import(*tree, &policy);
  ASSERT_TRUE(doc.ok());
  const std::string path = TempPath("truncated.nvph");
  ASSERT_TRUE(SaveDatabase(&db, *doc, path).ok());
  // Chop off the page data.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 600), 0);
  }
  EXPECT_FALSE(LoadDatabase(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace navpath
