// Tests for the shared-scan multi-path executor.
#include <gtest/gtest.h>

#include <memory>

#include "compiler/shared_scan.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

TEST(SharedScanTest, MatchesOraclePerPath) {
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 700;
  tree_options.tag_alphabet = 3;
  const DomTree tree = MakeRandomTree(tree_options, 501, db.tags());
  RandomClusteringPolicy policy(448, 7);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto query =
      ParseQuery("count(//t0)+count(//t1/t2)+count(//t2/..)", db.tags());
  ASSERT_TRUE(query.ok());

  auto result = ExecuteQuerySharedScan(&db, *doc, *query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->path_counts.size(), 3u);
  std::uint64_t expected_total = 0;
  for (std::size_t i = 0; i < query->paths.size(); ++i) {
    const auto oracle = OracleEvaluate(tree, query->paths[i], tree.root());
    EXPECT_EQ(result->path_counts[i], oracle.size()) << "path " << i;
    expected_total += oracle.size();
  }
  EXPECT_EQ(result->combined.count, expected_total);
}

TEST(SharedScanTest, SingleScanIoForManyPaths) {
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 900;
  const DomTree tree = MakeRandomTree(tree_options, 502, db.tags());
  SubtreeClusteringPolicy policy(448);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto query = ParseQuery("count(//t0)+count(//t1)+count(//t2)+count(//t3)",
                          db.tags());
  ASSERT_TRUE(query.ok());
  auto result = ExecuteQuerySharedScan(&db, *doc, *query);
  ASSERT_TRUE(result.ok());
  // Exactly one read per page, all but the first sequential.
  EXPECT_EQ(result->combined.metrics.disk_reads, doc->page_count());
  EXPECT_EQ(result->combined.metrics.disk_seq_reads,
            doc->page_count() - 1);
}

TEST(SharedScanTest, NodeModeReturnsDocumentOrder) {
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 400;
  const DomTree tree = MakeRandomTree(tree_options, 503, db.tags());
  RandomClusteringPolicy policy(448, 11);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto query = ParseQuery("//t1", db.tags());
  ASSERT_TRUE(query.ok());
  auto result = ExecuteQuerySharedScan(&db, *doc, *query);
  ASSERT_TRUE(result.ok());

  const auto oracle = OracleEvaluate(tree, query->paths[0], tree.root());
  ASSERT_EQ(result->combined.nodes.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(result->combined.nodes[i].order, tree.node(oracle[i]).order);
  }
}

TEST(SharedScanTest, AgreesWithSeparateXScanPlans) {
  DatabaseOptions options;
  options.page_size = 1024;
  options.buffer_pages = 128;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.005;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(896);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto query = ParseQuery(
      "count(/site//description)+count(/site//annotation)+"
      "count(/site//email)",
      db.tags());
  ASSERT_TRUE(query.ok());

  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXScan;
  // Compare the two *navigational* strategies: without this the summary
  // answers the count query without any scan at all.
  exec.plan.use_summary = false;
  auto separate = ExecuteQuery(&db, *doc, *query, exec);
  ASSERT_TRUE(separate.ok());

  auto shared = ExecuteQuerySharedScan(&db, *doc, *query);
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->combined.count, separate->count);
  EXPECT_LT(shared->combined.metrics.disk_reads,
            separate->metrics.disk_reads);
}

TEST(SharedScanTest, RejectsRelativePaths) {
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 50;
  const DomTree tree = MakeRandomTree(tree_options, 504, db.tags());
  SubtreeClusteringPolicy policy(448);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto query = ParseQuery("t0/t1", db.tags());
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(ExecuteQuerySharedScan(&db, *doc, *query).ok());
}

TEST(SharedScanTest, RejectsSBudget) {
  // Fallback mode is incompatible with shared scanning (one lane would
  // navigate across borders mid-scan while the others still speculate),
  // so a nonzero s_budget must be rejected up front, not silently
  // ignored.
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 50;
  const DomTree tree = MakeRandomTree(tree_options, 504, db.tags());
  SubtreeClusteringPolicy policy(448);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto query = ParseQuery("count(//t0)+count(//t1)", db.tags());
  ASSERT_TRUE(query.ok());

  SharedScanOptions budgeted;
  budgeted.s_budget = 128;
  EXPECT_TRUE(ExecuteQuerySharedScan(&db, *doc, *query, budgeted)
                  .status()
                  .IsInvalidArgument());

  // The options overload with the default (unlimited) budget still runs.
  SharedScanOptions unlimited;
  EXPECT_TRUE(ExecuteQuerySharedScan(&db, *doc, *query, unlimited).ok());
}

TEST(SharedScanTest, FeedOperatorRefusesReopenWithQueuedInstances) {
  // Regression: Open() used to clear the queue, silently dropping
  // instances a driver had already pushed (and charged the simulated
  // clock for). Re-opening with queued input is now an error; a drained
  // feed re-opens fine.
  FeedOperator feed;
  ASSERT_TRUE(feed.Open().ok());
  feed.Push(PathInstance::Seed(NodeID{}, 0));
  EXPECT_TRUE(feed.Open().IsInvalidArgument());

  PathInstance inst;
  auto have = feed.Next(&inst);
  ASSERT_TRUE(have.ok());
  EXPECT_TRUE(*have);  // the queued instance survived the refused reopen
  have = feed.Next(&inst);
  ASSERT_TRUE(have.ok());
  EXPECT_FALSE(*have);
  EXPECT_TRUE(feed.Open().ok());  // drained: reopen is legal
}

}  // namespace
}  // namespace navpath
