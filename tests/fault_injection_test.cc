// Tests for the storage robustness layer: seeded fault injection, page
// checksum trailers, retry/backoff recovery, async->sync degradation, and
// corruption detection across persistence save/load.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "compiler/executor.h"
#include "storage/checksum.h"
#include "storage/fault_injector.h"
#include "store/persistence.h"
#include "xmark/generator.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// --- Checksum primitives -------------------------------------------------

TEST(ChecksumTest, KnownAnswer) {
  // The canonical CRC32C check value (RFC 3720 appendix-style vector).
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const std::byte*>(digits), 9),
            0xE3069283u);
}

TEST(ChecksumTest, ChainsAcrossCalls) {
  const char data[] = "cost-sensitive reordering";
  const auto* bytes = reinterpret_cast<const std::byte*>(data);
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = Crc32c(bytes, n);
  const std::uint32_t split = Crc32c(bytes + 7, n - 7, Crc32c(bytes, 7));
  EXPECT_EQ(whole, split);
}

TEST(ChecksumTest, DetectsSingleBitFlip) {
  std::vector<std::byte> page(512, std::byte{0xAB});
  const std::uint32_t clean = Crc32c(page.data(), page.size());
  page[317] ^= std::byte{0x04};
  EXPECT_NE(Crc32c(page.data(), page.size()), clean);
}

// --- Fault schedule determinism ------------------------------------------

FaultInjectorOptions NoisyOptions(std::uint64_t seed) {
  FaultInjectorOptions options;
  options.seed = seed;
  options.transient_read_error_rate = 0.1;
  options.transient_write_error_rate = 0.05;
  options.corruption_rate = 0.05;
  options.latency_spike_rate = 0.1;
  options.permanent_bad_pages = {7};
  return options;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(NoisyOptions(42));
  FaultInjector b(NoisyOptions(42));
  for (PageId p = 0; p < 500; ++p) {
    const auto fa = a.NextReadFault(p % 11);
    const auto fb = b.NextReadFault(p % 11);
    EXPECT_EQ(fa.transient_error, fb.transient_error);
    EXPECT_EQ(fa.corrupt, fb.corrupt);
    EXPECT_EQ(fa.extra_latency, fb.extra_latency);
    const auto wa = a.NextWriteFault(p % 7);
    const auto wb = b.NextWriteFault(p % 7);
    EXPECT_EQ(wa.transient_error, wb.transient_error);
    EXPECT_EQ(wa.extra_latency, wb.extra_latency);
  }
  EXPECT_EQ(a.decisions(), b.decisions());
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(NoisyOptions(1));
  FaultInjector b(NoisyOptions(2));
  int differences = 0;
  for (PageId p = 0; p < 500; ++p) {
    const auto fa = a.NextReadFault(p % 11);
    const auto fb = b.NextReadFault(p % 11);
    differences += fa.transient_error != fb.transient_error ||
                   fa.corrupt != fb.corrupt ||
                   fa.extra_latency != fb.extra_latency;
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjectorTest, PermanentBadPageAlwaysCorrupts) {
  FaultInjectorOptions options;
  options.seed = 9;
  options.permanent_bad_pages = {3};
  FaultInjector injector(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.NextReadFault(3).corrupt);
    EXPECT_FALSE(injector.NextReadFault(4).corrupt);
  }
}

// --- End-to-end query behaviour under faults -----------------------------

struct FaultyFixture {
  DatabaseOptions options;
  Database db;
  ImportedDocument doc;

  explicit FaultyFixture(const FaultInjectorOptions& faults,
                         double xmark_scale = 0.005)
      : options(MakeOptions(faults)), db(options) {
    XMarkOptions xmark;
    xmark.scale = xmark_scale;
    const DomTree tree = GenerateXMark(xmark, db.tags());
    SubtreeClusteringPolicy policy(896);
    doc = *db.Import(tree, &policy);
  }

  static DatabaseOptions MakeOptions(const FaultInjectorOptions& faults) {
    DatabaseOptions o;
    o.page_size = 1024;
    o.buffer_pages = 64;
    o.faults = faults;
    // The test injects faults at rates far above any realistic device so
    // that every recovery path is exercised on a small document; give the
    // retry loop enough attempts that a run of back-to-back injected
    // faults on one page cannot exhaust it.
    o.retry.max_attempts = 8;
    return o;
  }

  Result<QueryRunResult> Run(const std::string& query, PlanKind kind) {
    auto parsed = ParseQuery(query, db.tags());
    parsed.status().AbortIfNotOk();
    ExecuteOptions exec;
    exec.plan.kind = kind;
    exec.collect_nodes = true;
    return ExecuteQuery(&db, doc, *parsed, exec);
  }
};

std::vector<std::uint64_t> OrdersOf(const QueryRunResult& result) {
  std::vector<std::uint64_t> orders;
  orders.reserve(result.nodes.size());
  for (const LogicalNode& node : result.nodes) orders.push_back(node.order);
  return orders;
}

constexpr const char* kTestQuery = "/site/regions//item";

FaultInjectorOptions TransientFaults(std::uint64_t seed) {
  FaultInjectorOptions faults;
  faults.seed = seed;
  faults.transient_read_error_rate = 0.10;  // ~1 in 10 read attempts fails
  faults.corruption_rate = 0.02;            // transient bit flips
  faults.latency_spike_rate = 0.02;
  return faults;
}

TEST(FaultInjectionTest, TransientFaultsRecoverWithIdenticalResults) {
  FaultyFixture clean(FaultInjectorOptions{});
  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    auto expected = clean.Run(kTestQuery, kind);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_GT(expected->count, 0u);
    EXPECT_EQ(clean.db.metrics()->faults_injected, 0u);

    FaultyFixture faulty(TransientFaults(1234));
    auto survived = faulty.Run(kTestQuery, kind);
    ASSERT_TRUE(survived.ok())
        << PlanKindName(kind) << ": " << survived.status().ToString();
    EXPECT_EQ(survived->count, expected->count) << PlanKindName(kind);
    EXPECT_EQ(OrdersOf(*survived), OrdersOf(*expected)) << PlanKindName(kind);
    // The run really did hit faults and really did recover from them
    // (via sync retries, async->sync fallbacks, or both).
    EXPECT_GT(survived->metrics.faults_injected, 0u) << PlanKindName(kind);
    EXPECT_GT(survived->metrics.fault_retries +
                  survived->metrics.fault_fallbacks,
              0u)
        << PlanKindName(kind);
    // Recovery costs time: the faulty run cannot be faster.
    EXPECT_GE(survived->total_time, expected->total_time);
  }
}

TEST(FaultInjectionTest, SameFaultSeedReproducesRunExactly) {
  FaultyFixture a(TransientFaults(77));
  FaultyFixture b(TransientFaults(77));
  auto ra = a.Run(kTestQuery, PlanKind::kXSchedule);
  auto rb = b.Run(kTestQuery, PlanKind::kXSchedule);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(OrdersOf(*ra), OrdersOf(*rb));
  EXPECT_EQ(ra->total_time, rb->total_time);
  EXPECT_EQ(ra->metrics.faults_injected, rb->metrics.faults_injected);
  EXPECT_EQ(ra->metrics.fault_retries, rb->metrics.fault_retries);
  EXPECT_EQ(ra->metrics.corruptions_detected,
            rb->metrics.corruptions_detected);
  EXPECT_EQ(ra->metrics.fault_fallbacks, rb->metrics.fault_fallbacks);
  EXPECT_EQ(ra->metrics.disk_reads, rb->metrics.disk_reads);

  FaultyFixture c(TransientFaults(78));
  auto rc = c.Run(kTestQuery, PlanKind::kXSchedule);
  ASSERT_TRUE(rc.ok());
  // A different seed yields the same *results* but a different schedule.
  EXPECT_EQ(OrdersOf(*rc), OrdersOf(*ra));
  EXPECT_NE(rc->total_time, ra->total_time);
}

TEST(FaultInjectionTest, PermanentlyBadPageSurfacesCorruption) {
  // Find the root's page in a clean import, then poison it.
  FaultyFixture clean(FaultInjectorOptions{});
  const PageId bad_page = clean.doc.root.page;

  FaultInjectorOptions faults;
  faults.seed = 5;
  faults.permanent_bad_pages = {bad_page};
  FaultyFixture faulty(faults);
  ASSERT_EQ(faulty.doc.root.page, bad_page);  // deterministic import

  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    auto result = faulty.Run(kTestQuery, kind);
    ASSERT_FALSE(result.ok()) << PlanKindName(kind);
    EXPECT_TRUE(result.status().IsCorruption())
        << PlanKindName(kind) << ": " << result.status().ToString();
  }
  EXPECT_GT(faulty.db.metrics()->corruptions_detected, 0u);
}

TEST(FaultInjectionTest, DirtyWriteBackRetriesTransientWriteFaults) {
  SimClock clock;
  Metrics metrics;
  CpuCostModel costs;
  SimulatedDisk disk(DiskModel(), 512, &clock, &metrics);
  FaultInjectorOptions options;
  options.seed = 21;
  options.transient_write_error_rate = 0.4;
  FaultInjector injector(options);
  disk.SetFaultInjector(&injector);
  BufferManager bm(&disk, 4, costs, &clock, &metrics);

  for (int i = 0; i < 8; ++i) {
    auto guard = bm.NewPage();
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    guard->data()[0] = static_cast<std::byte>(i + 1);
    guard->MarkDirty();
  }
  ASSERT_TRUE(bm.FlushAll().ok());
  EXPECT_GT(metrics.fault_retries, 0u);

  // Every page image reached the disk intact despite the write faults.
  disk.SetFaultInjector(nullptr);
  ASSERT_TRUE(bm.InvalidateAll().ok());
  for (PageId p = 0; p < 8; ++p) {
    auto guard = bm.Fix(p);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<std::byte>(p + 1));
  }
}

// --- Persistence round trip ----------------------------------------------

TEST(FaultInjectionTest, ChecksumRoundTripThroughPersistence) {
  FaultyFixture fixture(FaultInjectorOptions{});
  auto before = fixture.Run(kTestQuery, PlanKind::kXSchedule);
  ASSERT_TRUE(before.ok());

  const std::string path = TempPath("fault_roundtrip.nvph");
  ASSERT_TRUE(SaveDatabase(&fixture.db, fixture.doc, path).ok());

  // A clean file loads and answers queries identically.
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto query = ParseQuery(kTestQuery, loaded->db->tags());
  ASSERT_TRUE(query.ok());
  ExecuteOptions exec;
  exec.plan.kind = PlanKind::kXSchedule;
  exec.collect_nodes = true;
  auto after = ExecuteQuery(loaded->db.get(), loaded->doc, *query, exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(OrdersOf(*after), OrdersOf(*before));
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CorruptedSaveFileIsRejectedAtLoad) {
  FaultyFixture fixture(FaultInjectorOptions{});
  const std::string path = TempPath("fault_corrupt.nvph");
  ASSERT_TRUE(SaveDatabase(&fixture.db, fixture.doc, path).ok());

  // Flip one payload byte of the last page (the file ends with that
  // page's payload followed by its 8-byte trailer).
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    const std::streamoff target = size - 8 - 100;
    file.seekg(target);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(target);
    file.write(&byte, 1);
  }
  auto loaded = LoadDatabase(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption())
      << loaded.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace navpath
