// Unit tests for the buffer manager: pinning, LRU eviction, write-back,
// prefetch, swizzle accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "storage/buffer_manager.h"

namespace navpath {
namespace {

constexpr std::size_t kPage = 512;

struct BufferFixture {
  SimClock clock;
  Metrics metrics;
  CpuCostModel costs;
  SimulatedDisk disk{DiskModel(), kPage, &clock, &metrics};
  BufferManager bm;

  explicit BufferFixture(std::size_t capacity)
      : bm(&disk, capacity, costs, &clock, &metrics) {}

  PageId NewDiskPage(std::uint8_t fill) {
    const PageId id = disk.AllocatePage();
    std::vector<std::byte> buf(kPage, static_cast<std::byte>(fill));
    disk.WriteSync(id, buf.data()).AbortIfNotOk();
    return id;
  }
};

TEST(BufferManagerTest, MissThenHit) {
  BufferFixture f(4);
  const PageId p = f.NewDiskPage(0x5A);
  {
    auto guard = f.bm.Fix(p);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<std::byte>(0x5A));
  }
  EXPECT_EQ(f.metrics.buffer_misses, 1u);
  {
    auto guard = f.bm.Fix(p);
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_EQ(f.metrics.buffer_hits, 1u);
  EXPECT_EQ(f.metrics.buffer_misses, 1u);
}

TEST(BufferManagerTest, EvictsLeastRecentlyUsed) {
  BufferFixture f(2);
  const PageId a = f.NewDiskPage(1);
  const PageId b = f.NewDiskPage(2);
  const PageId c = f.NewDiskPage(3);
  { auto g = f.bm.Fix(a); ASSERT_TRUE(g.ok()); }
  { auto g = f.bm.Fix(b); ASSERT_TRUE(g.ok()); }
  { auto g = f.bm.Fix(a); ASSERT_TRUE(g.ok()); }  // refresh a
  { auto g = f.bm.Fix(c); ASSERT_TRUE(g.ok()); }  // must evict b
  EXPECT_TRUE(f.bm.IsResident(a));
  EXPECT_FALSE(f.bm.IsResident(b));
  EXPECT_TRUE(f.bm.IsResident(c));
  EXPECT_EQ(f.metrics.buffer_evictions, 1u);
}

TEST(BufferManagerTest, PinnedPagesSurviveEviction) {
  BufferFixture f(2);
  const PageId a = f.NewDiskPage(1);
  const PageId b = f.NewDiskPage(2);
  const PageId c = f.NewDiskPage(3);
  auto ga = f.bm.Fix(a);
  ASSERT_TRUE(ga.ok());
  { auto g = f.bm.Fix(b); ASSERT_TRUE(g.ok()); }
  { auto g = f.bm.Fix(c); ASSERT_TRUE(g.ok()); }  // evicts b, not pinned a
  EXPECT_TRUE(f.bm.IsResident(a));
  EXPECT_FALSE(f.bm.IsResident(b));
}

TEST(BufferManagerTest, AllPinnedIsResourceExhausted) {
  BufferFixture f(2);
  const PageId a = f.NewDiskPage(1);
  const PageId b = f.NewDiskPage(2);
  const PageId c = f.NewDiskPage(3);
  auto ga = f.bm.Fix(a);
  auto gb = f.bm.Fix(b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_TRUE(f.bm.Fix(c).status().IsResourceExhausted());
}

TEST(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  BufferFixture f(1);
  const PageId a = f.NewDiskPage(1);
  const PageId b = f.NewDiskPage(2);
  {
    auto guard = f.bm.Fix(a);
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<std::byte>(0x77);
    guard->MarkDirty();
  }
  { auto g = f.bm.Fix(b); ASSERT_TRUE(g.ok()); }  // evicts dirty a
  EXPECT_GE(f.metrics.disk_writes, 1u);
  {
    auto guard = f.bm.Fix(a);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<std::byte>(0x77));
  }
}

TEST(BufferManagerTest, NewPageAllocatesAndPins) {
  BufferFixture f(4);
  auto guard = f.bm.NewPage();
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page_id(), 0u);
  std::memset(guard->data(), 0x42, kPage);
  guard->MarkDirty();
  guard->Release();
  ASSERT_TRUE(f.bm.FlushAll().ok());
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(f.disk.ReadSync(0, buf.data()).ok());
  EXPECT_EQ(buf[7], static_cast<std::byte>(0x42));
}

TEST(BufferManagerTest, SwizzleAccounting) {
  BufferFixture f(4);
  const PageId a = f.NewDiskPage(1);
  { auto g = f.bm.Fix(a); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(f.metrics.swizzle_ops, 0u);
  { auto g = f.bm.FixSwizzle(a); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(f.metrics.swizzle_ops, 1u);
}

TEST(BufferManagerTest, PrefetchLifecycle) {
  BufferFixture f(8);
  const PageId a = f.NewDiskPage(1);
  const PageId b = f.NewDiskPage(2);
  auto o1 = f.bm.Prefetch(a);
  ASSERT_TRUE(o1.ok());
  EXPECT_EQ(*o1, BufferManager::PrefetchOutcome::kSubmitted);
  auto o2 = f.bm.Prefetch(a);
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o2, BufferManager::PrefetchOutcome::kInFlight);
  auto o3 = f.bm.Prefetch(b);
  ASSERT_TRUE(o3.ok());
  EXPECT_EQ(*o3, BufferManager::PrefetchOutcome::kSubmitted);
  EXPECT_TRUE(f.bm.HasPrefetchInFlight());
  for (int i = 0; i < 2; ++i) {
    auto done = f.bm.WaitAnyPrefetch();
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(f.bm.IsResident(*done));
  }
  EXPECT_FALSE(f.bm.HasPrefetchInFlight());
  // The page is now resident: fixing it is a hit, and further prefetches
  // report residency.
  const auto hits_before = f.metrics.buffer_hits;
  { auto g = f.bm.Fix(a); ASSERT_TRUE(g.ok()); }
  EXPECT_EQ(f.metrics.buffer_hits, hits_before + 1);
  auto o4 = f.bm.Prefetch(a);
  ASSERT_TRUE(o4.ok());
  EXPECT_EQ(*o4, BufferManager::PrefetchOutcome::kResident);
}

TEST(BufferManagerTest, InvalidateAllDropsCleanly) {
  BufferFixture f(4);
  const PageId a = f.NewDiskPage(1);
  { auto g = f.bm.Fix(a); ASSERT_TRUE(g.ok()); }
  EXPECT_TRUE(f.bm.IsResident(a));
  ASSERT_TRUE(f.bm.InvalidateAll().ok());
  EXPECT_FALSE(f.bm.IsResident(a));
  EXPECT_EQ(f.bm.pages_resident(), 0u);
}

TEST(BufferManagerTest, InvalidateRefusesWhilePinned) {
  BufferFixture f(4);
  const PageId a = f.NewDiskPage(1);
  auto g = f.bm.Fix(a);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(f.bm.InvalidateAll().ok());
}

}  // namespace
}  // namespace navpath
