// Tests for predicate support: parsing, oracle semantics, and physical
// evaluation (segmented plans around the paper's algebra).
#include <gtest/gtest.h>

#include <memory>

#include "compiler/executor.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xml/parser.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

TEST(PredicateParserTest, ParsesExistenceAndValueForms) {
  TagRegistry tags;
  auto path = ParsePath("/site/people/person[@id=\"person0\"]/name", &tags);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->length(), 4u);
  ASSERT_EQ(path->steps[2].predicates.size(), 1u);
  const Predicate& pred = path->steps[2].predicates[0];
  EXPECT_TRUE(pred.has_value);
  EXPECT_EQ(pred.value, "person0");
  EXPECT_EQ(pred.path->steps[0].axis, Axis::kAttribute);

  auto exist = ParsePath("//item[mailbox/mail]", &tags);
  ASSERT_TRUE(exist.ok());
  ASSERT_EQ(exist->steps[0].predicates.size(), 1u);
  EXPECT_FALSE(exist->steps[0].predicates[0].has_value);
  EXPECT_EQ(exist->steps[0].predicates[0].path->length(), 2u);

  auto multi = ParsePath("//a[b][c]", &tags);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->steps[0].predicates.size(), 2u);

  auto nested = ParsePath("//a[b[c]]", &tags);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->steps[0]
                .predicates[0]
                .path->steps[0]
                .predicates.size(),
            1u);
}

TEST(PredicateParserTest, ToStringRoundTrips) {
  TagRegistry tags;
  const char* queries[] = {
      "/site/people/person[@id=\"person0\"]/name",
      "//a[b][c/d]",
      "//item[mailbox/mail]/@id",
  };
  for (const char* q : queries) {
    auto path = ParsePath(q, &tags);
    ASSERT_TRUE(path.ok()) << q;
    auto again = ParsePath(path->ToString(), &tags);
    ASSERT_TRUE(again.ok()) << path->ToString();
    EXPECT_EQ(again->ToString(), path->ToString());
  }
}

TEST(PredicateParserTest, Errors) {
  TagRegistry tags;
  EXPECT_FALSE(ParsePath("//a[/b]", &tags).ok());     // absolute inside
  EXPECT_FALSE(ParsePath("//a[b", &tags).ok());       // unterminated
  EXPECT_FALSE(ParsePath("//a[b=\"x]", &tags).ok());  // unterminated string
  EXPECT_FALSE(ParsePath("//a[]", &tags).ok());       // empty
}

TEST(PredicateOracleTest, FiltersBySubpathExistence) {
  TagRegistry tags;
  auto tree = ParseXml(
      "<r><a><b/><c>keep</c></a><a><c>drop</c></a><a><b/></a></r>", &tags);
  ASSERT_TRUE(tree.ok());

  auto with_b = ParsePath("/r/a[b]", &tags);
  ASSERT_TRUE(with_b.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *with_b, tree->root()).size(), 2u);

  auto chained = ParsePath("/r/a[b]/c", &tags);
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *chained, tree->root()).size(), 1u);

  auto by_value = ParsePath("/r/a[c=\"drop\"]", &tags);
  ASSERT_TRUE(by_value.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *by_value, tree->root()).size(), 1u);

  auto no_match = ParsePath("/r/a[c=\"nothing\"]", &tags);
  ASSERT_TRUE(no_match.ok());
  EXPECT_TRUE(OracleEvaluate(*tree, *no_match, tree->root()).empty());
}

struct PredicateCase {
  std::uint64_t seed;
  std::string path;
};

class PredicatePlans : public ::testing::TestWithParam<PredicateCase> {};

TEST_P(PredicatePlans, AllPlansMatchOracle) {
  const PredicateCase& param = GetParam();
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 500;
  tree_options.tag_alphabet = 3;
  const DomTree tree = MakeRandomTree(tree_options, param.seed, db.tags());
  RandomClusteringPolicy policy(448, param.seed + 1);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto path = ParsePath(param.path, db.tags());
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  const auto expected = OracleEvaluate(tree, *path, tree.root());
  std::vector<std::uint64_t> expected_orders;
  for (const DomNodeId n : expected) {
    expected_orders.push_back(tree.node(n).order);
  }

  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    exec.collect_nodes = true;
    auto result = ExecutePath(&db, *doc, *path, exec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::uint64_t> got;
    for (const auto& n : result->nodes) got.push_back(n.order);
    ASSERT_EQ(got, expected_orders)
        << param.path << " with " << PlanKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, PredicatePlans,
    ::testing::Values(PredicateCase{61, "//t0[t1]"},
                      PredicateCase{62, "//t0[t1]/t2"},
                      PredicateCase{63, "//t1[@a0]"},
                      PredicateCase{64, "//t0[t1/t2]"},
                      PredicateCase{65, "//t0[t1][t2]/t1"},
                      PredicateCase{66, "//t2[..]"},
                      PredicateCase{67, "//t0[t1[@a1]]"},
                      PredicateCase{68, "//t1[@a0=\"val\"]"}),
    [](const ::testing::TestParamInfo<PredicateCase>& info) {
      return "case_s" + std::to_string(info.param.seed);
    });

TEST(PredicateTest, XMarkPointQueryAcrossPlans) {
  // XMark Q1 in spirit: look up one person by id and return the name.
  DatabaseOptions options;
  options.page_size = 2048;
  options.buffer_pages = 128;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.01;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(1792);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  auto path = ParsePath("/site/people/person[@id=\"person42\"]/name",
                        db.tags());
  ASSERT_TRUE(path.ok());
  const auto expected = OracleEvaluate(tree, *path, tree.root());
  ASSERT_EQ(expected.size(), 1u);

  for (const PlanKind kind :
       {PlanKind::kSimple, PlanKind::kXSchedule, PlanKind::kXScan}) {
    ExecuteOptions exec;
    exec.plan.kind = kind;
    auto result = ExecutePath(&db, *doc, *path, exec);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, 1u) << PlanKindName(kind);
  }
}

}  // namespace
}  // namespace navpath
