// Tests for document statistics and the cost-based plan choice.
#include <gtest/gtest.h>

#include "compiler/cost_model.h"
#include "tests/test_util.h"
#include "xmark/generator.h"
#include "xml/parser.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

constexpr const char* kQ15Path =
    "/site/closed_auctions/closed_auction/annotation/description/parlist/"
    "listitem/parlist/listitem/text/emph/keyword/bold";

struct StatsFixture {
  Database db;
  DomTree tree;
  ImportedDocument doc;
  DocumentStats stats;

  static DatabaseOptions Options() {
    DatabaseOptions options;
    options.page_size = 512;
    return options;
  }

  explicit StatsFixture(const char* xml)
      : db(Options()), tree(db.tags()) {
    auto parsed = ParseXml(xml, db.tags());
    parsed.status().AbortIfNotOk();
    tree = std::move(*parsed);
    SubtreeClusteringPolicy policy(448);
    doc = *db.Import(tree, &policy);
    stats = DocumentStats::Build(tree, doc, 512);
  }
};

TEST(DocumentStatsTest, CountsAreExact) {
  StatsFixture f("<r><a><b/><b/><c><b/></c></a><a><c/></a></r>");
  TagRegistry* tags = f.db.tags();
  const TagId r = *tags->Lookup("r");
  const TagId a = *tags->Lookup("a");
  const TagId b = *tags->Lookup("b");
  const TagId c = *tags->Lookup("c");

  EXPECT_EQ(f.stats.node_count(), 8u);
  EXPECT_EQ(f.stats.root_tag(), r);
  EXPECT_EQ(f.stats.CountOfTag(a), 2u);
  EXPECT_EQ(f.stats.CountOfTag(b), 3u);
  EXPECT_EQ(f.stats.ChildCount(r, a), 2u);
  EXPECT_EQ(f.stats.ChildCount(a, b), 2u);  // direct b-children of a's
  EXPECT_EQ(f.stats.ChildCount(c, b), 1u);
  EXPECT_EQ(f.stats.DescendantCount(r, b), 3u);
  EXPECT_EQ(f.stats.DescendantCount(a, b), 3u);
  EXPECT_EQ(f.stats.DescendantCount(a, c), 2u);
  EXPECT_EQ(f.stats.ChildCountAny(r), 2u);
  EXPECT_EQ(f.stats.DescendantCountAny(r), 7u);
}

TEST(DocumentStatsTest, EstimatesExactForDeterministicSteps) {
  StatsFixture f("<r><a><b/><b/><c><b/></c></a><a><c/></a></r>");
  // /r/a/b: from the single root, child estimates are exact expectations.
  auto path = ParsePath("/r/a/b", f.db.tags());
  ASSERT_TRUE(path.ok());
  const PathEstimate est = EstimatePath(f.stats, *path);
  const auto oracle = OracleEvaluate(f.tree, *path, f.tree.root());
  EXPECT_NEAR(est.result_cardinality, static_cast<double>(oracle.size()),
              1e-9);

  auto deep = ParsePath("//b", f.db.tags());
  ASSERT_TRUE(deep.ok());
  const PathEstimate deep_est = EstimatePath(f.stats, *deep);
  EXPECT_NEAR(deep_est.result_cardinality, 3.0, 1e-9);
}

TEST(DocumentStatsTest, AncestorEstimateUsesPairCounts) {
  StatsFixture f("<r><a><c><b/></c></a><a><b/></a></r>");
  auto path = ParsePath("//b/ancestor::a", f.db.tags());
  ASSERT_TRUE(path.ok());
  const PathEstimate est = EstimatePath(f.stats, *path);
  // Both b's have exactly one a-ancestor; distribution-level estimate
  // counts expected ancestors (2 in total, capped at count(a) = 2).
  EXPECT_NEAR(est.result_cardinality, 2.0, 1e-6);
}

TEST(CostModelTest, EstimatedProgressClampsTinyCardinalities) {
  // Regression: the workload executor's remaining-cost estimate used to
  // skip the progress discount whenever the estimated cardinality was
  // below 1.0, so sub-unit paths (selective predicates round to 0.x
  // nodes) were costed as if no work had happened and shortest-remaining
  // ordering kept demoting nearly-finished jobs. The cardinality is
  // clamped to >= 1 before dividing instead.
  EXPECT_DOUBLE_EQ(EstimatedProgress(0, 0.25), 0.0);
  EXPECT_DOUBLE_EQ(EstimatedProgress(1, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(EstimatedProgress(1, 0.0), 1.0);

  // Ordinary cardinalities divide through; progress caps at 1.
  EXPECT_DOUBLE_EQ(EstimatedProgress(2, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(EstimatedProgress(4, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(EstimatedProgress(40, 4.0), 1.0);

  // Degenerate estimates (negative from numeric noise) clamp too.
  EXPECT_DOUBLE_EQ(EstimatedProgress(0, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(EstimatedProgress(5, -3.0), 1.0);
}

TEST(CostModelTest, EstimateScalesWithSelectivity) {
  TagRegistry* tags;
  DatabaseOptions options;
  options.page_size = 2048;
  Database db(options);
  tags = db.tags();
  XMarkOptions xmark;
  xmark.scale = 0.02;
  const DomTree tree = GenerateXMark(xmark, tags);
  SubtreeClusteringPolicy policy(1792);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  const DocumentStats stats = DocumentStats::Build(tree, *doc, 2048);

  auto q7_path = ParsePath("/site//description", tags);
  auto q15_path = ParsePath(kQ15Path, tags);
  ASSERT_TRUE(q7_path.ok());
  ASSERT_TRUE(q15_path.ok());
  const PathEstimate low_sel = EstimatePath(stats, *q7_path);
  const PathEstimate high_sel = EstimatePath(stats, *q15_path);
  EXPECT_GT(low_sel.clusters_touched, 5 * high_sel.clusters_touched);

  const PlanCosts low_costs = EstimatePlanCosts(
      stats, *q7_path, db.options().disk_model, db.costs());
  const PlanCosts high_costs = EstimatePlanCosts(
      stats, *q15_path, db.options().disk_model, db.costs());
  // Crossover: scans attractive for low selectivity, not for high.
  EXPECT_LT(low_costs.xscan / low_costs.xschedule,
            high_costs.xscan / high_costs.xschedule);
}

TEST(CostModelTest, ChoosesNavigationForSelectiveQueries) {
  DatabaseOptions options;
  options.page_size = 2048;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.05;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(1792);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  const DocumentStats stats = DocumentStats::Build(tree, *doc, 2048);

  auto selective = ParseQuery(kQ15Path, db.tags());
  ASSERT_TRUE(selective.ok());
  EXPECT_NE(ChoosePlanKind(stats, *selective, db.options().disk_model,
                           db.costs()),
            PlanKind::kXScan);

  auto broad = ParseQuery(
      "count(/site//description)+count(/site//annotation)+"
      "count(/site//email)",
      db.tags());
  ASSERT_TRUE(broad.ok());
  EXPECT_EQ(ChoosePlanKind(stats, *broad, db.options().disk_model,
                           db.costs()),
            PlanKind::kXScan);
}

}  // namespace
}  // namespace navpath
