// Unit tests for the XML layer: tag registry, DOM, parser, serializer.
#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tag_registry.h"

namespace navpath {
namespace {

TEST(TagRegistryTest, InternIsIdempotent) {
  TagRegistry tags;
  const TagId a = tags.Intern("item");
  const TagId b = tags.Intern("item");
  const TagId c = tags.Intern("person");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(tags.Name(a), "item");
  EXPECT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags.Lookup("item"), a);
  EXPECT_FALSE(tags.Lookup("missing").has_value());
}

TEST(DomTest, BuildsLinkedStructure) {
  TagRegistry tags;
  DomTree tree(&tags);
  const DomNodeId root = tree.CreateRoot(tags.Intern("a"));
  const DomNodeId c1 = tree.AppendChild(root, tags.Intern("b"));
  const DomNodeId c2 = tree.AppendChild(root, tags.Intern("c"));
  EXPECT_EQ(tree.node(root).first_child, c1);
  EXPECT_EQ(tree.node(root).last_child, c2);
  EXPECT_EQ(tree.node(c1).next_sibling, c2);
  EXPECT_EQ(tree.node(c2).prev_sibling, c1);
  EXPECT_EQ(tree.node(c2).parent, root);
}

TEST(DomTest, OrderKeysArePreorder) {
  TagRegistry tags;
  DomTree tree(&tags);
  const TagId t = tags.Intern("x");
  const DomNodeId root = tree.CreateRoot(t);
  const DomNodeId a = tree.AppendChild(root, t);
  const DomNodeId aa = tree.AppendChild(a, t);
  const DomNodeId b = tree.AppendChild(root, t);
  tree.AssignOrderKeys();
  EXPECT_EQ(tree.node(root).order, 0u);
  EXPECT_EQ(tree.node(a).order, 1 * kOrderKeyGap);
  EXPECT_EQ(tree.node(aa).order, 2 * kOrderKeyGap);
  EXPECT_EQ(tree.node(b).order, 3 * kOrderKeyGap);
}

TEST(ParserTest, ParsesNestedElements) {
  TagRegistry tags;
  auto result = ParseXml("<a><b>hi</b><c/></a>", &tags);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DomTree& tree = *result;
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.TagName(tree.root()), "a");
  const DomNodeId b = tree.node(tree.root()).first_child;
  EXPECT_EQ(tree.TagName(b), "b");
  EXPECT_EQ(tree.node(b).text, "hi");
}

TEST(ParserTest, SkipsPrologAndCapturesAttributes) {
  TagRegistry tags;
  auto result = ParseXml(
      "<?xml version=\"1.0\"?><!-- c --><!DOCTYPE a>\n"
      "<a id=\"1\" name='x &amp; y'><!-- inner --><b attr=\"2\"/></a>",
      &tags);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->element_count(), 2u);
  EXPECT_EQ(result->attribute_count(), 3u);
  const DomTree& tree = *result;
  const DomNodeId id_attr = tree.node(tree.root()).first_attr;
  ASSERT_NE(id_attr, kNilDomNode);
  EXPECT_EQ(tree.TagName(id_attr), "id");
  EXPECT_EQ(tree.node(id_attr).text, "1");
  const DomNodeId name_attr = tree.node(id_attr).next_sibling;
  ASSERT_NE(name_attr, kNilDomNode);
  EXPECT_EQ(tree.node(name_attr).text, "x & y");
  EXPECT_EQ(tree.node(name_attr).kind, DomNodeKind::kAttribute);
}

TEST(ParserTest, DecodesEntities) {
  TagRegistry tags;
  auto result = ParseXml("<a>x &amp; y &lt;z&gt; &quot;q&quot;</a>", &tags);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node(result->root()).text, "x & y <z> \"q\"");
}

TEST(ParserTest, ParsesCdata) {
  TagRegistry tags;
  auto result = ParseXml("<a><![CDATA[<raw>&]]></a>", &tags);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node(result->root()).text, "<raw>&");
}

TEST(ParserTest, RejectsMismatchedTags) {
  TagRegistry tags;
  EXPECT_TRUE(ParseXml("<a><b></a></b>", &tags).status().IsParseError());
}

TEST(ParserTest, RejectsTrailingContent) {
  TagRegistry tags;
  EXPECT_TRUE(ParseXml("<a/><b/>", &tags).status().IsParseError());
}

TEST(ParserTest, RejectsUnterminated) {
  TagRegistry tags;
  EXPECT_TRUE(ParseXml("<a><b>", &tags).status().IsParseError());
}

TEST(SerializerTest, RoundTrip) {
  TagRegistry tags;
  const std::string source = "<a>pre<b>hi</b><c/></a>";
  auto tree = ParseXml(source, &tags);
  ASSERT_TRUE(tree.ok());
  const std::string serialized = SerializeXml(*tree);
  // Re-parse the serialization: same structure and text.
  TagRegistry tags2;
  auto tree2 = ParseXml(serialized, &tags2);
  ASSERT_TRUE(tree2.ok());
  EXPECT_EQ(tree2->size(), tree->size());
  EXPECT_EQ(tree2->node(tree2->root()).text, "pre");
}

TEST(SerializerTest, EscapesSpecials) {
  TagRegistry tags;
  DomTree tree(&tags);
  const DomNodeId root = tree.CreateRoot(tags.Intern("a"));
  tree.AppendText(root, "x < & >");
  EXPECT_EQ(SerializeXml(tree), "<a>x &lt; &amp; &gt;</a>");
}

}  // namespace
}  // namespace navpath
