// Tests for document export from the paged store and the store fsck.
#include <gtest/gtest.h>

#include <memory>

#include "store/export.h"
#include "store/scan_export.h"
#include "store/verify.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmark/generator.h"

namespace navpath {
namespace {

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.page_size = 512;
  options.buffer_pages = 64;
  return options;
}

struct ExportCase {
  std::string policy;
  std::uint64_t seed;
  double fragmentation;
};

class ExportRoundTrip : public ::testing::TestWithParam<ExportCase> {};

TEST_P(ExportRoundTrip, StoreExportEqualsDomSerialization) {
  const ExportCase& param = GetParam();
  DatabaseOptions options = SmallDb();
  options.import.fragmentation = param.fragmentation;
  Database db(options);
  RandomTreeOptions tree_options;
  tree_options.node_count = 600;
  const DomTree tree = MakeRandomTree(tree_options, param.seed, db.tags());

  std::unique_ptr<ClusteringPolicy> policy;
  if (param.policy == "subtree") {
    policy = std::make_unique<SubtreeClusteringPolicy>(448);
  } else {
    policy = std::make_unique<RandomClusteringPolicy>(448, param.seed);
  }
  auto doc = db.Import(tree, policy.get());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  auto exported = ExportDocument(&db, *doc);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_EQ(*exported, SerializeXml(tree));

  // The scan-based exporter must produce byte-identical output from one
  // sequential pass.
  auto scanned = ScanExportDocument(&db, *doc);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(*scanned, *exported);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndFragmentation, ExportRoundTrip,
    ::testing::Values(ExportCase{"subtree", 201, 0.0},
                      ExportCase{"subtree", 202, 0.5},
                      ExportCase{"random", 203, 0.0},
                      ExportCase{"random", 204, 0.5},
                      ExportCase{"random", 205, 1.0}),
    [](const ::testing::TestParamInfo<ExportCase>& info) {
      return info.param.policy + "_s" + std::to_string(info.param.seed);
    });

TEST(ExportTest, XmlRoundTripThroughStore) {
  Database db(SmallDb());
  // Character content precedes child elements in our DOM model (mixed
  // content is concatenated per element, Sec. 3.1 exclusion), so the
  // source here places text first and round-trips byte-identically.
  const std::string source =
      "<a>alpha<b>beta</b><c>gamma &amp; delta<d/></c></a>";
  auto tree = ParseXml(source, db.tags());
  ASSERT_TRUE(tree.ok());
  RoundRobinClusteringPolicy policy(448);
  auto doc = db.Import(*tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto exported = ExportDocument(&db, *doc);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, source);
}

TEST(ExportTest, SubtreeExport) {
  Database db(SmallDb());
  auto tree = ParseXml("<a><b><c>x</c></b><d/></a>", db.tags());
  ASSERT_TRUE(tree.ok());
  SubtreeClusteringPolicy policy(448);
  auto doc = db.Import(*tree, &policy);
  ASSERT_TRUE(doc.ok());
  // Find the <b> node via navigation.
  CrossClusterCursor cursor(&db);
  ASSERT_TRUE(cursor.Start(Axis::kChild, doc->root).ok());
  LogicalNode b;
  auto more = cursor.Next(&b);
  ASSERT_TRUE(more.ok() && *more);
  auto exported = ExportSubtree(&db, b.id);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, "<b><c>x</c></b>");
}

TEST(ExportTest, XMarkExportMatchesDom) {
  DatabaseOptions options;
  options.page_size = 2048;
  options.buffer_pages = 256;
  options.import.fragmentation = 0.4;
  Database db(options);
  XMarkOptions xmark;
  xmark.scale = 0.002;
  const DomTree tree = GenerateXMark(xmark, db.tags());
  SubtreeClusteringPolicy policy(1792);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto exported = ExportDocument(&db, *doc);
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, SerializeXml(tree));

  // Scan export: same bytes, strictly sequential I/O.
  ASSERT_TRUE(db.ResetMeasurement().ok());
  auto scanned = ScanExportDocument(&db, *doc);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*scanned, *exported);
  EXPECT_EQ(db.metrics()->disk_reads, doc->page_count());
  EXPECT_EQ(db.metrics()->disk_seq_reads, doc->page_count() - 1);
}

TEST(VerifyTest, AcceptsHealthyStores) {
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 500;
  const DomTree tree = MakeRandomTree(tree_options, 321, db.tags());
  RandomClusteringPolicy policy(448, 5);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());
  auto report = VerifyStore(&db, *doc);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->core_records, tree.element_count());
  EXPECT_EQ(report->reachable_cores, tree.element_count());
  EXPECT_EQ(report->attribute_records, tree.attribute_count());
  EXPECT_EQ(report->pages, doc->page_count());
}

TEST(VerifyTest, DetectsBrokenPartnerPointer) {
  Database db(SmallDb());
  RandomTreeOptions tree_options;
  tree_options.node_count = 300;
  const DomTree tree = MakeRandomTree(tree_options, 322, db.tags());
  RandomClusteringPolicy policy(448, 6);
  auto doc = db.Import(tree, &policy);
  ASSERT_TRUE(doc.ok());

  // Corrupt: find some border record and point its partner elsewhere.
  bool corrupted = false;
  for (PageId p = doc->first_page; p <= doc->last_page && !corrupted; ++p) {
    auto guard = db.buffer()->Fix(p);
    ASSERT_TRUE(guard.ok());
    TreePage page(guard->data(), db.options().page_size);
    for (SlotId s = 0; s < page.slot_count(); ++s) {
      if (page.IsBorder(s)) {
        NodeID partner = page.PartnerOf(s);
        partner.slot = static_cast<SlotId>(partner.slot + 1);
        page.SetPartner(s, partner);
        guard->MarkDirty();
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  ASSERT_TRUE(db.buffer()->FlushAll().ok());
  EXPECT_FALSE(VerifyStore(&db, *doc).ok());
}

}  // namespace
}  // namespace navpath
