// Unit tests for the XPath parser and the DOM oracle evaluator.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpath/oracle.h"
#include "xpath/parser.h"

namespace navpath {
namespace {

TEST(XPathParserTest, SimpleAbsolutePath) {
  TagRegistry tags;
  auto path = ParsePath("/site/regions", &tags);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_TRUE(path->absolute);
  ASSERT_EQ(path->length(), 2u);
  // Document-node projection: /site tests the root element itself.
  EXPECT_EQ(path->steps[0].axis, Axis::kSelf);
  EXPECT_EQ(path->steps[0].test.name, "site");
  EXPECT_EQ(path->steps[1].axis, Axis::kChild);
  EXPECT_EQ(path->steps[1].test.name, "regions");
}

TEST(XPathParserTest, DoubleSlashNormalizesToDescendant) {
  TagRegistry tags;
  auto path = ParsePath("/site//item", &tags);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->length(), 2u);
  EXPECT_EQ(path->steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(path->steps[1].test.name, "item");

  auto leading = ParsePath("//item", &tags);
  ASSERT_TRUE(leading.ok());
  ASSERT_EQ(leading->length(), 1u);
  // From the document node, // includes the root element itself.
  EXPECT_EQ(leading->steps[0].axis, Axis::kDescendantOrSelf);
}

TEST(XPathParserTest, ExplicitAxes) {
  TagRegistry tags;
  auto path = ParsePath(
      "/descendant-or-self::node()/parent::*/following-sibling::x", &tags);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->length(), 3u);
  EXPECT_EQ(path->steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(path->steps[0].test.kind, NodeTest::Kind::kAnyNode);
  EXPECT_EQ(path->steps[1].axis, Axis::kParent);
  EXPECT_EQ(path->steps[1].test.kind, NodeTest::Kind::kWildcard);
  EXPECT_EQ(path->steps[2].axis, Axis::kFollowingSibling);
}

TEST(XPathParserTest, AttributeAxis) {
  TagRegistry tags;
  auto path = ParsePath("/site/regions//item/@id", &tags);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_EQ(path->length(), 4u);
  EXPECT_EQ(path->steps[3].axis, Axis::kAttribute);
  EXPECT_EQ(path->steps[3].test.name, "id");

  auto explicit_form = ParsePath("//item/attribute::id", &tags);
  ASSERT_TRUE(explicit_form.ok());
  EXPECT_EQ(explicit_form->steps[1].axis, Axis::kAttribute);

  auto wildcard = ParsePath("//item/@*", &tags);
  ASSERT_TRUE(wildcard.ok());
  EXPECT_EQ(wildcard->steps[1].axis, Axis::kAttribute);
  EXPECT_EQ(wildcard->steps[1].test.kind, NodeTest::Kind::kWildcard);

  // '//@id' expands to descendant-or-self::node()/attribute::id.
  auto deep = ParsePath("//@id", &tags);
  ASSERT_TRUE(deep.ok());
  ASSERT_EQ(deep->length(), 2u);
  EXPECT_EQ(deep->steps[0].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(deep->steps[1].axis, Axis::kAttribute);
}

TEST(OracleTest, AttributeAxis) {
  TagRegistry tags;
  auto tree = ParseXml(
      "<r><a id=\"1\" x=\"2\"/><b id=\"3\"><a/></b></r>", &tags);
  ASSERT_TRUE(tree.ok());
  auto path = ParsePath("//@id", &tags);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *path, tree->root()).size(), 2u);
  auto back = ParsePath("//a/@id/..", &tags);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *back, tree->root()).size(), 1u);
}

TEST(XPathParserTest, FollowingAndPrecedingRewrite) {
  TagRegistry tags;
  auto path = ParsePath("//a/following::b", &tags);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  // descendant-or-self::a / ancestor-or-self::node() /
  // following-sibling::node() / descendant-or-self::b
  ASSERT_EQ(path->length(), 4u);
  EXPECT_EQ(path->steps[1].axis, Axis::kAncestorOrSelf);
  EXPECT_EQ(path->steps[2].axis, Axis::kFollowingSibling);
  EXPECT_EQ(path->steps[3].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(path->steps[3].test.name, "b");

  auto prec = ParsePath("//a/preceding::*", &tags);
  ASSERT_TRUE(prec.ok());
  EXPECT_EQ(prec->steps[2].axis, Axis::kPrecedingSibling);
}

TEST(OracleTest, FollowingAndPrecedingSemantics) {
  TagRegistry tags;
  //      r
  //    / | \  (document order: r, a, b, c, d, e, f)
  //   a  c  f
  //  /b  |d,e
  auto tree = ParseXml(
      "<r><a><b/></a><c><d/><e/></c><f/></r>", &tags);
  ASSERT_TRUE(tree.ok());

  // following of b: everything after b's subtree = c, d, e, f.
  auto following = ParsePath("//b/following::*", &tags);
  ASSERT_TRUE(following.ok());
  const auto f_result = OracleEvaluate(*tree, *following, tree->root());
  std::vector<std::string> f_names;
  for (const DomNodeId n : f_result) f_names.push_back(tree->TagName(n));
  EXPECT_EQ(f_names, (std::vector<std::string>{"c", "d", "e", "f"}));

  // preceding of d: nodes wholly before d, excluding ancestors = a, b.
  auto preceding = ParsePath("//d/preceding::*", &tags);
  ASSERT_TRUE(preceding.ok());
  const auto p_result = OracleEvaluate(*tree, *preceding, tree->root());
  std::vector<std::string> p_names;
  for (const DomNodeId n : p_result) p_names.push_back(tree->TagName(n));
  EXPECT_EQ(p_names, (std::vector<std::string>{"a", "b"}));
}

TEST(XPathParserTest, DotAndDotDot) {
  TagRegistry tags;
  auto path = ParsePath("a/../b/.", &tags);
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(path->absolute);
  ASSERT_EQ(path->length(), 4u);
  EXPECT_EQ(path->steps[1].axis, Axis::kParent);
  EXPECT_EQ(path->steps[3].axis, Axis::kSelf);
}

TEST(XPathParserTest, DoubleSlashBeforeExplicitAxisKeepsDosStep) {
  TagRegistry tags;
  auto path = ParsePath("/a//parent::b", &tags);
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->length(), 3u);
  EXPECT_EQ(path->steps[1].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(path->steps[2].axis, Axis::kParent);
}

TEST(XPathParserTest, CountQueries) {
  TagRegistry tags;
  auto query = ParseQuery(
      "count(/site//description)+count(/site//annotation)+"
      "count(/site//email)",
      &tags);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->mode, PathQuery::Mode::kCount);
  EXPECT_EQ(query->paths.size(), 3u);
}

TEST(XPathParserTest, NodeQueryMode) {
  TagRegistry tags;
  auto query = ParseQuery("/a/b", &tags);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->mode, PathQuery::Mode::kNodes);
  EXPECT_EQ(query->paths.size(), 1u);
}

TEST(XPathParserTest, RootOnlyPath) {
  TagRegistry tags;
  auto path = ParsePath("/", &tags);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->absolute);
  EXPECT_EQ(path->length(), 0u);
}

TEST(XPathParserTest, Errors) {
  TagRegistry tags;
  EXPECT_FALSE(ParsePath("", &tags).ok());
  EXPECT_FALSE(ParsePath("/a//", &tags).ok());
  EXPECT_FALSE(ParsePath("/a/!b", &tags).ok());
  EXPECT_FALSE(ParsePath("/bogus::a", &tags).ok());
  EXPECT_FALSE(ParseQuery("count(/a", &tags).ok());
  EXPECT_FALSE(ParseQuery("count(/a) + /b", &tags).ok());
}

TEST(XPathParserTest, ToStringRoundTrip) {
  TagRegistry tags;
  auto path = ParsePath("/site//item", &tags);
  ASSERT_TRUE(path.ok());
  auto again = ParsePath(path->ToString(), &tags);
  ASSERT_TRUE(again.ok()) << path->ToString();
  EXPECT_EQ(again->ToString(), path->ToString());
}

TEST(OracleTest, EvaluatesPathsOnDom) {
  TagRegistry tags;
  auto tree = ParseXml(
      "<r><a><b/><c><b/></c></a><a><b/></a><d><b/></d></r>", &tags);
  ASSERT_TRUE(tree.ok());

  auto path = ParsePath("/r/a/b", &tags);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *path, tree->root()).size(), 2u);

  auto deep = ParsePath("//b", &tags);
  ASSERT_TRUE(deep.ok());
  EXPECT_EQ(OracleEvaluate(*tree, *deep, tree->root()).size(), 4u);

  auto wrong_root = ParsePath("/a/b", &tags);
  ASSERT_TRUE(wrong_root.ok());
  EXPECT_TRUE(OracleEvaluate(*tree, *wrong_root, tree->root()).empty());

  auto query = ParseQuery("count(/r/a/b)+count(/r/d/b)", &tags);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(OracleCount(*tree, *query, tree->root()), 3u);
}

TEST(OracleTest, ResultsAreDedupedAndSorted) {
  TagRegistry tags;
  // //c//b produces the inner b twice without dedup (via both c anchors).
  auto tree = ParseXml("<r><c><c><b/></c></c></r>", &tags);
  ASSERT_TRUE(tree.ok());
  auto path = ParsePath("//c//b", &tags);
  ASSERT_TRUE(path.ok());
  const auto result = OracleEvaluate(*tree, *path, tree->root());
  EXPECT_EQ(result.size(), 1u);
}

}  // namespace
}  // namespace navpath
